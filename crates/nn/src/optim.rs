//! Optimisers over flattened parameter vectors.

/// Adam (Kingma & Ba) with optional gradient clipping.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay of the first-moment estimate.
    pub beta1: f32,
    /// Exponential decay of the second-moment estimate.
    pub beta2: f32,
    /// Denominator fuzz preventing division by zero.
    pub eps: f32,
    /// Global L2 gradient clip; 0 disables clipping.
    pub clip: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Builds an optimiser for `n_params` parameters with the standard
    /// Kingma–Ba defaults (`β₁ = 0.9`, `β₂ = 0.999`) and clip 5.
    pub fn new(lr: f32, n_params: usize) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 5.0,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// Number of [`Adam::step`] calls so far (the bias-correction clock).
    pub fn steps_taken(&self) -> u64 {
        self.t
    }

    /// One update: `params ← params − lr · m̂ / (√v̂ + ε)`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "param size mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad size mismatch");
        self.t += 1;

        // Global-norm clip.
        let mut scale = 1.0f32;
        if self.clip > 0.0 {
            // lint:allow(det-float-sum): the sequential iterator fold is
            // itself deterministic, and switching to the 8-lane reducer
            // would change the summation tree and shift the pinned golden
            // loss trajectories (crates/nn/tests/golden_train.rs).
            let norm: f32 = grads.iter().map(|g| g * g).sum::<f32>().sqrt();
            if norm > self.clip {
                scale = self.clip / norm;
            }
        }

        let b1c = 1.0 - self.beta1.powi(self.t as i32);
        let b2c = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] * scale;
            if !g.is_finite() {
                continue; // skip poisoned gradients rather than corrupting state
            }
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1c;
            let vhat = self.v[i] / b2c;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_quadratic() {
        // f(x) = Σ (x_i − target_i)², ∇f = 2(x − target)
        let target = [3.0f32, -1.0, 0.5];
        let mut x = vec![0.0f32; 3];
        let mut opt = Adam::new(0.05, 3);
        for _ in 0..2000 {
            let grads: Vec<f32> = x
                .iter()
                .zip(target.iter())
                .map(|(xi, ti)| 2.0 * (xi - ti))
                .collect();
            opt.step(&mut x, &grads);
        }
        for (xi, ti) in x.iter().zip(target.iter()) {
            assert!((xi - ti).abs() < 1e-2, "{xi} vs {ti}");
        }
        assert_eq!(opt.steps_taken(), 2000);
    }

    #[test]
    fn clipping_limits_update_magnitude() {
        let mut unclipped = Adam::new(0.1, 1);
        unclipped.clip = 0.0;
        let mut clipped = Adam::new(0.1, 1);
        clipped.clip = 0.5;
        let mut xa = vec![0.0f32];
        let mut xb = vec![0.0f32];
        unclipped.step(&mut xa, &[1000.0]);
        clipped.step(&mut xb, &[1000.0]);
        // Both move by ≈ lr on the first Adam step, but clipping changes the
        // internal moments; after a second small-gradient step the states differ.
        unclipped.step(&mut xa, &[0.001]);
        clipped.step(&mut xb, &[0.001]);
        assert_ne!(xa[0], xb[0]);
    }

    #[test]
    fn non_finite_gradients_are_skipped() {
        let mut opt = Adam::new(0.1, 2);
        opt.clip = 0.0;
        let mut x = vec![1.0f32, 1.0];
        opt.step(&mut x, &[f32::NAN, 1.0]);
        assert!(
            (x[0] - 1.0).abs() < 1e-9,
            "NaN gradient must not move the param"
        );
        assert!(x[1] < 1.0, "finite gradient still applies");
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "param size mismatch")]
    fn size_mismatch_panics() {
        let mut opt = Adam::new(0.1, 2);
        let mut x = vec![0.0f32; 3];
        opt.step(&mut x, &[0.0; 3]);
    }
}
