//! The convolutional mixture density network of Figure 2.
//!
//! Architecture: a stack of `(3×3 conv → ReLU → 2×2 max-pool)` blocks that
//! halve the spatial resolution, followed by the MDN head — a dense layer
//! to `h` hidden units ("hypotheses" in the paper's wording), ReLU, and a
//! dense layer to `3g` raw outputs interpreted as `g` mixture weights
//! (softmax), `g` means, and `g` standard deviations (softplus + floor).
//!
//! Training minimises the mixture negative log-likelihood with Bishop's
//! classic MDN gradients, computed in closed form in [`Cmdn::train_step`].

use crate::layers::{init_rng, Conv3x3, Dense, MaxPool2x2, Relu};
use crate::mixture::{Component, GaussianMixture};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a CMDN instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmdnConfig {
    /// Input spatial dimensions (height, width). Must be divisible by
    /// `2^conv_channels.len()`.
    pub input: (usize, usize),
    /// Output channels of each conv block (the paper's i-th layer has
    /// `2^(i+3)` filters; at our scale the default is `[8, 16, 32]`).
    pub conv_channels: Vec<usize>,
    /// Hidden width `h` of the MDN layer (the paper's "hypotheses").
    pub hidden: usize,
    /// Number of Gaussians `g` in the mixture.
    pub num_gaussians: usize,
    /// Floor on component standard deviations (keeps the NLL bounded).
    pub sigma_min: f64,
    /// Target value range `(lo, hi)` used to spread the initial component
    /// means — standard MDN initialisation that prevents component collapse.
    pub target_range: (f64, f64),
    /// Weight initialisation seed.
    pub seed: u64,
}

impl Default for CmdnConfig {
    fn default() -> Self {
        CmdnConfig {
            input: (32, 32),
            conv_channels: vec![8, 16, 32],
            hidden: 32,
            num_gaussians: 5,
            sigma_min: 0.25,
            target_range: (0.0, 10.0),
            seed: 0,
        }
    }
}

/// One conv → ReLU → pool block.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConvBlock {
    conv: Conv3x3,
    relu: Relu,
    pool: MaxPool2x2,
}

impl ConvBlock {
    /// conv → ReLU (in place) → pool, `x → out` with `mid` holding the
    /// pre-pool activations. No allocation once the buffers have grown.
    fn forward_batch_into(
        &mut self,
        x: &[f32],
        batch: usize,
        train: bool,
        mid: &mut Vec<f32>,
        out: &mut Vec<f32>,
    ) {
        self.conv.forward_batch_into(x, batch, train, mid);
        self.relu.forward_inplace(mid, train);
        self.pool.forward_batch_into(mid, batch, train, out);
    }

    fn backward_batch(&mut self, g: &[f32], batch: usize) -> Vec<f32> {
        let g = self.pool.backward(g);
        let g = self.relu.backward(&g);
        self.conv.backward_batch(&g, batch)
    }
}

/// Reusable forward-pass buffers (not serialized; rebuilt empty on
/// deserialize and regrown on first use). `x`/`y` ping-pong the
/// between-layer activations, `mid` holds each block's pre-pool
/// activations, and `raw` receives the head output — so a forward pass
/// allocates nothing after warmup.
#[derive(Debug, Clone, Default)]
struct ForwardScratch {
    x: Vec<f32>,
    mid: Vec<f32>,
    y: Vec<f32>,
    raw: Vec<f32>,
}

/// Raw MDN head output converted to mixture parameters, kept together with
/// the intermediate values the backward pass needs.
#[derive(Debug, Clone)]
pub struct MdnParams {
    /// Softmax mixture weights π (length g).
    pub pi: Vec<f64>,
    /// Component means μ (length g).
    pub mu: Vec<f64>,
    /// Component standard deviations σ (length g, ≥ sigma_min).
    pub sigma: Vec<f64>,
    /// Raw pre-softplus σ inputs (needed for the σ gradient).
    raw_s: Vec<f64>,
}

/// The CMDN model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cmdn {
    cfg: CmdnConfig,
    blocks: Vec<ConvBlock>,
    fc1: Dense,
    fc1_relu: Relu,
    fc2: Dense,
    #[serde(skip)]
    scratch: ForwardScratch,
}

impl Cmdn {
    /// Builds a CMDN with randomly initialised weights.
    pub fn new(cfg: CmdnConfig) -> Self {
        let (h, w) = cfg.input;
        let depth = cfg.conv_channels.len();
        assert!(depth >= 1, "need at least one conv block");
        assert!(
            h % (1 << depth) == 0 && w % (1 << depth) == 0,
            "input {h}×{w} not divisible by 2^{depth}"
        );
        assert!(cfg.num_gaussians >= 1 && cfg.hidden >= 1);
        assert!(cfg.sigma_min > 0.0);
        assert!(cfg.target_range.1 >= cfg.target_range.0);

        let mut rng = init_rng(cfg.seed);
        let mut blocks = Vec::with_capacity(depth);
        let mut in_ch = 1usize;
        let (mut ch_h, mut ch_w) = (h, w);
        for &out_ch in &cfg.conv_channels {
            blocks.push(ConvBlock {
                conv: Conv3x3::new(in_ch, out_ch, ch_h, ch_w, &mut rng),
                relu: Relu::new(),
                pool: MaxPool2x2::new(out_ch, ch_h, ch_w),
            });
            in_ch = out_ch;
            ch_h /= 2;
            ch_w /= 2;
        }
        let feat = in_ch * ch_h * ch_w;
        let g = cfg.num_gaussians;
        let mut fc1 = Dense::new(feat, cfg.hidden, &mut rng);
        let mut fc2 = Dense::new(cfg.hidden, 3 * g, &mut rng);
        // Shrink head init so the initial mixture is dominated by the bias
        // terms below.
        for w in fc2.weight.w.iter_mut() {
            *w *= 0.1;
        }
        let _ = &mut fc1;
        // Spread initial means over the target range; start σ mid-sized.
        let (lo, hi) = cfg.target_range;
        let span = (hi - lo).max(1e-6);
        for j in 0..g {
            let q = (j as f64 + 0.5) / g as f64;
            fc2.bias.w[g + j] = (lo + q * span) as f32; // μ biases
            fc2.bias.w[2 * g + j] = softplus_inv(span / (2.0 * g as f64)) as f32;
        }
        Cmdn {
            cfg,
            blocks,
            fc1,
            fc1_relu: Relu::new(),
            fc2,
            scratch: ForwardScratch::default(),
        }
    }

    /// The hyper-parameters this model was built with.
    pub fn config(&self) -> &CmdnConfig {
        &self.cfg
    }

    /// Expected input length (`1 × h × w` grayscale pixels).
    pub fn input_len(&self) -> usize {
        self.cfg.input.0 * self.cfg.input.1
    }

    /// Shape of the conv stack's output: `(channels, positions per channel)`.
    fn feature_dims(&self) -> (usize, usize) {
        let depth = self.cfg.conv_channels.len();
        let ch = *self.cfg.conv_channels.last().expect("non-empty conv stack");
        let pos = (self.cfg.input.0 >> depth) * (self.cfg.input.1 >> depth);
        (ch, pos)
    }

    /// Repacks conv activations (`[c][s][pos]` batched layout) into
    /// sample-major feature vectors (`[s][feat]`) for the dense head,
    /// into a reusable buffer.
    fn flatten_features_into(x: &[f32], batch: usize, ch: usize, pos: usize, out: &mut Vec<f32>) {
        let feat = ch * pos;
        // Resize without zero-filling the retained prefix: every element
        // is written below.
        if out.len() != batch * feat {
            out.resize(batch * feat, 0.0);
        }
        for c in 0..ch {
            for s in 0..batch {
                out[s * feat + c * pos..s * feat + (c + 1) * pos]
                    .copy_from_slice(&x[(c * batch + s) * pos..(c * batch + s + 1) * pos]);
            }
        }
    }

    /// Inverse of [`Cmdn::flatten_features_into`], for the backward pass.
    fn unflatten_features(&self, g: &[f32], batch: usize) -> Vec<f32> {
        let (ch, pos) = self.feature_dims();
        let feat = ch * pos;
        let mut out = vec![0.0f32; batch * feat];
        for c in 0..ch {
            for s in 0..batch {
                out[(c * batch + s) * pos..(c * batch + s + 1) * pos]
                    .copy_from_slice(&g[s * feat + c * pos..s * feat + (c + 1) * pos]);
            }
        }
        out
    }

    /// Batched body forward: `batch` sample-major grayscale inputs in one
    /// buffer, one im2col + GEMM per conv layer for the whole minibatch.
    /// The raw head outputs (`batch × 3g`, sample-major) land in
    /// `self.scratch.raw`.
    ///
    /// Activations ping-pong between the two scratch buffers — layer `i+1`
    /// reads layer `i`'s output where it was written (the grayscale inputs
    /// double as the `in_ch = 1` batched conv layout, so the first conv
    /// reads the caller's buffer directly) — and every buffer is reused
    /// across calls: after warmup a forward pass performs **zero** heap
    /// allocations.
    fn forward_raw_batch(&mut self, inputs: &[f32], batch: usize, train: bool) {
        assert!(batch >= 1, "empty batch");
        assert_eq!(
            inputs.len(),
            batch * self.input_len(),
            "CMDN input size mismatch"
        );
        for i in 0..self.blocks.len() {
            if i == 0 {
                self.blocks[0].forward_batch_into(
                    inputs,
                    batch,
                    train,
                    &mut self.scratch.mid,
                    &mut self.scratch.y,
                );
            } else {
                self.blocks[i].forward_batch_into(
                    &self.scratch.x,
                    batch,
                    train,
                    &mut self.scratch.mid,
                    &mut self.scratch.y,
                );
            }
            std::mem::swap(&mut self.scratch.x, &mut self.scratch.y);
        }
        let (ch, pos) = self.feature_dims();
        Self::flatten_features_into(&self.scratch.x, batch, ch, pos, &mut self.scratch.mid);
        self.fc1
            .forward_batch_into(&self.scratch.mid, batch, train, &mut self.scratch.y);
        self.fc1_relu.forward_inplace(&mut self.scratch.y, train);
        self.fc2
            .forward_batch_into(&self.scratch.y, batch, train, &mut self.scratch.raw);
    }

    /// Raw MDN head outputs (`batch × 3g`, sample-major) for a packed
    /// sample-major input buffer, evaluated without touching gradients.
    ///
    /// This is the advanced zero-allocation entry point: the returned
    /// slice borrows the model's internal scratch (valid until the next
    /// forward pass), and after a warmup call the pass performs no heap
    /// allocation at all — the property `tests/no_alloc.rs` pins.
    pub fn predict_raw_batch(&mut self, inputs: &[f32], batch: usize) -> &[f32] {
        self.forward_raw_batch(inputs, batch, false);
        &self.scratch.raw
    }

    /// Converts raw head outputs into mixture parameters.
    fn to_params(&self, raw: &[f32]) -> MdnParams {
        let g = self.cfg.num_gaussians;
        let alpha: Vec<f64> = raw[0..g].iter().map(|&a| a as f64).collect();
        let mu: Vec<f64> = raw[g..2 * g].iter().map(|&m| m as f64).collect();
        let raw_s: Vec<f64> = raw[2 * g..3 * g].iter().map(|&s| s as f64).collect();
        // stable softmax
        let amax = alpha.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = alpha.iter().map(|a| (a - amax).exp()).collect();
        let z: f64 = exps.iter().sum();
        let pi: Vec<f64> = exps.iter().map(|e| e / z).collect();
        let sigma: Vec<f64> = raw_s
            .iter()
            .map(|&s| self.cfg.sigma_min + softplus(s))
            .collect();
        MdnParams {
            pi,
            mu,
            sigma,
            raw_s,
        }
    }

    /// Inference: the predicted score distribution for one input.
    pub fn predict(&mut self, input: &[f32]) -> GaussianMixture {
        self.forward_raw_batch(input, 1, false);
        let raw = &self.scratch.raw;
        self.params_to_mixture(&self.to_params(raw))
    }

    /// Batched inference: `inputs` packs `inputs.len() / input_len()`
    /// sample-major frames; the whole minibatch runs through one GEMM per
    /// layer. Returns one mixture per sample, in input order.
    pub fn predict_many(&mut self, inputs: &[f32]) -> Vec<GaussianMixture> {
        let ilen = self.input_len();
        assert!(
            ilen > 0 && inputs.len().is_multiple_of(ilen),
            "predict_many inputs must pack whole samples"
        );
        let batch = inputs.len() / ilen;
        if batch == 0 {
            return Vec::new();
        }
        self.forward_raw_batch(inputs, batch, false);
        let raw = &self.scratch.raw;
        let g3 = 3 * self.cfg.num_gaussians;
        (0..batch)
            .map(|s| self.params_to_mixture(&self.to_params(&raw[s * g3..(s + 1) * g3])))
            .collect()
    }

    fn params_to_mixture(&self, p: &MdnParams) -> GaussianMixture {
        GaussianMixture::new(
            (0..self.cfg.num_gaussians)
                .map(|j| Component {
                    weight: p.pi[j],
                    mean: p.mu[j],
                    std: p.sigma[j],
                })
                .collect(),
        )
    }

    /// Negative log-likelihood of target `y` under the mixture `p`.
    pub fn nll(p: &MdnParams, y: f64) -> f64 {
        -log_mixture_density(p, y)
    }

    /// One training sample: forward, NLL, backward — the `batch = 1` case
    /// of [`Cmdn::train_step_batch`]. Returns the sample NLL.
    pub fn train_step(&mut self, input: &[f32], y: f64) -> f64 {
        self.train_step_batch(input, &[y])
    }

    /// One training **minibatch**: `inputs` packs `ys.len()` sample-major
    /// frames; the whole batch runs through one GEMM per layer in both
    /// directions. Gradients accumulate (summed over the batch) into the
    /// layer parameter buffers — call [`Cmdn::zero_grads`] between batches.
    /// Returns the summed NLL of the batch.
    pub fn train_step_batch(&mut self, inputs: &[f32], ys: &[f64]) -> f64 {
        let batch = ys.len();
        self.forward_raw_batch(inputs, batch, true);
        let g = self.cfg.num_gaussians;

        let mut grad_raw = vec![0.0f32; batch * 3 * g];
        let mut total_nll = 0.0f64;
        for (s, &y) in ys.iter().enumerate() {
            let raw = &self.scratch.raw;
            let p = self.to_params(&raw[s * 3 * g..(s + 1) * 3 * g]);
            // Responsibilities γ_j = π_j φ_j / Σ_k π_k φ_k, in log space.
            let log_terms: Vec<f64> = (0..g)
                .map(|j| p.pi[j].max(1e-300).ln() + log_normal_pdf(y, p.mu[j], p.sigma[j]))
                .collect();
            let log_density = log_sum_exp(&log_terms);
            let gamma: Vec<f64> = log_terms
                .iter()
                .map(|&lt| (lt - log_density).exp())
                .collect();

            // Bishop's MDN gradients w.r.t. the raw head outputs.
            let gr = &mut grad_raw[s * 3 * g..(s + 1) * 3 * g];
            for j in 0..g {
                // ∂NLL/∂α_j (softmax logits)
                gr[j] = (p.pi[j] - gamma[j]) as f32;
                // ∂NLL/∂μ_j
                let var = p.sigma[j] * p.sigma[j];
                gr[g + j] = (gamma[j] * (p.mu[j] - y) / var) as f32;
                // ∂NLL/∂s_j where σ = σ_min + softplus(s):
                // ∂NLL/∂σ_j = γ_j (1/σ − (y−μ)²/σ³); ∂σ/∂s = sigmoid(s)
                let z2 = (y - p.mu[j]) * (y - p.mu[j]) / var;
                let dsigma = gamma[j] * (1.0 - z2) / p.sigma[j];
                gr[2 * g + j] = (dsigma * sigmoid(p.raw_s[j])) as f32;
            }
            total_nll += -log_density;
        }

        // Backprop through the body, whole minibatch per call.
        let gr = self.fc2.backward_batch(&grad_raw, batch);
        let gr = self.fc1_relu.backward(&gr);
        let gr = self.fc1.backward_batch(&gr, batch);
        let mut gx = self.unflatten_features(&gr, batch);
        for b in self.blocks.iter_mut().rev() {
            gx = b.backward_batch(&gx, batch);
        }
        total_nll
    }

    /// Evaluation NLL of one sample without touching gradients.
    pub fn eval_nll(&mut self, input: &[f32], y: f64) -> f64 {
        self.forward_raw_batch(input, 1, false);
        let raw = &self.scratch.raw;
        let p = self.to_params(raw);
        Self::nll(&p, y)
    }

    /// Per-sample evaluation NLLs of a minibatch (`inputs` packs
    /// `ys.len()` sample-major frames), computed batched without touching
    /// gradients.
    pub fn eval_nll_batch(&mut self, inputs: &[f32], ys: &[f64]) -> Vec<f64> {
        let batch = ys.len();
        if batch == 0 {
            return Vec::new();
        }
        self.forward_raw_batch(inputs, batch, false);
        let raw = &self.scratch.raw;
        let g3 = 3 * self.cfg.num_gaussians;
        ys.iter()
            .enumerate()
            .map(|(s, &y)| Self::nll(&self.to_params(&raw[s * g3..(s + 1) * g3]), y))
            .collect()
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for b in &mut self.blocks {
            b.conv.weight.zero_grad();
            b.conv.bias.zero_grad();
        }
        self.fc1.weight.zero_grad();
        self.fc1.bias.zero_grad();
        self.fc2.weight.zero_grad();
        self.fc2.bias.zero_grad();
    }

    /// Total number of learnable parameters.
    pub fn num_params(&self) -> usize {
        self.param_slices().iter().map(|s| s.len()).sum()
    }

    fn param_slices(&self) -> Vec<&[f32]> {
        let mut v = Vec::new();
        for b in &self.blocks {
            v.push(&b.conv.weight.w[..]);
            v.push(&b.conv.bias.w[..]);
        }
        v.push(&self.fc1.weight.w[..]);
        v.push(&self.fc1.bias.w[..]);
        v.push(&self.fc2.weight.w[..]);
        v.push(&self.fc2.bias.w[..]);
        v
    }

    /// Flattens all parameters into one vector (Adam operates on this).
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for s in self.param_slices() {
            out.extend_from_slice(s);
        }
        out
    }

    /// Flattens all gradients, in the same order as [`Cmdn::params_flat`].
    pub fn grads_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for b in &self.blocks {
            out.extend_from_slice(&b.conv.weight.g);
            out.extend_from_slice(&b.conv.bias.g);
        }
        out.extend_from_slice(&self.fc1.weight.g);
        out.extend_from_slice(&self.fc1.bias.g);
        out.extend_from_slice(&self.fc2.weight.g);
        out.extend_from_slice(&self.fc2.bias.g);
        out
    }

    /// Loads parameters from a flat vector (inverse of [`Cmdn::params_flat`]).
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_params(),
            "flat parameter size mismatch"
        );
        let mut off = 0usize;
        let mut take = |dst: &mut Vec<f32>| {
            let len = dst.len();
            dst.copy_from_slice(&flat[off..off + len]);
            off += len;
        };
        for b in &mut self.blocks {
            take(&mut b.conv.weight.w);
            take(&mut b.conv.bias.w);
        }
        take(&mut self.fc1.weight.w);
        take(&mut self.fc1.bias.w);
        take(&mut self.fc2.weight.w);
        take(&mut self.fc2.bias.w);
        debug_assert_eq!(off, flat.len());
    }
}

fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else {
        (1.0 + x.exp()).ln()
    }
}

/// Inverse of softplus, for bias initialisation: softplus(softplus_inv(y)) = y.
fn softplus_inv(y: f64) -> f64 {
    if y > 30.0 {
        y
    } else {
        (y.exp() - 1.0).max(1e-12).ln()
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn log_normal_pdf(y: f64, mu: f64, sigma: f64) -> f64 {
    let z = (y - mu) / sigma;
    -0.5 * z * z - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
}

fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Log-density of the mixture at `y` (used by tests and by NLL reporting).
pub fn log_mixture_density(p: &MdnParams, y: f64) -> f64 {
    let terms: Vec<f64> = (0..p.pi.len())
        .map(|j| p.pi[j].max(1e-300).ln() + log_normal_pdf(y, p.mu[j], p.sigma[j]))
        .collect();
    log_sum_exp(&terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> CmdnConfig {
        CmdnConfig {
            input: (8, 8),
            conv_channels: vec![4, 8],
            hidden: 12,
            num_gaussians: 3,
            sigma_min: 0.2,
            target_range: (0.0, 6.0),
            seed: 5,
        }
    }

    #[test]
    fn construction_and_shapes() {
        let m = Cmdn::new(tiny_cfg());
        assert_eq!(m.input_len(), 64);
        assert!(m.num_params() > 0);
        assert_eq!(m.params_flat().len(), m.num_params());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_input() {
        let _ = Cmdn::new(CmdnConfig {
            input: (10, 10),
            conv_channels: vec![4, 8],
            ..tiny_cfg()
        });
    }

    #[test]
    fn predict_is_valid_mixture() {
        let mut m = Cmdn::new(tiny_cfg());
        let input = vec![0.3f32; 64];
        let mix = m.predict(&input);
        assert_eq!(mix.num_components(), 3);
        let wsum: f64 = mix.components().iter().map(|c| c.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        assert!(mix.components().iter().all(|c| c.std >= 0.2));
    }

    #[test]
    fn initial_means_spread_over_target_range() {
        let mut m = Cmdn::new(tiny_cfg());
        let mix = m.predict(&vec![0.0f32; 64]);
        let means: Vec<f64> = mix.components().iter().map(|c| c.mean).collect();
        // With zero input, biases dominate: means ≈ 1, 3, 5 on (0, 6).
        assert!(
            means[0] < means[1] && means[1] < means[2],
            "means {means:?}"
        );
        assert!(means[0] > -1.0 && means[2] < 7.0, "means {means:?}");
    }

    #[test]
    fn params_flat_roundtrip() {
        let m = Cmdn::new(tiny_cfg());
        let flat = m.params_flat();
        let mut m2 = Cmdn::new(CmdnConfig {
            seed: 99,
            ..tiny_cfg()
        });
        assert_ne!(m2.params_flat(), flat);
        m2.set_params_flat(&flat);
        assert_eq!(m2.params_flat(), flat);
    }

    #[test]
    fn train_step_reduces_nll_with_sgd() {
        let mut m = Cmdn::new(tiny_cfg());
        let input: Vec<f32> = (0..64).map(|i| ((i * 37) % 64) as f32 / 64.0).collect();
        let y = 4.0;
        let before = m.eval_nll(&input, y);
        // 50 plain-SGD steps on a single example must overfit it.
        for _ in 0..50 {
            m.zero_grads();
            let _ = m.train_step(&input, y);
            let mut p = m.params_flat();
            let g = m.grads_flat();
            for (pi, gi) in p.iter_mut().zip(g.iter()) {
                *pi -= 0.01 * gi;
            }
            m.set_params_flat(&p);
        }
        let after = m.eval_nll(&input, y);
        assert!(after < before, "NLL should drop: {before} → {after}");
    }

    #[test]
    fn mdn_gradient_check_against_finite_differences() {
        // Check dNLL/dparams on the head by perturbing flat params.
        let mut m = Cmdn::new(CmdnConfig {
            input: (8, 8),
            conv_channels: vec![2],
            hidden: 6,
            num_gaussians: 2,
            sigma_min: 0.3,
            target_range: (0.0, 4.0),
            seed: 11,
        });
        let input: Vec<f32> = (0..64).map(|i| (i as f32 * 0.13).sin().abs()).collect();
        let y = 2.5;
        m.zero_grads();
        let _ = m.train_step(&input, y);
        let analytic = m.grads_flat();
        let mut flat = m.params_flat();
        let eps = 1e-3f32;
        // check a scattering of parameters, including the head (tail of vec)
        let n = flat.len();
        for &i in &[0usize, 7, n / 2, n - 1, n - 3, n - 8] {
            let orig = flat[i];
            flat[i] = orig + eps;
            m.set_params_flat(&flat);
            let lp = m.eval_nll(&input, y);
            flat[i] = orig - eps;
            m.set_params_flat(&flat);
            let lm = m.eval_nll(&input, y);
            flat[i] = orig;
            m.set_params_flat(&flat);
            let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (numeric - analytic[i]).abs() < 0.05 * (1.0 + numeric.abs()),
                "grad mismatch at {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn nll_matches_single_gaussian_formula() {
        let p = MdnParams {
            pi: vec![1.0],
            mu: vec![2.0],
            sigma: vec![1.5],
            raw_s: vec![0.0],
        };
        let y = 3.0;
        let z: f64 = (y - 2.0) / 1.5;
        let expect = 0.5 * z * z + 1.5f64.ln() + 0.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((Cmdn::nll(&p, y) - expect).abs() < 1e-12);
    }

    #[test]
    fn softplus_inverse_roundtrip() {
        for y in [0.1, 1.0, 5.0, 40.0] {
            assert!(
                (softplus(softplus_inv(y)) - y).abs() < 1e-9,
                "roundtrip {y}"
            );
        }
    }

    #[test]
    fn log_sum_exp_stability() {
        assert!((log_sum_exp(&[-1000.0, -1000.0]) - (-1000.0 + 2.0f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn cmdn_weights_survive_json_round_trip() {
        // Train-free check: a freshly initialised model must predict the
        // same mixture after serialize → deserialize (weights persist,
        // training caches are rebuilt empty).
        let cfg = CmdnConfig {
            input: (16, 16),
            conv_channels: vec![4, 8],
            hidden: 8,
            num_gaussians: 3,
            sigma_min: 0.05,
            target_range: (0.0, 10.0),
            seed: 99,
        };
        let mut model = Cmdn::new(cfg);
        let json = serde_json::to_string(&model).expect("serialize");
        let mut back: Cmdn = serde_json::from_str(&json).expect("deserialize");
        let input: Vec<f32> = (0..16 * 16).map(|i| (i % 7) as f32 / 7.0).collect();
        let a = model.predict(&input);
        let b = back.predict(&input);
        assert_eq!(a.components().len(), b.components().len());
        for (ca, cb) in a.components().iter().zip(b.components()) {
            assert!(
                (ca.mean - cb.mean).abs() < 1e-6,
                "{} vs {}",
                ca.mean,
                cb.mean
            );
            assert!((ca.std - cb.std).abs() < 1e-6);
            assert!((ca.weight - cb.weight).abs() < 1e-6);
        }
        // and the restored model can still be trained (gradients rebuilt)
        assert_eq!(back.config().seed, 99);
    }
}
