//! Neural-network layers with hand-derived backward passes.
//!
//! Layers operate on **batched** channel-major buffers (see
//! [`crate::kernels`] for the exact layout): every layer exposes
//! `forward_batch` / `backward_batch` that push a whole minibatch through
//! one im2col + GEMM (convolution) or one GEMM (dense) call, plus
//! single-sample `forward` / `backward` conveniences that are the
//! `batch = 1` special case. Shapes are fixed at construction and asserted
//! at the boundaries.
//!
//! The original scalar triple-loop implementations survive in the
//! `#[cfg(test)]` [`reference`] module as oracles for the GEMM-path
//! equivalence tests.

use crate::kernels;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A learnable parameter tensor with its gradient accumulator.
///
/// Serialization persists only the weights; the gradient accumulator is
/// rebuilt (zeroed, correctly sized) on deserialize via the `From`
/// conversions below.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "Vec<f32>", into = "Vec<f32>")]
pub struct Param {
    /// The weights.
    pub w: Vec<f32>,
    /// The gradient accumulator, same shape as [`Param::w`].
    pub g: Vec<f32>,
}

impl From<Vec<f32>> for Param {
    fn from(w: Vec<f32>) -> Self {
        Param::new(w)
    }
}

impl From<Param> for Vec<f32> {
    fn from(p: Param) -> Self {
        p.w
    }
}

impl Param {
    fn new(w: Vec<f32>) -> Self {
        let g = vec![0.0; w.len()];
        Param { w, g }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True when the tensor holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        self.g.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// He-normal initialisation (good default before ReLU).
fn he_init(rng: &mut StdRng, n: usize, fan_in: usize) -> Vec<f32> {
    let std = (2.0 / fan_in as f32).sqrt();
    (0..n).map(|_| gaussian32(rng) * std).collect()
}

fn gaussian32(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

/// Reusable im2col / packing scratch of a convolution layer (excluded from
/// serialization and rebuilt empty on deserialize; buffers grow on first
/// use and are reused across calls).
#[derive(Debug, Clone, Default)]
struct ConvScratch {
    /// Packed 3×3 patches, `(in_ch·9) × (batch·h·w)`.
    cols: Vec<f32>,
    /// Gradient w.r.t. the packed patches (backward data pass).
    gcols: Vec<f32>,
    /// Transposed weight matrix `Wᵀ`, `(in_ch·9) × out_ch`.
    wt: Vec<f32>,
}

/// 3×3 convolution, stride 1, zero padding 1 (spatial dims preserved).
///
/// The forward/backward passes lower onto im2col + blocked GEMM (see
/// [`crate::kernels`]); one call processes a whole minibatch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv3x3 {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Spatial height (preserved by the convolution).
    pub h: usize,
    /// Spatial width (preserved by the convolution).
    pub w: usize,
    /// Kernel weights, shape `[out_ch][in_ch][3][3]`.
    pub weight: Param,
    /// Per-output-channel bias, shape `[out_ch]`.
    pub bias: Param,
    #[serde(skip)]
    cached_input: Vec<f32>,
    #[serde(skip)]
    cached_batch: usize,
    /// True while `scratch.cols` still holds the packed patches of the
    /// last train-mode forward (lets backward skip the re-pack).
    #[serde(skip)]
    cols_from_train: bool,
    #[serde(skip)]
    scratch: ConvScratch,
}

impl Conv3x3 {
    /// Builds a conv layer with He-normal weights and zero bias.
    pub fn new(in_ch: usize, out_ch: usize, h: usize, w: usize, rng: &mut StdRng) -> Self {
        let fan_in = in_ch * 9;
        Conv3x3 {
            in_ch,
            out_ch,
            h,
            w,
            weight: Param::new(he_init(rng, out_ch * in_ch * 9, fan_in)),
            bias: Param::new(vec![0.0; out_ch]),
            cached_input: Vec::new(),
            cached_batch: 0,
            cols_from_train: false,
            scratch: ConvScratch::default(),
        }
    }

    /// Input length of one sample (`in_ch · h · w`).
    pub fn input_len(&self) -> usize {
        self.in_ch * self.h * self.w
    }

    /// Output length of one sample (`out_ch · h · w`).
    pub fn output_len(&self) -> usize {
        self.out_ch * self.h * self.w
    }

    /// Single-sample forward pass — the `batch = 1` case of
    /// [`Conv3x3::forward_batch`].
    ///
    /// ```
    /// use everest_nn::layers::{init_rng, Conv3x3};
    ///
    /// let mut rng = init_rng(0);
    /// let mut conv = Conv3x3::new(1, 4, 8, 8, &mut rng);
    /// let input = vec![0.5f32; conv.input_len()];
    /// let out = conv.forward(&input, false);
    /// assert_eq!(out.len(), conv.output_len()); // 4 × 8 × 8
    /// ```
    pub fn forward(&mut self, input: &[f32], train: bool) -> Vec<f32> {
        self.forward_batch(input, 1, train)
    }

    /// Batched forward pass over `batch` samples in the channel-major
    /// batched layout of [`crate::kernels`]: im2col packs all patches of
    /// the whole minibatch, then one blocked GEMM against the weight
    /// matrix computes every output channel of every sample.
    ///
    /// With `train = true` the input is cached for
    /// [`Conv3x3::backward_batch`].
    ///
    /// ```
    /// use everest_nn::layers::{init_rng, Conv3x3};
    ///
    /// let mut rng = init_rng(0);
    /// let mut conv = Conv3x3::new(1, 2, 4, 4, &mut rng);
    /// let batch = 3;
    /// let inputs = vec![0.25f32; batch * conv.input_len()];
    /// let out = conv.forward_batch(&inputs, batch, false);
    /// assert_eq!(out.len(), batch * conv.output_len());
    /// ```
    pub fn forward_batch(&mut self, input: &[f32], batch: usize, train: bool) -> Vec<f32> {
        let mut out = Vec::new();
        self.forward_batch_into(input, batch, train, &mut out);
        out
    }

    /// [`Conv3x3::forward_batch`] writing into a caller-provided buffer
    /// (resized as needed) — the zero-copy form the CMDN's ping-pong
    /// forward pass uses. After warmup every buffer (including the
    /// train-mode input cache) is reused, so the call allocates nothing.
    pub fn forward_batch_into(
        &mut self,
        input: &[f32],
        batch: usize,
        train: bool,
        out: &mut Vec<f32>,
    ) {
        assert!(batch >= 1, "empty batch");
        assert_eq!(
            input.len(),
            batch * self.input_len(),
            "conv input size mismatch"
        );
        if train {
            self.cached_input.clear();
            self.cached_input.extend_from_slice(input);
            self.cached_batch = batch;
        }
        let n = batch * self.h * self.w;
        let k = self.in_ch * 9;
        kernels::im2col_3x3(
            input,
            self.in_ch,
            batch,
            self.h,
            self.w,
            &mut self.scratch.cols,
        );
        self.cols_from_train = train;
        // Resize without zero-filling the retained prefix: the bias
        // pre-fill below writes every element, and the GEMM accumulates
        // on top of it (folding what used to be a separate bias pass).
        if out.len() != self.out_ch * n {
            out.resize(self.out_ch * n, 0.0);
        }
        for (row, &b) in self.bias.w.iter().enumerate() {
            out[row * n..(row + 1) * n].fill(b);
        }
        kernels::gemm(self.out_ch, n, k, &self.weight.w, &self.scratch.cols, out);
    }

    /// Single-sample backward pass — the `batch = 1` case of
    /// [`Conv3x3::backward_batch`].
    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        self.backward_batch(grad_out, 1)
    }

    /// Batched backward pass: accumulates weight/bias gradients (`+=`) and
    /// returns the input gradient for the whole minibatch.
    ///
    /// The weight gradient is one `∇out · colsᵀ` GEMM against the packed
    /// patches of the cached input (reused from the train-mode forward
    /// when still valid); the data gradient is one `Wᵀ · ∇out` GEMM
    /// followed by a col2im scatter-add.
    pub fn backward_batch(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(
            grad_out.len(),
            batch * self.output_len(),
            "conv grad size mismatch"
        );
        assert!(
            batch == self.cached_batch && !self.cached_input.is_empty(),
            "backward before forward(train=true) with the same batch"
        );
        let n = batch * self.h * self.w;
        let k = self.in_ch * 9;
        // Bias gradient: per-channel row sums.
        kernels::add_row_sums(grad_out, self.out_ch, n, &mut self.bias.g);
        // Weight gradient: ∇W += ∇out · colsᵀ. The train-mode forward
        // usually left the packed patches in scratch; re-pack only when an
        // eval forward has clobbered them since.
        if !self.cols_from_train {
            kernels::im2col_3x3(
                &self.cached_input,
                self.in_ch,
                batch,
                self.h,
                self.w,
                &mut self.scratch.cols,
            );
            self.cols_from_train = true;
        }
        kernels::gemm_nt(
            self.out_ch,
            k,
            n,
            grad_out,
            &self.scratch.cols,
            &mut self.weight.g,
        );
        // Data gradient: ∇cols = Wᵀ · ∇out, then scatter back to the input.
        kernels::transpose(&self.weight.w, self.out_ch, k, &mut self.scratch.wt);
        self.scratch.gcols.clear();
        self.scratch.gcols.resize(k * n, 0.0);
        kernels::gemm(
            k,
            n,
            self.out_ch,
            &self.scratch.wt,
            grad_out,
            &mut self.scratch.gcols,
        );
        let mut grad_in = vec![0.0f32; batch * self.input_len()];
        kernels::col2im_add_3x3(
            &self.scratch.gcols,
            self.in_ch,
            batch,
            self.h,
            self.w,
            &mut grad_in,
        );
        grad_in
    }
}

/// 2×2 max-pooling with stride 2. Requires even spatial dimensions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2x2 {
    /// Channels (unchanged by pooling).
    pub ch: usize,
    /// Input spatial height (output is `h / 2`).
    pub h: usize,
    /// Input spatial width (output is `w / 2`).
    pub w: usize,
    #[serde(skip)]
    argmax: Vec<u32>,
}

impl MaxPool2x2 {
    /// Builds a pooling layer; panics unless both spatial dims are even.
    pub fn new(ch: usize, h: usize, w: usize) -> Self {
        assert!(
            h.is_multiple_of(2) && w.is_multiple_of(2),
            "pooling needs even dims, got {h}×{w}"
        );
        MaxPool2x2 {
            ch,
            h,
            w,
            argmax: Vec::new(),
        }
    }

    /// Input length of one sample (`ch · h · w`).
    pub fn input_len(&self) -> usize {
        self.ch * self.h * self.w
    }

    /// Output length of one sample (`ch · h/2 · w/2`).
    pub fn output_len(&self) -> usize {
        self.ch * (self.h / 2) * (self.w / 2)
    }

    /// Single-sample forward — the `batch = 1` case of
    /// [`MaxPool2x2::forward_batch`].
    pub fn forward(&mut self, input: &[f32], train: bool) -> Vec<f32> {
        self.forward_batch(input, 1, train)
    }

    /// Batched forward pass in the channel-major batched layout. With
    /// `train = true` records the argmax positions for
    /// [`MaxPool2x2::backward`].
    pub fn forward_batch(&mut self, input: &[f32], batch: usize, train: bool) -> Vec<f32> {
        let mut out = Vec::new();
        self.forward_batch_into(input, batch, train, &mut out);
        out
    }

    /// [`MaxPool2x2::forward_batch`] writing into a caller-provided buffer
    /// (resized as needed); the train-mode argmax buffer is reused across
    /// calls, so steady-state calls allocate nothing.
    pub fn forward_batch_into(
        &mut self,
        input: &[f32],
        batch: usize,
        train: bool,
        out: &mut Vec<f32>,
    ) {
        assert_eq!(input.len(), batch * self.input_len());
        let (h, w) = (self.h, self.w);
        let (oh, ow) = (h / 2, w / 2);
        let out_len = batch * self.output_len();
        // Resize without zero-filling the retained prefix: every element
        // is written below.
        if out.len() != out_len {
            out.resize(out_len, 0.0);
        }
        // Eval forwards leave any train-mode argmax untouched (backward
        // pairs with the last *train* forward, as before).
        if train && self.argmax.len() != out_len {
            self.argmax.resize(out_len, 0);
        }
        for c in 0..self.ch {
            for s in 0..batch {
                let ibase = (c * batch + s) * h * w;
                let obase = (c * batch + s) * oh * ow;
                for y in 0..oh {
                    for x in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = ibase + (2 * y + dy) * w + (2 * x + dx);
                                if input[idx] > best {
                                    best = input[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out[obase + y * ow + x] = best;
                        if train {
                            self.argmax[obase + y * ow + x] = best_idx as u32;
                        }
                    }
                }
            }
        }
    }

    /// Routes each output gradient back to the input cell that won the
    /// max (works for whatever batch the previous `forward_batch(train =
    /// true)` processed).
    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert!(
            !self.argmax.is_empty(),
            "backward before forward(train=true)"
        );
        assert_eq!(grad_out.len(), self.argmax.len());
        let batch = self.argmax.len() / self.output_len();
        let mut grad_in = vec![0.0f32; batch * self.input_len()];
        for (i, &go) in grad_out.iter().enumerate() {
            grad_in[self.argmax[i] as usize] += go;
        }
        grad_in
    }
}

/// Elementwise ReLU (layout- and batch-agnostic).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Vec<bool>,
}

impl Relu {
    /// Builds a ReLU activation.
    pub fn new() -> Self {
        Relu { mask: Vec::new() }
    }

    /// `max(x, 0)` elementwise; with `train = true` records the active
    /// mask for [`Relu::backward`]. Works on buffers of any length, so
    /// batched activations need no separate entry point.
    pub fn forward(&mut self, input: &[f32], train: bool) -> Vec<f32> {
        let mut out = input.to_vec();
        self.forward_inplace(&mut out, train);
        out
    }

    /// [`Relu::forward`] clamping the buffer in place — activations never
    /// leave the layer above's output buffer. The train-mode mask is
    /// reused across calls, so steady-state calls allocate nothing.
    pub fn forward_inplace(&mut self, x: &mut [f32], train: bool) {
        if train {
            self.mask.clear();
            self.mask.extend(x.iter().map(|&v| v > 0.0));
        }
        for v in x.iter_mut() {
            *v = v.max(0.0);
        }
    }

    /// Zeroes the gradient wherever the forward input was non-positive.
    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(
            grad_out.len(),
            self.mask.len(),
            "relu backward before forward"
        );
        grad_out
            .iter()
            .zip(self.mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect()
    }
}

/// Reusable packing scratch of a dense layer (not serialized).
#[derive(Debug, Clone, Default)]
struct DenseScratch {
    /// Transposed output gradient, `out_dim × batch` (weight gradient).
    got: Vec<f32>,
}

/// Fully-connected layer; batched passes are single GEMM calls.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Input features per sample.
    pub in_dim: usize,
    /// Output features per sample.
    pub out_dim: usize,
    /// Weights, shape `[out_dim][in_dim]`.
    pub weight: Param,
    /// Bias, shape `[out_dim]`.
    pub bias: Param,
    #[serde(skip)]
    cached_input: Vec<f32>,
    #[serde(skip)]
    cached_batch: usize,
    #[serde(skip)]
    scratch: DenseScratch,
}

impl Dense {
    /// Builds a dense layer with He-normal weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Dense {
            in_dim,
            out_dim,
            weight: Param::new(he_init(rng, out_dim * in_dim, in_dim)),
            bias: Param::new(vec![0.0; out_dim]),
            cached_input: Vec::new(),
            cached_batch: 0,
            scratch: DenseScratch::default(),
        }
    }

    /// Single-sample forward — the `batch = 1` case of
    /// [`Dense::forward_batch`].
    pub fn forward(&mut self, input: &[f32], train: bool) -> Vec<f32> {
        self.forward_batch(input, 1, train)
    }

    /// Batched forward pass: inputs are sample-major (`batch × in_dim`
    /// row-major), the output is `batch × out_dim`. One `X · Wᵀ` GEMM
    /// ([`kernels::gemm_nt`], which reads the `[out][in]` weights directly
    /// — no transpose pass) computes the whole minibatch.
    pub fn forward_batch(&mut self, input: &[f32], batch: usize, train: bool) -> Vec<f32> {
        let mut out = Vec::new();
        self.forward_batch_into(input, batch, train, &mut out);
        out
    }

    /// [`Dense::forward_batch`] writing into a caller-provided buffer
    /// (resized as needed) — zero-copy form for the CMDN's ping-pong
    /// forward pass; steady-state calls allocate nothing.
    pub fn forward_batch_into(
        &mut self,
        input: &[f32],
        batch: usize,
        train: bool,
        out: &mut Vec<f32>,
    ) {
        assert!(batch >= 1, "empty batch");
        assert_eq!(
            input.len(),
            batch * self.in_dim,
            "dense input size mismatch"
        );
        if train {
            self.cached_input.clear();
            self.cached_input.extend_from_slice(input);
            self.cached_batch = batch;
        }
        // Resize without zero-filling the retained prefix: the bias
        // pre-fill writes every element, the GEMM accumulates on top.
        if out.len() != batch * self.out_dim {
            out.resize(batch * self.out_dim, 0.0);
        }
        for s in 0..batch {
            out[s * self.out_dim..(s + 1) * self.out_dim].copy_from_slice(&self.bias.w);
        }
        kernels::gemm_nt(batch, self.out_dim, self.in_dim, input, &self.weight.w, out);
    }

    /// Single-sample backward — the `batch = 1` case of
    /// [`Dense::backward_batch`].
    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        self.backward_batch(grad_out, 1)
    }

    /// Batched backward pass: accumulates weight/bias gradients and
    /// returns the `batch × in_dim` input gradient, each as one GEMM.
    pub fn backward_batch(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_out.len(), batch * self.out_dim);
        assert!(
            batch == self.cached_batch && !self.cached_input.is_empty(),
            "backward before forward(train=true) with the same batch"
        );
        // Bias gradient: column sums in ascending-sample order.
        for s in 0..batch {
            let row = &grad_out[s * self.out_dim..(s + 1) * self.out_dim];
            for (g, &go) in self.bias.g.iter_mut().zip(row) {
                *g += go;
            }
        }
        // Weight gradient: ∇W += ∇outᵀ · X.
        kernels::transpose(grad_out, batch, self.out_dim, &mut self.scratch.got);
        kernels::gemm(
            self.out_dim,
            self.in_dim,
            batch,
            &self.scratch.got,
            &self.cached_input,
            &mut self.weight.g,
        );
        // Input gradient: ∇X = ∇out · W.
        let mut grad_in = vec![0.0f32; batch * self.in_dim];
        kernels::gemm(
            batch,
            self.in_dim,
            self.out_dim,
            grad_out,
            &self.weight.w,
            &mut grad_in,
        );
        grad_in
    }
}

/// Creates a deterministic RNG for layer initialisation.
pub fn init_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Scalar triple-loop reference implementations — the pre-GEMM layer
/// code, kept as the oracle the equivalence property tests compare
/// against.
#[cfg(test)]
pub(crate) mod reference {
    /// Scalar 3×3 pad-1 convolution forward (single sample).
    pub fn conv3x3_forward(
        in_ch: usize,
        out_ch: usize,
        h: usize,
        w: usize,
        weight: &[f32],
        bias: &[f32],
        input: &[f32],
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; out_ch * h * w];
        for o in 0..out_ch {
            let b = bias[o];
            for y in 0..h {
                for x in 0..w {
                    let mut acc = b;
                    for i in 0..in_ch {
                        let wbase = ((o * in_ch + i) * 3) * 3;
                        let ibase = i * h * w;
                        for ky in 0..3usize {
                            let iy = y as isize + ky as isize - 1;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let row = ibase + iy as usize * w;
                            for kx in 0..3usize {
                                let ix = x as isize + kx as isize - 1;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input[row + ix as usize] * weight[wbase + ky * 3 + kx];
                            }
                        }
                    }
                    out[(o * h + y) * w + x] = acc;
                }
            }
        }
        out
    }

    /// Scalar conv backward (single sample): returns
    /// `(grad_in, grad_weight, grad_bias)`.
    // Index loops mirror the hand-derived gradient equations one-to-one;
    // iterator rewrites would obscure the (o, y, x, i, ky, kx) indexing
    // this reference implementation exists to spell out.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    pub fn conv3x3_backward(
        in_ch: usize,
        out_ch: usize,
        h: usize,
        w: usize,
        weight: &[f32],
        input: &[f32],
        grad_out: &[f32],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut grad_in = vec![0.0f32; in_ch * h * w];
        let mut grad_w = vec![0.0f32; out_ch * in_ch * 9];
        let mut grad_b = vec![0.0f32; out_ch];
        for o in 0..out_ch {
            let obase = o * h * w;
            for y in 0..h {
                for x in 0..w {
                    let go = grad_out[obase + y * w + x];
                    if go == 0.0 {
                        continue;
                    }
                    grad_b[o] += go;
                    for i in 0..in_ch {
                        let wbase = ((o * in_ch + i) * 3) * 3;
                        let ibase = i * h * w;
                        for ky in 0..3usize {
                            let iy = y as isize + ky as isize - 1;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let row = ibase + iy as usize * w;
                            for kx in 0..3usize {
                                let ix = x as isize + kx as isize - 1;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let widx = wbase + ky * 3 + kx;
                                grad_w[widx] += go * input[row + ix as usize];
                                grad_in[row + ix as usize] += go * weight[widx];
                            }
                        }
                    }
                }
            }
        }
        (grad_in, grad_w, grad_b)
    }

    /// Scalar dense forward (single sample).
    pub fn dense_forward(
        in_dim: usize,
        out_dim: usize,
        weight: &[f32],
        bias: &[f32],
        input: &[f32],
    ) -> Vec<f32> {
        let mut out = bias.to_vec();
        for o in 0..out_dim {
            let row = &weight[o * in_dim..(o + 1) * in_dim];
            let mut acc = 0.0f32;
            for (wi, xi) in row.iter().zip(input.iter()) {
                acc += wi * xi;
            }
            out[o] += acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conv_identity_kernel() {
        let mut rng = init_rng(1);
        let mut conv = Conv3x3::new(1, 1, 4, 4, &mut rng);
        // set kernel to identity (center tap 1), bias 0
        conv.weight.w.iter_mut().for_each(|w| *w = 0.0);
        conv.weight.w[4] = 1.0; // center of the 3×3
        conv.bias.w[0] = 0.0;
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let out = conv.forward(&input, false);
        assert_eq!(out, input);
    }

    #[test]
    fn conv_bias_applied() {
        let mut rng = init_rng(1);
        let mut conv = Conv3x3::new(1, 2, 2, 2, &mut rng);
        conv.weight.w.iter_mut().for_each(|w| *w = 0.0);
        conv.bias.w = vec![0.5, -0.5];
        let out = conv.forward(&[0.0; 4], false);
        assert_eq!(&out[0..4], &[0.5; 4]);
        assert_eq!(&out[4..8], &[-0.5; 4]);
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = init_rng(7);
        let mut conv = Conv3x3::new(2, 3, 4, 4, &mut rng);
        let input: Vec<f32> = (0..conv.input_len())
            .map(|i| (i as f32 * 0.37).sin())
            .collect();
        let out = conv.forward(&input, true);
        // L = Σ out², dL/dout = 2·out
        let grad_out: Vec<f32> = out.iter().map(|&o| 2.0 * o).collect();
        let grad_in = conv.backward(&grad_out);

        let loss =
            |c: &mut Conv3x3, x: &[f32]| -> f32 { c.forward(x, false).iter().map(|o| o * o).sum() };
        let eps = 1e-2f32;
        let mut x = input.clone();
        for i in [0usize, 5, 11, 17, 23, 31] {
            let orig = x[i];
            x[i] = orig + eps;
            let lp = loss(&mut conv, &x);
            x[i] = orig - eps;
            let lm = loss(&mut conv, &x);
            x[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < 0.05 * (1.0 + numeric.abs()),
                "input grad mismatch at {i}: numeric {numeric} vs analytic {}",
                grad_in[i]
            );
        }
    }

    #[test]
    // The numeric gradient check perturbs weight[wi] in place; the index
    // is the subject of the test, not an iteration artefact.
    #[allow(clippy::needless_range_loop)]
    fn conv_weight_gradient_check() {
        let mut rng = init_rng(9);
        let mut conv = Conv3x3::new(1, 1, 4, 4, &mut rng);
        let input: Vec<f32> = (0..16).map(|i| (i as f32 * 0.21).cos()).collect();
        let out = conv.forward(&input, true);
        let grad_out: Vec<f32> = out.iter().map(|&o| 2.0 * o).collect();
        conv.weight.zero_grad();
        conv.bias.zero_grad();
        let _ = conv.backward(&grad_out);
        let analytic = conv.weight.g.clone();

        let eps = 1e-2f32;
        for wi in 0..9 {
            let orig = conv.weight.w[wi];
            conv.weight.w[wi] = orig + eps;
            let lp: f32 = conv.forward(&input, false).iter().map(|o| o * o).sum();
            conv.weight.w[wi] = orig - eps;
            let lm: f32 = conv.forward(&input, false).iter().map(|o| o * o).sum();
            conv.weight.w[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic[wi]).abs() < 0.05 * (1.0 + numeric.abs()),
                "weight grad mismatch at {wi}: {numeric} vs {}",
                analytic[wi]
            );
        }
    }

    #[test]
    fn pool_selects_max_and_routes_grad() {
        let mut pool = MaxPool2x2::new(1, 4, 4);
        #[rustfmt::skip]
        let input = vec![
            1.0, 2.0,   0.0, 0.0,
            3.0, 4.0,   0.0, 5.0,
            0.0, 0.0,   9.0, 8.0,
            0.0, 0.0,   7.0, 6.0,
        ];
        let out = pool.forward(&input, true);
        assert_eq!(out, vec![4.0, 5.0, 0.0, 9.0]);
        let grad_in = pool.backward(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(grad_in[5], 1.0); // position of 4.0
        assert_eq!(grad_in[7], 1.0); // position of 5.0
        assert_eq!(grad_in[10], 1.0); // position of 9.0
        assert_eq!(grad_in.iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn pool_batched_matches_per_sample() {
        let mut rng = init_rng(13);
        let mut pool = MaxPool2x2::new(2, 4, 4);
        let batch = 3;
        let hw = 16;
        let per_sample: Vec<Vec<f32>> = (0..batch)
            .map(|_| (0..2 * hw).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let batched = pack_batched(&per_sample, 2, hw);
        let out = pool.forward_batch(&batched, batch, false);
        let mut single = MaxPool2x2::new(2, 4, 4);
        for (s, sample) in per_sample.iter().enumerate() {
            let o = single.forward(sample, false);
            for c in 0..2 {
                for pos in 0..4 {
                    assert_eq!(out[(c * batch + s) * 4 + pos], o[c * 4 + pos], "c{c} s{s}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "even dims")]
    fn pool_rejects_odd_dims() {
        let _ = MaxPool2x2::new(1, 3, 4);
    }

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let out = relu.forward(&[-1.0, 0.0, 2.0], true);
        assert_eq!(out, vec![0.0, 0.0, 2.0]);
        let grad = relu.backward(&[5.0, 5.0, 5.0]);
        assert_eq!(grad, vec![0.0, 0.0, 5.0]);
    }

    #[test]
    fn dense_forward_matches_matrix_multiply() {
        let mut rng = init_rng(2);
        let mut d = Dense::new(3, 2, &mut rng);
        d.weight.w = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        d.bias.w = vec![0.1, -0.1];
        let out = d.forward(&[1.0, 0.0, -1.0], false);
        assert!((out[0] - (1.0 - 3.0 + 0.1)).abs() < 1e-6);
        assert!((out[1] - (4.0 - 6.0 - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn dense_gradient_check() {
        let mut rng = init_rng(3);
        let mut d = Dense::new(5, 4, &mut rng);
        let input: Vec<f32> = (0..5).map(|i| i as f32 * 0.3 - 0.6).collect();
        let out = d.forward(&input, true);
        let grad_out: Vec<f32> = out.iter().map(|&o| 2.0 * o).collect();
        let grad_in = d.backward(&grad_out);
        let eps = 1e-3f32;
        let mut x = input.clone();
        for i in 0..5 {
            let orig = x[i];
            x[i] = orig + eps;
            let lp: f32 = d.forward(&x, false).iter().map(|o| o * o).sum();
            x[i] = orig - eps;
            let lm: f32 = d.forward(&x, false).iter().map(|o| o * o).sum();
            x[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < 0.02 * (1.0 + numeric.abs()),
                "dense grad mismatch at {i}"
            );
        }
    }

    #[test]
    // The reference grads are spelled index-style ((o, i) against the
    // flattened weight matrix) to mirror the math being verified.
    #[allow(clippy::needless_range_loop)]
    fn dense_batched_matches_per_sample() {
        let mut rng = init_rng(21);
        let mut d = Dense::new(7, 5, &mut rng);
        let batch = 4;
        let inputs: Vec<f32> = (0..batch * 7).map(|i| (i as f32 * 0.23).sin()).collect();
        let out = d.forward_batch(&inputs, batch, true);
        let mut single = Dense::new(7, 5, &mut init_rng(21));
        for s in 0..batch {
            let o = single.forward(&inputs[s * 7..(s + 1) * 7], false);
            assert_eq!(&out[s * 5..(s + 1) * 5], &o[..], "sample {s}");
        }
        // batched backward grads = sum of per-sample grads
        let gout: Vec<f32> = (0..batch * 5).map(|i| (i as f32 * 0.31).cos()).collect();
        let gin = d.backward_batch(&gout, batch);
        let mut gw_ref = [0.0f32; 5 * 7];
        let mut gb_ref = [0.0f32; 5];
        for s in 0..batch {
            let x = &inputs[s * 7..(s + 1) * 7];
            let go = &gout[s * 5..(s + 1) * 5];
            for o in 0..5 {
                gb_ref[o] += go[o];
                for i in 0..7 {
                    gw_ref[o * 7 + i] += go[o] * x[i];
                }
            }
            // per-sample grad_in check
            let mut gin_ref = [0.0f32; 7];
            for o in 0..5 {
                for i in 0..7 {
                    gin_ref[i] += go[o] * d.weight.w[o * 7 + i];
                }
            }
            for i in 0..7 {
                assert!((gin[s * 7 + i] - gin_ref[i]).abs() < 1e-5, "gin s{s} i{i}");
            }
        }
        for (a, b) in d.weight.g.iter().zip(gw_ref.iter()) {
            assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
        for (a, b) in d.bias.g.iter().zip(gb_ref.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn he_init_scale_is_reasonable() {
        let mut rng = init_rng(4);
        let w = he_init(&mut rng, 10_000, 100);
        let var: f32 = w.iter().map(|x| x * x).sum::<f32>() / w.len() as f32;
        assert!(
            (var - 0.02).abs() < 0.005,
            "He variance {var} should be ≈ 2/100"
        );
    }

    /// Packs per-sample channel-major buffers into the batched layout.
    fn pack_batched(samples: &[Vec<f32>], ch: usize, hw: usize) -> Vec<f32> {
        let batch = samples.len();
        let mut out = vec![0.0f32; ch * batch * hw];
        for c in 0..ch {
            for (s, sample) in samples.iter().enumerate() {
                out[(c * batch + s) * hw..(c * batch + s + 1) * hw]
                    .copy_from_slice(&sample[c * hw..(c + 1) * hw]);
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// GEMM conv forward ≡ scalar oracle on random shapes, including
        /// non-square spatial dims and the ch = 1 edge cases.
        #[test]
        fn conv_forward_gemm_equals_scalar(
            in_ch in 1usize..4,
            out_ch in 1usize..5,
            h in 1usize..9,
            w in 1usize..9,
            seed in 0u64..1_000,
        ) {
            let mut rng = init_rng(seed);
            let mut conv = Conv3x3::new(in_ch, out_ch, h, w, &mut rng);
            for b in conv.bias.w.iter_mut() {
                *b = rng.gen_range(-0.5..0.5);
            }
            let input: Vec<f32> = (0..conv.input_len())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            let fast = conv.forward(&input, false);
            let slow = reference::conv3x3_forward(
                in_ch, out_ch, h, w, &conv.weight.w, &conv.bias.w, &input,
            );
            for (i, (a, b)) in fast.iter().zip(slow.iter()).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
                    "({}, {}, {}, {}) idx {}: {} vs {}", in_ch, out_ch, h, w, i, a, b
                );
            }
        }

        /// GEMM conv backward ≡ scalar oracle: input, weight, and bias
        /// gradients all match within tolerance.
        #[test]
        fn conv_backward_gemm_equals_scalar(
            in_ch in 1usize..4,
            out_ch in 1usize..4,
            h in 1usize..7,
            w in 1usize..7,
            seed in 0u64..1_000,
        ) {
            let mut rng = init_rng(seed.wrapping_add(77));
            let mut conv = Conv3x3::new(in_ch, out_ch, h, w, &mut rng);
            let input: Vec<f32> = (0..conv.input_len())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            let grad_out: Vec<f32> = (0..conv.output_len())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            let _ = conv.forward(&input, true);
            conv.weight.zero_grad();
            conv.bias.zero_grad();
            let gin = conv.backward(&grad_out);
            let (gin_ref, gw_ref, gb_ref) = reference::conv3x3_backward(
                in_ch, out_ch, h, w, &conv.weight.w, &input, &grad_out,
            );
            for (a, b) in gin.iter().zip(gin_ref.iter()) {
                prop_assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "gin {} vs {}", a, b);
            }
            for (a, b) in conv.weight.g.iter().zip(gw_ref.iter()) {
                prop_assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "gw {} vs {}", a, b);
            }
            for (a, b) in conv.bias.g.iter().zip(gb_ref.iter()) {
                prop_assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "gb {} vs {}", a, b);
            }
        }

        /// Batched conv forward ≡ per-sample scalar oracle: one GEMM over
        /// the whole minibatch must agree with running each sample alone.
        #[test]
        fn conv_forward_batched_equals_scalar_per_sample(
            in_ch in 1usize..3,
            out_ch in 1usize..4,
            h in 1usize..6,
            w in 1usize..6,
            batch in 1usize..5,
            seed in 0u64..1_000,
        ) {
            let mut rng = init_rng(seed.wrapping_add(311));
            let mut conv = Conv3x3::new(in_ch, out_ch, h, w, &mut rng);
            let hw = h * w;
            let samples: Vec<Vec<f32>> = (0..batch)
                .map(|_| (0..in_ch * hw).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect();
            let batched = pack_batched(&samples, in_ch, hw);
            let out = conv.forward_batch(&batched, batch, false);
            for (s, sample) in samples.iter().enumerate() {
                let slow = reference::conv3x3_forward(
                    in_ch, out_ch, h, w, &conv.weight.w, &conv.bias.w, sample,
                );
                for c in 0..out_ch {
                    for pos in 0..hw {
                        let a = out[(c * batch + s) * hw + pos];
                        let b = slow[c * hw + pos];
                        prop_assert!(
                            (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
                            "s{} c{} pos{}: {} vs {}", s, c, pos, a, b
                        );
                    }
                }
            }
        }

        /// Dense forward ≡ scalar oracle on random shapes.
        #[test]
        fn dense_forward_gemm_equals_scalar(
            in_dim in 1usize..40,
            out_dim in 1usize..20,
            seed in 0u64..1_000,
        ) {
            let mut rng = init_rng(seed.wrapping_add(5));
            let mut d = Dense::new(in_dim, out_dim, &mut rng);
            let input: Vec<f32> = (0..in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let fast = d.forward(&input, false);
            let slow = reference::dense_forward(in_dim, out_dim, &d.weight.w, &d.bias.w, &input);
            for (a, b) in fast.iter().zip(slow.iter()) {
                prop_assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "{} vs {}", a, b);
            }
        }
    }
}
