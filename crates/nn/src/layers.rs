//! Neural-network layers with hand-derived backward passes.
//!
//! Everything operates on single samples (`&[f32]` buffers in
//! channel-major layout); data parallelism across a mini-batch happens one
//! level up in [`crate::train`]. Shapes are fixed at construction and
//! asserted at the boundaries, so indexing inside the hot loops is safe by
//! construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A learnable parameter tensor with its gradient accumulator.
///
/// Serialization persists only the weights; the gradient accumulator is
/// rebuilt (zeroed, correctly sized) on deserialize via the `From`
/// conversions below.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "Vec<f32>", into = "Vec<f32>")]
pub struct Param {
    pub w: Vec<f32>,
    pub g: Vec<f32>,
}

impl From<Vec<f32>> for Param {
    fn from(w: Vec<f32>) -> Self {
        Param::new(w)
    }
}

impl From<Param> for Vec<f32> {
    fn from(p: Param) -> Self {
        p.w
    }
}

impl Param {
    fn new(w: Vec<f32>) -> Self {
        let g = vec![0.0; w.len()];
        Param { w, g }
    }

    pub fn len(&self) -> usize {
        self.w.len()
    }

    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    pub fn zero_grad(&mut self) {
        self.g.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// He-normal initialisation (good default before ReLU).
fn he_init(rng: &mut StdRng, n: usize, fan_in: usize) -> Vec<f32> {
    let std = (2.0 / fan_in as f32).sqrt();
    (0..n).map(|_| gaussian32(rng) * std).collect()
}

fn gaussian32(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

/// 3×3 convolution, stride 1, zero padding 1 (spatial dims preserved).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv3x3 {
    pub in_ch: usize,
    pub out_ch: usize,
    pub h: usize,
    pub w: usize,
    pub weight: Param, // [out][in][3][3]
    pub bias: Param,   // [out]
    #[serde(skip)]
    cached_input: Vec<f32>,
}

impl Conv3x3 {
    pub fn new(in_ch: usize, out_ch: usize, h: usize, w: usize, rng: &mut StdRng) -> Self {
        let fan_in = in_ch * 9;
        Conv3x3 {
            in_ch,
            out_ch,
            h,
            w,
            weight: Param::new(he_init(rng, out_ch * in_ch * 9, fan_in)),
            bias: Param::new(vec![0.0; out_ch]),
            cached_input: Vec::new(),
        }
    }

    pub fn input_len(&self) -> usize {
        self.in_ch * self.h * self.w
    }

    pub fn output_len(&self) -> usize {
        self.out_ch * self.h * self.w
    }

    pub fn forward(&mut self, input: &[f32], train: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len(), "conv input size mismatch");
        if train {
            self.cached_input = input.to_vec();
        }
        let (h, w) = (self.h, self.w);
        let mut out = vec![0.0f32; self.output_len()];
        for o in 0..self.out_ch {
            let b = self.bias.w[o];
            for y in 0..h {
                for x in 0..w {
                    let mut acc = b;
                    for i in 0..self.in_ch {
                        let wbase = ((o * self.in_ch + i) * 3) * 3;
                        let ibase = i * h * w;
                        for ky in 0..3usize {
                            let iy = y as isize + ky as isize - 1;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let row = ibase + iy as usize * w;
                            for kx in 0..3usize {
                                let ix = x as isize + kx as isize - 1;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc +=
                                    input[row + ix as usize] * self.weight.w[wbase + ky * 3 + kx];
                            }
                        }
                    }
                    out[(o * h + y) * w + x] = acc;
                }
            }
        }
        out
    }

    /// Accumulates weight/bias gradients and returns the input gradient.
    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.output_len(), "conv grad size mismatch");
        assert!(
            !self.cached_input.is_empty(),
            "backward before forward(train=true)"
        );
        let (h, w) = (self.h, self.w);
        let input = &self.cached_input;
        let mut grad_in = vec![0.0f32; self.input_len()];
        for o in 0..self.out_ch {
            let obase = o * h * w;
            for y in 0..h {
                for x in 0..w {
                    let go = grad_out[obase + y * w + x];
                    if go == 0.0 {
                        continue;
                    }
                    self.bias.g[o] += go;
                    for i in 0..self.in_ch {
                        let wbase = ((o * self.in_ch + i) * 3) * 3;
                        let ibase = i * h * w;
                        for ky in 0..3usize {
                            let iy = y as isize + ky as isize - 1;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let row = ibase + iy as usize * w;
                            for kx in 0..3usize {
                                let ix = x as isize + kx as isize - 1;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let widx = wbase + ky * 3 + kx;
                                self.weight.g[widx] += go * input[row + ix as usize];
                                grad_in[row + ix as usize] += go * self.weight.w[widx];
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

/// 2×2 max-pooling with stride 2. Requires even spatial dimensions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2x2 {
    pub ch: usize,
    pub h: usize,
    pub w: usize,
    #[serde(skip)]
    argmax: Vec<u32>,
}

impl MaxPool2x2 {
    pub fn new(ch: usize, h: usize, w: usize) -> Self {
        assert!(
            h.is_multiple_of(2) && w.is_multiple_of(2),
            "pooling needs even dims, got {h}×{w}"
        );
        MaxPool2x2 {
            ch,
            h,
            w,
            argmax: Vec::new(),
        }
    }

    pub fn input_len(&self) -> usize {
        self.ch * self.h * self.w
    }

    pub fn output_len(&self) -> usize {
        self.ch * (self.h / 2) * (self.w / 2)
    }

    pub fn forward(&mut self, input: &[f32], train: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.input_len());
        let (h, w) = (self.h, self.w);
        let (oh, ow) = (h / 2, w / 2);
        let mut out = vec![0.0f32; self.output_len()];
        let mut argmax = if train {
            vec![0u32; self.output_len()]
        } else {
            Vec::new()
        };
        for c in 0..self.ch {
            let ibase = c * h * w;
            let obase = c * oh * ow;
            for y in 0..oh {
                for x in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = ibase + (2 * y + dy) * w + (2 * x + dx);
                            if input[idx] > best {
                                best = input[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[obase + y * ow + x] = best;
                    if train {
                        argmax[obase + y * ow + x] = best_idx as u32;
                    }
                }
            }
        }
        if train {
            self.argmax = argmax;
        }
        out
    }

    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.output_len());
        assert!(
            !self.argmax.is_empty(),
            "backward before forward(train=true)"
        );
        let mut grad_in = vec![0.0f32; self.input_len()];
        for (i, &go) in grad_out.iter().enumerate() {
            grad_in[self.argmax[i] as usize] += go;
        }
        grad_in
    }
}

/// Elementwise ReLU.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Vec<bool>,
}

impl Relu {
    pub fn new() -> Self {
        Relu { mask: Vec::new() }
    }

    pub fn forward(&mut self, input: &[f32], train: bool) -> Vec<f32> {
        if train {
            self.mask = input.iter().map(|&x| x > 0.0).collect();
        }
        input.iter().map(|&x| x.max(0.0)).collect()
    }

    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(
            grad_out.len(),
            self.mask.len(),
            "relu backward before forward"
        );
        grad_out
            .iter()
            .zip(self.mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect()
    }
}

/// Fully-connected layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    pub in_dim: usize,
    pub out_dim: usize,
    pub weight: Param, // [out][in]
    pub bias: Param,   // [out]
    #[serde(skip)]
    cached_input: Vec<f32>,
}

impl Dense {
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Dense {
            in_dim,
            out_dim,
            weight: Param::new(he_init(rng, out_dim * in_dim, in_dim)),
            bias: Param::new(vec![0.0; out_dim]),
            cached_input: Vec::new(),
        }
    }

    pub fn forward(&mut self, input: &[f32], train: bool) -> Vec<f32> {
        assert_eq!(input.len(), self.in_dim, "dense input size mismatch");
        if train {
            self.cached_input = input.to_vec();
        }
        let mut out = self.bias.w.clone();
        for o in 0..self.out_dim {
            let row = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = 0.0f32;
            for (wi, xi) in row.iter().zip(input.iter()) {
                acc += wi * xi;
            }
            out[o] += acc;
        }
        out
    }

    pub fn backward(&mut self, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.out_dim);
        assert!(
            !self.cached_input.is_empty(),
            "backward before forward(train=true)"
        );
        let input = &self.cached_input;
        let mut grad_in = vec![0.0f32; self.in_dim];
        for o in 0..self.out_dim {
            let go = grad_out[o];
            self.bias.g[o] += go;
            let row_w = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            let row_g = &mut self.weight.g[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                row_g[i] += go * input[i];
                grad_in[i] += go * row_w[i];
            }
        }
        grad_in
    }
}

/// Creates a deterministic RNG for layer initialisation.
pub fn init_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_kernel() {
        let mut rng = init_rng(1);
        let mut conv = Conv3x3::new(1, 1, 4, 4, &mut rng);
        // set kernel to identity (center tap 1), bias 0
        conv.weight.w.iter_mut().for_each(|w| *w = 0.0);
        conv.weight.w[4] = 1.0; // center of the 3×3
        conv.bias.w[0] = 0.0;
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let out = conv.forward(&input, false);
        assert_eq!(out, input);
    }

    #[test]
    fn conv_bias_applied() {
        let mut rng = init_rng(1);
        let mut conv = Conv3x3::new(1, 2, 2, 2, &mut rng);
        conv.weight.w.iter_mut().for_each(|w| *w = 0.0);
        conv.bias.w = vec![0.5, -0.5];
        let out = conv.forward(&[0.0; 4], false);
        assert_eq!(&out[0..4], &[0.5; 4]);
        assert_eq!(&out[4..8], &[-0.5; 4]);
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = init_rng(7);
        let mut conv = Conv3x3::new(2, 3, 4, 4, &mut rng);
        let input: Vec<f32> = (0..conv.input_len())
            .map(|i| (i as f32 * 0.37).sin())
            .collect();
        let out = conv.forward(&input, true);
        // L = Σ out², dL/dout = 2·out
        let grad_out: Vec<f32> = out.iter().map(|&o| 2.0 * o).collect();
        let grad_in = conv.backward(&grad_out);

        let loss =
            |c: &mut Conv3x3, x: &[f32]| -> f32 { c.forward(x, false).iter().map(|o| o * o).sum() };
        let eps = 1e-2f32;
        let mut x = input.clone();
        for i in [0usize, 5, 11, 17, 23, 31] {
            let orig = x[i];
            x[i] = orig + eps;
            let lp = loss(&mut conv, &x);
            x[i] = orig - eps;
            let lm = loss(&mut conv, &x);
            x[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < 0.05 * (1.0 + numeric.abs()),
                "input grad mismatch at {i}: numeric {numeric} vs analytic {}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn conv_weight_gradient_check() {
        let mut rng = init_rng(9);
        let mut conv = Conv3x3::new(1, 1, 4, 4, &mut rng);
        let input: Vec<f32> = (0..16).map(|i| (i as f32 * 0.21).cos()).collect();
        let out = conv.forward(&input, true);
        let grad_out: Vec<f32> = out.iter().map(|&o| 2.0 * o).collect();
        conv.weight.zero_grad();
        conv.bias.zero_grad();
        let _ = conv.backward(&grad_out);
        let analytic = conv.weight.g.clone();

        let eps = 1e-2f32;
        for wi in 0..9 {
            let orig = conv.weight.w[wi];
            conv.weight.w[wi] = orig + eps;
            let lp: f32 = conv.forward(&input, false).iter().map(|o| o * o).sum();
            conv.weight.w[wi] = orig - eps;
            let lm: f32 = conv.forward(&input, false).iter().map(|o| o * o).sum();
            conv.weight.w[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic[wi]).abs() < 0.05 * (1.0 + numeric.abs()),
                "weight grad mismatch at {wi}: {numeric} vs {}",
                analytic[wi]
            );
        }
    }

    #[test]
    fn pool_selects_max_and_routes_grad() {
        let mut pool = MaxPool2x2::new(1, 4, 4);
        #[rustfmt::skip]
        let input = vec![
            1.0, 2.0,   0.0, 0.0,
            3.0, 4.0,   0.0, 5.0,
            0.0, 0.0,   9.0, 8.0,
            0.0, 0.0,   7.0, 6.0,
        ];
        let out = pool.forward(&input, true);
        assert_eq!(out, vec![4.0, 5.0, 0.0, 9.0]);
        let grad_in = pool.backward(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(grad_in[5], 1.0); // position of 4.0
        assert_eq!(grad_in[7], 1.0); // position of 5.0
        assert_eq!(grad_in[10], 1.0); // position of 9.0
        assert_eq!(grad_in.iter().sum::<f32>(), 4.0);
    }

    #[test]
    #[should_panic(expected = "even dims")]
    fn pool_rejects_odd_dims() {
        let _ = MaxPool2x2::new(1, 3, 4);
    }

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let out = relu.forward(&[-1.0, 0.0, 2.0], true);
        assert_eq!(out, vec![0.0, 0.0, 2.0]);
        let grad = relu.backward(&[5.0, 5.0, 5.0]);
        assert_eq!(grad, vec![0.0, 0.0, 5.0]);
    }

    #[test]
    fn dense_forward_matches_matrix_multiply() {
        let mut rng = init_rng(2);
        let mut d = Dense::new(3, 2, &mut rng);
        d.weight.w = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        d.bias.w = vec![0.1, -0.1];
        let out = d.forward(&[1.0, 0.0, -1.0], false);
        assert!((out[0] - (1.0 - 3.0 + 0.1)).abs() < 1e-6);
        assert!((out[1] - (4.0 - 6.0 - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn dense_gradient_check() {
        let mut rng = init_rng(3);
        let mut d = Dense::new(5, 4, &mut rng);
        let input: Vec<f32> = (0..5).map(|i| i as f32 * 0.3 - 0.6).collect();
        let out = d.forward(&input, true);
        let grad_out: Vec<f32> = out.iter().map(|&o| 2.0 * o).collect();
        let grad_in = d.backward(&grad_out);
        let eps = 1e-3f32;
        let mut x = input.clone();
        for i in 0..5 {
            let orig = x[i];
            x[i] = orig + eps;
            let lp: f32 = d.forward(&x, false).iter().map(|o| o * o).sum();
            x[i] = orig - eps;
            let lm: f32 = d.forward(&x, false).iter().map(|o| o * o).sum();
            x[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < 0.02 * (1.0 + numeric.abs()),
                "dense grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn he_init_scale_is_reasonable() {
        let mut rng = init_rng(4);
        let w = he_init(&mut rng, 10_000, 100);
        let var: f32 = w.iter().map(|x| x * x).sum::<f32>() / w.len() as f32;
        assert!(
            (var - 0.02).abs() < 0.005,
            "He variance {var} should be ≈ 2/100"
        );
    }
}
