//! # everest-nn — a pure-Rust convolutional mixture density network
//!
//! The Everest paper's Phase 1 (§3.2) trains a lightweight **CMDN** — a
//! small CNN whose head is a mixture density network — to map a video frame
//! to a *distribution* over its score, rather than a point estimate. The
//! original implementation uses PyTorch; this crate is the from-scratch
//! substitute, implementing everything the pipeline needs with no external
//! numeric dependencies:
//!
//! * [`layers`] — 3×3 convolution (pad 1), 2×2 max-pooling, ReLU and dense
//!   layers with hand-derived backward passes;
//! * [`cmdn`] — the CMDN architecture of Figure 2 (conv stack → MDN head)
//!   with mixture-NLL training gradients (Bishop's MDN formulation);
//! * [`mixture`] — Gaussian mixtures: moments, CDF (erf), the paper's 3σ
//!   truncation, and quantization to discrete score distributions;
//! * [`optim`] — Adam over flattened parameter vectors;
//! * [`train`] — mini-batch training with data-parallel gradient workers,
//!   hold-out NLL evaluation, and the hyper-parameter grid search over
//!   (g = #Gaussians, h = hidden width) with smallest-NLL model selection,
//!   exactly the model-selection protocol of §3.2/§3.5.
//!
//! The paper stacks five conv layers for 128×128 inputs; at our scaled
//! 32×32 inputs the default is three conv blocks (each halves the spatial
//! resolution), which preserves the "each layer halves, features feed an
//! MDN" design. The depth is configurable.
//!
//! Conv and dense passes are lowered onto im2col + cache-blocked GEMM (see
//! [`kernels`]); every layer also has a batched entry point so training
//! pushes whole minibatches through one GEMM per layer.

#![warn(missing_docs)]

pub mod cmdn;
pub mod kernels;
pub mod layers;
pub mod mixture;
pub mod optim;
pub mod train;

pub use cmdn::{Cmdn, CmdnConfig};
pub use mixture::GaussianMixture;
pub use optim::Adam;
pub use train::{train_cmdn, HyperGrid, TrainConfig, TrainOutcome, TrainedCmdn};
