//! im2col + cache-blocked GEMM kernels behind the layer forward/backward
//! passes.
//!
//! The CMDN's convolutions are the hottest loops of the whole Everest
//! reproduction (Phase 1 trains on every sampled frame), so instead of the
//! textbook 6-deep scalar loop the layers lower convolution onto dense
//! matrix multiplication:
//!
//! 1. [`im2col_3x3`] packs every 3×3 input patch into a column of a
//!    `(in_ch·9) × (batch·h·w)` matrix (zero padding materialised as
//!    zeroes, so the GEMM needs no boundary tests);
//! 2. [`gemm`] multiplies the `out_ch × (in_ch·9)` weight matrix against
//!    the packed patches with cache blocking over the output columns and a
//!    register-blocked 4×16 microkernel that the compiler auto-vectorises;
//! 3. the backward data pass is the transposed GEMM followed by
//!    [`col2im_add_3x3`] (scatter-add of patch gradients), and the backward
//!    weight pass is [`gemm_nt`] (`C += A·Bᵀ`, a batch of long dot
//!    products) against the same packed patches.
//!
//! # Batched tensor layout
//!
//! Batched activations use a **channel-major-over-the-batch** layout:
//! element `(c, s, y, x)` of a `ch × batch × h × w` tensor lives at
//! `(c·batch + s)·h·w + y·w + x`. A single sample (`batch = 1`) degenerates
//! to the classic channel-major `[c][y][x]` layout, so the per-sample layer
//! API is the `batch = 1` special case of the batched one. The layout lets
//! one GEMM process a whole minibatch: the packed-patch matrix simply grows
//! wider (`batch·h·w` columns) while the weight matrix is unchanged.
//!
//! # Determinism
//!
//! Every kernel accumulates in a fixed order — the GEMM reduction dimension
//! ascends element-by-element, and [`gemm_nt`]'s dot products use a fixed
//! 8-lane accumulator folded in lane order — so results are bit-identical
//! across runs and independent of the blocking parameters *and* of the
//! worker-thread count: row panels split on multiples of the microkernel
//! row count `MR`, so the
//! scalar-edge kernel always covers exactly the last `m % 4` rows
//! whatever the split, and all *vector* kernels (4×16, 4×32, 8×32) apply
//! the identical per-element FMA chain, so a panel boundary routing rows
//! through a narrower vector kernel changes nothing — the bitwise
//! thread-invariance test pins both facts. (They are *not* bit-identical
//! to the
//! scalar reference: f32 addition is non-associative, which is why the
//! equivalence tests in [`crate::layers`] use a small tolerance.)
//!
//! # CPU dispatch
//!
//! On x86-64 hosts with AVX2 + FMA (detected once at startup via
//! `is_x86_feature_detected!`) the 4×16 microkernel and [`gemm_nt`]'s dot
//! product run as explicit `std::arch` vector code; everywhere else the
//! portable scalar forms run. The vector path keeps the exact ascending-`k`
//! per-element accumulation order of the scalar path, but FMA fuses each
//! multiply-add into one rounding, so the two paths can differ in the last
//! bits — each path is bit-deterministic on its own, and the selected path
//! is fixed for the whole process, so end-to-end runs stay byte-identical
//! on the same machine. Set the environment variable `EVEREST_NO_SIMD=1`
//! (read once, before the first GEMM) to force the scalar path; the
//! [`gemm_scalar`]/[`gemm_nt_scalar`] entry points always run it, for
//! benchmarking both paths side by side. [`simd_active`] reports the
//! dispatch decision.

use std::sync::OnceLock;

/// Columns processed per cache block: `NC` patch columns of ≤ `in_ch·9`
/// rows keep the packed panel L2-resident while the microkernel streams
/// the weight rows over it.
const NC: usize = 256;
/// Microkernel rows (accumulator rows held in registers).
const MR: usize = 4;
/// Microkernel columns (two 8-lane vector registers per accumulator row).
const NR: usize = 16;

/// Multiply-accumulate count (`m·n·k`) below which [`gemm`]/[`gemm_nt`]
/// stay single-threaded. ~8.4M MACs ≈ 2 ms of scalar work; spawning scoped
/// workers costs tens of µs each, and the layer-level callers
/// (`train.rs` workers, `phase1` scoring) already occupy every core with
/// data parallelism, so only genuinely large single GEMMs are worth
/// splitting — this keeps single-frame inference latency untouched.
const MT_MIN_MACS: usize = 1 << 23;

/// Whether the runtime-dispatched vector path is active for this process
/// (x86-64 AVX2 + FMA detected and not disabled via `EVEREST_NO_SIMD`).
///
/// The vector tier is **one numeric path**: on AVX-512F hosts the GEMM
/// microkernel runs 32 columns per tile instead of 16, but every output
/// element still accumulates through the identical ascending-`k` FMA
/// chain, so the 512- and 256-bit kernels produce bit-identical results —
/// register width only changes speed. Only scalar-vs-vector differs
/// numerically (fused vs separate rounding).
pub fn simd_active() -> bool {
    static ACTIVE: OnceLock<bool> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let killed = env_flag("EVEREST_NO_SIMD");
        !killed && avx2_available()
    })
}

/// True when `var` is set to anything other than empty or `0`.
fn env_flag(var: &str) -> bool {
    std::env::var(var)
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Whether the vector path may use the 512-bit microkernel (AVX-512F on
/// top of [`simd_active`]; `EVEREST_NO_AVX512=1` drops back to the 256-bit
/// kernel — same results, for width-tier benchmarking).
#[cfg(target_arch = "x86_64")]
fn avx512_active() -> bool {
    static ACTIVE: OnceLock<bool> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        !env_flag("EVEREST_NO_AVX512") && std::arch::is_x86_feature_detected!("avx512f")
    })
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// Worker threads for one GEMM call of `macs = m·n·k` multiply-adds over
/// `m` rows: 1 unless the call is large enough to amortise thread spawns
/// and the host has spare cores.
fn mt_threads(m: usize, macs: usize) -> usize {
    if macs < MT_MIN_MACS || m < 2 * MR {
        return 1;
    }
    static AVAIL: OnceLock<usize> = OnceLock::new();
    let avail = *AVAIL.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    });
    avail.min(m / MR).max(1)
}

/// `C += A·B` for row-major `f32` matrices: `A` is `m×k`, `B` is `k×n`,
/// `C` is `m×n`.
///
/// Accumulation into `C` means callers can fold a bias pre-fill (forward)
/// or gradient accumulation (backward) into the same call. The reduction
/// runs over `p = 0..k` in ascending order for every output element, so the
/// result is deterministic and independent of the blocking and of the
/// thread count. Large calls (≥ ~8M multiply-adds) are partitioned into
/// row panels across scoped worker threads; the panels split on
/// microkernel-row multiples so the split changes nothing numerically.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_dispatch(simd_active(), m, n, k, a, b, c);
}

/// [`gemm`] forced onto the portable scalar path (single behaviour on
/// every host) — the reference side of SIMD-vs-scalar comparisons and the
/// `kernels/gemm_scalar_*` benchmarks. Threading still applies.
pub fn gemm_scalar(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_dispatch(false, m, n, k, a, b, c);
}

fn gemm_dispatch(simd: bool, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm: C shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let threads = mt_threads(m, m * n * k);
    if threads == 1 {
        gemm_serial(simd, m, n, k, a, b, c);
    } else {
        for_row_panels(m, n, k, a, c, threads, &|rows, a_panel, c_panel| {
            gemm_serial(simd, rows, n, k, a_panel, b, c_panel)
        });
    }
}

/// One row panel's worth of work: `(rows, a_panel, c_panel)`.
type PanelBody<'a> = &'a (dyn Fn(usize, &[f32], &mut [f32]) + Sync);

/// Splits `a`/`c` into per-thread row panels (multiples of [`MR`] rows, so
/// the panel edges don't change which kernel computes which row) and runs
/// `body` on each panel in a scoped worker.
fn for_row_panels(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    c: &mut [f32],
    threads: usize,
    body: PanelBody<'_>,
) {
    let rows_per = m.div_ceil(threads).next_multiple_of(MR);
    std::thread::scope(|scope| {
        let mut a_rest = a;
        let mut c_rest = c;
        let mut done = 0;
        while done < m {
            let rows = rows_per.min(m - done);
            let (a_panel, a_next) = a_rest.split_at(rows * k);
            let (c_panel, c_next) = c_rest.split_at_mut(rows * n);
            a_rest = a_next;
            c_rest = c_next;
            done += rows;
            if done < m {
                scope.spawn(move || body(rows, a_panel, c_panel));
            } else {
                // Final panel runs on the calling thread: one fewer spawn
                // and no core parked waiting on the scope join.
                body(rows, a_panel, c_panel);
            }
        }
    });
}

/// Single-threaded blocked GEMM over one row panel; `simd` picks the
/// microkernel implementation.
fn gemm_serial(simd: bool, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        use std::cell::RefCell;
        thread_local! {
            /// Per-thread packed-B-strip scratch; grows to the largest
            /// strip seen and is then reused, so steady-state GEMMs
            /// allocate nothing.
            static PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
        }
        PACK.with(|p| {
            let pack = &mut p.borrow_mut();
            // SAFETY: simd is only true when AVX2+FMA were detected, and
            // the dispatch wrapper validated every slice length.
            unsafe {
                if avx512_active() {
                    avx512::gemm(m, n, k, a, b, c, pack);
                } else {
                    avx2::gemm(m, n, k, 0, a, b, c, pack);
                }
            }
        });
        return;
    }
    let _ = simd;
    // Block over columns so the active B panel stays cache-resident.
    let mut j0 = 0;
    while j0 < n {
        let jb = NC.min(n - j0);
        let mut i0 = 0;
        while i0 + MR <= m {
            let mut j = j0;
            while j + NR <= j0 + jb {
                kernel_4x16(k, n, i0, j, a, b, c);
                j += NR;
            }
            if j < j0 + jb {
                kernel_edge(MR, j0 + jb - j, k, n, i0, j, a, b, c);
            }
            i0 += MR;
        }
        if i0 < m {
            kernel_edge(m - i0, jb, k, n, i0, j0, a, b, c);
        }
        j0 += jb;
    }
}

/// The register-blocked microkernel: `C[i0..i0+4][j..j+16] += A·B`.
///
/// Four broadcast rows of `A` against a 16-wide panel of `B`; the eight
/// 8-lane accumulators live in registers across the whole `k` loop.
#[inline]
fn kernel_4x16(k: usize, n: usize, i0: usize, j: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let a0 = &a[i0 * k..(i0 + 1) * k];
    let a1 = &a[(i0 + 1) * k..(i0 + 2) * k];
    let a2 = &a[(i0 + 2) * k..(i0 + 3) * k];
    let a3 = &a[(i0 + 3) * k..(i0 + 4) * k];
    let mut c0 = [0.0f32; NR];
    let mut c1 = [0.0f32; NR];
    let mut c2 = [0.0f32; NR];
    let mut c3 = [0.0f32; NR];
    for p in 0..k {
        let br: &[f32; NR] = b[p * n + j..p * n + j + NR].try_into().expect("B panel");
        let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
        for l in 0..NR {
            c0[l] += v0 * br[l];
            c1[l] += v1 * br[l];
            c2[l] += v2 * br[l];
            c3[l] += v3 * br[l];
        }
    }
    for (row, acc) in [c0, c1, c2, c3].iter().enumerate() {
        let cr = &mut c[(i0 + row) * n + j..(i0 + row) * n + j + NR];
        for l in 0..NR {
            cr[l] += acc[l];
        }
    }
}

/// Scalar edge kernel for the `m % 4` / `n % 16` tails. Same ascending-`p`
/// accumulation order per element as the main microkernel.
fn kernel_edge(
    mr: usize,
    nr: usize,
    k: usize,
    n: usize,
    i0: usize,
    j: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for im in 0..mr {
        let ar = &a[(i0 + im) * k..(i0 + im + 1) * k];
        for jn in 0..nr {
            let mut acc = 0.0f32;
            for (p, &av) in ar.iter().enumerate() {
                acc += av * b[p * n + j + jn];
            }
            c[(i0 + im) * n + j + jn] += acc;
        }
    }
}

/// `C += A·Bᵀ` with `B` supplied row-major as `n×k`: `A` is `m×k`, `C` is
/// `m×n`. Each output element is a length-`k` dot product of two
/// contiguous rows.
///
/// This is the backward weight pass (`∇W += ∇out · colsᵀ`), where the
/// reduction dimension is the (large) number of patch columns. The dot
/// product uses eight parallel lanes folded in fixed lane order, so it is
/// deterministic (though ordered differently from [`gemm`]); on the AVX2
/// path the eight lanes live in one FMA register. Large calls split into
/// row panels exactly like [`gemm`] (here every row is a panel boundary,
/// so threading never changes the result).
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_dispatch(simd_active(), m, n, k, a, b, c);
}

/// [`gemm_nt`] forced onto the portable scalar path — see [`gemm_scalar`].
pub fn gemm_nt_scalar(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_dispatch(false, m, n, k, a, b, c);
}

fn gemm_nt_dispatch(simd: bool, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A shape mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nt: C shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let threads = mt_threads(m, m * n * k);
    if threads == 1 {
        gemm_nt_serial(simd, m, n, k, a, b, c);
    } else {
        for_row_panels(m, n, k, a, c, threads, &|rows, a_panel, c_panel| {
            gemm_nt_serial(simd, rows, n, k, a_panel, b, c_panel)
        });
    }
}

fn gemm_nt_serial(simd: bool, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let ar = &a[i * k..(i + 1) * k];
        for jn in 0..n {
            let br = &b[jn * k..(jn + 1) * k];
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: simd is only true when AVX2+FMA were detected.
                c[i * n + jn] += unsafe { avx2::dot(ar, br) };
                continue;
            }
            let _ = simd;
            c[i * n + jn] += dot(ar, br);
        }
    }
}

/// Deterministic 8-lane dot product (lanes folded in index order).
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = x.len() / LANES;
    for ci in 0..chunks {
        let xs: &[f32; LANES] = x[ci * LANES..(ci + 1) * LANES].try_into().expect("x chunk");
        let ys: &[f32; LANES] = y[ci * LANES..(ci + 1) * LANES].try_into().expect("y chunk");
        for l in 0..LANES {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut sum = 0.0f32;
    for &lane in &acc {
        sum += lane;
    }
    for (&xv, &yv) in x[chunks * LANES..].iter().zip(&y[chunks * LANES..]) {
        sum += xv * yv;
    }
    sum
}

/// Explicit AVX2 + FMA forms of the two hot kernels. Numerically these
/// walk the reduction in the same ascending-`k` per-element scheme as
/// their scalar twins; the differences are FMA's single rounding per
/// multiply-add and [`avx2::dot`]'s four-register chain split.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{kernel_edge, MR, NR};
    use std::arch::x86_64::*;

    /// Full single-threaded GEMM over one row panel, starting at column
    /// `j0`: for every 16-column strip of `B`, pack the strip contiguously
    /// into `pack` (one 64-byte line per `p` instead of a `4n`-byte
    /// stride), then sweep all 4-row tiles of `A` over it. The `m % 4`
    /// edge rows and trailing `< 16` columns run the scalar
    /// [`kernel_edge`], whose per-element ascending-`p` order the
    /// microkernel shares.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA at runtime and the [`super::gemm`] slice-length
    /// invariants (validated by the dispatch wrapper), with `j0 ≤ n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gemm(
        m: usize,
        n: usize,
        k: usize,
        j0: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        pack: &mut Vec<f32>,
    ) {
        if pack.len() < k * NR {
            pack.resize(k * NR, 0.0);
        }
        let mut j = j0;
        while j + NR <= n {
            for p in 0..k {
                pack[p * NR..(p + 1) * NR].copy_from_slice(&b[p * n + j..p * n + j + NR]);
            }
            let mut i0 = 0;
            while i0 + MR <= m {
                // SAFETY: caller guarantees AVX2+FMA; i0 + MR ≤ m and
                // j + NR ≤ n keep every row/column index of the tile in
                // bounds of the caller-validated slices, and the strip
                // was packed to k·NR elements above.
                kernel_4x16_packed(k, n, i0, j, a, pack, c);
                i0 += MR;
            }
            if i0 < m {
                kernel_edge(m - i0, NR, k, n, i0, j, a, b, c);
            }
            j += NR;
        }
        if j < n {
            let mut i0 = 0;
            while i0 < m {
                let mr = MR.min(m - i0);
                kernel_edge(mr, n - j, k, n, i0, j, a, b, c);
                i0 += mr;
            }
        }
    }

    /// The packed microkernel: four broadcast rows of `A` against the
    /// packed 16-wide `B` strip, eight `__m256` accumulators pinned in
    /// registers across the whole `k` loop. Same per-element ascending-`p`
    /// order as the scalar [`super::kernel_4x16`], with FMA rounding.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA at runtime; `a` must hold at least
    /// `(i0 + MR)·k` elements, `pack` at least `k·NR`, and `c` the full
    /// `m×n` output with `i0 + MR ≤ m` and `j + NR ≤ n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn kernel_4x16_packed(
        k: usize,
        n: usize,
        i0: usize,
        j: usize,
        a: &[f32],
        pack: &[f32],
        c: &mut [f32],
    ) {
        debug_assert!(a.len() >= (i0 + MR) * k && pack.len() >= k * NR);
        let mut acc = [_mm256_setzero_ps(); 2 * MR];
        for p in 0..k {
            let bp = pack.as_ptr().add(p * NR);
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for (r, pair) in acc.chunks_exact_mut(2).enumerate() {
                let av = _mm256_broadcast_ss(a.get_unchecked((i0 + r) * k + p));
                pair[0] = _mm256_fmadd_ps(av, b0, pair[0]);
                pair[1] = _mm256_fmadd_ps(av, b1, pair[1]);
            }
        }
        for (r, pair) in acc.chunks_exact(2).enumerate() {
            let cp = c.as_mut_ptr().add((i0 + r) * n + j);
            _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), pair[0]));
            let cp8 = cp.add(8);
            _mm256_storeu_ps(cp8, _mm256_add_ps(_mm256_loadu_ps(cp8), pair[1]));
        }
    }

    /// Vector twin of [`super::dot`], with the eight-lane scheme split
    /// over four independent FMA registers (chains cover the FMA latency;
    /// a single register chain runs at 1/4 throughput). Registers are
    /// folded pairwise then lanes in index order — deterministic, but a
    /// different summation tree than the scalar twin, so comparisons use
    /// the usual f32 tolerance.
    ///
    /// # Safety
    ///
    /// Requires AVX2 + FMA at runtime; `x` and `y` must be equally long.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        const LANES: usize = 8;
        const CHAINS: usize = 4;
        let mut acc = [_mm256_setzero_ps(); CHAINS];
        let blocks = x.len() / (LANES * CHAINS);
        for bi in 0..blocks {
            let base = bi * LANES * CHAINS;
            for (ci, chain) in acc.iter_mut().enumerate() {
                let xv = _mm256_loadu_ps(x.as_ptr().add(base + ci * LANES));
                let yv = _mm256_loadu_ps(y.as_ptr().add(base + ci * LANES));
                *chain = _mm256_fmadd_ps(xv, yv, *chain);
            }
        }
        let mut done = blocks * LANES * CHAINS;
        // Whole 8-lane chunks left over go into chain 0, ascending.
        while done + LANES <= x.len() {
            let xv = _mm256_loadu_ps(x.as_ptr().add(done));
            let yv = _mm256_loadu_ps(y.as_ptr().add(done));
            acc[0] = _mm256_fmadd_ps(xv, yv, acc[0]);
            done += LANES;
        }
        let folded = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), folded);
        let mut sum = 0.0f32;
        for &l in &lanes {
            sum += l;
        }
        for p in done..x.len() {
            sum += x.get_unchecked(p) * y.get_unchecked(p);
        }
        sum
    }
}

/// 512-bit width tier of the vector GEMM. Every output element runs the
/// exact FMA chain of the [`avx2`] kernels (ascending `k`, one fused
/// rounding per multiply-add), so results are **bit-identical** to the
/// 256-bit tier — the wider registers only double the columns per tile.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::{avx2, kernel_edge, MR};
    use std::arch::x86_64::*;

    /// Rows per 512-bit tile (a multiple of [`MR`], so row-panel splits
    /// land on tile boundaries for every width tier).
    const MR512: usize = 2 * MR;
    /// Columns per 512-bit tile (two 16-lane registers per row).
    const NR512: usize = 32;

    /// Full single-threaded GEMM over one row panel: 32-column packed
    /// strips swept by 8-row (then 4-row) tiles of zmm accumulators;
    /// trailing columns fall through to the 16-wide [`avx2::gemm`] logic
    /// and the scalar [`kernel_edge`].
    ///
    /// # Safety
    ///
    /// Requires AVX-512F (+AVX2/FMA) at runtime and the [`super::gemm`]
    /// slice-length invariants (validated by the dispatch wrapper).
    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gemm(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        pack: &mut Vec<f32>,
    ) {
        if pack.len() < k * NR512 {
            pack.resize(k * NR512, 0.0);
        }
        let mut j = 0;
        while j + NR512 <= n {
            for p in 0..k {
                pack[p * NR512..(p + 1) * NR512].copy_from_slice(&b[p * n + j..p * n + j + NR512]);
            }
            let mut i0 = 0;
            while i0 + MR512 <= m {
                // SAFETY: caller guarantees AVX-512F; i0 + MR512 ≤ m and
                // j + NR512 ≤ n keep the 8×32 tile inside the validated
                // slices; the strip was packed to k·NR512 elements above.
                kernel_8x32_packed(k, n, i0, j, a, pack, c);
                i0 += MR512;
            }
            if i0 + MR <= m {
                // SAFETY: same bounds argument for the 4-row tail tile
                // (i0 + MR ≤ m checked on the branch).
                kernel_4x32_packed(k, n, i0, j, a, pack, c);
                i0 += MR;
            }
            if i0 < m {
                kernel_edge(m - i0, NR512, k, n, i0, j, a, b, c);
            }
            j += NR512;
        }
        if j < n {
            // SAFETY: AVX-512F implies the AVX2+FMA this kernel needs;
            // the slice-length invariants are inherited unchanged, with
            // j ≤ n marking the already-computed column prefix.
            avx2::gemm(m, n, k, j, a, b, c, pack);
        }
    }

    /// 8×32 packed microkernel: sixteen zmm accumulators pinned across the
    /// whole `k` loop.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F at runtime; `a` must hold at least
    /// `(i0 + MR512)·k` elements, `pack` at least `k·NR512`, and `c` the
    /// full `m×n` output with `i0 + MR512 ≤ m` and `j + NR512 ≤ n`.
    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    unsafe fn kernel_8x32_packed(
        k: usize,
        n: usize,
        i0: usize,
        j: usize,
        a: &[f32],
        pack: &[f32],
        c: &mut [f32],
    ) {
        debug_assert!(a.len() >= (i0 + MR512) * k && pack.len() >= k * NR512);
        let mut acc = [_mm512_setzero_ps(); 2 * MR512];
        for p in 0..k {
            let bp = pack.as_ptr().add(p * NR512);
            let b0 = _mm512_loadu_ps(bp);
            let b1 = _mm512_loadu_ps(bp.add(16));
            for (r, pair) in acc.chunks_exact_mut(2).enumerate() {
                let av = _mm512_set1_ps(*a.get_unchecked((i0 + r) * k + p));
                pair[0] = _mm512_fmadd_ps(av, b0, pair[0]);
                pair[1] = _mm512_fmadd_ps(av, b1, pair[1]);
            }
        }
        for (r, pair) in acc.chunks_exact(2).enumerate() {
            let cp = c.as_mut_ptr().add((i0 + r) * n + j);
            _mm512_storeu_ps(cp, _mm512_add_ps(_mm512_loadu_ps(cp), pair[0]));
            let cp16 = cp.add(16);
            _mm512_storeu_ps(cp16, _mm512_add_ps(_mm512_loadu_ps(cp16), pair[1]));
        }
    }

    /// 4×32 packed microkernel for the `m % 8 ≥ 4` row tail.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F at runtime; `a` must hold at least
    /// `(i0 + MR)·k` elements, `pack` at least `k·NR512`, and `c` the
    /// full `m×n` output with `i0 + MR ≤ m` and `j + NR512 ≤ n`.
    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    unsafe fn kernel_4x32_packed(
        k: usize,
        n: usize,
        i0: usize,
        j: usize,
        a: &[f32],
        pack: &[f32],
        c: &mut [f32],
    ) {
        debug_assert!(a.len() >= (i0 + MR) * k && pack.len() >= k * NR512);
        let mut acc = [_mm512_setzero_ps(); 2 * MR];
        for p in 0..k {
            let bp = pack.as_ptr().add(p * NR512);
            let b0 = _mm512_loadu_ps(bp);
            let b1 = _mm512_loadu_ps(bp.add(16));
            for (r, pair) in acc.chunks_exact_mut(2).enumerate() {
                let av = _mm512_set1_ps(*a.get_unchecked((i0 + r) * k + p));
                pair[0] = _mm512_fmadd_ps(av, b0, pair[0]);
                pair[1] = _mm512_fmadd_ps(av, b1, pair[1]);
            }
        }
        for (r, pair) in acc.chunks_exact(2).enumerate() {
            let cp = c.as_mut_ptr().add((i0 + r) * n + j);
            _mm512_storeu_ps(cp, _mm512_add_ps(_mm512_loadu_ps(cp), pair[0]));
            let cp16 = cp.add(16);
            _mm512_storeu_ps(cp16, _mm512_add_ps(_mm512_loadu_ps(cp16), pair[1]));
        }
    }
}

/// Packs 3×3 stride-1 pad-1 patches of a batched channel-major input into
/// the `(in_ch·9) × (batch·h·w)` matrix `cols` (resized as needed).
///
/// Row `r = (i·3 + ky)·3 + kx` holds input channel `i` shifted by the
/// kernel tap `(ky, kx)`; column `j = s·h·w + y·w + x` is the output
/// position `(y, x)` of sample `s`. Out-of-bounds taps are materialised as
/// `0.0`, so a plain GEMM against the weight matrix computes the padded
/// convolution. The body is row-granular `copy_from_slice` shifts — no
/// per-element boundary tests.
pub fn im2col_3x3(
    input: &[f32],
    in_ch: usize,
    batch: usize,
    h: usize,
    w: usize,
    cols: &mut Vec<f32>,
) {
    let hw = h * w;
    let n = batch * hw;
    assert_eq!(input.len(), in_ch * n, "im2col: input shape mismatch");
    // Resize without zero-filling the retained prefix: the loop below
    // writes every element (padding is stored explicitly).
    if cols.len() != in_ch * 9 * n {
        cols.resize(in_ch * 9 * n, 0.0);
    }
    for i in 0..in_ch {
        for ky in 0..3usize {
            let dy = ky as isize - 1;
            for kx in 0..3usize {
                let dx = kx as isize - 1;
                let r = (i * 3 + ky) * 3 + kx;
                let dst_row = &mut cols[r * n..(r + 1) * n];
                for s in 0..batch {
                    let src = &input[(i * batch + s) * hw..(i * batch + s + 1) * hw];
                    let dst = &mut dst_row[s * hw..(s + 1) * hw];
                    for y in 0..h {
                        let iy = y as isize + dy;
                        let drow = &mut dst[y * w..(y + 1) * w];
                        if iy < 0 || iy >= h as isize {
                            drow.fill(0.0);
                            continue;
                        }
                        let srow = &src[iy as usize * w..(iy as usize + 1) * w];
                        match dx {
                            -1 => {
                                drow[0] = 0.0;
                                drow[1..].copy_from_slice(&srow[..w - 1]);
                            }
                            0 => drow.copy_from_slice(srow),
                            _ => {
                                drow[..w - 1].copy_from_slice(&srow[1..]);
                                drow[w - 1] = 0.0;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Inverse of [`im2col_3x3`] for the backward data pass: scatter-adds the
/// packed patch gradients `gcols` (`(in_ch·9) × (batch·h·w)`) back onto the
/// batched input gradient (`+=`, caller zeroes `grad_in`).
pub fn col2im_add_3x3(
    gcols: &[f32],
    in_ch: usize,
    batch: usize,
    h: usize,
    w: usize,
    grad_in: &mut [f32],
) {
    let hw = h * w;
    let n = batch * hw;
    assert_eq!(gcols.len(), in_ch * 9 * n, "col2im: gcols shape mismatch");
    assert_eq!(grad_in.len(), in_ch * n, "col2im: grad_in shape mismatch");
    for i in 0..in_ch {
        for ky in 0..3usize {
            let dy = ky as isize - 1;
            for kx in 0..3usize {
                let dx = kx as isize - 1;
                let r = (i * 3 + ky) * 3 + kx;
                let src_row = &gcols[r * n..(r + 1) * n];
                for s in 0..batch {
                    let dst = &mut grad_in[(i * batch + s) * hw..(i * batch + s + 1) * hw];
                    let src = &src_row[s * hw..(s + 1) * hw];
                    for y in 0..h {
                        let iy = y as isize + dy;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let srow = &src[y * w..(y + 1) * w];
                        let drow = &mut dst[iy as usize * w..(iy as usize + 1) * w];
                        match dx {
                            -1 => {
                                for (d, g) in drow[..w - 1].iter_mut().zip(&srow[1..]) {
                                    *d += g;
                                }
                            }
                            0 => {
                                for (d, g) in drow.iter_mut().zip(srow) {
                                    *d += g;
                                }
                            }
                            _ => {
                                for (d, g) in drow[1..].iter_mut().zip(&srow[..w - 1]) {
                                    *d += g;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `dst ← srcᵀ` for a row-major `rows × cols` matrix (`dst` resized to
/// `cols × rows`). Used to pack transposed weight matrices for the GEMMs
/// whose natural operand order is transposed.
pub fn transpose(src: &[f32], rows: usize, cols: usize, dst: &mut Vec<f32>) {
    assert_eq!(src.len(), rows * cols, "transpose: shape mismatch");
    // Resize without zero-filling the retained prefix: every element is
    // written below.
    if dst.len() != rows * cols {
        dst.resize(rows * cols, 0.0);
    }
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// Accumulates the sum of each row of the row-major `m×n` matrix `g` into
/// `acc[i]` (`+=`) — the bias gradient of a convolution.
pub fn add_row_sums(g: &[f32], m: usize, n: usize, acc: &mut [f32]) {
    assert_eq!(g.len(), m * n, "add_row_sums: G shape mismatch");
    assert_eq!(acc.len(), m, "add_row_sums: acc length mismatch");
    for (row, a) in acc.iter_mut().enumerate() {
        *a += deterministic_sum(&g[row * n..(row + 1) * n]);
    }
}

/// Deterministic 8-lane sum (same folding scheme as [`dot`]).
#[inline]
fn deterministic_sum(x: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = x.len() / LANES;
    for ci in 0..chunks {
        let xs: &[f32; LANES] = x[ci * LANES..(ci + 1) * LANES].try_into().expect("x chunk");
        for l in 0..LANES {
            acc[l] += xs[l];
        }
    }
    let mut sum = 0.0f32;
    for &lane in &acc {
        sum += lane;
    }
    for &xv in &x[chunks * LANES..] {
        sum += xv;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Naive triple-loop reference for `C += A·B`.
    fn gemm_ref(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] += acc;
            }
        }
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        // cheap deterministic pseudo-random values in [-1, 1]
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect()
    }

    #[test]
    fn gemm_matches_reference_on_microkernel_and_edges() {
        // Shapes chosen to exercise the 4×16 main path, both tails, and
        // blocking boundaries (n > NC).
        for &(m, n, k) in &[
            (4, 16, 8),
            (1, 1, 1),
            (3, 15, 7),
            (5, 17, 9),
            (8, 300, 144),
            (13, 259, 31),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c = fill(m * n, 3);
            let mut c_ref = c.clone();
            gemm(m, n, k, &a, &b, &mut c);
            gemm_ref(m, n, k, &a, &b, &mut c_ref);
            for (i, (x, y)) in c.iter().zip(c_ref.iter()).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                    "({m},{n},{k}) idx {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn gemm_nt_matches_reference() {
        let (m, n, k) = (7, 19, 133);
        let a = fill(m * k, 4);
        let bt = fill(n * k, 5);
        // reference: C += A·Bᵀ element-wise
        let mut c = vec![0.25f32; m * n];
        let mut c_ref = c.clone();
        gemm_nt(m, n, k, &a, &bt, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * bt[j * k + p];
                }
                c_ref[i * n + j] += acc;
            }
        }
        for (x, y) in c.iter().zip(c_ref.iter()) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_is_deterministic_across_calls() {
        let (m, n, k) = (11, 270, 90);
        let a = fill(m * k, 6);
        let b = fill(k * n, 7);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm(m, n, k, &a, &b, &mut c1);
        gemm(m, n, k, &a, &b, &mut c2);
        assert_eq!(c1, c2, "gemm must be bit-deterministic");
    }

    /// Row-panel threading must be bit-invisible: every output element is
    /// computed by the same kernel in the same order whatever the split.
    #[test]
    fn threaded_gemm_is_bitwise_equal_to_single_thread() {
        // m deliberately not a multiple of MR (edge rows) and n not a
        // multiple of NR (edge columns), so panel boundaries matter.
        let (m, n, k) = (22, 273, 37);
        let a = fill(m * k, 21);
        let b = fill(k * n, 22);
        for simd in [false, simd_active()] {
            let mut single = fill(m * n, 23);
            let mut nt_single = fill(m * n, 24);
            gemm_serial(simd, m, n, k, &a, &b, &mut single);
            let bt = fill(n * k, 25);
            gemm_nt_serial(simd, m, n, k, &a, &bt, &mut nt_single);
            for threads in [2usize, 3, 5] {
                let mut c = fill(m * n, 23);
                for_row_panels(m, n, k, &a, &mut c, threads, &|rows, ap, cp| {
                    gemm_serial(simd, rows, n, k, ap, b.as_slice(), cp)
                });
                assert_eq!(c, single, "gemm simd={simd} threads={threads}");
                let mut cnt = fill(m * n, 24);
                for_row_panels(m, n, k, &a, &mut cnt, threads, &|rows, ap, cp| {
                    gemm_nt_serial(simd, rows, n, k, ap, bt.as_slice(), cp)
                });
                assert_eq!(cnt, nt_single, "gemm_nt simd={simd} threads={threads}");
            }
        }
    }

    /// The 256- and 512-bit width tiers are one numeric path: identical
    /// per-element FMA chains, so bit-identical outputs (on hosts that
    /// have both).
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx512_tier_is_bitwise_equal_to_avx2_tier() {
        if !(avx2_available() && std::arch::is_x86_feature_detected!("avx512f")) {
            return; // nothing to compare on this host
        }
        // Shapes exercising 8-row tiles, the 4-row tail, scalar edge rows,
        // the 16-wide column fallback, and scalar edge columns.
        for &(m, n, k) in &[(32, 1024, 144), (22, 57, 31), (7, 16, 9), (9, 40, 12)] {
            let a = fill(m * k, 41);
            let b = fill(k * n, 42);
            let mut c256 = fill(m * n, 43);
            let mut c512 = c256.clone();
            let mut pack = Vec::new();
            // SAFETY: features checked above; slice lengths match shapes.
            unsafe {
                avx2::gemm(m, n, k, 0, &a, &b, &mut c256, &mut pack);
                avx512::gemm(m, n, k, &a, &b, &mut c512, &mut pack);
            }
            assert_eq!(c256, c512, "width tiers diverged at ({m},{n},{k})");
        }
    }

    /// The dispatched entry point must agree with the forced-scalar one to
    /// within FMA-rounding tolerance (exactly, when no SIMD is available).
    #[test]
    fn dispatched_gemm_matches_scalar_entry_point() {
        let (m, n, k) = (9, 35, 144);
        let a = fill(m * k, 31);
        let b = fill(k * n, 32);
        let mut fast = fill(m * n, 33);
        let mut slow = fast.clone();
        gemm(m, n, k, &a, &b, &mut fast);
        gemm_scalar(m, n, k, &a, &b, &mut slow);
        for (x, y) in fast.iter().zip(slow.iter()) {
            assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()), "{x} vs {y}");
        }
        if !simd_active() {
            assert_eq!(fast, slow, "without SIMD both entry points are one path");
        }
    }

    /// im2col followed by col2im must reproduce the multiplicity of each
    /// input cell (how many patches it participates in).
    #[test]
    fn im2col_col2im_roundtrip_counts_patch_membership() {
        let (in_ch, batch, h, w) = (2, 3, 4, 5);
        let input = vec![1.0f32; in_ch * batch * h * w];
        let mut cols = Vec::new();
        im2col_3x3(&input, in_ch, batch, h, w, &mut cols);
        let mut back = vec![0.0f32; input.len()];
        col2im_add_3x3(&cols, in_ch, batch, h, w, &mut back);
        // interior cells belong to 9 patches, edges 6, corners 4
        for s in 0..batch {
            for y in 0..h {
                for x in 0..w {
                    let expected = (3 - (y == 0) as usize - (y == h - 1) as usize)
                        * (3 - (x == 0) as usize - (x == w - 1) as usize);
                    let got = back[s * h * w + y * w + x];
                    assert_eq!(got, expected as f32, "({s},{y},{x})");
                }
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let src = fill(6 * 9, 8);
        let mut t = Vec::new();
        let mut back = Vec::new();
        transpose(&src, 6, 9, &mut t);
        transpose(&t, 9, 6, &mut back);
        assert_eq!(src, back);
    }

    #[test]
    fn row_sums_accumulate() {
        let c = vec![1.0f32, 1.0, 1.0, -2.0, -2.0, -2.0];
        let mut acc = vec![0.5f32, 0.0];
        add_row_sums(&c, 2, 3, &mut acc);
        assert_eq!(acc, vec![3.5, -6.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Blocked GEMM ≡ naive reference on random shapes, including
        /// degenerate 1-row / 1-column cases.
        #[test]
        fn gemm_equivalence_random_shapes(
            m in 1usize..24,
            n in 1usize..80,
            k in 1usize..48,
            seed in 0u64..1_000,
        ) {
            let a = fill(m * k, seed);
            let b = fill(k * n, seed.wrapping_add(1));
            let mut c = fill(m * n, seed.wrapping_add(2));
            let mut c_ref = c.clone();
            gemm(m, n, k, &a, &b, &mut c);
            gemm_ref(m, n, k, &a, &b, &mut c_ref);
            for (x, y) in c.iter().zip(c_ref.iter()) {
                prop_assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{} vs {}", x, y);
            }
        }

        /// Dispatched (SIMD where available) ≡ forced-scalar `gemm` on
        /// random shapes covering microkernel remainder rows/columns.
        #[test]
        fn simd_gemm_equals_scalar_random_shapes(
            m in 1usize..24,
            n in 1usize..80,
            k in 1usize..48,
            seed in 0u64..1_000,
        ) {
            let a = fill(m * k, seed.wrapping_add(7));
            let b = fill(k * n, seed.wrapping_add(8));
            let mut fast = fill(m * n, seed.wrapping_add(9));
            let mut slow = fast.clone();
            gemm(m, n, k, &a, &b, &mut fast);
            gemm_scalar(m, n, k, &a, &b, &mut slow);
            for (x, y) in fast.iter().zip(slow.iter()) {
                prop_assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()), "{} vs {}", x, y);
            }
        }

        /// Dispatched ≡ forced-scalar `gemm_nt`, including the `k % 8`
        /// scalar dot-product tail.
        #[test]
        fn simd_gemm_nt_equals_scalar_random_shapes(
            m in 1usize..16,
            n in 1usize..40,
            k in 1usize..160,
            seed in 0u64..1_000,
        ) {
            let a = fill(m * k, seed.wrapping_add(17));
            let bt = fill(n * k, seed.wrapping_add(18));
            let mut fast = fill(m * n, seed.wrapping_add(19));
            let mut slow = fast.clone();
            gemm_nt(m, n, k, &a, &bt, &mut fast);
            gemm_nt_scalar(m, n, k, &a, &bt, &mut slow);
            for (x, y) in fast.iter().zip(slow.iter()) {
                prop_assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()), "{} vs {}", x, y);
            }
        }
    }
}
