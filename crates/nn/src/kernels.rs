//! im2col + cache-blocked GEMM kernels behind the layer forward/backward
//! passes.
//!
//! The CMDN's convolutions are the hottest loops of the whole Everest
//! reproduction (Phase 1 trains on every sampled frame), so instead of the
//! textbook 6-deep scalar loop the layers lower convolution onto dense
//! matrix multiplication:
//!
//! 1. [`im2col_3x3`] packs every 3×3 input patch into a column of a
//!    `(in_ch·9) × (batch·h·w)` matrix (zero padding materialised as
//!    zeroes, so the GEMM needs no boundary tests);
//! 2. [`gemm`] multiplies the `out_ch × (in_ch·9)` weight matrix against
//!    the packed patches with cache blocking over the output columns and a
//!    register-blocked 4×16 microkernel that the compiler auto-vectorises;
//! 3. the backward data pass is the transposed GEMM followed by
//!    [`col2im_add_3x3`] (scatter-add of patch gradients), and the backward
//!    weight pass is [`gemm_nt`] (`C += A·Bᵀ`, a batch of long dot
//!    products) against the same packed patches.
//!
//! # Batched tensor layout
//!
//! Batched activations use a **channel-major-over-the-batch** layout:
//! element `(c, s, y, x)` of a `ch × batch × h × w` tensor lives at
//! `(c·batch + s)·h·w + y·w + x`. A single sample (`batch = 1`) degenerates
//! to the classic channel-major `[c][y][x]` layout, so the per-sample layer
//! API is the `batch = 1` special case of the batched one. The layout lets
//! one GEMM process a whole minibatch: the packed-patch matrix simply grows
//! wider (`batch·h·w` columns) while the weight matrix is unchanged.
//!
//! # Determinism
//!
//! Every kernel accumulates in a fixed order — the GEMM reduction dimension
//! ascends element-by-element, and [`gemm_nt`]'s dot products use a fixed
//! 8-lane accumulator folded in lane order — so results are bit-identical
//! across runs and independent of the blocking parameters. (They are *not*
//! bit-identical to the scalar reference: f32 addition is non-associative,
//! which is why the equivalence tests in [`crate::layers`] use a small
//! tolerance.)

/// Columns processed per cache block: `NC` patch columns of ≤ `in_ch·9`
/// rows keep the packed panel L2-resident while the microkernel streams
/// the weight rows over it.
const NC: usize = 256;
/// Microkernel rows (accumulator rows held in registers).
const MR: usize = 4;
/// Microkernel columns (two 8-lane vector registers per accumulator row).
const NR: usize = 16;

/// `C += A·B` for row-major `f32` matrices: `A` is `m×k`, `B` is `k×n`,
/// `C` is `m×n`.
///
/// Accumulation into `C` means callers can fold a bias pre-fill (forward)
/// or gradient accumulation (backward) into the same call. The reduction
/// runs over `p = 0..k` in ascending order for every output element, so the
/// result is deterministic and independent of the blocking.
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm: C shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Block over columns so the active B panel stays cache-resident.
    let mut j0 = 0;
    while j0 < n {
        let jb = NC.min(n - j0);
        let mut i0 = 0;
        while i0 + MR <= m {
            let mut j = j0;
            while j + NR <= j0 + jb {
                kernel_4x16(k, n, i0, j, a, b, c);
                j += NR;
            }
            if j < j0 + jb {
                kernel_edge(MR, j0 + jb - j, k, n, i0, j, a, b, c);
            }
            i0 += MR;
        }
        if i0 < m {
            kernel_edge(m - i0, jb, k, n, i0, j0, a, b, c);
        }
        j0 += jb;
    }
}

/// The register-blocked microkernel: `C[i0..i0+4][j..j+16] += A·B`.
///
/// Four broadcast rows of `A` against a 16-wide panel of `B`; the eight
/// 8-lane accumulators live in registers across the whole `k` loop.
#[inline]
fn kernel_4x16(k: usize, n: usize, i0: usize, j: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let a0 = &a[i0 * k..(i0 + 1) * k];
    let a1 = &a[(i0 + 1) * k..(i0 + 2) * k];
    let a2 = &a[(i0 + 2) * k..(i0 + 3) * k];
    let a3 = &a[(i0 + 3) * k..(i0 + 4) * k];
    let mut c0 = [0.0f32; NR];
    let mut c1 = [0.0f32; NR];
    let mut c2 = [0.0f32; NR];
    let mut c3 = [0.0f32; NR];
    for p in 0..k {
        let br: &[f32; NR] = b[p * n + j..p * n + j + NR].try_into().expect("B panel");
        let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
        for l in 0..NR {
            c0[l] += v0 * br[l];
            c1[l] += v1 * br[l];
            c2[l] += v2 * br[l];
            c3[l] += v3 * br[l];
        }
    }
    for (row, acc) in [c0, c1, c2, c3].iter().enumerate() {
        let cr = &mut c[(i0 + row) * n + j..(i0 + row) * n + j + NR];
        for l in 0..NR {
            cr[l] += acc[l];
        }
    }
}

/// Scalar edge kernel for the `m % 4` / `n % 16` tails. Same ascending-`p`
/// accumulation order per element as the main microkernel.
fn kernel_edge(
    mr: usize,
    nr: usize,
    k: usize,
    n: usize,
    i0: usize,
    j: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    for im in 0..mr {
        let ar = &a[(i0 + im) * k..(i0 + im + 1) * k];
        for jn in 0..nr {
            let mut acc = 0.0f32;
            for (p, &av) in ar.iter().enumerate() {
                acc += av * b[p * n + j + jn];
            }
            c[(i0 + im) * n + j + jn] += acc;
        }
    }
}

/// `C += A·Bᵀ` with `B` supplied row-major as `n×k`: `A` is `m×k`, `C` is
/// `m×n`. Each output element is a length-`k` dot product of two
/// contiguous rows.
///
/// This is the backward weight pass (`∇W += ∇out · colsᵀ`), where the
/// reduction dimension is the (large) number of patch columns. The dot
/// product uses eight parallel lanes folded in fixed lane order, so it is
/// deterministic (though ordered differently from [`gemm`]).
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A shape mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nt: C shape mismatch");
    for i in 0..m {
        let ar = &a[i * k..(i + 1) * k];
        for jn in 0..n {
            let br = &b[jn * k..(jn + 1) * k];
            c[i * n + jn] += dot(ar, br);
        }
    }
}

/// Deterministic 8-lane dot product (lanes folded in index order).
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = x.len() / LANES;
    for ci in 0..chunks {
        let xs: &[f32; LANES] = x[ci * LANES..(ci + 1) * LANES].try_into().expect("x chunk");
        let ys: &[f32; LANES] = y[ci * LANES..(ci + 1) * LANES].try_into().expect("y chunk");
        for l in 0..LANES {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut sum = 0.0f32;
    for l in 0..LANES {
        sum += acc[l];
    }
    for p in chunks * LANES..x.len() {
        sum += x[p] * y[p];
    }
    sum
}

/// Packs 3×3 stride-1 pad-1 patches of a batched channel-major input into
/// the `(in_ch·9) × (batch·h·w)` matrix `cols` (resized as needed).
///
/// Row `r = (i·3 + ky)·3 + kx` holds input channel `i` shifted by the
/// kernel tap `(ky, kx)`; column `j = s·h·w + y·w + x` is the output
/// position `(y, x)` of sample `s`. Out-of-bounds taps are materialised as
/// `0.0`, so a plain GEMM against the weight matrix computes the padded
/// convolution. The body is row-granular `copy_from_slice` shifts — no
/// per-element boundary tests.
pub fn im2col_3x3(
    input: &[f32],
    in_ch: usize,
    batch: usize,
    h: usize,
    w: usize,
    cols: &mut Vec<f32>,
) {
    let hw = h * w;
    let n = batch * hw;
    assert_eq!(input.len(), in_ch * n, "im2col: input shape mismatch");
    // Resize without zero-filling the retained prefix: the loop below
    // writes every element (padding is stored explicitly).
    if cols.len() != in_ch * 9 * n {
        cols.resize(in_ch * 9 * n, 0.0);
    }
    for i in 0..in_ch {
        for ky in 0..3usize {
            let dy = ky as isize - 1;
            for kx in 0..3usize {
                let dx = kx as isize - 1;
                let r = (i * 3 + ky) * 3 + kx;
                let dst_row = &mut cols[r * n..(r + 1) * n];
                for s in 0..batch {
                    let src = &input[(i * batch + s) * hw..(i * batch + s + 1) * hw];
                    let dst = &mut dst_row[s * hw..(s + 1) * hw];
                    for y in 0..h {
                        let iy = y as isize + dy;
                        let drow = &mut dst[y * w..(y + 1) * w];
                        if iy < 0 || iy >= h as isize {
                            drow.fill(0.0);
                            continue;
                        }
                        let srow = &src[iy as usize * w..(iy as usize + 1) * w];
                        match dx {
                            -1 => {
                                drow[0] = 0.0;
                                drow[1..].copy_from_slice(&srow[..w - 1]);
                            }
                            0 => drow.copy_from_slice(srow),
                            _ => {
                                drow[..w - 1].copy_from_slice(&srow[1..]);
                                drow[w - 1] = 0.0;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Inverse of [`im2col_3x3`] for the backward data pass: scatter-adds the
/// packed patch gradients `gcols` (`(in_ch·9) × (batch·h·w)`) back onto the
/// batched input gradient (`+=`, caller zeroes `grad_in`).
pub fn col2im_add_3x3(
    gcols: &[f32],
    in_ch: usize,
    batch: usize,
    h: usize,
    w: usize,
    grad_in: &mut [f32],
) {
    let hw = h * w;
    let n = batch * hw;
    assert_eq!(gcols.len(), in_ch * 9 * n, "col2im: gcols shape mismatch");
    assert_eq!(grad_in.len(), in_ch * n, "col2im: grad_in shape mismatch");
    for i in 0..in_ch {
        for ky in 0..3usize {
            let dy = ky as isize - 1;
            for kx in 0..3usize {
                let dx = kx as isize - 1;
                let r = (i * 3 + ky) * 3 + kx;
                let src_row = &gcols[r * n..(r + 1) * n];
                for s in 0..batch {
                    let dst = &mut grad_in[(i * batch + s) * hw..(i * batch + s + 1) * hw];
                    let src = &src_row[s * hw..(s + 1) * hw];
                    for y in 0..h {
                        let iy = y as isize + dy;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let srow = &src[y * w..(y + 1) * w];
                        let drow = &mut dst[iy as usize * w..(iy as usize + 1) * w];
                        match dx {
                            -1 => {
                                for (d, g) in drow[..w - 1].iter_mut().zip(&srow[1..]) {
                                    *d += g;
                                }
                            }
                            0 => {
                                for (d, g) in drow.iter_mut().zip(srow) {
                                    *d += g;
                                }
                            }
                            _ => {
                                for (d, g) in drow[1..].iter_mut().zip(&srow[..w - 1]) {
                                    *d += g;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `dst ← srcᵀ` for a row-major `rows × cols` matrix (`dst` resized to
/// `cols × rows`). Used to pack transposed weight matrices for the GEMMs
/// whose natural operand order is transposed.
pub fn transpose(src: &[f32], rows: usize, cols: usize, dst: &mut Vec<f32>) {
    assert_eq!(src.len(), rows * cols, "transpose: shape mismatch");
    // Resize without zero-filling the retained prefix: every element is
    // written below.
    if dst.len() != rows * cols {
        dst.resize(rows * cols, 0.0);
    }
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// Adds `bias[i]` to every element of row `i` of the row-major `m×n`
/// matrix `c` (the broadcast bias of a convolution output).
pub fn add_row_bias(c: &mut [f32], m: usize, n: usize, bias: &[f32]) {
    assert_eq!(c.len(), m * n, "add_row_bias: C shape mismatch");
    assert_eq!(bias.len(), m, "add_row_bias: bias length mismatch");
    for (row, &b) in bias.iter().enumerate() {
        for v in &mut c[row * n..(row + 1) * n] {
            *v += b;
        }
    }
}

/// Accumulates the sum of each row of the row-major `m×n` matrix `g` into
/// `acc[i]` (`+=`) — the bias gradient of a convolution.
pub fn add_row_sums(g: &[f32], m: usize, n: usize, acc: &mut [f32]) {
    assert_eq!(g.len(), m * n, "add_row_sums: G shape mismatch");
    assert_eq!(acc.len(), m, "add_row_sums: acc length mismatch");
    for (row, a) in acc.iter_mut().enumerate() {
        *a += deterministic_sum(&g[row * n..(row + 1) * n]);
    }
}

/// Deterministic 8-lane sum (same folding scheme as [`dot`]).
#[inline]
fn deterministic_sum(x: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = x.len() / LANES;
    for ci in 0..chunks {
        let xs: &[f32; LANES] = x[ci * LANES..(ci + 1) * LANES].try_into().expect("x chunk");
        for l in 0..LANES {
            acc[l] += xs[l];
        }
    }
    let mut sum = 0.0f32;
    for l in 0..LANES {
        sum += acc[l];
    }
    for p in chunks * LANES..x.len() {
        sum += x[p];
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Naive triple-loop reference for `C += A·B`.
    fn gemm_ref(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] += acc;
            }
        }
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        // cheap deterministic pseudo-random values in [-1, 1]
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect()
    }

    #[test]
    fn gemm_matches_reference_on_microkernel_and_edges() {
        // Shapes chosen to exercise the 4×16 main path, both tails, and
        // blocking boundaries (n > NC).
        for &(m, n, k) in &[
            (4, 16, 8),
            (1, 1, 1),
            (3, 15, 7),
            (5, 17, 9),
            (8, 300, 144),
            (13, 259, 31),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c = fill(m * n, 3);
            let mut c_ref = c.clone();
            gemm(m, n, k, &a, &b, &mut c);
            gemm_ref(m, n, k, &a, &b, &mut c_ref);
            for (i, (x, y)) in c.iter().zip(c_ref.iter()).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                    "({m},{n},{k}) idx {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn gemm_nt_matches_reference() {
        let (m, n, k) = (7, 19, 133);
        let a = fill(m * k, 4);
        let bt = fill(n * k, 5);
        // reference: C += A·Bᵀ element-wise
        let mut c = vec![0.25f32; m * n];
        let mut c_ref = c.clone();
        gemm_nt(m, n, k, &a, &bt, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * bt[j * k + p];
                }
                c_ref[i * n + j] += acc;
            }
        }
        for (x, y) in c.iter().zip(c_ref.iter()) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_is_deterministic_across_calls() {
        let (m, n, k) = (11, 270, 90);
        let a = fill(m * k, 6);
        let b = fill(k * n, 7);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm(m, n, k, &a, &b, &mut c1);
        gemm(m, n, k, &a, &b, &mut c2);
        assert_eq!(c1, c2, "gemm must be bit-deterministic");
    }

    /// im2col followed by col2im must reproduce the multiplicity of each
    /// input cell (how many patches it participates in).
    #[test]
    fn im2col_col2im_roundtrip_counts_patch_membership() {
        let (in_ch, batch, h, w) = (2, 3, 4, 5);
        let input = vec![1.0f32; in_ch * batch * h * w];
        let mut cols = Vec::new();
        im2col_3x3(&input, in_ch, batch, h, w, &mut cols);
        let mut back = vec![0.0f32; input.len()];
        col2im_add_3x3(&cols, in_ch, batch, h, w, &mut back);
        // interior cells belong to 9 patches, edges 6, corners 4
        for s in 0..batch {
            for y in 0..h {
                for x in 0..w {
                    let expected = (3 - (y == 0) as usize - (y == h - 1) as usize)
                        * (3 - (x == 0) as usize - (x == w - 1) as usize);
                    let got = back[s * h * w + y * w + x];
                    assert_eq!(got, expected as f32, "({s},{y},{x})");
                }
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let src = fill(6 * 9, 8);
        let mut t = Vec::new();
        let mut back = Vec::new();
        transpose(&src, 6, 9, &mut t);
        transpose(&t, 9, 6, &mut back);
        assert_eq!(src, back);
    }

    #[test]
    fn row_bias_and_sums() {
        let mut c = vec![0.0f32; 2 * 3];
        add_row_bias(&mut c, 2, 3, &[1.0, -2.0]);
        assert_eq!(c, vec![1.0, 1.0, 1.0, -2.0, -2.0, -2.0]);
        let mut acc = vec![0.5f32, 0.0];
        add_row_sums(&c, 2, 3, &mut acc);
        assert_eq!(acc, vec![3.5, -6.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Blocked GEMM ≡ naive reference on random shapes, including
        /// degenerate 1-row / 1-column cases.
        #[test]
        fn gemm_equivalence_random_shapes(
            m in 1usize..24,
            n in 1usize..80,
            k in 1usize..48,
            seed in 0u64..1_000,
        ) {
            let a = fill(m * k, seed);
            let b = fill(k * n, seed.wrapping_add(1));
            let mut c = fill(m * n, seed.wrapping_add(2));
            let mut c_ref = c.clone();
            gemm(m, n, k, &a, &b, &mut c);
            gemm_ref(m, n, k, &a, &b, &mut c_ref);
            for (x, y) in c.iter().zip(c_ref.iter()) {
                prop_assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{} vs {}", x, y);
            }
        }
    }
}
