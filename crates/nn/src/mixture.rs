//! Gaussian mixtures: the CMDN's output representation.
//!
//! §3.2 of the paper: the MDN layer emits, per frame, the parameters of `g`
//! Gaussians (mean μ, variance σ²) and their weights π. Before the mixture
//! becomes an x-tuple, Everest (a) truncates each Gaussian at 3σ
//! ("probabilities beyond 3σ are set to zero and evenly distributed to the
//! rest", i.e. renormalised), and (b) quantizes the continuous density to a
//! discrete distribution — integer support for counting scores, a
//! user-provided step size otherwise.

use serde::{Deserialize, Serialize};

/// One Gaussian component of a mixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Mixture weight π (non-negative; the mixture normalises them).
    pub weight: f64,
    /// Mean μ.
    pub mean: f64,
    /// Standard deviation σ (strictly positive).
    pub std: f64,
}

/// A Gaussian mixture distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixture {
    components: Vec<Component>,
}

impl GaussianMixture {
    /// Builds a mixture, normalising the weights to sum to one.
    ///
    /// Panics if no component has positive weight or any σ ≤ 0.
    pub fn new(mut components: Vec<Component>) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        let total: f64 = components.iter().map(|c| c.weight.max(0.0)).sum();
        assert!(total > 0.0, "mixture needs positive total weight");
        for c in &mut components {
            assert!(c.std > 0.0, "component std must be positive");
            assert!(
                c.mean.is_finite() && c.std.is_finite(),
                "non-finite component"
            );
            c.weight = c.weight.max(0.0) / total;
        }
        GaussianMixture { components }
    }

    /// A single Gaussian as a 1-component mixture.
    pub fn single(mean: f64, std: f64) -> Self {
        GaussianMixture::new(vec![Component {
            weight: 1.0,
            mean,
            std,
        }])
    }

    /// The normalised components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Mixture mean: Σ π_j μ_j (the paper's ¯μ).
    pub fn mean(&self) -> f64 {
        self.components.iter().map(|c| c.weight * c.mean).sum()
    }

    /// Total variance: Σ π_j (σ_j² + μ_j²) − ¯μ² (the paper's ¯σ², §3.4).
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        let second: f64 = self
            .components
            .iter()
            .map(|c| c.weight * (c.std * c.std + c.mean * c.mean))
            .sum();
        (second - m * m).max(0.0)
    }

    /// Probability density at `x` (untruncated).
    pub fn pdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|c| {
                let z = (x - c.mean) / c.std;
                c.weight * (-0.5 * z * z).exp() / (c.std * (2.0 * std::f64::consts::PI).sqrt())
            })
            .sum()
    }

    /// CDF at `x` (untruncated).
    pub fn cdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * normal_cdf(x, c.mean, c.std))
            .sum()
    }

    /// CDF at `x` with each component truncated at ±3σ and renormalised —
    /// the paper's truncation rule (following Chopin \[17\]).
    pub fn truncated_cdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * truncated_normal_cdf(x, c.mean, c.std))
            .sum()
    }

    /// Smallest and largest support points after 3σ truncation.
    pub fn truncated_range(&self) -> (f64, f64) {
        let lo = self
            .components
            .iter()
            .map(|c| c.mean - 3.0 * c.std)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .components
            .iter()
            .map(|c| c.mean + 3.0 * c.std)
            .fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    }

    /// Quantizes the truncated mixture into probability masses over the
    /// bucket grid `value_k = k * step` for `k = 0 ..= max_bucket`.
    ///
    /// Bucket `k` receives the truncated mass of `((k−½)·step, (k+½)·step]`;
    /// the first and last buckets absorb the tails, so the masses always sum
    /// to 1. With `step = 1` this is the paper's quantization for counting
    /// scores (non-negative integer support).
    pub fn quantize(&self, step: f64, max_bucket: usize) -> Vec<f64> {
        assert!(step > 0.0, "quantization step must be positive");
        let n = max_bucket + 1;
        let mut masses = Vec::with_capacity(n);
        let mut prev_cdf = 0.0; // truncated CDF at -inf is 0; bucket 0 absorbs the left tail
        for k in 0..n {
            let upper = (k as f64 + 0.5) * step;
            let cdf = if k == max_bucket {
                1.0
            } else {
                self.truncated_cdf(upper)
            };
            masses.push((cdf - prev_cdf).max(0.0));
            prev_cdf = cdf;
        }
        // Guard against pathological rounding: renormalise exactly.
        let total: f64 = masses.iter().sum();
        if total > 0.0 {
            for m in &mut masses {
                *m /= total;
            }
        } else {
            // Degenerate mixture entirely above the grid: all mass on top bucket.
            masses[max_bucket] = 1.0;
        }
        masses
    }
}

/// Standard normal CDF via the error function.
pub fn normal_cdf(x: f64, mean: f64, std: f64) -> f64 {
    0.5 * (1.0 + erf((x - mean) / (std * std::f64::consts::SQRT_2)))
}

/// CDF of a normal truncated to ±3σ around its mean, renormalised.
pub fn truncated_normal_cdf(x: f64, mean: f64, std: f64) -> f64 {
    let lo = mean - 3.0 * std;
    let hi = mean + 3.0 * std;
    if x < lo {
        return 0.0;
    }
    if x >= hi {
        return 1.0;
    }
    // Φ(3) − Φ(−3) = 0.9973…
    const MASS_3SIGMA: f64 = 0.997_300_203_936_740_2;
    let base = normal_cdf(x, mean, std) - normal_cdf(lo, mean, std);
    (base / MASS_3SIGMA).clamp(0.0, 1.0)
}

/// Error function, Abramowitz & Stegun 7.1.26 (|error| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn erf_reference_values() {
        assert!(close(erf(0.0), 0.0, 1e-7));
        assert!(close(erf(1.0), 0.8427007929, 2e-7));
        assert!(close(erf(-1.0), -0.8427007929, 2e-7));
        assert!(close(erf(2.0), 0.9953222650, 2e-7));
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!(close(normal_cdf(0.0, 0.0, 1.0), 0.5, 1e-9));
        assert!(close(
            normal_cdf(1.5, 0.0, 1.0) + normal_cdf(-1.5, 0.0, 1.0),
            1.0,
            1e-9
        ));
    }

    #[test]
    fn weights_are_normalised() {
        let m = GaussianMixture::new(vec![
            Component {
                weight: 2.0,
                mean: 0.0,
                std: 1.0,
            },
            Component {
                weight: 6.0,
                mean: 5.0,
                std: 1.0,
            },
        ]);
        assert!(close(m.components()[0].weight, 0.25, 1e-12));
        assert!(close(m.components()[1].weight, 0.75, 1e-12));
    }

    #[test]
    #[should_panic(expected = "std must be positive")]
    fn rejects_nonpositive_std() {
        let _ = GaussianMixture::new(vec![Component {
            weight: 1.0,
            mean: 0.0,
            std: 0.0,
        }]);
    }

    #[test]
    fn mean_and_variance_single() {
        let m = GaussianMixture::single(3.0, 2.0);
        assert!(close(m.mean(), 3.0, 1e-12));
        assert!(close(m.variance(), 4.0, 1e-12));
    }

    #[test]
    fn mixture_moments_match_formula() {
        // 0.5·N(0,1) + 0.5·N(4,1): mean 2, var = E[σ²] + Var(μ) = 1 + 4 = 5.
        let m = GaussianMixture::new(vec![
            Component {
                weight: 0.5,
                mean: 0.0,
                std: 1.0,
            },
            Component {
                weight: 0.5,
                mean: 4.0,
                std: 1.0,
            },
        ]);
        assert!(close(m.mean(), 2.0, 1e-12));
        assert!(close(m.variance(), 5.0, 1e-12));
    }

    #[test]
    fn moments_match_monte_carlo() {
        use rand::{Rng, SeedableRng};
        let m = GaussianMixture::new(vec![
            Component {
                weight: 0.3,
                mean: 1.0,
                std: 0.5,
            },
            Component {
                weight: 0.7,
                mean: 6.0,
                std: 2.0,
            },
        ]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let c = if rng.gen::<f64>() < 0.3 {
                m.components()[0]
            } else {
                m.components()[1]
            };
            // Box–Muller
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let x = c.mean + c.std * z;
            sum += x;
            sumsq += x * x;
        }
        let mc_mean = sum / n as f64;
        let mc_var = sumsq / n as f64 - mc_mean * mc_mean;
        assert!(
            close(m.mean(), mc_mean, 0.03),
            "{} vs {}",
            m.mean(),
            mc_mean
        );
        assert!(
            close(m.variance(), mc_var, 0.1),
            "{} vs {}",
            m.variance(),
            mc_var
        );
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let m = GaussianMixture::new(vec![
            Component {
                weight: 0.4,
                mean: 2.0,
                std: 1.0,
            },
            Component {
                weight: 0.6,
                mean: 8.0,
                std: 2.5,
            },
        ]);
        let mut prev = 0.0;
        for i in -50..100 {
            let x = i as f64 * 0.3;
            let c = m.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12, "CDF must be monotone");
            prev = c;
        }
    }

    #[test]
    fn truncated_cdf_saturates_at_3_sigma() {
        let m = GaussianMixture::single(10.0, 2.0);
        assert_eq!(m.truncated_cdf(10.0 - 6.1), 0.0);
        assert_eq!(m.truncated_cdf(10.0 + 6.0), 1.0);
        // erf approximation carries ~1.5e-7 absolute error
        assert!(close(m.truncated_cdf(10.0), 0.5, 1e-6));
    }

    #[test]
    fn quantize_masses_sum_to_one() {
        let m = GaussianMixture::new(vec![
            Component {
                weight: 0.5,
                mean: 2.3,
                std: 0.8,
            },
            Component {
                weight: 0.5,
                mean: 7.1,
                std: 1.4,
            },
        ]);
        let masses = m.quantize(1.0, 15);
        assert_eq!(masses.len(), 16);
        assert!(close(masses.iter().sum::<f64>(), 1.0, 1e-9));
        assert!(masses.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn quantize_concentrates_near_mean() {
        let m = GaussianMixture::single(5.0, 0.3);
        let masses = m.quantize(1.0, 10);
        let argmax = masses
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 5);
        assert!(masses[5] > 0.85);
    }

    #[test]
    fn quantize_tail_absorption() {
        // Mean far below 0: all mass lands in bucket 0.
        let m = GaussianMixture::single(-20.0, 1.0);
        let masses = m.quantize(1.0, 5);
        assert!(close(masses[0], 1.0, 1e-9));
        // Mean far above the grid: all mass in the last bucket.
        let m = GaussianMixture::single(100.0, 1.0);
        let masses = m.quantize(1.0, 5);
        assert!(close(masses[5], 1.0, 1e-9));
    }

    #[test]
    fn quantize_respects_step_size() {
        let m = GaussianMixture::single(2.0, 0.4);
        let masses = m.quantize(0.5, 20); // grid 0, 0.5, …, 10
        let argmax = masses
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 4); // bucket 4 ↔ value 2.0
    }

    #[test]
    fn truncated_range_covers_components() {
        let m = GaussianMixture::new(vec![
            Component {
                weight: 0.5,
                mean: 0.0,
                std: 1.0,
            },
            Component {
                weight: 0.5,
                mean: 10.0,
                std: 2.0,
            },
        ]);
        let (lo, hi) = m.truncated_range();
        assert!(close(lo, -3.0, 1e-12));
        assert!(close(hi, 16.0, 1e-12));
    }
}
