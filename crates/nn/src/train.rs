//! Mini-batch CMDN training, hold-out evaluation, and the hyper-parameter
//! grid search of §3.2/§3.5.
//!
//! The paper trains 12 CMDNs over the grid g = {5, 8, 12, 15} ×
//! h = {20, 30, 40} and keeps the one with the smallest hold-out negative
//! log-likelihood. [`HyperGrid::paper`] reproduces that grid;
//! [`HyperGrid::default`] is the scaled-down grid used by the experiments
//! (the protocol — train all, select by hold-out NLL, discard the rest — is
//! identical).
//!
//! Gradients are data-parallel: each worker owns a clone of the model,
//! pushes its share of the batch through the **batched** layer passes
//! (one im2col + GEMM per layer per microbatch — see [`crate::kernels`])
//! accumulating gradients, and the main thread sums the flattened
//! gradients and applies one Adam step.

use crate::cmdn::{Cmdn, CmdnConfig};
use crate::mixture::GaussianMixture;
use crate::optim::Adam;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A labelled sample: flattened grayscale pixels and the oracle score.
pub type Sample = (Vec<f32>, f64);

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum training epochs.
    pub epochs: usize,
    /// Minibatch size per Adam step.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Data-parallel gradient workers per batch.
    pub num_threads: usize,
    /// Early-stopping patience in epochs (0 disables early stopping).
    pub patience: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 64,
            lr: 2e-3,
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            patience: 6,
            seed: 0,
        }
    }
}

/// A trained model together with its selection statistics.
#[derive(Debug, Clone)]
pub struct TrainedCmdn {
    /// The best-holdout-NLL snapshot of the trained model.
    pub model: Cmdn,
    /// Mean hold-out NLL of the selected (best) epoch.
    pub holdout_nll: f64,
    /// Epochs actually run (≤ `epochs` under early stopping).
    pub epochs_run: usize,
}

/// Trains one CMDN configuration to convergence (or early stop) and returns
/// the best-hold-out snapshot.
pub fn train_cmdn(
    cfg: CmdnConfig,
    tcfg: &TrainConfig,
    train: &[Sample],
    holdout: &[Sample],
) -> TrainedCmdn {
    assert!(!train.is_empty(), "empty training set");
    assert!(tcfg.batch_size >= 1 && tcfg.epochs >= 1 && tcfg.num_threads >= 1);
    let mut model = Cmdn::new(cfg);
    let mut opt = Adam::new(tcfg.lr, model.num_params());
    const SHUFFLE_SALT: u64 = 0x7_2a1f_5eed;
    let mut rng = StdRng::seed_from_u64(tcfg.seed ^ SHUFFLE_SALT);
    let mut order: Vec<usize> = (0..train.len()).collect();

    let mut best_nll = f64::INFINITY;
    let mut best_params = model.params_flat();
    let mut since_best = 0usize;
    let mut epochs_run = 0usize;

    for _epoch in 0..tcfg.epochs {
        epochs_run += 1;
        order.shuffle(&mut rng);
        for batch in order.chunks(tcfg.batch_size) {
            let grads = parallel_batch_grads(&model, train, batch, tcfg.num_threads);
            let mut params = model.params_flat();
            opt.step(&mut params, &grads);
            model.set_params_flat(&params);
        }
        let nll = if holdout.is_empty() {
            mean_nll(&model, train, tcfg.num_threads)
        } else {
            mean_nll(&model, holdout, tcfg.num_threads)
        };
        if nll < best_nll {
            best_nll = nll;
            best_params = model.params_flat();
            since_best = 0;
        } else {
            since_best += 1;
            if tcfg.patience > 0 && since_best >= tcfg.patience {
                break;
            }
        }
    }
    model.set_params_flat(&best_params);
    TrainedCmdn {
        model,
        holdout_nll: best_nll,
        epochs_run,
    }
}

/// Runs `f` over up to `threads` contiguous chunks of `items` on scoped
/// worker threads, returning the per-chunk results in chunk order — the
/// shared scaffolding behind every data-parallel pass here and in
/// `everest-core` (gradients, evaluation, batched inference, frame
/// scoring). Returns an empty vector for empty `items`; a panicking
/// worker propagates with `<label> worker panicked`.
pub fn parallel_chunks<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    label: &str,
    f: impl Fn(&[T]) -> R + Sync,
) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(items.len()).max(1);
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || f(part)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| panic!("{label} worker panicked"))
            })
            .collect()
    })
}

/// Upper bound on samples per batched layer pass. The packed-patch
/// matrix grows linearly with the microbatch, so small microbatches keep
/// it cache-resident — which empirically beats wider GEMMs: on the
/// reference machine a 3-epoch 32×32 train runs ~0.36 s at 2–4
/// samples/pass vs ~0.50 s at 32 (first-layer im2col is ~37 KB per
/// sample). 4 still amortises the per-call packing/alloc overhead.
const MICROBATCH: usize = 4;

/// Packs inputs into one sample-major buffer (cleared first), asserting
/// each sample has the model's input length — concatenation would
/// otherwise silently misalign mis-sized samples.
fn pack_inputs<'a>(
    inputs: impl Iterator<Item = &'a Vec<f32>>,
    sample_len: usize,
    xs: &mut Vec<f32>,
) {
    xs.clear();
    for x in inputs {
        assert_eq!(x.len(), sample_len, "CMDN input size mismatch");
        xs.extend_from_slice(x);
    }
}

/// Packs samples into one sample-major buffer + target vector.
fn pack_samples<'a>(
    samples: impl Iterator<Item = &'a Sample> + Clone,
    sample_len: usize,
    xs: &mut Vec<f32>,
    ys: &mut Vec<f64>,
) {
    pack_inputs(samples.clone().map(|(x, _)| x), sample_len, xs);
    ys.clear();
    ys.extend(samples.map(|(_, y)| y));
}

/// Sums per-sample gradients over `batch` (indices into `data`), averaged by
/// batch size, computed across `threads` workers. Each worker pushes its
/// share through whole-minibatch GEMMs ([`Cmdn::train_step_batch`]).
fn parallel_batch_grads(
    model: &Cmdn,
    data: &[Sample],
    batch: &[usize],
    threads: usize,
) -> Vec<f32> {
    let partials: Vec<Vec<f32>> = parallel_chunks(batch, threads, "grad", |idxs| {
        let mut worker = model.clone();
        worker.zero_grads();
        let ilen = worker.input_len();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for sub in idxs.chunks(MICROBATCH) {
            pack_samples(sub.iter().map(|&i| &data[i]), ilen, &mut xs, &mut ys);
            let _ = worker.train_step_batch(&xs, &ys);
        }
        worker.grads_flat()
    });
    let n = batch.len() as f32;
    let mut total = partials[0].clone();
    for p in &partials[1..] {
        for (t, v) in total.iter_mut().zip(p.iter()) {
            *t += v;
        }
    }
    for t in &mut total {
        *t /= n;
    }
    total
}

/// Mean NLL over a dataset, evaluated in parallel with batched forwards.
pub fn mean_nll(model: &Cmdn, data: &[Sample], threads: usize) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    let sums: Vec<f64> = parallel_chunks(data, threads, "eval", |part| {
        let mut worker = model.clone();
        let ilen = worker.input_len();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut sum = 0.0f64;
        for sub in part.chunks(MICROBATCH) {
            pack_samples(sub.iter(), ilen, &mut xs, &mut ys);
            sum += worker.eval_nll_batch(&xs, &ys).iter().sum::<f64>();
        }
        sum
    });
    sums.iter().sum::<f64>() / data.len() as f64
}

/// Batch inference: one mixture per input, computed in parallel with
/// batched forwards ([`Cmdn::predict_many`]).
pub fn predict_batch(model: &Cmdn, inputs: &[Vec<f32>], threads: usize) -> Vec<GaussianMixture> {
    let parts: Vec<Vec<GaussianMixture>> = parallel_chunks(inputs, threads, "predict", |part| {
        let mut worker = model.clone();
        let ilen = worker.input_len();
        let mut out = Vec::with_capacity(part.len());
        let mut xs = Vec::new();
        for sub in part.chunks(MICROBATCH) {
            pack_inputs(sub.iter(), ilen, &mut xs);
            out.extend(worker.predict_many(&xs));
        }
        out
    });
    parts.into_iter().flatten().collect()
}

/// The (g, h) hyper-parameter grid of §3.5.
#[derive(Debug, Clone)]
pub struct HyperGrid {
    /// Candidate numbers of Gaussians `g`.
    pub gaussians: Vec<usize>,
    /// Candidate MDN hidden widths `h`.
    pub hidden: Vec<usize>,
}

impl Default for HyperGrid {
    /// Scaled-down default grid (2 × 2 = 4 models).
    fn default() -> Self {
        HyperGrid {
            gaussians: vec![3, 5],
            hidden: vec![24, 32],
        }
    }
}

impl HyperGrid {
    /// The paper's full grid: 4 × 3 = 12 models.
    pub fn paper() -> Self {
        HyperGrid {
            gaussians: vec![5, 8, 12, 15],
            hidden: vec![20, 30, 40],
        }
    }

    /// A single-model "grid" for fast tests.
    pub fn single(g: usize, h: usize) -> Self {
        HyperGrid {
            gaussians: vec![g],
            hidden: vec![h],
        }
    }

    /// Number of (g, h) configurations in the grid.
    pub fn len(&self) -> usize {
        self.gaussians.len() * self.hidden.len()
    }

    /// True when either axis of the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.gaussians.is_empty() || self.hidden.is_empty()
    }
}

/// Result of a grid search: the selected model plus the per-config NLLs
/// (useful for reporting and ablations).
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The smallest-holdout-NLL model of the grid.
    pub best: TrainedCmdn,
    /// `(g, h, holdout_nll)` for every configuration evaluated.
    pub evaluated: Vec<(usize, usize, f64)>,
    /// Total training epochs across all configurations (cost accounting).
    pub total_epochs: usize,
}

/// Trains every configuration in the grid and keeps the smallest-NLL model
/// (§3.2: "The model with the smallest negative log-likelihood is chosen
/// and the rest are discarded").
pub fn grid_search(
    grid: &HyperGrid,
    base: &CmdnConfig,
    tcfg: &TrainConfig,
    train: &[Sample],
    holdout: &[Sample],
) -> TrainOutcome {
    assert!(!grid.is_empty(), "empty hyper-parameter grid");
    let mut best: Option<TrainedCmdn> = None;
    let mut evaluated = Vec::with_capacity(grid.len());
    let mut total_epochs = 0usize;
    for &g in &grid.gaussians {
        for &h in &grid.hidden {
            let cfg = CmdnConfig {
                num_gaussians: g,
                hidden: h,
                ..base.clone()
            };
            let trained = train_cmdn(cfg, tcfg, train, holdout);
            evaluated.push((g, h, trained.holdout_nll));
            total_epochs += trained.epochs_run;
            let better = best
                .as_ref()
                .is_none_or(|b| trained.holdout_nll < b.holdout_nll);
            if better {
                best = Some(trained);
            }
        }
    }
    TrainOutcome {
        best: best.expect("non-empty grid"),
        evaluated,
        total_epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Synthetic learnable task: constant-intensity 8×8 frames; the target
    /// score is `10 × intensity + noise`. The CMDN must learn to read the
    /// brightness.
    fn brightness_dataset(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let v: f32 = rng.gen_range(0.0..1.0);
                let y = 10.0 * v as f64 + 0.3 * (rng.gen::<f64>() - 0.5);
                (vec![v; 64], y)
            })
            .collect()
    }

    fn tiny_cfg(g: usize, h: usize) -> CmdnConfig {
        CmdnConfig {
            input: (8, 8),
            conv_channels: vec![4],
            hidden: h,
            num_gaussians: g,
            sigma_min: 0.2,
            target_range: (0.0, 10.0),
            seed: 3,
        }
    }

    fn fast_tcfg() -> TrainConfig {
        TrainConfig {
            epochs: 12,
            batch_size: 32,
            lr: 5e-3,
            num_threads: 4,
            patience: 0,
            seed: 1,
        }
    }

    #[test]
    fn training_reduces_holdout_nll() {
        let train = brightness_dataset(300, 1);
        let holdout = brightness_dataset(80, 2);
        let cfg = tiny_cfg(3, 16);
        let untrained = mean_nll(&Cmdn::new(cfg.clone()), &holdout, 2);
        let trained = train_cmdn(cfg, &fast_tcfg(), &train, &holdout);
        assert!(
            trained.holdout_nll < untrained - 0.3,
            "training should improve NLL markedly: {untrained} → {}",
            trained.holdout_nll
        );
    }

    #[test]
    fn trained_model_mean_tracks_target() {
        let train = brightness_dataset(400, 3);
        let holdout = brightness_dataset(80, 4);
        let trained = train_cmdn(tiny_cfg(3, 16), &fast_tcfg(), &train, &holdout);
        let mut model = trained.model;
        let lo = model.predict(&vec![0.1f32; 64]).mean();
        let hi = model.predict(&vec![0.9f32; 64]).mean();
        assert!(
            hi - lo > 4.0,
            "predicted means should separate bright from dark: {lo} vs {hi}"
        );
    }

    #[test]
    fn parallel_grads_match_serial() {
        let data = brightness_dataset(16, 5);
        let model = Cmdn::new(tiny_cfg(2, 8));
        let batch: Vec<usize> = (0..16).collect();
        let g1 = parallel_batch_grads(&model, &data, &batch, 1);
        let g4 = parallel_batch_grads(&model, &data, &batch, 4);
        let max_diff = g1
            .iter()
            .zip(g4.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-4, "parallel gradient deviates by {max_diff}");
    }

    #[test]
    fn predict_batch_matches_sequential() {
        let model = Cmdn::new(tiny_cfg(2, 8));
        let inputs: Vec<Vec<f32>> = (0..9).map(|i| vec![i as f32 * 0.1; 64]).collect();
        let par = predict_batch(&model, &inputs, 3);
        let mut m = model.clone();
        for (i, x) in inputs.iter().enumerate() {
            let seq = m.predict(x);
            assert_eq!(par[i], seq, "mismatch at input {i}");
        }
    }

    #[test]
    fn grid_search_selects_min_nll() {
        let train = brightness_dataset(150, 6);
        let holdout = brightness_dataset(50, 7);
        let grid = HyperGrid {
            gaussians: vec![2, 3],
            hidden: vec![8],
        };
        let out = grid_search(&grid, &tiny_cfg(2, 8), &fast_tcfg(), &train, &holdout);
        assert_eq!(out.evaluated.len(), 2);
        let min = out
            .evaluated
            .iter()
            .map(|&(_, _, nll)| nll)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(out.best.holdout_nll, min);
    }

    #[test]
    fn early_stopping_halts() {
        let train = brightness_dataset(60, 8);
        let holdout = brightness_dataset(30, 9);
        let tcfg = TrainConfig {
            epochs: 60,
            patience: 2,
            ..fast_tcfg()
        };
        let trained = train_cmdn(tiny_cfg(2, 8), &tcfg, &train, &holdout);
        assert!(trained.epochs_run <= 60);
    }

    #[test]
    // The per-sample size assert fires inside a worker thread; the join
    // surfaces it as a worker panic. The lengths sum to 128 = 2×64, so
    // only a per-sample check (not the packed total) can catch this.
    #[should_panic(expected = "predict worker panicked")]
    fn predict_batch_rejects_mis_sized_samples() {
        let model = Cmdn::new(tiny_cfg(2, 8)); // input_len = 64
        let inputs = vec![vec![0.0f32; 32], vec![0.0f32; 96]];
        let _ = predict_batch(&model, &inputs, 1);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let model = Cmdn::new(tiny_cfg(2, 8));
        assert!(predict_batch(&model, &[], 4).is_empty());
        assert!(mean_nll(&model, &[], 4).is_nan());
    }

    #[test]
    fn grid_len() {
        assert_eq!(HyperGrid::paper().len(), 12);
        assert_eq!(HyperGrid::default().len(), 4);
        assert_eq!(HyperGrid::single(5, 20).len(), 1);
    }
}
