//! Fixed-seed golden regression for the CMDN training loop.
//!
//! The holdout-NLL trajectory of a 2-epoch train run was recorded with the
//! pre-GEMM scalar implementation (commit c622ceb); the im2col + blocked
//! GEMM path must reproduce it within a small tolerance. f32 summation
//! order differs between the two implementations, so the values are not
//! bit-identical — observed drift is ~1e-8, and the tolerance below is
//! wide enough for future reorderings of the same math but far too tight
//! for any functional regression (a broken gradient moves the NLL by
//! whole percents).

use everest_nn::cmdn::CmdnConfig;
use everest_nn::train::{train_cmdn, Sample, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn brightness_dataset(n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let v: f32 = rng.gen_range(0.0..1.0);
            let y = 10.0 * v as f64 + 0.3 * (rng.gen::<f64>() - 0.5);
            (vec![v; 256], y)
        })
        .collect()
}

fn cfg() -> CmdnConfig {
    CmdnConfig {
        input: (16, 16),
        conv_channels: vec![4, 8],
        hidden: 16,
        num_gaussians: 3,
        sigma_min: 0.2,
        target_range: (0.0, 10.0),
        seed: 42,
    }
}

fn tcfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 32,
        lr: 5e-3,
        num_threads: 4,
        patience: 0,
        seed: 9,
    }
}

/// Holdout NLL after 1 and 2 epochs, recorded with the scalar layers.
const GOLDEN: [(usize, f64); 2] = [(1, 2.2905088566), (2, 2.2407844299)];

#[test]
fn two_epoch_loss_trajectory_matches_scalar_era_golden() {
    let train = brightness_dataset(200, 101);
    let holdout = brightness_dataset(60, 102);
    for (epochs, golden) in GOLDEN {
        let out = train_cmdn(cfg(), &tcfg(epochs), &train, &holdout);
        let drift = (out.holdout_nll - golden).abs();
        assert!(
            drift < 1e-3,
            "epochs={epochs}: holdout NLL {} drifted {drift:.2e} from golden {golden}",
            out.holdout_nll
        );
    }
}

/// The trajectory itself must be bit-reproducible across repeated runs in
/// the same build (the determinism contract the golden values rely on).
#[test]
fn training_is_deterministic_across_runs() {
    let train = brightness_dataset(120, 7);
    let holdout = brightness_dataset(40, 8);
    let a = train_cmdn(cfg(), &tcfg(2), &train, &holdout);
    let b = train_cmdn(cfg(), &tcfg(2), &train, &holdout);
    assert_eq!(a.holdout_nll.to_bits(), b.holdout_nll.to_bits());
    assert_eq!(a.model.params_flat(), b.model.params_flat());
}
