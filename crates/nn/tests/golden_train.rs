//! Fixed-seed golden regression for the CMDN training loop.
//!
//! The holdout-NLL trajectory of a 2-epoch train run was recorded with the
//! pre-GEMM scalar implementation (commit c622ceb); the im2col + blocked
//! GEMM path must reproduce it within a small tolerance. f32 summation
//! order differs between the two implementations, so the values are not
//! bit-identical — observed drift is ~1e-8, and the tolerance below is
//! wide enough for future reorderings of the same math but far too tight
//! for any functional regression (a broken gradient moves the NLL by
//! whole percents).

use everest_nn::cmdn::CmdnConfig;
use everest_nn::train::{train_cmdn, Sample, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn brightness_dataset(n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let v: f32 = rng.gen_range(0.0..1.0);
            let y = 10.0 * v as f64 + 0.3 * (rng.gen::<f64>() - 0.5);
            (vec![v; 256], y)
        })
        .collect()
}

fn cfg() -> CmdnConfig {
    CmdnConfig {
        input: (16, 16),
        conv_channels: vec![4, 8],
        hidden: 16,
        num_gaussians: 3,
        sigma_min: 0.2,
        target_range: (0.0, 10.0),
        seed: 42,
    }
}

fn tcfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 32,
        lr: 5e-3,
        num_threads: 4,
        patience: 0,
        seed: 9,
    }
}

/// Holdout NLL after 1 and 2 epochs, recorded with the scalar layers.
const GOLDEN: [(usize, f64); 2] = [(1, 2.2905088566), (2, 2.2407844299)];

/// The same trajectory pinned **per dispatch path** at near-bit tightness
/// (values re-recorded whenever the accumulation order deliberately
/// changes). The vector path's FMA fuses each multiply-add into one
/// rounding, so it diverges from the scalar path at ~1e-8 — each path is
/// bit-deterministic on its own, which is what these constants pin. The
/// scalar column is what `EVEREST_NO_SIMD=1` (CI's `test-scalar` job)
/// reproduces.
///
/// The tight assertion only runs on the recording platform (x86-64
/// Linux): the MDN loss goes through `f64::exp`/`ln`, whose last-ulp
/// behaviour is libm-specific, so other platforms could drift past 1e-9
/// with perfectly correct kernels — they are still covered by the 1e-3
/// scalar-era check above.
const GOLDEN_SIMD: [(usize, f64); 2] = [(1, 2.2905088677), (2, 2.2407844231)];
const GOLDEN_SCALAR: [(usize, f64); 2] = [(1, 2.2905088701), (2, 2.2407844261)];

#[test]
fn two_epoch_loss_trajectory_matches_scalar_era_golden() {
    let train = brightness_dataset(200, 101);
    let holdout = brightness_dataset(60, 102);
    let per_path = if everest_nn::kernels::simd_active() {
        GOLDEN_SIMD
    } else {
        GOLDEN_SCALAR
    };
    for ((epochs, golden), (_, path_golden)) in GOLDEN.into_iter().zip(per_path) {
        let out = train_cmdn(cfg(), &tcfg(epochs), &train, &holdout);
        let drift = (out.holdout_nll - golden).abs();
        assert!(
            drift < 1e-3,
            "epochs={epochs}: holdout NLL {} drifted {drift:.2e} from golden {golden}",
            out.holdout_nll
        );
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            let path_drift = (out.holdout_nll - path_golden).abs();
            assert!(
                path_drift < 1e-9,
                "epochs={epochs} (simd={}): holdout NLL {} drifted {path_drift:.2e} from \
                 the per-path golden {path_golden}",
                everest_nn::kernels::simd_active(),
                out.holdout_nll
            );
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        let _ = path_golden;
    }
}

/// The trajectory itself must be bit-reproducible across repeated runs in
/// the same build (the determinism contract the golden values rely on).
#[test]
fn training_is_deterministic_across_runs() {
    let train = brightness_dataset(120, 7);
    let holdout = brightness_dataset(40, 8);
    let a = train_cmdn(cfg(), &tcfg(2), &train, &holdout);
    let b = train_cmdn(cfg(), &tcfg(2), &train, &holdout);
    assert_eq!(a.holdout_nll.to_bits(), b.holdout_nll.to_bits());
    assert_eq!(a.model.params_flat(), b.model.params_flat());
}
