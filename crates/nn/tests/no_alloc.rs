//! Pins the zero-copy contract of the CMDN forward pass: once the
//! ping-pong scratch buffers have grown (one warmup call per batch size),
//! an inference forward performs **zero** heap allocations — no
//! inter-layer `to_vec`, no per-call output vectors, no im2col regrowth.
//!
//! The counting allocator wraps the system one for this whole test
//! binary, so the file holds exactly one test (parallel tests would
//! pollute the counter).

use everest_nn::cmdn::{Cmdn, CmdnConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator with a global allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a counting wrapper around `System` — every method forwards to
// the system allocator verbatim, so `System`'s GlobalAlloc guarantees
// (layout validity, non-aliasing) carry over; the counter is atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    /// # Safety
    ///
    /// Same contract as [`System::alloc`]: `layout` must have non-zero
    /// size (forwarded unchanged).
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract; forwarded as-is.
        System.alloc(layout)
    }

    /// # Safety
    ///
    /// Same contract as [`System::dealloc`]: `ptr` must come from this
    /// allocator with the same `layout` (forwarded unchanged).
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds GlobalAlloc's contract; forwarded as-is.
        System.dealloc(ptr, layout)
    }

    /// # Safety
    ///
    /// Same contract as [`System::realloc`] (forwarded unchanged).
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract; forwarded as-is.
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn forward_pass_allocates_nothing_after_warmup() {
    let mut model = Cmdn::new(CmdnConfig::default());
    let batch = 4usize;
    let inputs: Vec<f32> = (0..batch * model.input_len())
        .map(|i| (i as f32 * 0.01).sin().abs())
        .collect();

    // Warmup: grows the ping-pong scratch, the im2col buffers, and the
    // GEMM pack scratch for this shape (twice, in case a buffer is grown
    // lazily on second use).
    for _ in 0..2 {
        let _ = model.predict_raw_batch(&inputs, batch);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut checksum = 0.0f32;
    for _ in 0..16 {
        let raw = model.predict_raw_batch(&inputs, batch);
        checksum += raw[0];
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "steady-state forward passes must not allocate"
    );

    // Changing the batch size regrows once, then is allocation-free again.
    let one = &inputs[..model.input_len()];
    let _ = model.predict_raw_batch(one, 1);
    let _ = model.predict_raw_batch(one, 1);
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..16 {
        let _ = model.predict_raw_batch(one, 1);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "single-frame steady state must not allocate"
    );
}
