//! Criterion micro-benchmarks for the extension subsystems: the
//! probabilistic skyline (§5 future work), expected-rank semantics [19],
//! the polynomial-time DP layer for the §2 uncertain Top-K semantics
//! (`semantics_dp`), and the EVQL front end.
//!
//! The skyline group doubles as an ablation: the 2-D staircase path of
//! `prob_dominated` vs direct support-grid enumeration shows why the
//! staircase form matters once point sets grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use everest_core::cleaner::FnCleaningOracle;
use everest_core::dist::DiscreteDist;
use everest_core::semantics::{expected_rank_topk, expected_ranks};
use everest_core::semantics_dp::{u_kranks_dp, u_topk_dp, RankTable};
use everest_core::skyline::{
    dominates, prob_dominated, skyline_of, skyline_of_pairwise, skyline_state, VectorRelation,
};
use everest_core::stream::{run_stream, Maintenance, StreamConfig};
use everest_core::xtuple::UncertainRelation;
use everest_evql::{analyze_select, parse, SessionSettings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const MAX_B: usize = 16;

fn random_vector_relation(n: usize, seed: u64) -> VectorRelation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = VectorRelation::new(vec![MAX_B, MAX_B]);
    for _ in 0..n {
        let mut dims = Vec::with_capacity(2);
        for _ in 0..2 {
            let center: f64 = rng.gen_range(0.0..MAX_B as f64);
            let width: f64 = rng.gen_range(0.4..1.5);
            let masses: Vec<f64> = (0..=MAX_B)
                .map(|b| (-((b as f64 - center) / width).powi(2)).exp() + 1e-9)
                .collect();
            dims.push(DiscreteDist::from_masses(&masses));
        }
        rel.push_uncertain(dims);
    }
    // a few certain points to give the skyline a staircase
    for _ in 0..12 {
        rel.push_certain(&[
            rng.gen_range(0..=MAX_B as u32),
            rng.gen_range(0..=MAX_B as u32),
        ]);
    }
    rel
}

fn random_points(s: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..s)
        .map(|_| {
            vec![
                rng.gen_range(0..=MAX_B as u32),
                rng.gen_range(0..=MAX_B as u32),
            ]
        })
        .collect()
}

/// Direct grid enumeration — the baseline the staircase path replaces.
fn prob_dominated_grid_2d(rel: &VectorRelation, u: usize, points: &[Vec<u32>]) -> f64 {
    let mut total = 0.0;
    for x in 0..=MAX_B as u32 {
        let px = rel.dim_pmf(u, 0, x as usize);
        if px == 0.0 {
            continue;
        }
        for y in 0..=MAX_B as u32 {
            let py = rel.dim_pmf(u, 1, y as usize);
            if py > 0.0 && points.iter().any(|p| dominates(p, &[x, y])) {
                total += px * py;
            }
        }
    }
    total
}

fn bench_skyline(c: &mut Criterion) {
    let mut group = c.benchmark_group("skyline");
    let rel = random_vector_relation(512, 11);
    for &s in &[4usize, 16, 64] {
        let points = random_points(s, 23);
        group.bench_with_input(BenchmarkId::new("staircase", s), &s, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for u in 0..64 {
                    acc += prob_dominated(&rel, u, black_box(&points));
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("grid_enum", s), &s, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for u in 0..64 {
                    acc += prob_dominated_grid_2d(&rel, u, black_box(&points));
                }
                black_box(acc)
            })
        });
    }
    for &n in &[256usize, 1024] {
        let rel = random_vector_relation(n, 31);
        group.bench_with_input(BenchmarkId::new("state", n), &n, |b, _| {
            b.iter(|| black_box(skyline_state(black_box(&rel)).confidence))
        });
    }
    // certain-set skyline itself
    let mut rng = StdRng::seed_from_u64(5);
    let vectors: Vec<(usize, Vec<u32>)> = (0..2_000)
        .map(|i| (i, vec![rng.gen_range(0..400u32), rng.gen_range(0..400u32)]))
        .collect();
    group.bench_function("skyline_of_2000", |b| {
        b.iter(|| black_box(skyline_of(black_box(&vectors)).len()))
    });
    // The pre-sort-filter all-pairs routine, kept as the oracle — the
    // ratio against `skyline_of_2000` is the presort + early-exit win.
    group.bench_function("skyline_of_pairwise_2000", |b| {
        b.iter(|| black_box(skyline_of_pairwise(black_box(&vectors)).len()))
    });
    group.finish();
}

fn random_relation(n: usize, seed: u64) -> UncertainRelation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = UncertainRelation::new(1.0, MAX_B);
    for _ in 0..n {
        let center: f64 = rng.gen_range(0.0..MAX_B as f64);
        let masses: Vec<f64> = (0..=MAX_B)
            .map(|b| (-((b as f64 - center) / 1.2).powi(2)).exp() + 1e-9)
            .collect();
        rel.push_uncertain(DiscreteDist::from_masses(&masses));
    }
    rel
}

fn bench_expected_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("expected_ranks");
    for &n in &[1_000usize, 10_000] {
        let rel = random_relation(n, 3);
        group.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            b.iter(|| black_box(expected_ranks(black_box(&rel)).len()))
        });
        group.bench_with_input(BenchmarkId::new("topk_50", n), &n, |b, _| {
            b.iter(|| black_box(expected_rank_topk(black_box(&rel), 50).len()))
        });
    }
    group.finish();
}

/// A relation with distinct strengths and ±2-bucket overlaps — the regime
/// the DP semantics layer targets (enumeration would need ~5ⁿ worlds).
fn spread_relation(n: usize) -> UncertainRelation {
    let max_b = 3 * n + 2;
    let mut rel = UncertainRelation::new(1.0, max_b);
    for i in 0..n {
        let center = (3 * i) as f64;
        let masses: Vec<f64> = (0..=max_b)
            .map(|b| {
                let d = (b as f64 - center).abs();
                if d > 2.0 {
                    0.0
                } else {
                    (-d / 0.8).exp()
                }
            })
            .collect();
        rel.push_uncertain(DiscreteDist::from_masses(&masses));
    }
    rel
}

fn bench_dp_semantics(c: &mut Criterion) {
    let mut group = c.benchmark_group("semantics_dp");
    for &n in &[50usize, 200] {
        let rel = spread_relation(n);
        let k = 10.min(n);
        group.bench_with_input(BenchmarkId::new("rank_table", n), &n, |b, _| {
            b.iter(|| black_box(RankTable::build(black_box(&rel), k).membership(0)))
        });
        group.bench_with_input(BenchmarkId::new("u_kranks_dp", n), &n, |b, _| {
            b.iter(|| black_box(u_kranks_dp(black_box(&rel), k).len()))
        });
        group.bench_with_input(BenchmarkId::new("u_topk_dp", n), &n, |b, _| {
            b.iter(|| black_box(u_topk_dp(black_box(&rel), k).1))
        });
    }
    group.finish();
}

/// Per-frame proxy distributions for the streaming benches: the same
/// Gaussian-bump shape as `random_relation`, as a bare `Vec`.
fn random_stream_dists(n: usize, seed: u64) -> Vec<DiscreteDist> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let center: f64 = rng.gen_range(0.0..MAX_B as f64);
            let masses: Vec<f64> = (0..=MAX_B)
                .map(|b| (-((b as f64 - center) / 1.2).powi(2)).exp() + 1e-9)
                .collect();
            DiscreteDist::from_masses(&masses)
        })
        .collect()
}

/// Continuous Top-K maintenance: the O(delta) claim in numbers.
///
/// `stream_step` runs a full 10k-frame landmark stream (emit every 100
/// frames, oracle budget 1/emit) under both maintenance modes. The
/// incremental engine pays one `JointCdf::add` per arrival; the rebuild
/// reference pays an O(prefix) `JointCdf::build` per emit — the target in
/// docs/BENCHMARKING.md is incremental ≥ 10× faster at this scale.
/// `stream_window_advance` is the sliding-window variant, where each
/// arrival additionally expires a frame (`add` + `remove`) and the rebuild
/// reference reconstructs the whole window per emit.
fn bench_stream(c: &mut Criterion) {
    let n = 10_000;
    let dists = random_stream_dists(n, 47);
    let truth: Vec<u32> = dists
        .iter()
        .map(|d| d.mean_bucket().round() as u32)
        .collect();
    let cfg = |window: Option<usize>, maintenance: Maintenance| StreamConfig {
        k: 5,
        emit_every: 100,
        window,
        budget_per_emit: Some(1),
        maintenance,
        max_bucket: MAX_B,
        ..StreamConfig::default()
    };
    let run = |cfg: &StreamConfig, dists: &[DiscreteDist]| {
        let mut oracle = FnCleaningOracle(|id| truth[id]);
        black_box(run_stream(cfg, dists, &mut oracle).len())
    };

    let mut group = c.benchmark_group("stream_step");
    let inc = cfg(None, Maintenance::Incremental);
    let reb = cfg(None, Maintenance::Rebuild);
    group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
        b.iter(|| run(&inc, black_box(&dists)))
    });
    group.bench_with_input(BenchmarkId::new("rebuild", n), &n, |b, _| {
        b.iter(|| run(&reb, black_box(&dists)))
    });
    group.finish();

    let mut group = c.benchmark_group("stream_window_advance");
    let inc = cfg(Some(1_000), Maintenance::Incremental);
    let reb = cfg(Some(1_000), Maintenance::Rebuild);
    group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
        b.iter(|| run(&inc, black_box(&dists)))
    });
    group.bench_with_input(BenchmarkId::new("rebuild", n), &n, |b, _| {
        b.iter(|| run(&reb, black_box(&dists)))
    });
    group.finish();
}

fn bench_evql_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("evql");
    let queries = [
        "SELECT TOP 50 FRAMES FROM Taipei-bus WITH CONFIDENCE 0.9",
        "SELECT TOP 10 WINDOWS OF 150 FRAMES SLIDE 30 FROM Grand-Canal \
         SCORE count(boat) USING everest WITH CONFIDENCE 0.95, SEED 7, BATCH 4",
        "EXPLAIN SELECT TOP 5 FRAMES FROM Dashcam-California SCORE tailgating() \
         WITH STEP 0.25",
    ];
    group.bench_function("parse", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(parse(black_box(q)).unwrap());
            }
        })
    });
    let settings = SessionSettings::default();
    let stmts: Vec<_> = queries
        .iter()
        .filter_map(|q| match parse(q).unwrap() {
            everest_evql::ast::Statement::Select(s) | everest_evql::ast::Statement::Explain(s) => {
                Some(s)
            }
            _ => None,
        })
        .collect();
    group.bench_function("analyze", |b| {
        b.iter(|| {
            for s in &stmts {
                black_box(analyze_select(black_box(s), &settings).unwrap());
            }
        })
    });
    group.finish();
}

/// One full daemon round-trip: frame encode → TCP → worker pool →
/// session execute (scan engine over a floor-scaled dataset) → canonical
/// encode → frame back. Pins the serve path's overhead so a protocol or
/// pooling regression shows up next to the engine benchmarks.
fn bench_serve_roundtrip(c: &mut Criterion) {
    let cfg = everest_serve::ServeConfig {
        settings: SessionSettings {
            scale: 1_000,
            ..SessionSettings::default()
        },
        workers: 2,
        ..everest_serve::ServeConfig::default()
    };
    let (handle, join) = everest_serve::Server::spawn(cfg).expect("spawn daemon");
    let mut client = everest_serve::Client::connect(handle.addr()).expect("connect");
    // Warm the path once so the first iteration doesn't pay source-build
    // costs the steady state never sees.
    client
        .query("SELECT TOP 3 FRAMES FROM Archie USING scan")
        .expect("warmup");

    let mut group = c.benchmark_group("serve");
    group.bench_function("roundtrip_scan", |b| {
        b.iter(|| {
            black_box(
                client
                    .query(black_box("SELECT TOP 3 FRAMES FROM Archie USING scan"))
                    .expect("roundtrip"),
            )
        })
    });
    group.finish();

    drop(client);
    handle.shutdown();
    let report = join.join().expect("daemon thread");
    assert!(report.clean(), "unclean drain: {report:?}");
}

criterion_group!(
    benches,
    bench_skyline,
    bench_expected_ranks,
    bench_dp_semantics,
    bench_stream,
    bench_evql_frontend,
    bench_serve_roundtrip
);
criterion_main!(benches);
