//! Criterion micro-benchmarks for the algorithmic kernels, including the
//! ablations of DESIGN.md §6:
//!
//! * `topk_prob/*` — incremental joint CDF vs the naive Eq. 2 product
//!   (`ablation_eq3`);
//! * `select_candidate/*` — upper-bound early stopping vs an exhaustive
//!   E[X_f] scan (`ablation_earlystop`);
//! * `diff_detector/*` — clip-parallel scaling;
//! * `cmdn_forward` / `quantize` / `window_build` — Phase-1 kernels;
//! * `kernels/*` — the im2col + blocked-GEMM primitives behind the CMDN
//!   conv layers (`everest_nn::kernels`);
//! * `prefetch/*` — decode-cost traces in ψ order vs consumption order
//!   (`ablation_prefetch`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use everest_core::dist::DiscreteDist;
use everest_core::select::CandidateSelector;
use everest_core::topkprob::{topk_prob_naive, JointCdf};
use everest_core::window::{build_window_relation, tumbling_windows};
use everest_core::xtuple::UncertainRelation;
use everest_nn::cmdn::{Cmdn, CmdnConfig};
use everest_nn::mixture::{Component, GaussianMixture};
use everest_video::arrival::{ArrivalConfig, Timeline};
use everest_video::diff::{DiffConfig, DifferenceDetector, Segments};
use everest_video::scene::{SceneConfig, SyntheticVideo};
use everest_video::store::{DecodeCostModel, InMemoryVideo, VideoStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const MAX_BUCKET: usize = 20;

/// A relation of `n` uncertain items with unimodal random distributions.
fn random_relation(n: usize, seed: u64) -> UncertainRelation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = UncertainRelation::new(1.0, MAX_BUCKET);
    for _ in 0..20 {
        rel.push_certain(rng.gen_range(0..=MAX_BUCKET as u32));
    }
    for _ in 0..n {
        let center: f64 = rng.gen_range(0.0..MAX_BUCKET as f64);
        let width: f64 = rng.gen_range(0.5..2.0);
        let masses: Vec<f64> = (0..=MAX_BUCKET)
            .map(|b| (-((b as f64 - center) / width).powi(2)).exp() + 1e-6)
            .collect();
        rel.push_uncertain(DiscreteDist::from_masses(&masses));
    }
    rel
}

fn bench_topk_prob(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_prob");
    for &n in &[1_000usize, 10_000] {
        let rel = random_relation(n, 7);
        let h = JointCdf::build(&rel);
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| black_box(h.value(black_box(15))))
        });
        group.bench_with_input(BenchmarkId::new("naive_product", n), &n, |b, _| {
            b.iter(|| black_box(topk_prob_naive(&rel, black_box(15))))
        });
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(JointCdf::build(&rel)))
        });
    }
    group.finish();
}

fn bench_select_candidate(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_candidate");
    for &n in &[1_000usize, 10_000] {
        let rel = random_relation(n, 11);
        let h = JointCdf::build(&rel);
        group.bench_with_input(BenchmarkId::new("early_stop", n), &n, |b, _| {
            b.iter(|| {
                let mut sel = CandidateSelector::new(&rel, 10);
                black_box(sel.select_batch(&rel, &h, 15, 17, 8))
            })
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &n, |b, _| {
            b.iter(|| {
                let mut sel = CandidateSelector::new(&rel, 10);
                sel.exhaustive = true;
                black_box(sel.select_batch(&rel, &h, 15, 17, 8))
            })
        });
    }
    group.finish();
}

fn bench_diff_detector(c: &mut Criterion) {
    let timeline = Timeline::generate(
        &ArrivalConfig {
            n_frames: 1_200,
            ..ArrivalConfig::default()
        },
        3,
    );
    let video = SyntheticVideo::new(SceneConfig::default(), timeline, 3, 30.0);
    // Running the detector straight on a SyntheticVideo measures ~100%
    // procedural frame *rendering* — `frame(t)` synthesizes pixels on
    // every call (~37 µs/frame × 1 200 frames ≈ 45 ms), swamping the
    // ~1 µs/frame MSE compare, which is why the `threads/*` entries used
    // to plateau. Pre-decode once so those entries measure the
    // clip-parallel MSE scan the group claims; `synthetic_render`
    // keeps the render-bound fixture cost visible. (Thread-sweep gains
    // also require a multi-core runner — the committed baseline machine
    // has one core; see docs/BENCHMARKING.md.)
    let decoded = InMemoryVideo::new(
        (0..video.num_frames()).map(|t| video.frame(t)).collect(),
        video.fps(),
    );
    let mut group = c.benchmark_group("diff_detector");
    group.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            let det = DifferenceDetector::new(DiffConfig {
                num_threads: t,
                ..DiffConfig::default()
            });
            b.iter(|| black_box(det.run(&decoded)))
        });
    }
    group.bench_function("synthetic_render/1", |b| {
        let det = DifferenceDetector::new(DiffConfig {
            num_threads: 1,
            ..DiffConfig::default()
        });
        b.iter(|| black_box(det.run(&video)))
    });
    group.finish();
}

fn bench_cmdn_forward(c: &mut Criterion) {
    let mut model = Cmdn::new(CmdnConfig::default());
    let input: Vec<f32> = (0..32 * 32)
        .map(|i| (i as f32 * 0.01).sin().abs())
        .collect();
    c.bench_function("cmdn_forward_32x32", |b| {
        b.iter(|| black_box(model.predict(black_box(&input))))
    });
    // Batched inference: 16 frames through one GEMM per layer.
    let batch = 16usize;
    let inputs: Vec<f32> = (0..batch * 32 * 32)
        .map(|i| (i as f32 * 0.007).sin().abs())
        .collect();
    c.bench_function("cmdn_forward_batch16_32x32", |b| {
        b.iter(|| black_box(model.predict_many(black_box(&inputs))))
    });
}

/// The GEMM / im2col micro-kernels behind the conv layers (see
/// `everest_nn::kernels`): shapes match the default CMDN's hottest layer
/// (conv3: 32×144 weight against 144×1024 packed patches ≈ one 16-sample
/// minibatch of the 8×8 stage).
fn bench_kernels(c: &mut Criterion) {
    use everest_nn::kernels::{gemm, gemm_nt, gemm_nt_scalar, gemm_scalar, im2col_3x3};
    let mut group = c.benchmark_group("kernels");
    let (m, n, k) = (32usize, 1024usize, 144usize);
    let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.13).sin()).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.29).cos()).collect();
    group.bench_function("gemm_32x1024x144", |bench| {
        let mut out = vec![0.0f32; m * n];
        bench.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            gemm(m, n, k, black_box(&a), black_box(&b), &mut out);
            black_box(&out);
        })
    });
    // The forced-scalar path of the same shape: the dispatched-vs-scalar
    // ratio is the SIMD win on this host (see docs/BENCHMARKING.md for
    // benching the dispatched path with EVEREST_NO_SIMD/EVEREST_NO_AVX512).
    group.bench_function("gemm_scalar_32x1024x144", |bench| {
        let mut out = vec![0.0f32; m * n];
        bench.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            gemm_scalar(m, n, k, black_box(&a), black_box(&b), &mut out);
            black_box(&out);
        })
    });
    // A large-batch shape (≈75M MACs) that crosses the row-panel
    // threading threshold on multi-core hosts (single-threaded on the
    // 1-core reference machine).
    {
        let (lm, ln) = (256usize, 2048usize);
        let la: Vec<f32> = (0..lm * k).map(|i| (i as f32 * 0.07).sin()).collect();
        let lb: Vec<f32> = (0..k * ln).map(|i| (i as f32 * 0.19).cos()).collect();
        group.bench_function("gemm_mt_256x2048x144", |bench| {
            let mut out = vec![0.0f32; lm * ln];
            bench.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                gemm(lm, ln, k, black_box(&la), black_box(&lb), &mut out);
                black_box(&out);
            })
        });
    }
    // Backward-weight shape: ∇out (32×1024) · colsᵀ (1024×144).
    let gout: Vec<f32> = (0..m * n).map(|i| (i as f32 * 0.17).sin()).collect();
    let cols_t: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
    group.bench_function("gemm_nt_32x144x1024", |bench| {
        let mut out = vec![0.0f32; m * k];
        bench.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            gemm_nt(m, k, n, black_box(&gout), black_box(&cols_t), &mut out);
            black_box(&out);
        })
    });
    group.bench_function("gemm_nt_scalar_32x144x1024", |bench| {
        let mut out = vec![0.0f32; m * k];
        bench.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            gemm_nt_scalar(m, k, n, black_box(&gout), black_box(&cols_t), &mut out);
            black_box(&out);
        })
    });
    // im2col of a 16-sample minibatch of the first conv layer (1×32×32).
    let input: Vec<f32> = (0..16 * 32 * 32).map(|i| (i as f32 * 0.01).sin()).collect();
    group.bench_function("im2col_batch16_1x32x32", |bench| {
        let mut cols = Vec::new();
        bench.iter(|| {
            im2col_3x3(black_box(&input), 1, 16, 32, 32, &mut cols);
            black_box(&cols);
        })
    });
    group.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let mix = GaussianMixture::new(vec![
        Component {
            weight: 0.5,
            mean: 3.0,
            std: 0.8,
        },
        Component {
            weight: 0.3,
            mean: 7.0,
            std: 1.2,
        },
        Component {
            weight: 0.2,
            mean: 12.0,
            std: 2.0,
        },
    ]);
    c.bench_function("quantize_mixture_20_buckets", |b| {
        b.iter(|| black_box(mix.quantize(1.0, MAX_BUCKET)))
    });
}

fn bench_window_build(c: &mut Criterion) {
    let n = 6_000usize;
    let segments = Segments::identity(n);
    let mut rng = StdRng::seed_from_u64(5);
    let mixtures: Vec<GaussianMixture> = (0..n)
        .map(|_| GaussianMixture::single(rng.gen_range(0.0..10.0), rng.gen_range(0.5..2.0)))
        .collect();
    let windows = tumbling_windows(n, 30);
    c.bench_function("window_relation_6000f_w30", |b| {
        b.iter(|| {
            black_box(build_window_relation(
                &mixtures, &segments, &windows, 0.25, 80,
            ))
        })
    });
}

fn bench_prefetch_traces(c: &mut Criterion) {
    let model = DecodeCostModel::default();
    let mut rng = StdRng::seed_from_u64(9);
    // candidate access pattern: clustered around bursts, consumed noisily
    let mut consumption: Vec<usize> = (0..2_000)
        .map(|_| {
            let cluster = rng.gen_range(0..20usize) * 5_000;
            cluster + rng.gen_range(0..300usize)
        })
        .collect();
    let mut sorted = consumption.clone();
    sorted.sort_unstable();
    let mut group = c.benchmark_group("prefetch");
    group.bench_function("trace_consumption_order", |b| {
        b.iter(|| black_box(model.trace_cost(black_box(&consumption))))
    });
    group.bench_function("trace_psi_sorted_order", |b| {
        b.iter(|| black_box(model.trace_cost(black_box(&sorted))))
    });
    group.finish();
    // Print the simulated saving once for the record.
    let saving = model.trace_cost(&consumption) - model.trace_cost(&sorted);
    eprintln!(
        "[prefetch ablation] ψ-sorted access saves {saving:.2} simulated decode-seconds \
         over {} accesses",
        consumption.len()
    );
    consumption.clear();
}

criterion_group!(
    benches,
    bench_topk_prob,
    bench_select_candidate,
    bench_diff_detector,
    bench_cmdn_forward,
    bench_kernels,
    bench_quantize,
    bench_window_build,
    bench_prefetch_traces,
);
criterion_main!(benches);
