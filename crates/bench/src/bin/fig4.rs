//! Regenerates Figure 4: overall comparison of Everest against every
//! baseline on the five counting datasets (speedup, precision, rank
//! distance, score error) under the default Top-50 / thres 0.9 query.
//!
//! `cargo run --release -p everest-bench --bin fig4`

use everest_bench::harness::{
    dataset_specs, prepare_dataset, print_method_table, run_all_methods, scale_from_env,
};

fn main() {
    let scale = scale_from_env();
    println!(
        "Figure 4: overall result, Top-{} thres=0.9 (scale = {})",
        scale.default_k, scale.name
    );
    for (i, spec) in dataset_specs(&scale).iter().enumerate() {
        let ds = prepare_dataset(spec, 1_000 + i as u64, &scale);
        let rows = run_all_methods(&ds, scale.default_k, 0.9);
        print_method_table(&ds.name, &rows);
    }
}
