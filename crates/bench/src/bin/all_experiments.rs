//! Runs the entire evaluation in one process, sharing Phase-1 work across
//! the frame-level sweeps (each reported latency still includes the full
//! Phase-1 charge, as the paper re-runs both phases per query).
//!
//! Sections: Table 7, Figure 4, Table 8, Figures 5–9, plus the ablations
//! called out in DESIGN.md §6.
//!
//! `EVEREST_SCALE=mid cargo run --release -p everest-bench --bin all_experiments`

use everest_bench::harness::*;
use everest_core::cleaner::CleanerConfig;
use everest_core::metrics::{evaluate_topk, GroundTruth};
use everest_core::pipeline::Everest;
use everest_core::sim::component;
use everest_core::window::exact_window_scores;
use everest_models::depth::{depth_oracle, TAILGATING_QUANTIZATION_STEP};
use everest_models::{counting::counting_oracle_visualroad, InstrumentedOracle, Oracle};
use everest_video::dashcam::{dashcam_datasets, DashcamVideo};
use everest_video::visualroad::{VisualRoadConfig, VisualRoadVideo};

fn main() {
    let scale = scale_from_env();
    let k = scale.default_k;
    println!(
        "===== Everest reproduction — full experiment suite (scale = {}) =====",
        scale.name
    );

    // ---------- Table 7 ----------
    println!("\n===== Table 7: dataset characteristics =====");
    for d in dataset_specs(&scale) {
        println!(
            "{:<18} {:<7} paper {:>6}k frames / {:>5.1} h   repro {:>6} frames",
            d.name,
            d.object_class.name(),
            d.paper_frames_k,
            d.paper_hours,
            d.n_frames
        );
    }

    // ---------- Prepare all counting datasets once ----------
    let specs = dataset_specs(&scale);
    let datasets: Vec<PreparedDataset> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            eprintln!("[prepare] {} ({} frames)…", spec.name, spec.n_frames);
            prepare_dataset(spec, 1_000 + i as u64, &scale)
        })
        .collect();

    // ---------- Figure 4 ----------
    println!("\n===== Figure 4: overall comparison (Top-{k}, thres 0.9) =====");
    for ds in &datasets {
        let rows = run_all_methods(ds, k, 0.9);
        print_method_table(&ds.name, &rows);
    }

    // ---------- Table 8 ----------
    println!("\n===== Table 8: latency breakdown + Phase-2 detail =====");
    println!(
        "{:<18} {:>8} {:>8} {:>9} {:>8} {:>9} | {:>10} {:>10}",
        "dataset", "label%", "train%", "populate%", "select%", "confirm%", "iterations", "%cleaned"
    );
    for ds in &datasets {
        let (report, _) = run_everest(ds, k, 0.9);
        let c = &report.clock;
        println!(
            "{:<18} {:>7.2}% {:>7.2}% {:>8.2}% {:>7.2}% {:>8.2}% | {:>10} {:>9.2}%",
            ds.name,
            100.0 * c.fraction(component::LABEL),
            100.0 * c.fraction(component::TRAIN),
            100.0 * c.fraction(component::POPULATE),
            100.0 * c.fraction(component::SELECT),
            100.0 * c.fraction(component::CONFIRM),
            report.iterations,
            100.0 * report.pct_cleaned(),
        );
    }

    // ---------- Figure 5 ----------
    println!("\n===== Figure 5: impact of K (thres 0.9) =====");
    for ds in &datasets {
        println!("\n--- {} ---", ds.name);
        for &kk in &[5usize, 10, 25, 50, 75, 100] {
            let (_, row) = run_everest(ds, kk, 0.9);
            print_sweep_row(&format!("K={kk}"), &row);
        }
    }

    // ---------- Figure 6 ----------
    println!("\n===== Figure 6: impact of thres (Top-{k}) =====");
    for ds in &datasets {
        println!("\n--- {} ---", ds.name);
        for &thres in &[0.5, 0.75, 0.9, 0.95, 0.99] {
            let (report, row) = run_everest(ds, k, thres);
            print_sweep_row(&format!("thres={thres}"), &row);
            println!(
                "{:<18} iterations {}  cleaned {:.2}%",
                "",
                report.iterations,
                100.0 * report.pct_cleaned()
            );
        }
    }

    // ---------- Figure 7 ----------
    println!("\n===== Figure 7: window sizes (thres 0.9, 10% sampling) =====");
    for ds in &datasets {
        println!("\n--- {} ---", ds.name);
        for &len in &[1usize, 30, 60, 150, 300] {
            let windows = n_frames(&ds.video).div_ceil(len);
            let kw = k.min((windows / 3).max(1));
            let row = if len == 1 {
                run_everest(ds, kw, 0.9).1
            } else {
                run_everest_windows(ds, kw, 0.9, len, 0.1).1
            };
            print_sweep_row(&format!("w={len} (K={kw})"), &row);
        }
    }

    // ---------- Figure 8 ----------
    println!("\n===== Figure 8: Visual Road object density (Top-{k}, thres 0.9) =====");
    let vr_frames = 18_000 / scale.shrink as usize;
    for &cars in &[50usize, 100, 150, 200, 250] {
        let video = VisualRoadVideo::new(
            VisualRoadConfig {
                total_cars: cars,
                n_frames: vr_frames,
                ..Default::default()
            },
            4_000 + cars as u64,
        );
        let oracle = InstrumentedOracle::new(counting_oracle_visualroad(&video));
        let cfg = phase1_cfg(&scale, 1.0, 4_000 + cars as u64);
        let prepared = Everest::prepare(&video, &oracle, &cfg);
        let report = prepared.query_topk(&oracle, k, 0.9, &CleanerConfig::default());
        let truth = GroundTruth::new(oracle.inner().all_scores().to_vec());
        let quality = evaluate_topk(&truth, &report.frames(), k);
        let scan = oracle.num_frames() as f64 * oracle.cost_per_frame();
        let row = MethodRow {
            method: "Everest".into(),
            quality,
            sim_seconds: report.sim_seconds(),
            speedup: scan / report.sim_seconds(),
        };
        print_sweep_row(&format!("cars={cars}"), &row);
    }

    // ---------- Figure 9 ----------
    println!("\n===== Figure 9: depth-estimator UDF on dashcams =====");
    for (name, mut dcfg, seed) in dashcam_datasets() {
        dcfg.n_frames /= scale.shrink as usize;
        let video = DashcamVideo::new(dcfg, seed);
        let oracle = InstrumentedOracle::new(depth_oracle(&video));
        let p1 = phase1_cfg(&scale, TAILGATING_QUANTIZATION_STEP, seed);
        let prepared = Everest::prepare(&video, &oracle, &p1);
        let truth = GroundTruth::new(oracle.inner().all_scores().to_vec());
        let scan = oracle.num_frames() as f64 * oracle.cost_per_frame();
        println!("\n--- {name} ({} frames) ---", oracle.num_frames());
        for (label, kk, thres) in [
            ("Top-K/0.9", k, 0.9),
            ("Top-2K/0.9", 2 * k, 0.9),
            ("Top-K/0.75", k, 0.75),
        ] {
            let report = prepared.query_topk(&oracle, kk, thres, &CleanerConfig::default());
            let quality = evaluate_topk(&truth, &report.frames(), kk);
            let row = MethodRow {
                method: label.into(),
                quality,
                sim_seconds: report.sim_seconds(),
                speedup: scan / report.sim_seconds(),
            };
            print_sweep_row(label, &row);
        }
        let wl = 30;
        let windows = prepared.windows(wl);
        let kw = k.min(windows.len() / 3).max(1);
        let report =
            prepared.query_topk_windows(&oracle, kw, 0.9, wl, 0.1, &CleanerConfig::default());
        let exact = exact_window_scores(oracle.inner().all_scores(), &windows);
        let wtruth = GroundTruth::new(exact);
        let answer: Vec<usize> = report.items.iter().map(|i| i.frame / wl).collect();
        let quality = evaluate_topk(&wtruth, &answer, kw);
        let row = MethodRow {
            method: "window".into(),
            quality,
            sim_seconds: report.sim_seconds(),
            speedup: scan / report.sim_seconds(),
        };
        print_sweep_row(&format!("Top-{kw} window(30)"), &row);
    }

    // ---------- Ablations (DESIGN.md §6) ----------
    println!("\n===== Ablations =====");
    let ds = &datasets[0]; // the smallest dataset keeps this section fast
    println!(
        "\n--- batch size b vs oracle work (Top-{k}, thres 0.9, {}) ---",
        ds.name
    );
    for &b in &[1usize, 4, 8, 16, 32] {
        let cfg = CleanerConfig {
            batch_size: b,
            ..CleanerConfig::default()
        };
        let report = ds.prepared.query_topk(&ds.oracle, k, 0.9, &cfg);
        println!(
            "b={:<3} cleaned {:>5} frames in {:>5} iterations (confirm {:>7.1}s sim)",
            b,
            report.cleaned,
            report.iterations,
            report.clock.component(component::CONFIRM)
        );
    }
    println!("\n--- ψ re-sort period (first 100 iterations) ---");
    for &period in &[1usize, 10, 50] {
        let cfg = CleanerConfig {
            resort_period: period,
            ..CleanerConfig::default()
        };
        let started = std::time::Instant::now();
        let report = ds.prepared.query_topk(&ds.oracle, k, 0.9, &cfg);
        println!(
            "period={:<3} cleaned {:>5}, select wall {:>8.2?} (total phase-2 wall {:>8.2?})",
            period,
            report.cleaned,
            report.clock.component(component::SELECT),
            started.elapsed()
        );
    }
    println!("\nDone.");
}
