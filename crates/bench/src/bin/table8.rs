//! Regenerates Table 8: (a) the end-to-end latency breakdown of Everest's
//! components and (b) Phase-2 detail (iterations, % frames cleaned) under
//! the default Top-50 / thres 0.9 query.
//!
//! `cargo run --release -p everest-bench --bin table8`

use everest_bench::harness::{dataset_specs, prepare_dataset, run_everest, scale_from_env};
use everest_core::sim::component;

fn main() {
    let scale = scale_from_env();
    println!(
        "Table 8: latency breakdown, Top-{} thres=0.9 (scale = {})",
        scale.default_k, scale.name
    );
    println!(
        "{:<18} {:>8} {:>8} {:>9} {:>8} {:>9} | {:>10} {:>10}",
        "dataset", "label%", "train%", "populate%", "select%", "confirm%", "iterations", "%cleaned"
    );
    for (i, spec) in dataset_specs(&scale).iter().enumerate() {
        let ds = prepare_dataset(spec, 1_000 + i as u64, &scale);
        let (report, _) = run_everest(&ds, scale.default_k, 0.9);
        let c = &report.clock;
        println!(
            "{:<18} {:>7.2}% {:>7.2}% {:>8.2}% {:>7.2}% {:>8.2}% | {:>10} {:>9.2}%",
            ds.name,
            100.0 * c.fraction(component::LABEL),
            100.0 * c.fraction(component::TRAIN),
            100.0 * c.fraction(component::POPULATE),
            100.0 * c.fraction(component::SELECT),
            100.0 * c.fraction(component::CONFIRM),
            report.iterations,
            100.0 * report.pct_cleaned(),
        );
    }
}
