//! Regenerates Figure 7: Top-K window queries with window sizes
//! 1, 30, 60, 150, 300 frames (10 % per-window oracle sampling),
//! thres = 0.9.
//!
//! K follows the paper's Top-50 where the video has enough windows;
//! otherwise it is reduced to a third of the window count (scaled datasets
//! divided into 300-frame windows can have fewer than 150 windows).
//!
//! `cargo run --release -p everest-bench --bin fig7`

use everest_bench::harness::{
    dataset_specs, n_frames, prepare_dataset, print_sweep_row, run_everest, run_everest_windows,
    scale_from_env,
};

fn main() {
    let scale = scale_from_env();
    println!("Figure 7: window sizes, thres=0.9 (scale = {})", scale.name);
    for (i, spec) in dataset_specs(&scale).iter().enumerate() {
        let ds = prepare_dataset(spec, 1_000 + i as u64, &scale);
        println!("\n--- {} ---", ds.name);
        for &len in &[1usize, 30, 60, 150, 300] {
            let windows = n_frames(&ds.video).div_ceil(len);
            let k = scale.default_k.min((windows / 3).max(1));
            let row = if len == 1 {
                // "no window": identical to the frame query
                run_everest(&ds, k, 0.9).1
            } else {
                run_everest_windows(&ds, k, 0.9, len, 0.1).1
            };
            print_sweep_row(&format!("w={len} (K={k})"), &row);
        }
    }
}
