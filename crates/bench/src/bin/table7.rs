//! Regenerates Table 7: dataset characteristics (paper values + the scaled
//! synthetic equivalents actually used by this reproduction).
//!
//! `cargo run --release -p everest-bench --bin table7`

use everest_bench::harness::{dataset_specs, scale_from_env};
use everest_video::dashcam::dashcam_datasets;

fn main() {
    let scale = scale_from_env();
    println!("Table 7: Dataset Characteristics (scale = {})", scale.name);
    println!(
        "{:<18} {:<8} {:>11} {:>5} {:>12} {:>9} {:>12} {:>10}",
        "video",
        "object",
        "resolution",
        "fps",
        "paper-frames",
        "paper-hrs",
        "repro-frames",
        "repro-mins"
    );
    for d in dataset_specs(&scale) {
        println!(
            "{:<18} {:<8} {:>6}x{:<4} {:>5} {:>11}k {:>9.1} {:>12} {:>10.1}",
            d.name,
            d.object_class.name(),
            d.paper_resolution.0,
            d.paper_resolution.1,
            d.fps,
            d.paper_frames_k,
            d.paper_hours,
            d.n_frames,
            d.scaled_hours() * 60.0,
        );
    }
    for (name, cfg, _seed) in dashcam_datasets() {
        let n = cfg.n_frames / scale.shrink as usize;
        println!(
            "{:<18} {:<8} {:>6}x{:<4} {:>5} {:>11}k {:>9.1} {:>12} {:>10.1}",
            name,
            "car",
            1280,
            720,
            cfg.fps,
            (cfg.n_frames * 40) / 1000, // paper frames = repro(full) × 40
            cfg.n_frames as f64 * 40.0 / cfg.fps / 3600.0,
            n,
            n as f64 / cfg.fps / 60.0,
        );
    }
}
