//! Concurrent-load driver for the `everest-serve` daemon.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--sessions N] [--queries N] [--seed S]
//!         [--query "EVQL"]... [--flaky-seed S] [--overload]
//! ```
//!
//! With `--addr`, drives an already-running daemon. Without it, spawns an
//! in-process daemon on an ephemeral port (floor-scaled catalog), drives
//! that, and drains it afterwards — a one-command load test.
//!
//! `--flaky-seed` swaps the mix for Everest-engine queries with seeded
//! fault injection and tight budgets (`WITH FLAKY`, `WITHIN … ORACLE
//! CALLS`, `DEADLINE`), exercising retries, breaker trips, and degraded
//! answers end to end. `--overload` caps the in-process daemon at one
//! in-flight query and tolerates `Overloaded` responses, demonstrating
//! admission-control shedding under deliberate oversubscription.
//!
//! Everything the run *asks* is a pure function of `--seed`, and the
//! reported `digest` covers every answer's canonical bytes: two runs with
//! the same seed against equivalent daemons must print the same digest,
//! which is exactly what `tests/serve_e2e.rs` asserts. qps/p50/p99 are
//! wall-clock and excluded from the digest (as is the digest of a
//! `--overload` run with `shed > 0`: which query gets shed is timing).

use everest_evql::SessionSettings;
use everest_serve::{flaky_mix, run_loadgen, LoadgenConfig, ServeConfig, Server};
use std::net::SocketAddr;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--sessions N] [--queries N] [--seed S]\n\
         \u{20}              [--query \"EVQL\"]... [--flaky-seed S] [--overload]\n\
         \n\
         \u{20} --addr        daemon to drive; omit to spawn one in-process\n\
         \u{20} --sessions    concurrent client sessions (default 8)\n\
         \u{20} --queries     queries per session (default 25)\n\
         \u{20} --seed        query-sequence seed (default 0)\n\
         \u{20} --query       EVQL to draw from; repeatable (default: scan mix)\n\
         \u{20} --flaky-seed  use the fault-injection mix with this fault seed\n\
         \u{20} --overload    cap the in-process daemon at 1 in-flight query\n\
         \u{20}               and tolerate shed (Overloaded) responses"
    );
    std::process::exit(2);
}

struct Args {
    addr: Option<SocketAddr>,
    sessions: usize,
    queries: usize,
    seed: u64,
    mix: Vec<String>,
    flaky_seed: Option<u64>,
    overload: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        addr: None,
        sessions: 8,
        queries: 25,
        seed: 0,
        mix: Vec::new(),
        flaky_seed: None,
        overload: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => match value("--addr").parse() {
                Ok(a) => parsed.addr = Some(a),
                Err(_) => usage(),
            },
            "--sessions" => match value("--sessions").parse() {
                Ok(n) if n >= 1 => parsed.sessions = n,
                _ => usage(),
            },
            "--queries" => match value("--queries").parse() {
                Ok(n) if n >= 1 => parsed.queries = n,
                _ => usage(),
            },
            "--seed" => match value("--seed").parse() {
                Ok(n) => parsed.seed = n,
                Err(_) => usage(),
            },
            "--query" => parsed.mix.push(value("--query")),
            "--flaky-seed" => match value("--flaky-seed").parse() {
                Ok(n) => parsed.flaky_seed = Some(n),
                Err(_) => usage(),
            },
            "--overload" => parsed.overload = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args();

    // Spawn an in-process daemon unless pointed at a live one.
    let spawned = if args.addr.is_none() {
        let cfg = ServeConfig {
            settings: SessionSettings {
                scale: 1_000, // floor-scaled catalog: load-test latencies, not CMDN fits
                ..SessionSettings::default()
            },
            // Oversubscription demo: with one admission slot and many
            // sessions, most concurrent arrivals are shed.
            max_inflight_queries: if args.overload { Some(1) } else { None },
            ..ServeConfig::default()
        };
        match Server::spawn(cfg) {
            Ok(pair) => Some(pair),
            Err(e) => {
                eprintln!("loadgen: failed to spawn daemon: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = args
        .addr
        .unwrap_or_else(|| spawned.as_ref().unwrap().0.addr());

    let mut cfg = LoadgenConfig::new(addr, args.sessions, args.queries, args.seed);
    if let Some(fault_seed) = args.flaky_seed {
        cfg.mix = flaky_mix(fault_seed);
    }
    if !args.mix.is_empty() {
        cfg.mix = args.mix; // explicit --query wins over --flaky-seed
    }
    println!(
        "loadgen: {} sessions x {} queries against {addr} (seed {})",
        cfg.sessions, cfg.queries_per_session, cfg.seed
    );
    let report = match run_loadgen(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());

    if let Some((handle, join)) = spawned {
        handle.shutdown();
        match join.join() {
            Ok(shutdown) if shutdown.clean() => {}
            Ok(shutdown) => {
                eprintln!("loadgen: daemon drained unclean: {shutdown:?}");
                return ExitCode::FAILURE;
            }
            Err(_) => {
                eprintln!("loadgen: daemon thread panicked");
                return ExitCode::FAILURE;
            }
        }
    }
    if report.errors > 0 {
        eprintln!("loadgen: {} queries answered with errors", report.errors);
        return ExitCode::FAILURE;
    }
    if report.shed > 0 && !args.overload {
        eprintln!(
            "loadgen: {} queries shed without --overload (daemon at capacity)",
            report.shed
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
