//! Regenerates Figure 6: impact of the confidence threshold `thres`
//! (0.5, 0.75, 0.9, 0.95, 0.99) on speedup and result quality, Top-50.
//!
//! `cargo run --release -p everest-bench --bin fig6`

use everest_bench::harness::{
    dataset_specs, prepare_dataset, print_sweep_row, run_everest, scale_from_env,
};

fn main() {
    let scale = scale_from_env();
    println!(
        "Figure 6: impact of thres, Top-{} (scale = {})",
        scale.default_k, scale.name
    );
    for (i, spec) in dataset_specs(&scale).iter().enumerate() {
        let ds = prepare_dataset(spec, 1_000 + i as u64, &scale);
        println!("\n--- {} ---", ds.name);
        for &thres in &[0.5, 0.75, 0.9, 0.95, 0.99] {
            let (report, row) = run_everest(&ds, scale.default_k, thres);
            print_sweep_row(&format!("thres={thres}"), &row);
            println!(
                "{:<18} iterations {}  cleaned {:.2}%",
                "",
                report.iterations,
                100.0 * report.pct_cleaned()
            );
        }
    }
}
