//! Diffs the medians written by the criterion shim against the committed
//! baseline, so perf PRs can prove their wins (and CI can catch
//! order-of-magnitude regressions).
//!
//! ```text
//! cargo bench -p everest-bench                    # writes target/bench_medians/*.json
//! cargo run -p everest-bench --bin bench_diff      # prints the diff table
//! cargo run -p everest-bench --bin bench_diff -- --check        # exit 1 on big regressions
//! cargo run -p everest-bench --bin bench_diff -- --update       # rewrite the baseline
//! ```
//!
//! Flags:
//!
//! * `--check` — exit non-zero if any benchmark regressed by more than the
//!   tolerance (default 4×; machine-to-machine variance is large, so the
//!   gate only catches structural regressions, not noise).
//! * `--tolerance <ratio>` — the `--check` regression ratio.
//! * `--update` — overwrite the committed baseline with the current
//!   medians (run on the reference machine after a deliberate perf change).
//! * `--baseline <path>` / `--medians <dir>` — override the default
//!   locations (`crates/bench/bench_baseline.json`, the bench package's
//!   `target/bench_medians/`).
//!
//! `--check` also fails when a baseline benchmark was *not* measured this
//! run — an unmeasured benchmark is an ungated one. Note the medians dir
//! merges every `*.json` it contains, so after renaming or deleting a
//! bench binary, clear `target/bench_medians/` (stale files would keep
//! feeding dead labels into the diff and into `--update`).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn default_baseline() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("bench_baseline.json")
}

fn default_medians_dir() -> PathBuf {
    match std::env::var("BENCH_MEDIANS_DIR") {
        Ok(dir) => PathBuf::from(dir),
        // cargo runs bench binaries with the package root as cwd, so the
        // shim's relative `target/bench_medians` lands here:
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/bench_medians"),
    }
}

fn load_map(path: &std::path::Path) -> BTreeMap<String, f64> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return BTreeMap::new(),
    };
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot parse {}: {e}", path.display());
        BTreeMap::new()
    })
}

/// All medians from the shim's per-bench-binary files, merged.
fn load_current(dir: &std::path::Path) -> BTreeMap<String, f64> {
    let mut merged = BTreeMap::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return merged,
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    for file in files {
        merged.extend(load_map(&file));
    }
    merged
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

fn main() -> ExitCode {
    let mut check = false;
    let mut update = false;
    let mut tolerance = 4.0f64;
    let mut baseline_path = default_baseline();
    let mut medians_dir = default_medians_dir();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--update" => update = true,
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a ratio, e.g. 4.0");
            }
            "--baseline" => baseline_path = PathBuf::from(args.next().expect("--baseline <path>")),
            "--medians" => medians_dir = PathBuf::from(args.next().expect("--medians <dir>")),
            other => {
                eprintln!("bench_diff: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let current = load_current(&medians_dir);
    if current.is_empty() {
        eprintln!(
            "bench_diff: no medians in {} — run `cargo bench -p everest-bench` first",
            medians_dir.display()
        );
        return ExitCode::FAILURE;
    }

    if update {
        // One entry per line (sorted by label) for reviewable diffs.
        let mut pretty = String::from("{\n");
        for (i, (label, ns)) in current.iter().enumerate() {
            pretty.push_str(&format!("  \"{label}\": {ns:?}"));
            pretty.push_str(if i + 1 == current.len() { "\n" } else { ",\n" });
        }
        pretty.push_str("}\n");
        std::fs::write(&baseline_path, pretty).expect("write baseline");
        println!(
            "baseline updated: {} ({} entries)",
            baseline_path.display(),
            current.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = load_map(&baseline_path);
    if baseline.is_empty() {
        eprintln!(
            "bench_diff: no baseline at {} — run with --update to create it",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    }

    println!(
        "{:<52} {:>12} {:>12} {:>8}",
        "benchmark", "baseline", "current", "ratio"
    );
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    for (label, &now) in &current {
        match baseline.get(label) {
            Some(&base) if base > 0.0 => {
                let ratio = now / base;
                let marker = if ratio > tolerance {
                    regressions.push((label.clone(), ratio));
                    "  ← REGRESSION"
                } else if ratio < 1.0 / tolerance {
                    "  ← improvement"
                } else {
                    ""
                };
                println!(
                    "{label:<52} {:>12} {:>12} {ratio:>7.2}×{marker}",
                    human(base),
                    human(now)
                );
            }
            _ => println!("{label:<52} {:>12} {:>12}     new", "—", human(now)),
        }
    }
    for label in baseline.keys() {
        if !current.contains_key(label) {
            println!("{label:<52} (in baseline, not measured this run)");
            missing.push(label.clone());
        }
    }

    if check && !(regressions.is_empty() && missing.is_empty()) {
        if !regressions.is_empty() {
            eprintln!(
                "\nbench_diff: {} benchmark(s) regressed beyond {tolerance}×:",
                regressions.len()
            );
            for (label, ratio) in &regressions {
                eprintln!("  {label}: {ratio:.2}×");
            }
        }
        if !missing.is_empty() {
            // A silently un-measured benchmark is an ungated benchmark:
            // fail so a deleted group, renamed bench binary, or
            // unparseable medians file can't slip through CI green.
            eprintln!(
                "\nbench_diff: {} baseline benchmark(s) were not measured this run \
                 (re-run `cargo bench -p everest-bench`, or --update the baseline \
                 if they were deliberately removed):",
                missing.len()
            );
            for label in &missing {
                eprintln!("  {label}");
            }
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
