//! Experiment: the uncertain Top-K semantics of §2, side by side.
//!
//! ```text
//! cargo run --release -p everest-bench --bin semantics_comparison
//! ```
//!
//! §2 surveys U-TopK, U-KRanks and PT-k and argues none of them gives what
//! a video analyst needs (a thresholded guarantee on the whole answer).
//! This experiment makes the critique concrete: on the paper's own
//! Table 1a example, on a small noisy-proxy relation, and — now that the
//! semantics are evaluated by the polynomial-time DP layer
//! (`everest_core::semantics_dp`) rather than possible-world enumeration —
//! on a 300-item relation with ~5³⁰⁰ possible worlds, it prints each
//! semantic's answer and the pathology the paper calls out —
//! low-probability U-TopK winners, U-KRanks repeating one item across
//! ranks, PT-k returning the wrong cardinality — next to Everest's
//! oracle-confirmed answer at `thres = 0.9`.

use everest_core::cleaner::{run_cleaner, CleanerConfig, FnCleaningOracle};
use everest_core::dist::DiscreteDist;
use everest_core::pws::{count_worlds, MAX_WORLDS};
use everest_core::semantics::compare_semantics;
use everest_core::xtuple::UncertainRelation;
use everest_video::util::{frame_rng, gaussian};
use std::time::Instant;

fn table_1a() -> UncertainRelation {
    let mut r = UncertainRelation::new(1.0, 2);
    r.push_uncertain(DiscreteDist::from_masses(&[0.78, 0.21, 0.01]));
    r.push_uncertain(DiscreteDist::from_masses(&[0.49, 0.42, 0.09]));
    r.push_uncertain(DiscreteDist::from_masses(&[0.16, 0.48, 0.36]));
    r
}

/// A noisy-proxy relation over `n` items whose ground-truth scores are a
/// permutation-spread of `0..=max_b` (so strengths are distinct, like
/// real counting scores over a long video): `i → (i·stride + 5) % (max_b+1)`
/// with `stride` coprime to the grid.
fn noisy_relation(
    n: usize,
    max_b: usize,
    stride: usize,
    seed: u64,
) -> (UncertainRelation, Vec<u32>) {
    let mut rel = UncertainRelation::new(1.0, max_b);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        let t = ((i * stride + 5) % (max_b + 1)) as u32;
        truth.push(t);
        let mut rng = frame_rng(seed, i);
        // Keep supports narrow (±1 bucket): the proxy is confident but
        // noisy, the regime the paper's CMDN operates in.
        let masses: Vec<f64> = (0..=max_b)
            .map(|b| {
                let d = (b as f64 - t as f64).abs() + 0.2 * gaussian(&mut rng).abs();
                if d > 1.5 {
                    0.0
                } else {
                    (-d / 1.1).exp()
                }
            })
            .collect();
        rel.push_uncertain(DiscreteDist::from_masses(&masses));
    }
    (rel, truth)
}

fn print_comparison(name: &str, rel: &UncertainRelation, k: usize, ptk_p: f64) {
    let started = Instant::now();
    let cmp = compare_semantics(rel, k, ptk_p);
    let elapsed = started.elapsed();
    let worlds = count_worlds(rel);
    println!(
        "── {name}: Top-{k} over {} items ({} possible worlds{}) ──",
        rel.len(),
        if worlds == u128::MAX {
            "≥ 2¹²⁸".to_string()
        } else {
            worlds.to_string()
        },
        if worlds > MAX_WORLDS {
            ", DP only — enumeration refuses"
        } else {
            ""
        }
    );
    println!(
        "U-TopK      : {:?}  Pr(set) = {:.4}{}",
        cmp.u_topk.0,
        cmp.u_topk.1,
        if cmp.u_topk.1 < 0.5 {
            "   ← no threshold guarantee (§2)"
        } else {
            ""
        }
    );
    let kranks_items: Vec<usize> = cmp.u_kranks.iter().map(|&(f, _)| f).collect();
    let repeats = {
        let mut seen = std::collections::HashSet::new();
        kranks_items.iter().any(|f| !seen.insert(*f))
    };
    println!(
        "U-KRanks    : {:?}{}",
        cmp.u_kranks,
        if repeats {
            "   ← one item wins several ranks (§2)"
        } else {
            ""
        }
    );
    println!(
        "PT-k(p={:.2}): {:?}  |result| = {}{}",
        cmp.ptk_threshold,
        cmp.ptk,
        cmp.ptk.len(),
        if cmp.ptk.len() != k {
            "   ← wrong cardinality (§2)"
        } else {
            ""
        }
    );
    println!("ExpRank [19]: {:?}", cmp.expected_rank);
    println!("all four semantics evaluated in {elapsed:?} (DP layer)");
}

/// Everest with the oracle in the loop, for contrast with the
/// no-oracle semantics above.
fn print_everest_contrast(rel: &UncertainRelation, truth: &[u32], k: usize) {
    let mut working = rel.clone();
    let mut oracle = FnCleaningOracle(|id| truth[id]);
    let out = run_cleaner(
        &mut working,
        &mut oracle,
        &CleanerConfig {
            k,
            thres: 0.9,
            ..Default::default()
        },
    );
    println!(
        "Everest     : {:?}  Pr(R̂ = R) = {:.4} ≥ 0.9, all oracle-confirmed \
         ({} of {} items cleaned)",
        out.topk,
        out.confidence,
        out.cleaned,
        rel.len(),
    );
    let mut ids: Vec<usize> = (0..truth.len()).collect();
    ids.sort_by(|&a, &b| truth[b].cmp(&truth[a]).then(a.cmp(&b)));
    println!("exact Top-{k}: {:?}  (ground truth)", &ids[..k]);
}

fn main() {
    println!("===== Semantics comparison (§2 survey, experimental companion) =====\n");

    print_comparison("Table 1a", &table_1a(), 1, 0.5);
    println!();

    // The original toy scale — still enumerable, so the DP answers here
    // are cross-checked against brute force by the property suites.
    let (rel, truth) = noisy_relation(9, 6, 13, 42);
    print_comparison("noisy proxy (toy)", &rel, 3, 0.6);
    print_everest_contrast(&rel, &truth, 3);
    println!();

    // The scale the DP layer unlocks: 300 items, ~5³⁰⁰ possible worlds.
    // Before this layer the alternative semantics were simply not
    // computable here (the enumeration oracle refuses the relation).
    let (rel, truth) = noisy_relation(300, 310, 191, 7);
    print_comparison("noisy proxy (at scale)", &rel, 10, 0.6);
    print_everest_contrast(&rel, &truth, 10);
}
