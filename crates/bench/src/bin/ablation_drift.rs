//! Ablation: model drift — a proxy trained on one video serving another.
//!
//! ```text
//! cargo run --release -p everest-bench --bin ablation_drift
//! ```
//!
//! §3.1 keeps model drift out of scope ("tracking model drift in visual
//! data is still an ongoing research"). This ablation quantifies *why the
//! proxy must be query- and video-specific* — the premise of CNN
//! specialization itself:
//!
//! * **native** — the paper's protocol: CMDN trained on a sample of the
//!   query video;
//! * **drifted** — the same architecture trained on a *different* video
//!   (same scene family, different traffic process), then used to populate
//!   `D0` for the query video with no labelled frames.
//!
//! Both run the identical Phase 2 afterwards. The certain-result condition
//! means returned scores are always oracle-true; what drift costs is
//! *cleaning volume* (a diffuse/miscalibrated prior stops the Eq. 2
//! product from converging early) and potentially precision (a prior that
//! is confidently wrong can satisfy `thres` while missing true peaks).

use everest_bench::harness::n_frames;
use everest_core::cleaner::CleanerConfig;
use everest_core::metrics::{evaluate_topk, GroundTruth};
use everest_core::phase1::{populate_with_model, run_phase1, Phase1Config};
use everest_core::pipeline::{Everest, PreparedVideo};
use everest_models::{counting_oracle, ExactScoreOracle, InstrumentedOracle, Oracle};
use everest_nn::train::TrainConfig;
use everest_nn::HyperGrid;
use everest_video::arrival::{ArrivalConfig, Timeline};
use everest_video::scene::{SceneConfig, SyntheticVideo};

fn make_video(n: usize, base_intensity: f64, lifetime: f64, seed: u64) -> SyntheticVideo {
    let tl = Timeline::generate(
        &ArrivalConfig {
            n_frames: n,
            base_intensity,
            mean_lifetime: lifetime,
            ..ArrivalConfig::default()
        },
        seed,
    );
    SyntheticVideo::new(SceneConfig::default(), tl, seed, 30.0)
}

fn phase1_cfg(seed: u64) -> Phase1Config {
    Phase1Config {
        sample_frac: 0.08,
        sample_cap: 600,
        sample_min: 200,
        grid: HyperGrid::single(3, 16),
        train: TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        },
        conv_channels: vec![8, 16],
        quant_step: 1.0,
        seed,
        ..Phase1Config::default()
    }
}

struct Row {
    label: &'static str,
    cleaned_pct: f64,
    speedup: f64,
    precision: f64,
    converged: bool,
}

fn run(
    prepared: &PreparedVideo,
    oracle: &InstrumentedOracle<ExactScoreOracle>,
    label: &'static str,
    k: usize,
) -> Row {
    let report = prepared.query_topk(oracle, k, 0.9, &CleanerConfig::default());
    let truth = GroundTruth::new(oracle.inner().all_scores().to_vec());
    let quality = evaluate_topk(&truth, &report.frames(), k);
    let n = prepared.n_frames();
    let scan = n as f64 * oracle.cost_per_frame();
    Row {
        label,
        cleaned_pct: 100.0 * report.pct_cleaned(),
        speedup: scan / report.sim_seconds(),
        precision: quality.precision,
        converged: report.converged,
    }
}

fn main() {
    let n = 6_000;
    let k = 20;

    // Video A: quiet suburban junction. Video B (the query video): busy
    // downtown junction — same scene family, different traffic process.
    let video_a = make_video(n, 1.2, 150.0, 71);
    let video_b = make_video(n, 4.0, 60.0, 72);
    let oracle_a = InstrumentedOracle::new(counting_oracle(&video_a));
    let oracle_b = InstrumentedOracle::new(counting_oracle(&video_b));
    println!(
        "video A (training source): {} frames, counts ≤ {}",
        n_frames(&video_a),
        video_a.timeline().max_count()
    );
    println!(
        "video B (query target):    {} frames, counts ≤ {}\n",
        n_frames(&video_b),
        video_b.timeline().max_count()
    );

    // Native: the paper's protocol on video B.
    let native = Everest::prepare(&video_b, &oracle_b, &phase1_cfg(7));

    // Drifted: train on A, populate B with A's model.
    let trained_on_a = run_phase1(&video_a, &oracle_a, &phase1_cfg(7));
    let drifted_phase1 = populate_with_model(&video_b, &trained_on_a.model, &phase1_cfg(7));
    // Charge the drifted pipeline for A's training too (it is not free);
    // its own clock only has diff+populate.
    let mut drifted_phase1 = drifted_phase1;
    drifted_phase1.clock.merge(&trained_on_a.clock);
    let drifted = PreparedVideo::from_parts(drifted_phase1, n_frames(&video_b));

    println!("Top-{k} (thres 0.9) on video B:\n");
    println!(
        "{:<22} {:>10} {:>9} {:>10} {:>10}",
        "proxy", "cleaned%", "speedup", "precision", "converged"
    );
    for row in [
        run(&native, &oracle_b, "native (trained on B)", k),
        run(&drifted, &oracle_b, "drifted (trained on A)", k),
    ] {
        println!(
            "{:<22} {:>9.1}% {:>8.1}x {:>10.3} {:>10}",
            row.label, row.cleaned_pct, row.speedup, row.precision, row.converged
        );
    }
    println!(
        "\nReading: the drifted proxy was fit to counts ≤ {}, so on the busier\n\
         video it is *confidently* miscalibrated — it asserts every frame\n\
         scores low, the Eq. 2 product converges almost immediately, and the\n\
         query returns fast with high claimed confidence but badly degraded\n\
         precision. This is the silent failure mode of drift: the guarantee\n\
         is exact over the modeled relation, and a drifted model is the\n\
         wrong relation. (A merely *diffuse* drifted prior shows the other\n\
         mode — inflated cleaning volume.) Hence the paper's insistence on\n\
         query-time CNN specialization on the video-of-interest, and its\n\
         deferral of drift to future CV research (§3.1).",
        video_a.timeline().max_count()
    );
}
