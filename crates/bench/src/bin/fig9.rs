//! Regenerates Figure 9: a different scoring UDF — the simulated monocular
//! depth estimator ranking dashcam frames by tailgating degree — under four
//! scenarios: Top-50/0.9, Top-100/0.9, Top-50/0.75, and Top-50 window
//! (30-frame windows, 10 % sampling).
//!
//! `cargo run --release -p everest-bench --bin fig9`

use everest_bench::harness::{phase1_cfg, print_sweep_row, scale_from_env, MethodRow};
use everest_core::cleaner::CleanerConfig;
use everest_core::metrics::{evaluate_topk, GroundTruth};
use everest_core::pipeline::Everest;
use everest_core::window::exact_window_scores;
use everest_models::depth::{depth_oracle, TAILGATING_QUANTIZATION_STEP};
use everest_models::{InstrumentedOracle, Oracle};
use everest_video::dashcam::{dashcam_datasets, DashcamVideo};

fn main() {
    let scale = scale_from_env();
    println!(
        "Figure 9: depth-estimator scoring UDF on dashcam videos (scale = {})",
        scale.name
    );
    for (name, mut cfg, seed) in dashcam_datasets() {
        cfg.n_frames /= scale.shrink as usize;
        let video = DashcamVideo::new(cfg, seed);
        let oracle = InstrumentedOracle::new(depth_oracle(&video));
        let p1 = phase1_cfg(&scale, TAILGATING_QUANTIZATION_STEP, seed);
        let prepared = Everest::prepare(&video, &oracle, &p1);
        let truth = GroundTruth::new(oracle.inner().all_scores().to_vec());
        let scan = oracle.num_frames() as f64 * oracle.cost_per_frame();
        println!("\n--- {name} ({} frames) ---", oracle.num_frames());

        let k_half = scale.default_k;
        let k_full = 2 * scale.default_k;
        let scenarios: [(&str, usize, f64); 3] = [
            ("Top-50  thres=0.9", k_half, 0.9),
            ("Top-100 thres=0.9", k_full, 0.9),
            ("Top-50  thres=0.75", k_half, 0.75),
        ];
        for (label, k, thres) in scenarios {
            let report = prepared.query_topk(&oracle, k, thres, &CleanerConfig::default());
            let quality = evaluate_topk(&truth, &report.frames(), k);
            let row = MethodRow {
                method: label.into(),
                quality,
                sim_seconds: report.sim_seconds(),
                speedup: scan / report.sim_seconds(),
            };
            print_sweep_row(label, &row);
        }

        // Window scenario: Top-50 over 30-frame windows, 10% sampling.
        let window_len = 30;
        let windows = prepared.windows(window_len);
        let k_w = k_half.min(windows.len() / 3).max(1);
        let report = prepared.query_topk_windows(
            &oracle,
            k_w,
            0.9,
            window_len,
            0.1,
            &CleanerConfig::default(),
        );
        let exact = exact_window_scores(oracle.inner().all_scores(), &windows);
        let wtruth = GroundTruth::new(exact);
        let answer: Vec<usize> = report.items.iter().map(|i| i.frame / window_len).collect();
        let quality = evaluate_topk(&wtruth, &answer, k_w);
        let row = MethodRow {
            method: "window".into(),
            quality,
            sim_seconds: report.sim_seconds(),
            speedup: scan / report.sim_seconds(),
        };
        print_sweep_row(&format!("Top-{k_w} window(30)"), &row);
    }
}
