//! Regenerates Figure 8: impact of object density on the Visual Road
//! substitute — five identical mini-city videos that differ only in the
//! total car population (50–250), Top-50 thres 0.9.
//!
//! `cargo run --release -p everest-bench --bin fig8`

use everest_bench::harness::{phase1_cfg, print_sweep_row, scale_from_env, MethodRow};
use everest_core::cleaner::CleanerConfig;
use everest_core::metrics::{evaluate_topk, GroundTruth};
use everest_core::pipeline::Everest;
use everest_models::counting::counting_oracle_visualroad;
use everest_models::{InstrumentedOracle, Oracle};
use everest_video::visualroad::{VisualRoadConfig, VisualRoadVideo};

fn main() {
    let scale = scale_from_env();
    // Paper: 10-hour videos at 30 fps = 1.08 M frames; our full scale is
    // 1/60 (18 000 frames), shrunk further per EVEREST_SCALE.
    let n_frames = 18_000 / scale.shrink as usize;
    println!(
        "Figure 8: Visual Road object density, Top-{} thres=0.9, {} frames/video (scale = {})",
        scale.default_k, n_frames, scale.name
    );
    for &cars in &[50usize, 100, 150, 200, 250] {
        let video = VisualRoadVideo::new(
            VisualRoadConfig {
                total_cars: cars,
                n_frames,
                ..VisualRoadConfig::default()
            },
            4_000 + cars as u64,
        );
        let oracle = InstrumentedOracle::new(counting_oracle_visualroad(&video));
        let cfg = phase1_cfg(&scale, 1.0, 4_000 + cars as u64);
        let prepared = Everest::prepare(&video, &oracle, &cfg);
        let report = prepared.query_topk(&oracle, scale.default_k, 0.9, &CleanerConfig::default());
        let truth = GroundTruth::new(oracle.inner().all_scores().to_vec());
        let quality = evaluate_topk(&truth, &report.frames(), scale.default_k);
        let scan = oracle.num_frames() as f64 * oracle.cost_per_frame();
        let row = MethodRow {
            method: "Everest".into(),
            quality,
            sim_seconds: report.sim_seconds(),
            speedup: scan / report.sim_seconds(),
        };
        print_sweep_row(&format!("cars={cars}"), &row);
    }
}
