//! Regenerates Figure 5: impact of K (5, 10, 25, 50, 75, 100) on speedup
//! and result quality, per dataset, thres = 0.9.
//!
//! `cargo run --release -p everest-bench --bin fig5`

use everest_bench::harness::{
    dataset_specs, prepare_dataset, print_sweep_row, run_everest, scale_from_env,
};

fn main() {
    let scale = scale_from_env();
    println!("Figure 5: impact of K, thres=0.9 (scale = {})", scale.name);
    for (i, spec) in dataset_specs(&scale).iter().enumerate() {
        let ds = prepare_dataset(spec, 1_000 + i as u64, &scale);
        println!("\n--- {} ---", ds.name);
        for &k in &[5usize, 10, 25, 50, 75, 100] {
            let (_, row) = run_everest(&ds, k, 0.9);
            print_sweep_row(&format!("K={k}"), &row);
        }
    }
}
