//! # everest-bench — experiment harness
//!
//! Shared helpers for the experiment binaries (one per table/figure of the
//! paper) and the criterion micro-benchmarks. See `src/bin/` for the
//! regeneration targets and `benches/` for the kernels.

#![deny(unsafe_code)]

pub mod harness;
