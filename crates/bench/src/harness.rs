//! Shared experiment harness: dataset preparation, method runners, and
//! table printing for the per-figure binaries in `src/bin/`.
//!
//! Scale control: the `EVEREST_SCALE` environment variable selects
//! `full` (the 1/400-scaled Table 7 catalog as-is), `mid` (default —
//! a further 1/4 shrink so the whole suite runs in ~10 minutes), or
//! `smoke` (tiny; CI-sized).

use everest_core::baselines::{
    cheap_scan, cmdn_only, scan_and_test, select_and_topk_calibrated, BaselineResult,
};
use everest_core::cleaner::CleanerConfig;
use everest_core::metrics::{evaluate_topk, GroundTruth, ResultQuality};
use everest_core::phase1::Phase1Config;
use everest_core::pipeline::{Everest, PreparedVideo, QueryReport};
use everest_models::{
    counting_oracle, ExactScoreOracle, HogScorer, InstrumentedOracle, TinyYoloScorer,
};
use everest_nn::train::TrainConfig;
use everest_nn::HyperGrid;
use everest_video::datasets::{counting_datasets, DatasetSpec};
use everest_video::scene::SyntheticVideo;
use everest_video::VideoStore;

/// Experiment scale knobs.
#[derive(Debug, Clone)]
pub struct Scale {
    pub name: &'static str,
    /// Extra divisor applied to the catalog's (already 1/400) frame counts.
    pub shrink: u32,
    pub sample_cap: usize,
    pub grid: HyperGrid,
    pub epochs: usize,
    /// Default K for the headline experiments (the paper uses 50).
    pub default_k: usize,
}

/// Reads `EVEREST_SCALE` (`full` | `mid` | `smoke`); defaults to `mid`.
pub fn scale_from_env() -> Scale {
    match std::env::var("EVEREST_SCALE").as_deref() {
        Ok("full") => Scale {
            name: "full",
            shrink: 1,
            sample_cap: 2_000,
            grid: HyperGrid::default(), // 2×2 = 4 models
            epochs: 25,
            default_k: 50,
        },
        Ok("smoke") => Scale {
            name: "smoke",
            shrink: 16,
            sample_cap: 300,
            grid: HyperGrid::single(5, 24),
            epochs: 12,
            default_k: 20,
        },
        _ => Scale {
            name: "mid",
            shrink: 4,
            sample_cap: 1_000,
            grid: HyperGrid {
                gaussians: vec![5, 8],
                hidden: vec![24],
            },
            epochs: 30,
            default_k: 50,
        },
    }
}

/// The Table 7 counting catalog at the chosen scale.
///
/// Shrinking never takes a dataset below ~4 000 frames: a Top-50 query
/// over fewer frames targets several percent of the whole video, which is
/// a different regime from the paper's (Top-50 of millions).
pub fn dataset_specs(scale: &Scale) -> Vec<DatasetSpec> {
    counting_datasets()
        .into_iter()
        .map(|mut d| {
            let shrunk = (d.n_frames / scale.shrink as usize).max(d.n_frames.min(4_000));
            d.scale = (d.paper_frames_k as usize * 1000 / shrunk) as u32;
            d.n_frames = shrunk;
            d.arrival.n_frames = d.n_frames;
            d
        })
        .collect()
}

/// Phase-1 configuration for a scale (quantization step 1 = counting).
pub fn phase1_cfg(scale: &Scale, quant_step: f64, seed: u64) -> Phase1Config {
    Phase1Config {
        sample_frac: 0.04,
        sample_cap: scale.sample_cap,
        sample_min: 300,
        grid: scale.grid.clone(),
        train: TrainConfig {
            epochs: scale.epochs,
            ..TrainConfig::default()
        },
        quant_step,
        seed,
        ..Phase1Config::default()
    }
}

/// A fully prepared dataset: video + oracle + Phase-1 artifacts + truth.
pub struct PreparedDataset {
    pub name: String,
    pub video: SyntheticVideo,
    pub oracle: InstrumentedOracle<ExactScoreOracle>,
    pub prepared: PreparedVideo,
    pub truth: GroundTruth,
    pub phase1_wall: std::time::Duration,
}

/// Builds and Phase-1-prepares one catalog dataset.
pub fn prepare_dataset(spec: &DatasetSpec, seed: u64, scale: &Scale) -> PreparedDataset {
    let video = spec.build(seed);
    let oracle = InstrumentedOracle::new(counting_oracle(&video));
    let cfg = phase1_cfg(scale, 1.0, seed);
    let started = std::time::Instant::now();
    let prepared = Everest::prepare(&video, &oracle, &cfg);
    let phase1_wall = started.elapsed();
    let truth = GroundTruth::new(oracle.inner().all_scores().to_vec());
    PreparedDataset {
        name: spec.name.to_string(),
        video,
        oracle,
        prepared,
        truth,
        phase1_wall,
    }
}

/// One measured method run: quality + simulated latency (+ speedup against
/// the scan-and-test reference).
#[derive(Debug, Clone)]
pub struct MethodRow {
    pub method: String,
    pub quality: ResultQuality,
    pub sim_seconds: f64,
    pub speedup: f64,
}

/// Runs the Everest query and evaluates it against the whole-video truth.
pub fn run_everest(ds: &PreparedDataset, k: usize, thres: f64) -> (QueryReport, MethodRow) {
    let report = ds
        .prepared
        .query_topk(&ds.oracle, k, thres, &CleanerConfig::default());
    let quality = evaluate_topk(&ds.truth, &report.frames(), k);
    let scan = scan_cost(&ds.oracle);
    let row = MethodRow {
        method: "Everest".into(),
        quality,
        sim_seconds: report.sim_seconds(),
        speedup: scan / report.sim_seconds(),
    };
    (report, row)
}

/// Runs a window query and evaluates against exact window means.
pub fn run_everest_windows(
    ds: &PreparedDataset,
    k: usize,
    thres: f64,
    window_len: usize,
    sample_frac: f64,
) -> (QueryReport, MethodRow) {
    let report = ds.prepared.query_topk_windows(
        &ds.oracle,
        k,
        thres,
        window_len,
        sample_frac,
        &CleanerConfig::default(),
    );
    let windows = ds.prepared.windows(window_len);
    let exact = everest_core::window::exact_window_scores(ds.oracle.inner().all_scores(), &windows);
    let truth = GroundTruth::new(exact);
    let answer: Vec<usize> = report.items.iter().map(|i| i.frame / window_len).collect();
    let quality = evaluate_topk(&truth, &answer, k);
    let scan = scan_cost(&ds.oracle);
    let row = MethodRow {
        method: format!("Everest(w={window_len})"),
        quality,
        sim_seconds: report.sim_seconds(),
        speedup: scan / report.sim_seconds(),
    };
    (report, row)
}

/// Simulated cost of the scan-and-test reference on this oracle.
pub fn scan_cost(oracle: &InstrumentedOracle<ExactScoreOracle>) -> f64 {
    scan_and_test(oracle.inner(), 1).sim_seconds
}

/// Evaluates a baseline result against the dataset truth.
pub fn eval_baseline(ds: &PreparedDataset, r: &BaselineResult, k: usize) -> MethodRow {
    let quality = evaluate_topk(&ds.truth, &r.topk, k);
    let scan = scan_cost(&ds.oracle);
    MethodRow {
        method: r.name.clone(),
        quality,
        sim_seconds: r.sim_seconds,
        speedup: scan / r.sim_seconds,
    }
}

/// Runs the full Figure-4 method suite on one dataset.
pub fn run_all_methods(ds: &PreparedDataset, k: usize, thres: f64) -> Vec<MethodRow> {
    let mut rows = Vec::new();
    let scan = scan_and_test(ds.oracle.inner(), k);
    rows.push(eval_baseline(ds, &scan, k));
    let hog = cheap_scan(&HogScorer::new(ds.oracle.inner().clone(), 1), k);
    rows.push(eval_baseline(ds, &hog, k));
    let tiny = cheap_scan(&TinyYoloScorer::new(ds.oracle.inner().clone(), 1), k);
    rows.push(eval_baseline(ds, &tiny, k));
    rows.push(eval_baseline(ds, &cmdn_only(&ds.prepared, k), k));
    let snt = select_and_topk_calibrated(&ds.prepared, ds.oracle.inner(), k, 0.9);
    rows.push(eval_baseline(ds, &snt, k));
    let (_, everest) = run_everest(ds, k, thres);
    rows.push(everest);
    rows
}

/// Prints a method table in the Figure-4 layout.
pub fn print_method_table(dataset: &str, rows: &[MethodRow]) {
    println!("\n--- {dataset} ---");
    println!(
        "{:<24} {:>9} {:>10} {:>10} {:>11} {:>12}",
        "method", "speedup", "precision", "rank-dist", "score-err", "sim-time(s)"
    );
    for r in rows {
        println!(
            "{:<24} {:>8.1}x {:>10.3} {:>10.4} {:>11.3} {:>12.1}",
            r.method,
            r.speedup,
            r.quality.precision,
            r.quality.rank_distance,
            r.quality.score_error,
            r.sim_seconds
        );
    }
}

/// Prints one Everest sweep row (Figures 5–9 series).
pub fn print_sweep_row(label: &str, row: &MethodRow) {
    println!(
        "{:<18} speedup {:>6.1}x  precision {:>5.3}  rank-dist {:>7.4}  score-err {:>6.3}",
        label,
        row.speedup,
        row.quality.precision,
        row.quality.rank_distance,
        row.quality.score_error
    );
}

/// Convenience: frames of a video (avoids importing the trait everywhere).
pub fn n_frames(v: &SyntheticVideo) -> usize {
    v.num_frames()
}
