//! Pins the `serve/shed_under_overload` behavior through the bench
//! driver's own path: `run_loadgen` with the fault-injection mix against
//! a deliberately oversubscribed daemon must observe typed `Overloaded`
//! sheds, lose nothing, and drain clean. This is a behavior test, not a
//! timing benchmark — shedding is load-dependent, so it must never
//! become a `bench_baseline.json` entry.

use everest_evql::SessionSettings;
use everest_serve::{flaky_mix, run_loadgen, LoadgenConfig, ServeConfig, Server};

#[test]
fn shed_under_overload() {
    let cfg = ServeConfig {
        settings: SessionSettings {
            scale: 1_000,
            ..SessionSettings::default()
        },
        workers: 4,
        // One admission slot: concurrent arrivals beyond it are shed.
        max_inflight_queries: Some(1),
        ..ServeConfig::default()
    };
    let (handle, join) = Server::spawn(cfg).expect("spawn daemon");

    // The flaky mix runs real Phase-1 builds + fault-injected cleaning,
    // so queries overlap long enough for the single slot to saturate.
    let mut load = LoadgenConfig::new(handle.addr(), 6, 4, 0);
    load.mix = flaky_mix(7);
    let report = run_loadgen(&load).expect("loadgen run");

    assert_eq!(report.errors, 0, "shed must be typed, not an error");
    assert!(
        report.shed >= 1,
        "6 concurrent sessions against 1 admission slot never shed: {report:?}"
    );
    assert_eq!(report.queries_total, 6 * 4, "every query got a response");

    handle.shutdown();
    let shutdown = join.join().expect("daemon thread");
    // The overload contract: accepted == answered + shed, zero sessions
    // left behind.
    assert!(shutdown.clean(), "unclean drain: {shutdown:?}");
    assert_eq!(shutdown.queries_shed, report.shed);
}
