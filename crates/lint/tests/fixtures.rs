//! Every rule family has a positive (`pass/`) and negative (`fail/`)
//! fixture tree under `tests/fixtures/`: a miniature workspace whose file
//! *paths* matter as much as their contents, because several rules are
//! path-scoped (kernel modules, core/evql library code). `pass` trees must
//! lint clean; `fail` trees must produce exactly the expected rule IDs —
//! never extras, so rule precision regressions surface here too.

use everest_lint::lint_root;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixture(name: &str, side: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .join(side)
}

/// Rule IDs found in a fixture tree, deduplicated.
fn rules_in(name: &str, side: &str) -> BTreeSet<&'static str> {
    let report = lint_root(&fixture(name, side));
    report.diagnostics.iter().map(|d| d.rule).collect()
}

fn assert_pass(name: &str) {
    let report = lint_root(&fixture(name, "pass"));
    assert!(
        report.diagnostics.is_empty(),
        "fixture {name}/pass must be clean, got:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn assert_fail(name: &str, expected: &[&str]) {
    let got = rules_in(name, "fail");
    let want: BTreeSet<&str> = expected.iter().copied().collect();
    assert_eq!(
        got, want,
        "fixture {name}/fail must trip exactly the expected rules"
    );
}

#[test]
fn unsafe_audit_fixtures() {
    assert_pass("unsafe_audit");
    assert_fail(
        "unsafe_audit",
        &[
            "unsafe-block-comment",
            "unsafe-fn-doc",
            "unsafe-callsite-comment",
            "target-feature-vis",
            "target-feature-guard",
        ],
    );
}

#[test]
fn determinism_fixtures() {
    assert_pass("determinism");
    assert_fail(
        "determinism",
        &["det-hash-iter", "det-wallclock", "det-float-sum"],
    );
}

#[test]
fn env_registry_fixtures() {
    assert_pass("env_registry");
    assert_fail(
        "env_registry",
        &["env-var-undocumented", "env-var-doc-stale"],
    );
}

#[test]
fn panic_policy_fixtures() {
    assert_pass("panic_policy");
    assert_fail("panic_policy", &["panic-unwrap"]);
    // The justified site is banked as an allow, not silently dropped.
    let report = lint_root(&fixture("panic_policy", "pass"));
    assert_eq!(report.panic_site_allows, 1);
    assert_eq!(report.panic_sites, 0);
}

#[test]
fn vendor_guard_fixtures() {
    assert_pass("vendor_guard");
    assert_fail("vendor_guard", &["vendor-dep"]);
    // Both the registry-version dep and the git sub-table dep are caught.
    let report = lint_root(&fixture("vendor_guard", "fail"));
    assert_eq!(report.diagnostics.len(), 2);
}

#[test]
fn lock_order_fixtures() {
    assert_pass("lock_order");
    // The cycle crosses a helper-call boundary (`bump_drain`): only the
    // call-graph rule can see it.
    assert_fail("lock_order", &["lock-order-cycle"]);
}

#[test]
fn taint_fixtures() {
    assert_pass("taint");
    // An `Instant::now` laundered through two return-value hops (and a
    // det-wallclock allow) still reaches canonical bytes.
    assert_fail("taint", &["det-taint"]);
}

#[test]
fn budget_fixtures() {
    assert_pass("budget");
    // A raw `score_batch` behind a private helper is still reachable from
    // an ungoverned pub fn.
    assert_fail("budget", &["budget-discipline"]);
}

#[test]
fn allow_meta_fixtures() {
    assert_pass("allows");
    // A reason-less allow is rejected AND does not suppress its rule:
    // det-wallclock still fires under the malformed escape hatch.
    assert_fail(
        "allows",
        &[
            "allow-unknown-rule",
            "allow-missing-reason",
            "det-wallclock",
        ],
    );
}
