//! Negative fixture: a bare unwrap in library code with budget zero.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
