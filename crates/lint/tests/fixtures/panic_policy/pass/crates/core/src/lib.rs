//! Positive fixture: the one unwrap carries a per-site justification.

pub fn first(xs: &[u32]) -> u32 {
    // lint:allow(panic-unwrap): callers pass non-empty slices by contract.
    *xs.first().unwrap()
}
