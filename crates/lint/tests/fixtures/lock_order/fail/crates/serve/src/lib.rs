//! Lock-order fixture (fail): `accept_then_drain` takes `accept` then —
//! through the `bump_drain` helper, which is what a per-line linter
//! cannot see — `drain`, while `drain_then_accept` takes them in the
//! opposite order. Two threads interleaving these deadlock.

use std::sync::Mutex;

pub struct Gate {
    accept: Mutex<u32>,
    drain: Mutex<u32>,
}

impl Gate {
    pub fn accept_then_drain(&self) -> u32 {
        let a = self.accept.lock().unwrap();
        let d = self.bump_drain();
        *a + d
    }

    fn bump_drain(&self) -> u32 {
        let d = self.drain.lock().unwrap();
        *d + 1
    }

    pub fn drain_then_accept(&self) -> u32 {
        let d = self.drain.lock().unwrap();
        let a = self.accept.lock().unwrap();
        *d + *a
    }
}
