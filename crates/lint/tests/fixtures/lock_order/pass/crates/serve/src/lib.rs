//! Lock-order fixture (pass): every path acquires `accept` before
//! `drain`, including through the `bump_drain` helper — a consistent
//! global order, so no cycle.

use std::sync::Mutex;

pub struct Gate {
    accept: Mutex<u32>,
    drain: Mutex<u32>,
}

impl Gate {
    pub fn accept_then_drain(&self) -> u32 {
        let a = self.accept.lock().unwrap();
        let d = self.bump_drain();
        *a + d
    }

    fn bump_drain(&self) -> u32 {
        let d = self.drain.lock().unwrap();
        *d + 1
    }

    pub fn drain_alone(&self) -> u32 {
        // Fine: `accept` is not held here, so no drain → accept edge.
        let d = self.drain.lock().unwrap();
        *d
    }

    pub fn accept_briefly(&self) -> u32 {
        let a = self.accept.lock().unwrap();
        let snapshot = *a;
        drop(a);
        // `accept` released above — this creates no edge either.
        let d = self.drain.lock().unwrap();
        snapshot + *d
    }
}
