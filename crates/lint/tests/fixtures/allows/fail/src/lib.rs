//! Negative fixture: malformed escape hatches.

use std::time::Instant;

pub fn stamp() {
    // lint:allow(no-such-rule): this rule id does not exist.
    let a = 1;
    // lint:allow(det-wallclock)
    let _t = Instant::now();
    let _ = a;
}
