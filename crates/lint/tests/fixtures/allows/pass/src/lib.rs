//! Positive fixture: a well-formed escape hatch.

use std::time::Instant;

pub fn stamp() {
    // lint:allow(det-wallclock): printed for the operator, never compared.
    let _t = Instant::now();
}
