//! Canonical encoding stays clock-free: only row data reaches the bytes.

pub fn canonical_output(rows: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in rows {
        put_u32(&mut out, *r);
    }
    out
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
