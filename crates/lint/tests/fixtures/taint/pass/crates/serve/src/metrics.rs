//! Taint fixture (pass): the wall-clock helpers exist but only feed the
//! wall section of a metrics page — nothing on the canonical path calls
//! them.

use std::time::Instant;

pub fn stamp_micros(started: Instant) -> u64 {
    started.elapsed().as_micros() as u64
}

pub fn wall_section(started: Instant) -> String {
    format!("uptime_us {}", stamp_micros(started))
}
