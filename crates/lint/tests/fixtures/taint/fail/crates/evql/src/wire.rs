//! Taint fixture (fail), sink side: the canonical encoder pulls a
//! "freshness" header that is wall-clock-derived two calls away —
//! byte-deterministic answers absorb wall bits.

pub fn canonical_output(rows: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, header_token());
    for r in rows {
        put_u32(&mut out, *r);
    }
    out
}

fn header_token() -> u32 {
    freshness_token() as u32
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
