//! Taint fixture (fail), source side: a wall-clock reading laundered
//! through two return-value hops. The per-line `det-wallclock` rule is
//! allowed off at the read — only the graph rule can follow the value.

use std::time::Instant;

pub fn stamp_micros() -> u64 {
    // lint:allow(det-wallclock): fixture — the cross-function taint rule,
    // not the line rule, is under test here.
    let t = Instant::now();
    t.elapsed().as_micros() as u64
}

pub fn freshness_token() -> u64 {
    stamp_micros() ^ 0x5eed
}
