//! Positive fixture: fully audited unsafe code.

/// AVX2 inner kernel.
///
/// # Safety
///
/// The caller must have verified AVX2 support on this CPU.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn gemm_avx2(x: &[f32]) -> f32 {
    x[0]
}

pub fn dispatch(x: &[f32]) -> f32 {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence was checked on the line above.
        unsafe { gemm_avx2(x) }
    } else {
        x[0]
    }
}
