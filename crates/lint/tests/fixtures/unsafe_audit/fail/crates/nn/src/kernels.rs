//! Negative fixture: every unsafe-audit rule fires once.

#[target_feature(enable = "avx2")]
pub unsafe fn gemm_avx2(x: &[f32]) -> f32 {
    x[0]
}

pub fn call_it(x: &[f32]) -> f32 {
    unsafe { gemm_avx2(x) }
}
