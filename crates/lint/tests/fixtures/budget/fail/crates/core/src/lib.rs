//! Budget fixture (fail): a public entry point spends oracle calls with
//! no budget layer anywhere on the path — the spend is invisible to
//! `QueryBudget`.

pub trait ScoringOracle {
    fn score_batch(&self, frames: &[usize]) -> Vec<f64>;
}

fn score_all(oracle: &dyn ScoringOracle, frames: &[usize]) -> Vec<f64> {
    oracle.score_batch(frames)
}

pub fn rank_frames(oracle: &dyn ScoringOracle, frames: &[usize]) -> Vec<f64> {
    score_all(oracle, frames)
}
