//! Budget fixture (pass): the only raw oracle call sits inside the
//! budget gate, and the public surface reaches it exclusively through
//! that gate.

pub trait ScoringOracle {
    fn score_batch(&self, frames: &[usize]) -> Vec<f64>;
}

pub struct QueryBudget {
    remaining: usize,
}

impl QueryBudget {
    pub fn new(remaining: usize) -> QueryBudget {
        QueryBudget { remaining }
    }

    pub fn charge(&mut self, n: usize) -> bool {
        if self.remaining < n {
            return false;
        }
        self.remaining -= n;
        true
    }
}

pub fn score_within_budget(
    oracle: &dyn ScoringOracle,
    budget: &mut QueryBudget,
    frames: &[usize],
) -> Option<Vec<f64>> {
    if !budget.charge(frames.len()) {
        return None;
    }
    Some(oracle.score_batch(frames))
}
