//! Positive fixture: ordered containers and justified wall-clock reads.

use std::collections::BTreeMap;
use std::time::Instant;

pub fn report() -> u32 {
    let m: BTreeMap<String, u32> = BTreeMap::new();
    let mut total = 0;
    for (_k, v) in m.iter() {
        total += v;
    }
    // lint:allow(det-wallclock): feeds a printed timing stat only.
    let _started = Instant::now();
    total
}
