//! Negative fixture: hash-order iteration and a bare wall-clock read.

use std::collections::HashMap;
use std::time::Instant;

pub fn report() -> u32 {
    let m: HashMap<String, u32> = HashMap::new();
    let mut total = 0;
    for (_k, v) in m.iter() {
        total += v;
    }
    let _started = Instant::now();
    total
}
