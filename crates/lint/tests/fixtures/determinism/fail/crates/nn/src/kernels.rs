//! Negative fixture: implicit f32 iterator sum in a kernel module.

pub fn norm2(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>()
}
