//! Positive fixture: the env var read here is documented in the registry.

pub fn knob() -> bool {
    std::env::var("EVEREST_FIXTURE_KNOB").is_ok()
}
