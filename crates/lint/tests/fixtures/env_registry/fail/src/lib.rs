//! Negative fixture: reads a var the registry does not document.

pub fn knob() -> bool {
    std::env::var("EVEREST_FIXTURE_KNOB").is_ok()
}
