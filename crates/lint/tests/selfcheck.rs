//! The workspace must stay clean under its own linter: this is the same
//! gate CI runs (`cargo lint`), expressed as a test so `cargo test -q`
//! alone catches a violation before a PR ever reaches the lint job.

use everest_lint::{baseline::Baseline, lint_root};
use std::path::PathBuf;

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let report = lint_root(&root);
    assert!(
        report.files_scanned > 50,
        "self-check must actually scan the workspace (got {} files)",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace must be lint-clean:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The burn-down ledger stays truthful: budgets cover the current
    // sites, and slack (sites < budget) is reported by the binary, not
    // asserted here, so shrinking debt never breaks the build.
    assert!(report.panic_sites <= report.panic_budget);
}

/// The committed ratchet file must agree with a fresh run — both
/// directions: no new findings, no stale entries. This is the same gate
/// as CI's `lint-ratchet` job.
#[test]
fn workspace_matches_committed_baseline() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let text = std::fs::read_to_string(root.join("lint_baseline.json"))
        .expect("lint_baseline.json is committed at the workspace root");
    let base = Baseline::parse(&text).expect("committed baseline parses");
    let report = lint_root(&root);
    let problems = everest_lint::baseline::diff(&report.diagnostics, &base);
    assert!(
        problems.is_empty(),
        "workspace drifted from lint_baseline.json:\n{}",
        problems.join("\n")
    );
}
