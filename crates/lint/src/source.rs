//! Per-file analysis context: the token stream plus the derived structure
//! every rule consumes — comment indexes (`SAFETY:`, `lint:allow`),
//! `#[cfg(test)]` regions, and `unsafe` block / `unsafe fn` spans.

use crate::lexer::{lex, Kind, Tok};
use std::collections::BTreeMap;

/// One parsed `// lint:allow(<rule>): <reason>` escape hatch.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: usize,
    pub rule: String,
    /// The justification after the colon; empty string when missing.
    pub reason: String,
}

/// Kind of an `unsafe` span (execution contexts for the call-site rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` expression block.
    Block,
    /// Body of an `unsafe fn`.
    FnBody,
}

/// One `unsafe` region, as token-index and line bounds.
#[derive(Debug, Clone)]
pub struct UnsafeSpan {
    pub kind: UnsafeKind,
    /// Token index of the `unsafe` keyword.
    pub kw_tok: usize,
    /// Token range of the braced body (indices of `{` and `}`).
    pub body: (usize, usize),
    /// Line of the `unsafe` keyword.
    pub line: usize,
    /// Whether a `// SAFETY:` comment covers the span head.
    pub has_safety: bool,
}

/// A declared `unsafe fn` in this file.
#[derive(Debug, Clone)]
pub struct UnsafeFn {
    pub name: String,
    /// Token index of the name identifier (excluded from call-site scan).
    pub name_tok: usize,
    pub line: usize,
    /// Whether the item's doc comment contains a `# Safety` section.
    pub has_safety_doc: bool,
}

/// Fully analysed source file, ready for the rules.
pub struct FileCtx {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    pub lines: Vec<String>,
    pub toks: Vec<Tok>,
    /// `is_test_line[line - 1]`: line is inside a `#[cfg(test)]` item.
    pub is_test_line: Vec<bool>,
    /// Lines whose comments contain `SAFETY:`.
    safety_lines: Vec<bool>,
    /// Comment-only lines (used to let allow/SAFETY comments stack).
    comment_lines: Vec<bool>,
    pub allows: Vec<Allow>,
    pub unsafe_spans: Vec<UnsafeSpan>,
    pub unsafe_fns: Vec<UnsafeFn>,
}

impl FileCtx {
    pub fn new(rel: String, src: &str) -> FileCtx {
        let lines: Vec<String> = src.lines().map(str::to_owned).collect();
        let toks = lex(src);
        let n = lines.len();
        let mut ctx = FileCtx {
            rel,
            lines,
            toks,
            is_test_line: vec![false; n],
            safety_lines: vec![false; n],
            comment_lines: vec![false; n],
            allows: Vec::new(),
            unsafe_spans: Vec::new(),
            unsafe_fns: Vec::new(),
        };
        ctx.index_comments();
        ctx.mark_test_regions();
        ctx.collect_unsafe();
        ctx
    }

    /// Next non-comment token index at or after `i`.
    pub fn next_code(&self, mut i: usize) -> Option<usize> {
        while let Some(t) = self.toks.get(i) {
            if !t.is_comment() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Previous non-comment token index at or before `i`.
    pub fn prev_code(&self, mut i: usize) -> Option<usize> {
        loop {
            if !self.toks[i].is_comment() {
                return Some(i);
            }
            if i == 0 {
                return None;
            }
            i -= 1;
        }
    }

    /// Index of the `}` matching the `{` at token index `open`.
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for (i, t) in self.toks.iter().enumerate().skip(open) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.toks.len().saturating_sub(1)
    }

    /// Whether `line` (1-based) lies in a `#[cfg(test)]` region.
    pub fn in_test(&self, line: usize) -> bool {
        self.is_test_line.get(line - 1).copied().unwrap_or(false)
    }

    /// True when a `SAFETY:` comment covers `line`: on the line itself or
    /// on the run of comment-only lines immediately above it.
    pub fn safety_near(&self, line: usize) -> bool {
        if self.safety_lines.get(line - 1).copied().unwrap_or(false) {
            return true;
        }
        let mut l = line - 1; // 1-based line above
        while l >= 1 && self.comment_lines[l - 1] {
            if self.safety_lines[l - 1] {
                return true;
            }
            l -= 1;
        }
        false
    }

    /// True when `// lint:allow(rule): …` covers `line` (same line or the
    /// comment run immediately above).
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            if a.rule != rule || a.reason.is_empty() {
                return false;
            }
            if a.line == line {
                return true;
            }
            // Allow sits in the comment run directly above `line`.
            let mut l = line - 1;
            while l >= 1 && self.comment_lines[l - 1] {
                if a.line == l {
                    return true;
                }
                l -= 1;
            }
            false
        })
    }

    /// Innermost `unsafe` spans containing token index `i`, outermost last.
    pub fn enclosing_unsafe(&self, i: usize) -> Vec<&UnsafeSpan> {
        self.unsafe_spans
            .iter()
            .filter(|s| s.body.0 <= i && i <= s.body.1)
            .collect()
    }

    fn index_comments(&mut self) {
        // Which lines are comment-only (trimmed content starts with // or
        // is the interior of a block comment)? Token-based: a line is
        // comment-only when every token starting on it is a comment.
        let mut has_code = vec![false; self.lines.len()];
        let mut has_comment = vec![false; self.lines.len()];
        for t in &self.toks {
            let idx = t.line - 1;
            if t.is_comment() {
                let end = (idx + t.text.matches('\n').count() + 1).min(self.lines.len());
                for flag in &mut has_comment[idx..end] {
                    *flag = true;
                }
            } else if idx < has_code.len() {
                has_code[idx] = true;
            }
        }
        for i in 0..self.lines.len() {
            self.comment_lines[i] = has_comment[i] && !has_code[i];
        }
        let mut allows = Vec::new();
        for t in &self.toks {
            if !t.is_comment() {
                continue;
            }
            if t.text.contains("SAFETY:") {
                self.safety_lines[t.line - 1] = true;
            }
            // Escape hatches live in plain comments only: doc comments
            // merely *describing* the syntax must not count as allows.
            let is_doc = t.text.starts_with("///")
                || t.text.starts_with("//!")
                || t.text.starts_with("/**")
                || t.text.starts_with("/*!");
            if is_doc {
                continue;
            }
            if let Some(pos) = t.text.find("lint:allow(") {
                let rest = &t.text[pos + "lint:allow(".len()..];
                if let Some(close) = rest.find(')') {
                    let rule = rest[..close].trim().to_string();
                    let after = rest[close + 1..].trim_start();
                    let reason = after
                        .strip_prefix(':')
                        .map(|r| r.trim().to_string())
                        .unwrap_or_default();
                    allows.push(Allow {
                        line: t.line,
                        rule,
                        reason,
                    });
                }
            }
        }
        self.allows = allows;
    }

    /// Marks every line covered by a `#[cfg(test)]`-gated item. The
    /// attribute content must mention `test` without `not(`, so
    /// `#[cfg(all(test, …))]` counts and `#[cfg(not(test))]` does not.
    fn mark_test_regions(&mut self) {
        let mut i = 0;
        while i < self.toks.len() {
            if !(self.toks[i].is_punct('#')
                && self
                    .next_code(i + 1)
                    .is_some_and(|j| self.toks[j].is_punct('[')))
            {
                i += 1;
                continue;
            }
            let open = self.next_code(i + 1).expect("checked above");
            let close = self.matching_bracket(open);
            let attr: Vec<&Tok> = self.toks[open..=close]
                .iter()
                .filter(|t| !t.is_comment())
                .collect();
            let is_cfg_test = attr.iter().any(|t| t.is_ident("cfg"))
                && attr.iter().any(|t| t.is_ident("test"))
                && !attr.iter().any(|t| t.is_ident("not"));
            if !is_cfg_test {
                i = close + 1;
                continue;
            }
            // Span of the gated item: attribute start through the matching
            // `}` of the first brace (or the first `;` when braceless).
            let start_line = self.toks[i].line;
            let mut j = close + 1;
            let mut end_line = start_line;
            while let Some(k) = self.next_code(j) {
                let t = &self.toks[k];
                if t.is_punct(';') {
                    end_line = t.line;
                    break;
                }
                if t.is_punct('{') {
                    let e = self.matching_brace(k);
                    end_line = self.toks[e].line;
                    break;
                }
                j = k + 1;
            }
            for l in start_line..=end_line.min(self.lines.len()) {
                self.is_test_line[l - 1] = true;
            }
            i = close + 1;
        }
    }

    /// Index of the `]` matching the `[` at token index `open`.
    fn matching_bracket(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for (i, t) in self.toks.iter().enumerate().skip(open) {
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.toks.len().saturating_sub(1)
    }

    /// Collects `unsafe { … }` blocks, `unsafe fn` declarations (with
    /// their body spans — they are execution contexts too), and whether
    /// each carries its required comment/doc.
    fn collect_unsafe(&mut self) {
        let mut spans = Vec::new();
        let mut fns = Vec::new();
        let mut i = 0;
        while i < self.toks.len() {
            if !self.toks[i].is_ident("unsafe") {
                i += 1;
                continue;
            }
            let kw = i;
            let Some(next) = self.next_code(i + 1) else {
                break;
            };
            let t = &self.toks[next];
            if t.is_punct('{') {
                let close = self.matching_brace(next);
                spans.push(UnsafeSpan {
                    kind: UnsafeKind::Block,
                    kw_tok: kw,
                    body: (next, close),
                    line: self.toks[kw].line,
                    has_safety: self.safety_near(self.toks[kw].line),
                });
                i = next + 1;
                continue;
            }
            if t.is_ident("fn") {
                let Some(name_i) = self.next_code(next + 1) else {
                    break;
                };
                let name = self.toks[name_i].text.clone();
                // Find the body `{` (skip the parameter list and any
                // return type); a trait-declaration `;` means no body.
                let mut j = name_i + 1;
                let mut body = None;
                while let Some(k) = self.next_code(j) {
                    if self.toks[k].is_punct('{') {
                        body = Some((k, self.matching_brace(k)));
                        break;
                    }
                    if self.toks[k].is_punct(';') {
                        break;
                    }
                    j = k + 1;
                }
                if let Some(body) = body {
                    spans.push(UnsafeSpan {
                        kind: UnsafeKind::FnBody,
                        kw_tok: kw,
                        body,
                        line: self.toks[kw].line,
                        has_safety: false,
                    });
                }
                fns.push(UnsafeFn {
                    has_safety_doc: self.doc_has_safety_section(kw),
                    name,
                    name_tok: name_i,
                    line: self.toks[kw].line,
                });
                i = name_i + 1;
                continue;
            }
            i = next;
        }
        self.unsafe_spans = spans;
        self.unsafe_fns = fns;
    }

    /// Walks upward from the token at `item_tok` over the item's
    /// visibility, attributes, and doc comments, and reports whether any
    /// doc comment contains a `# Safety` section.
    fn doc_has_safety_section(&self, item_tok: usize) -> bool {
        let mut i = item_tok;
        let mut bracket_depth = 0usize;
        while i > 0 {
            i -= 1;
            let t = &self.toks[i];
            match t.kind {
                Kind::LineComment | Kind::BlockComment => {
                    let is_doc = t.text.starts_with("///")
                        || t.text.starts_with("//!")
                        || t.text.starts_with("/**")
                        || t.text.starts_with("/*!");
                    if is_doc && t.text.contains("# Safety") {
                        return true;
                    }
                }
                Kind::Punct if t.is_punct(']') => bracket_depth += 1,
                Kind::Punct if t.is_punct('[') => bracket_depth = bracket_depth.saturating_sub(1),
                // Attribute contents and `pub(super)`-style visibility are
                // part of the item header; anything else ends the walk.
                Kind::Punct if t.is_punct('#') || t.is_punct('(') || t.is_punct(')') => {}
                Kind::Ident
                    if bracket_depth > 0
                        || matches!(
                            t.text.as_str(),
                            "pub" | "super" | "crate" | "self" | "in" | "const" | "extern"
                        ) => {}
                Kind::Str if bracket_depth > 0 => {}
                Kind::Punct if bracket_depth > 0 => {}
                _ => return false,
            }
        }
        false
    }
}

/// Extracts every `EVEREST_[A-Z0-9_]+` name from a piece of text.
pub fn everest_vars(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let needle = b"EVEREST_";
    let mut i = 0;
    while i + needle.len() <= bytes.len() {
        if &bytes[i..i + needle.len()] == needle
            && (i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_'))
        {
            let mut j = i + needle.len();
            while j < bytes.len()
                && (bytes[j].is_ascii_uppercase() || bytes[j].is_ascii_digit() || bytes[j] == b'_')
            {
                j += 1;
            }
            if j > i + needle.len() {
                out.push(text[i..j].trim_end_matches('_').to_string());
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Map from env-var name to the `(file, line)` of its first occurrence.
pub type VarSites = BTreeMap<String, (String, usize)>;
