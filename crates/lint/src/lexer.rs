//! A small hand-rolled Rust lexer — just enough token structure for the
//! rules in [`crate::rules`].
//!
//! The build container is offline, so `everest-lint` cannot pull `syn` or
//! `proc-macro2`; instead this module tokenizes Rust source directly. It
//! understands exactly the constructs the rules need to not be fooled by:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/**`, `/*!`), kept as tokens so comment-driven rules
//!   (`// SAFETY:`, `// lint:allow(...)`) see them;
//! * string literals in all escapes-relevant forms: `"…"`, `b"…"`, raw
//!   `r"…"` / `r#"…"#` with any number of hashes, `br#"…"#` — so an
//!   `unsafe` or `HashMap` *inside a string* is never mistaken for code,
//!   and `EVEREST_*` env-var names are harvested from literal content;
//! * char literals vs. lifetimes (`'x'` vs `'a`);
//! * identifiers/keywords (one token kind — the rules match on text),
//!   raw identifiers (`r#type`), numbers, and single-char punctuation.
//!
//! Everything else about Rust's grammar (items, expressions, types) is
//! reconstructed heuristically by the rule layer from this stream; see
//! `docs/LINTING.md` for the precision contract.

/// Token class produced by [`lex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (the rules match on the text).
    Ident,
    /// Any string literal (`"…"`, `b"…"`, `r#"…"#`, …), text includes the
    /// full source form with quotes/hashes.
    Str,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) — kept distinct so it is never a char literal.
    Lifetime,
    /// Numeric literal.
    Num,
    /// Single punctuation character.
    Punct,
    /// `//`-style comment, full text including the slashes.
    LineComment,
    /// `/* … */` comment (possibly nested), full text.
    BlockComment,
}

/// One lexed token with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub line: usize,
    pub kind: Kind,
    pub text: String,
}

impl Tok {
    /// True for comment tokens of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, Kind::LineComment | Kind::BlockComment)
    }

    /// True when the token is the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == Kind::Punct && self.text.as_bytes().first() == Some(&(ch as u8))
    }

    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == Kind::Ident && self.text == text
    }
}

/// Tokenizes `src`. Never fails: on a malformed construct (unterminated
/// string/comment) the remainder of the file becomes one token, which at
/// worst suppresses findings in unparseable code — rustc will reject such
/// a file anyway.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    toks: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                    self.push(start, line, Kind::LineComment);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(start, line, Kind::BlockComment);
                }
                b'"' => {
                    self.quoted_string();
                    self.push(start, line, Kind::Str);
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    self.push(start, line, kind);
                }
                // Byte-char literal `b'x'` — one Char token, so the `b`
                // never leaks into the stream as a stray identifier.
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    let kind = self.char_or_lifetime();
                    self.push(start, line, kind);
                }
                b'r' | b'b' if self.raw_or_byte_string() => {
                    self.push(start, line, Kind::Str);
                }
                _ if c == b'_' || c.is_ascii_alphabetic() => {
                    // raw identifier prefix r# is handled here too: the
                    // raw_or_byte_string probe above rejected it.
                    self.pos += 1;
                    if c == b'r' && self.peek(0) == Some(b'#') && self.ident_follows(1) {
                        self.pos += 1; // skip '#', keep the ident chars
                    }
                    while self
                        .peek(0)
                        .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
                    {
                        self.pos += 1;
                    }
                    self.push(start, line, Kind::Ident);
                }
                _ if c.is_ascii_digit() => {
                    self.number();
                    self.push(start, line, Kind::Num);
                }
                _ => {
                    self.pos += 1;
                    self.push(start, line, Kind::Punct);
                }
            }
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn ident_follows(&self, ahead: usize) -> bool {
        self.peek(ahead)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphabetic())
    }

    fn push(&mut self, start: usize, line: usize, kind: Kind) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.toks.push(Tok { line, kind, text });
    }

    fn bump_counting_lines(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// `/* … */` with nesting, Rust-style.
    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_counting_lines();
            }
        }
    }

    /// `"…"` with escape handling; `self.pos` is on the opening quote.
    fn quoted_string(&mut self) {
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.src.len() {
                        self.bump_counting_lines();
                    }
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.bump_counting_lines(),
            }
        }
    }

    /// Distinguishes `'x'` / `'\n'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self) -> Kind {
        // A lifetime is a quote followed by ident chars *not* closed by a
        // quote: 'a, 'static, '_ — scan ahead to decide.
        if self.ident_follows(1) || self.peek(1) == Some(b'_') {
            let mut ahead = 1;
            while self
                .peek(ahead)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                ahead += 1;
            }
            if self.peek(ahead) != Some(b'\'') {
                self.pos += ahead; // lifetime: consume quote + ident
                return Kind::Lifetime;
            }
        }
        // Char literal: quote, escape-or-char, closing quote.
        self.pos += 1;
        if self.peek(0) == Some(b'\\') {
            self.pos += 1;
        }
        if self.pos < self.src.len() {
            self.bump_counting_lines();
        }
        // Unicode escapes ('\u{1F600}') and similar: scan to the quote.
        while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
            self.bump_counting_lines();
        }
        if self.pos < self.src.len() {
            self.pos += 1; // closing quote
        }
        Kind::Char
    }

    /// Probes for `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` at the current
    /// position; consumes and returns true only when one is present.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut ahead = 1;
        if self.src[self.pos] == b'b' && self.peek(1) == Some(b'r') {
            ahead = 2;
        }
        // b"…" — plain byte string.
        if ahead == 1 && self.src[self.pos] == b'b' && self.peek(1) == Some(b'"') {
            self.pos += 1;
            self.quoted_string();
            return true;
        }
        if self.src[self.pos] == b'b' && ahead == 1 {
            return false; // identifier starting with b
        }
        // r / br followed by hashes then a quote → raw string.
        let mut hashes = 0;
        while self.peek(ahead + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some(b'"') {
            return false; // r#ident (raw identifier) or plain ident
        }
        self.pos += ahead + hashes + 1;
        // Scan for `"` followed by `hashes` hash characters.
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                let mut h = 0;
                while h < hashes && self.peek(1 + h) == Some(b'#') {
                    h += 1;
                }
                if h == hashes {
                    self.pos += 1 + hashes;
                    return true;
                }
            }
            self.bump_counting_lines();
        }
        true
    }

    /// Numeric literal, loosely: digits plus alphanumerics/underscores and
    /// a fractional part when the dot is not a range operator.
    fn number(&mut self) {
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        // `1.5` is one number; `0..k` is a number then a range.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_punct() {
        let toks = kinds("unsafe fn f(x: u32) {}");
        assert_eq!(toks[0], (Kind::Ident, "unsafe".into()));
        assert_eq!(toks[1], (Kind::Ident, "fn".into()));
        assert_eq!(toks[2], (Kind::Ident, "f".into()));
        assert!(toks.iter().any(|t| *t == (Kind::Punct, "{".into())));
    }

    #[test]
    fn code_inside_strings_is_not_code() {
        // `unsafe` and `HashMap` inside literals must stay Str tokens.
        let toks = lex(r#"let s = "unsafe { HashMap }";"#);
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(!toks.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Str).count(), 1);
    }

    #[test]
    fn raw_and_byte_strings() {
        for src in [
            r##"r"plain raw""##,
            r###"r#"one hash "quote" inside"#"###,
            r##"b"bytes""##,
            r###"br#"raw bytes"#"###,
        ] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, Kind::Str, "{src}");
            assert_eq!(toks[0].text, src, "{src}");
        }
        // `r#type` is a raw identifier, not a raw string.
        let toks = kinds("r#type");
        assert_eq!(toks, vec![(Kind::Ident, "r#type".into())]);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds(r"'x' 'a '\n' 'static '_");
        assert_eq!(toks[0].0, Kind::Char);
        assert_eq!(toks[1], (Kind::Lifetime, "'a".into()));
        assert_eq!(toks[2].0, Kind::Char);
        assert_eq!(toks[3], (Kind::Lifetime, "'static".into()));
        assert_eq!(toks[4], (Kind::Lifetime, "'_".into()));
    }

    #[test]
    fn comments_keep_their_text_and_nest() {
        let toks = lex("// SAFETY: checked\n/* outer /* inner */ still outer */ fn");
        assert_eq!(toks[0].kind, Kind::LineComment);
        assert_eq!(toks[0].text, "// SAFETY: checked");
        assert_eq!(toks[1].kind, Kind::BlockComment);
        assert!(toks[1].text.ends_with("still outer */"));
        assert!(toks[2].is_ident("fn"));
    }

    #[test]
    fn byte_char_literals_are_single_tokens() {
        // `b'x'` must not leak a stray `b` identifier into the stream —
        // call-graph construction matches `ident (` patterns and a split
        // `b` + char would desynchronize it.
        let toks = kinds(r"b'x' b'\n' b'(' f(b',')");
        assert_eq!(toks[0], (Kind::Char, r"b'x'".into()));
        assert_eq!(toks[1], (Kind::Char, r"b'\n'".into()));
        assert_eq!(toks[2], (Kind::Char, "b'('".into()));
        // …and the surrounding call structure stays intact.
        assert_eq!(toks[3], (Kind::Ident, "f".into()));
        assert_eq!(toks[4], (Kind::Punct, "(".into()));
        assert_eq!(toks[5], (Kind::Char, "b','".into()));
        assert_eq!(toks[6], (Kind::Punct, ")".into()));
    }

    #[test]
    fn multiline_raw_strings_do_not_swallow_code() {
        // A raw string spanning lines (fixture-style embedded source) must
        // end exactly at its hash fence, leaving the following fn visible.
        let src = "let s = r##\"fn fake() { a\"# }\"##;\nfn real() {}";
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("fake")));
        let real = toks.iter().position(|t| t.is_ident("real")).unwrap();
        assert!(toks[real - 1].is_ident("fn"));
        assert_eq!(toks[real].line, 2);
    }

    #[test]
    fn nested_block_comment_then_fn_signature() {
        // Graph construction scans `fn name ( … )` sequences; a nested
        // block comment between items must not hide or merge them.
        let src = "fn a() {}\n/* dead: /* fn b() {} */ end */\nfn c() {}";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("a")));
        assert!(!toks.iter().any(|t| t.is_ident("b")));
        assert_eq!(toks.iter().find(|t| t.is_ident("c")).unwrap().line, 3);
    }

    #[test]
    fn lifetime_annotated_fn_signature() {
        // `fn f<'a>(x: &'a str) -> &'a str` — lifetimes must lex as
        // Lifetime tokens (never Char), keeping the `->` return arrow and
        // parameter parens aligned for signature parsing.
        let toks = lex("fn longest<'a>(x: &'a str, y: &'a str) -> &'a str { x }");
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Lifetime).count(), 4);
        assert!(!toks.iter().any(|t| t.kind == Kind::Char));
        let arrow = toks.iter().position(|t| t.is_punct('-')).unwrap();
        assert!(toks[arrow + 1].is_punct('>'));
        assert!(toks[arrow + 2].is_punct('&'));
    }

    #[test]
    fn numbers_and_ranges() {
        // `1.5` is one number; `0..k` must not swallow the range dots.
        let toks = kinds("1.5 0..k 0xff 1_000");
        assert_eq!(toks[0], (Kind::Num, "1.5".into()));
        assert_eq!(toks[1], (Kind::Num, "0".into()));
        assert_eq!(toks[2], (Kind::Punct, ".".into()));
        assert_eq!(toks[3], (Kind::Punct, ".".into()));
        assert_eq!(toks[4], (Kind::Ident, "k".into()));
        assert_eq!(toks[5], (Kind::Num, "0xff".into()));
        assert_eq!(toks[6], (Kind::Num, "1_000".into()));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/*\n\n*/\nb\nr#\"x\ny\"#\nc";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 5);
        assert_eq!(find("c"), 8);
    }

    #[test]
    fn unterminated_constructs_do_not_loop() {
        // Malformed input degrades to one trailing token, never a hang.
        for src in ["\"never closed", "/* never closed", "r#\"never closed"] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
        }
    }
}
