//! # everest-lint — repo-specific static analysis for the Everest engine
//!
//! Enforces invariants clippy cannot express, with machine-readable rule
//! IDs, `file:line` diagnostics, and an inline
//! `// lint:allow(<id>): <reason>` escape hatch (the reason is
//! mandatory). Rule families:
//!
//! * **unsafe-audit** — `SAFETY:`-commented `unsafe` blocks and call
//!   sites, `# Safety` rustdoc on `unsafe fn`s, `#[target_feature]`
//!   confinement ([`rules::unsafe_audit`]);
//! * **determinism** — no hash-order iteration, wall-clock reads, or
//!   implicit f32 iterator sums on result paths
//!   ([`rules::determinism`]);
//! * **env-var registry** — `EVEREST_*` variables in source and CI
//!   workflows ↔ `docs/BENCHMARKING.md` table, both directions
//!   ([`rules::env_registry`]);
//! * **panic-policy** — budgeted burn-down of `unwrap()`/`expect()` in
//!   the core/evql library crates ([`rules::panic_policy`]);
//! * **vendor-guard** — every dependency resolves to a local path, never
//!   a registry or git source ([`rules::vendor_guard`]);
//! * **lock-order** — static deadlock detection: `Mutex`/`RwLock`
//!   acquisition order cycles across helper-call boundaries in the
//!   serve/evql crates ([`rules::lock_order`]);
//! * **det-taint** — wall-clock taint propagated through return values
//!   along the call graph into canonical/deterministic output paths
//!   ([`rules::taint`]);
//! * **budget-discipline** — raw oracle `score_batch` calls in core must
//!   sit behind the `QueryBudget`/`RetryingOracle` layer
//!   ([`rules::budget_discipline`]).
//!
//! The last three run on a workspace-wide call graph ([`graph`]); their
//! findings ratchet through a committed `lint_baseline.json`
//! ([`baseline`]).
//!
//! The crate has **no dependencies** (the build env is offline) and
//! reconstructs just enough structure from a hand-rolled lexer
//! ([`lexer`]) — see `docs/LINTING.md` for the catalog, the precision
//! contract, and how to add a rule.

#![deny(unsafe_code)]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod source;

use source::{FileCtx, VarSites};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One finding: `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Root-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable machine-readable rule ID.
    pub rule: &'static str,
    pub message: String,
}

impl Diagnostic {
    pub fn new(ctx: &FileCtx, line: usize, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: ctx.rel.clone(),
            line,
            rule,
            message,
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Cross-file facts gathered in the first pass.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Names of `unsafe fn`s declared anywhere in the scanned sources.
    pub unsafe_fn_names: BTreeSet<String>,
}

/// Result of a full lint run.
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned (for the summary line).
    pub files_scanned: usize,
    /// Panic-policy burn-down: (current sites, total budget, per-site allows).
    pub panic_sites: usize,
    pub panic_budget: usize,
    pub panic_site_allows: usize,
}

/// Source directories scanned under the lint root. `vendor/` is excluded
/// from source scanning (third-party-shaped shims; `#![deny(unsafe_code)]`
/// covers them at compile time) but its manifests are vendor-guarded.
const SCAN_DIRS: &[&str] = &["src", "crates", "tests", "examples", "benches"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// Runs every rule over the workspace rooted at `root`.
pub fn lint_root(root: &Path) -> Report {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        collect_rs(&root.join(dir), &mut files);
    }
    files.sort();
    let mut ctxs = Vec::with_capacity(files.len());
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        ctxs.push(FileCtx::new(rel, &src));
    }

    // Pass 1: cross-file facts (unsafe fn names, env-var sites).
    let mut ws = WorkspaceIndex::default();
    let mut var_sites = VarSites::new();
    for ctx in &ctxs {
        for f in &ctx.unsafe_fns {
            ws.unsafe_fn_names.insert(f.name.clone());
        }
        rules::env_registry::collect(ctx, &mut var_sites);
    }
    // CI workflows are reference sites too: an `EVEREST_*` knob set only
    // as a job `env:` entry must still appear in the registry.
    rules::env_registry::collect_workflows(root, &mut var_sites);

    // Pass 2: per-file rules.
    let mut diagnostics = Vec::new();
    let mut panic_sites = 0;
    let mut panic_site_allows = 0;
    for ctx in &ctxs {
        rules::unsafe_audit::check(ctx, &ws, &mut diagnostics);
        rules::determinism::check(ctx, &mut diagnostics);
        let (sites, allows) = rules::panic_policy::check(ctx, &mut diagnostics);
        panic_sites += sites;
        panic_site_allows += allows;
        check_allows(ctx, &mut diagnostics);
    }

    // Pass 3: call-graph rules — workspace-wide, over every ctx at once.
    let g = graph::Graph::build(&ctxs);
    rules::lock_order::check(&g, &mut diagnostics);
    rules::taint::check(&g, &mut diagnostics);
    rules::budget_discipline::check(&g, &mut diagnostics);

    // Workspace-level rules.
    rules::env_registry::check(root, &var_sites, &mut diagnostics);
    rules::vendor_guard::check(root, &mut diagnostics);

    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Report {
        diagnostics,
        files_scanned: ctxs.len(),
        panic_sites,
        panic_budget: rules::panic_policy::PANIC_ALLOWLIST
            .iter()
            .map(|b| b.budget)
            .sum(),
        panic_site_allows,
    }
}

/// Validates the escape hatches themselves: an allow must name a known
/// rule and carry a non-empty reason.
fn check_allows(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for a in &ctx.allows {
        if !rules::ALL_RULES.contains(&a.rule.as_str()) {
            out.push(Diagnostic::new(
                ctx,
                a.line,
                "allow-unknown-rule",
                format!(
                    "lint:allow names unknown rule `{}` (known: {})",
                    a.rule,
                    rules::ALL_RULES.join(", ")
                ),
            ));
        } else if a.reason.is_empty() {
            out.push(Diagnostic::new(
                ctx,
                a.line,
                "allow-missing-reason",
                format!(
                    "lint:allow({}) without a reason — write \
                     `// lint:allow({}): <why this is sound>`",
                    a.rule, a.rule
                ),
            ));
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
