//! Rule **det-taint**: call-graph generalization of `det-wallclock`.
//!
//! *Sources*: non-test fns whose own bodies read the wall clock
//! (`Instant::now`, `SystemTime::now`, `.elapsed(`) **and** return a
//! value — the return is how wall-clock bits escape. Taint then
//! propagates to any value-returning caller, transitively, so a helper
//! chain (`fn uptime() -> u64` → `fn stamp() -> String` → …) stays
//! tainted no matter how many hops launder it.
//!
//! *Sinks*: the canonical-answer and deterministic-metrics encoders —
//! fns named in [`SINK_FNS`] — and everything reachable from them
//! through the call graph. Walking *down* from a sink, the first call
//! edge into a tainted fn is the diagnostic (the laundering boundary);
//! the walk does not descend past it, so one laundered source yields one
//! finding, not one per hop.
//!
//! Granularity is the function, not the value: a fn that reads the
//! clock *and* returns something is tainted even if the two are
//! unrelated — quarantine clock reads in non-returning helpers or
//! `lint:allow(det-taint)` the call with a reason.

use crate::graph::Graph;
use crate::Diagnostic;
use std::collections::BTreeSet;

pub const RULE: &str = "det-taint";

/// Roots of the deterministic output region. `canonical_output` is the
/// byte-level answer encoder in `everest_evql::wire`;
/// `render_deterministic` is the metrics section above
/// `WALL_CLOCK_MARKER` that CI diffs across runs.
pub const SINK_FNS: &[&str] = &["canonical_output", "render_deterministic"];

pub fn check(g: &Graph, out: &mut Vec<Diagnostic>) {
    // Seed: fns that read the wall clock themselves and return a value.
    let mut tainted: Vec<bool> = vec![false; g.fns.len()];
    let mut work: Vec<usize> = Vec::new();
    for (di, d) in g.fns.iter().enumerate() {
        if d.is_test || !d.has_ret {
            continue;
        }
        if reads_wall_clock(g, di) {
            tainted[di] = true;
            work.push(di);
        }
    }
    // Propagate through return values: a value-returning caller of a
    // tainted fn is tainted.
    while let Some(di) = work.pop() {
        for &caller in &g.callers[di] {
            let c = &g.fns[caller];
            if c.is_test || !c.has_ret || tainted[caller] {
                continue;
            }
            tainted[caller] = true;
            work.push(caller);
        }
    }

    // Walk down from each sink; report the first tainted edge on each
    // path and stop there.
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    let mut queue: Vec<usize> = Vec::new();
    for di in 0..g.fns.len() {
        let d = &g.fns[di];
        if !d.is_test && SINK_FNS.contains(&d.name.as_str()) {
            queue.push(di);
        }
    }
    let mut seen_lines: BTreeSet<(String, usize)> = BTreeSet::new();
    while let Some(di) = queue.pop() {
        if !visited.insert(di) {
            continue;
        }
        let ctx = g.ctx(di);
        // A direct clock read inside the sink region is itself the
        // laundering boundary.
        if tainted[di] || reads_wall_clock(g, di) {
            if let Some(line) = first_clock_line(g, di) {
                if !ctx.allowed(RULE, line) && seen_lines.insert((ctx.rel.clone(), line)) {
                    out.push(Diagnostic {
                        file: ctx.rel.clone(),
                        line,
                        rule: RULE,
                        message: format!(
                            "wall-clock read inside `{}`, which feeds canonical/deterministic \
                             output — move it below WALL_CLOCK_MARKER or out of the answer path",
                            g.fns[di].name
                        ),
                    });
                }
            }
        }
        for &(ci, callee) in &g.callees[di] {
            if g.fns[callee].is_test {
                continue;
            }
            let call = &g.calls[ci];
            if tainted[callee] {
                if !ctx.allowed(RULE, call.line) && seen_lines.insert((ctx.rel.clone(), call.line))
                {
                    out.push(Diagnostic {
                        file: ctx.rel.clone(),
                        line: call.line,
                        rule: RULE,
                        message: format!(
                            "`{}` returns a wall-clock-derived value (taint root: \
                             Instant/SystemTime) and is called on a canonical/deterministic \
                             output path",
                            g.fns[callee].name
                        ),
                    });
                }
                // Boundary: do not descend into the tainted callee —
                // its own clock reads are covered by this finding.
                continue;
            }
            queue.push(callee);
        }
    }
}

/// Whether `def`'s own tokens read the wall clock: `Instant :: now`,
/// `SystemTime :: now`, or `. elapsed (`.
fn reads_wall_clock(g: &Graph, def: usize) -> bool {
    first_clock_line(g, def).is_some()
}

fn first_clock_line(g: &Graph, def: usize) -> Option<usize> {
    let ctx = g.ctx(def);
    let mut best: Option<usize> = None;
    for (s, e) in g.own_ranges(def) {
        let hi = e.min(ctx.toks.len().saturating_sub(1));
        for i in s..=hi {
            let t = &ctx.toks[i];
            let hit = if t.is_ident("Instant") || t.is_ident("SystemTime") {
                let c1 = ctx.next_code(i + 1).filter(|&a| ctx.toks[a].is_punct(':'));
                let c2 = c1
                    .and_then(|a| ctx.next_code(a + 1))
                    .filter(|&b| ctx.toks[b].is_punct(':'));
                c2.and_then(|b| ctx.next_code(b + 1))
                    .is_some_and(|n| ctx.toks[n].is_ident("now"))
            } else if t.is_ident("elapsed") {
                i.checked_sub(1)
                    .and_then(|p| ctx.prev_code(p))
                    .is_some_and(|p| ctx.toks[p].is_punct('.'))
                    && ctx
                        .next_code(i + 1)
                        .is_some_and(|n| ctx.toks[n].is_punct('('))
            } else {
                false
            };
            if hit {
                best = Some(best.map_or(t.line, |b: usize| b.min(t.line)));
            }
        }
    }
    best
}
