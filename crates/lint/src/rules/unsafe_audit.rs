//! Rule family **unsafe-audit**: machine-checked `unsafe` hygiene for the
//! SIMD microkernels (and anything else that ever grows an `unsafe`).
//!
//! IDs:
//! * `unsafe-block-comment` — every `unsafe { … }` block (and `unsafe
//!   impl`) must be covered by a `// SAFETY:` comment.
//! * `unsafe-fn-doc` — every `unsafe fn` must document its contract in a
//!   `# Safety` rustdoc section.
//! * `unsafe-callsite-comment` — every call of a workspace-declared
//!   `unsafe fn` must be covered by a `// SAFETY:` comment, either at the
//!   call site or on its enclosing `unsafe` block.
//! * `target-feature-vis` — `#[target_feature]` fns must be
//!   `pub(super)`-or-tighter, so feature-gated code cannot escape the
//!   module that guards it.
//! * `target-feature-guard` — a file containing `#[target_feature]` fns
//!   must contain an `is_x86_feature_detected!` guard (the dispatch
//!   decision lives next to the kernels it gates).

use crate::source::{FileCtx, UnsafeKind};
use crate::{Diagnostic, WorkspaceIndex};

pub const BLOCK: &str = "unsafe-block-comment";
pub const FN_DOC: &str = "unsafe-fn-doc";
pub const CALLSITE: &str = "unsafe-callsite-comment";
pub const TF_VIS: &str = "target-feature-vis";
pub const TF_GUARD: &str = "target-feature-guard";

pub fn check(ctx: &FileCtx, ws: &WorkspaceIndex, out: &mut Vec<Diagnostic>) {
    unsafe_blocks(ctx, out);
    unsafe_fn_docs(ctx, out);
    unsafe_callsites(ctx, ws, out);
    target_feature(ctx, out);
}

fn unsafe_blocks(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for span in &ctx.unsafe_spans {
        if span.kind == UnsafeKind::Block && !span.has_safety && !ctx.allowed(BLOCK, span.line) {
            out.push(Diagnostic::new(
                ctx,
                span.line,
                BLOCK,
                "`unsafe` block without a `// SAFETY:` comment stating the invariant it relies on"
                    .to_string(),
            ));
        }
    }
    // `unsafe impl Trait for T` asserts an invariant exactly like a block.
    let mut i = 0;
    while i < ctx.toks.len() {
        if ctx.toks[i].is_ident("unsafe") {
            if let Some(next) = ctx.next_code(i + 1) {
                if ctx.toks[next].is_ident("impl") || ctx.toks[next].is_ident("trait") {
                    let line = ctx.toks[i].line;
                    if !ctx.safety_near(line) && !ctx.allowed(BLOCK, line) {
                        out.push(Diagnostic::new(
                            ctx,
                            line,
                            BLOCK,
                            format!(
                                "`unsafe {}` without a `// SAFETY:` comment",
                                ctx.toks[next].text
                            ),
                        ));
                    }
                }
            }
        }
        i += 1;
    }
}

fn unsafe_fn_docs(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for f in &ctx.unsafe_fns {
        if !f.has_safety_doc && !ctx.allowed(FN_DOC, f.line) {
            out.push(Diagnostic::new(
                ctx,
                f.line,
                FN_DOC,
                format!(
                    "`unsafe fn {}` without a `# Safety` rustdoc section documenting its contract",
                    f.name
                ),
            ));
        }
    }
}

fn unsafe_callsites(ctx: &FileCtx, ws: &WorkspaceIndex, out: &mut Vec<Diagnostic>) {
    let decls: Vec<usize> = ctx.unsafe_fns.iter().map(|f| f.name_tok).collect();
    for (i, t) in ctx.toks.iter().enumerate() {
        if !(t.kind == crate::lexer::Kind::Ident && ws.unsafe_fn_names.contains(&t.text)) {
            continue;
        }
        if decls.contains(&i) {
            continue; // the declaration itself
        }
        // A call: identifier directly followed by `(`.
        let Some(next) = ctx.next_code(i + 1) else {
            continue;
        };
        if !ctx.toks[next].is_punct('(') {
            continue;
        }
        // `fn name(` (a safe fn that happens to share the name) is a decl.
        if let Some(prev) = i.checked_sub(1).and_then(|p| ctx.prev_code(p)) {
            if ctx.toks[prev].is_ident("fn") {
                continue;
            }
        }
        // Only calls inside an unsafe context can actually invoke an
        // unsafe fn; a same-named safe call elsewhere is not a finding.
        let enclosing = ctx.enclosing_unsafe(i);
        if enclosing.is_empty() {
            continue;
        }
        let line = t.line;
        let block_covered = enclosing
            .iter()
            .any(|s| s.kind == UnsafeKind::Block && s.has_safety);
        if ctx.safety_near(line) || block_covered || ctx.allowed(CALLSITE, line) {
            continue;
        }
        out.push(Diagnostic::new(
            ctx,
            line,
            CALLSITE,
            format!(
                "call of `unsafe fn {}` without a `// SAFETY:` comment (at the call site or on \
                 the enclosing `unsafe` block)",
                t.text
            ),
        ));
    }
}

fn target_feature(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let has_guard = ctx
        .toks
        .iter()
        .any(|t| t.is_ident("is_x86_feature_detected"));
    let mut reported_guard = false;
    let mut i = 0;
    while i + 1 < ctx.toks.len() {
        let is_attr_start = ctx.toks[i].is_punct('#')
            && ctx
                .next_code(i + 1)
                .is_some_and(|j| ctx.toks[j].is_punct('['));
        if !is_attr_start {
            i += 1;
            continue;
        }
        let open = ctx.next_code(i + 1).expect("checked above");
        // Attribute body up to the matching `]`.
        let mut depth = 0usize;
        let mut close = open;
        for (k, t) in ctx.toks.iter().enumerate().skip(open) {
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
        }
        let is_tf = ctx.toks[open..close]
            .iter()
            .any(|t| t.is_ident("target_feature"));
        if !is_tf {
            i = close + 1;
            continue;
        }
        let line = ctx.toks[i].line;
        if !has_guard && !reported_guard && !ctx.allowed(TF_GUARD, line) {
            reported_guard = true; // one finding per file is enough
            out.push(Diagnostic::new(
                ctx,
                line,
                TF_GUARD,
                "`#[target_feature]` in a file with no `is_x86_feature_detected!` guard — \
                 feature-gated kernels must live next to their dispatch check"
                    .to_string(),
            ));
        }
        // Visibility of the following item: walk to `fn`, collecting any
        // `pub` qualifier on the way (skipping further attributes).
        let mut j = close + 1;
        while let Some(k) = ctx.next_code(j) {
            let t = &ctx.toks[k];
            if t.is_punct('#') {
                // another attribute: skip it
                let Some(o) = ctx.next_code(k + 1) else { break };
                let mut d = 0usize;
                let mut e = o;
                for (x, tt) in ctx.toks.iter().enumerate().skip(o) {
                    if tt.is_punct('[') {
                        d += 1;
                    } else if tt.is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            e = x;
                            break;
                        }
                    }
                }
                j = e + 1;
                continue;
            }
            if t.is_ident("pub") {
                // `pub` alone or `pub(crate)` is too wide; `pub(super)`,
                // `pub(self)`, `pub(in …)` are fine.
                let wide = match ctx.next_code(k + 1) {
                    Some(p) if ctx.toks[p].is_punct('(') => ctx
                        .next_code(p + 1)
                        .is_some_and(|q| ctx.toks[q].is_ident("crate")),
                    _ => true,
                };
                if wide && !ctx.allowed(TF_VIS, line) {
                    out.push(Diagnostic::new(
                        ctx,
                        line,
                        TF_VIS,
                        "`#[target_feature]` fn wider than `pub(super)` — keep feature-gated \
                         kernels reachable only through their guarded dispatch module"
                            .to_string(),
                    ));
                }
                break;
            }
            if t.is_ident("fn") || t.is_ident("unsafe") || t.is_ident("extern") {
                break; // private item: fine
            }
            j = k + 1;
        }
        i = close + 1;
    }
}
