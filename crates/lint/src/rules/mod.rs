//! The rule catalog. Each rule has a stable machine-readable ID (used in
//! diagnostics and in `// lint:allow(<id>): <reason>` escape hatches);
//! `docs/LINTING.md` is the human-facing catalog.

pub mod budget_discipline;
pub mod determinism;
pub mod env_registry;
pub mod lock_order;
pub mod panic_policy;
pub mod taint;
pub mod unsafe_audit;
pub mod vendor_guard;

/// Every known rule ID, for validating `lint:allow` references.
pub const ALL_RULES: &[&str] = &[
    unsafe_audit::BLOCK,
    unsafe_audit::FN_DOC,
    unsafe_audit::CALLSITE,
    unsafe_audit::TF_VIS,
    unsafe_audit::TF_GUARD,
    determinism::HASH_ITER,
    determinism::WALLCLOCK,
    determinism::FLOAT_SUM,
    env_registry::UNDOCUMENTED,
    env_registry::DOC_STALE,
    panic_policy::RULE,
    vendor_guard::RULE,
    lock_order::RULE,
    taint::RULE,
    budget_discipline::RULE,
];
