//! Rule **panic-policy** (`panic-unwrap`): `unwrap()`/`expect()` are
//! denied in non-test code of the `everest-core` and `everest-evql`
//! *library* modules — query execution should surface typed errors
//! (`EvqlError`, `IngestError`), not abort the process; the serve-daemon
//! direction (ROADMAP) makes a panicking library a denial-of-service.
//!
//! Existing debt is held by a per-file budget allowlist below: a file may
//! carry at most its budgeted number of sites, each shrink is banked by
//! lowering the budget, and any growth fails CI. The binary prints the
//! burn-down total. New files start at budget zero. Individual sites that
//! are provably unreachable can instead carry
//! `// lint:allow(panic-unwrap): <why it cannot fire>`.

use crate::lexer::Kind;
use crate::source::FileCtx;
use crate::Diagnostic;

pub const RULE: &str = "panic-unwrap";

/// Per-file budget for pre-existing `unwrap`/`expect` sites.
pub struct PanicBudget {
    pub file: &'static str,
    pub budget: usize,
    /// Why the residue is tolerated (shown in the burn-down report).
    pub reason: &'static str,
}

/// The debt ledger. Keep budgets equal to the current count: the
/// self-check test fails when a file *exceeds* its budget, and the binary
/// nags (without failing) when a budget is slack and can be tightened.
pub const PANIC_ALLOWLIST: &[PanicBudget] = &[
    PanicBudget {
        file: "crates/core/src/baselines.rs",
        budget: 1,
        reason: "the λ-sweep always yields ≥ K candidates at λ = 0 (full scan)",
    },
    PanicBudget {
        file: "crates/core/src/dist.rs",
        budget: 3,
        reason: "CDF/quantile lookups over distributions normalised at construction",
    },
    PanicBudget {
        file: "crates/core/src/metrics.rs",
        budget: 2,
        reason: "partial_cmp ordering over scores that are finite by relation contract",
    },
    PanicBudget {
        file: "crates/core/src/pipeline.rs",
        budget: 2,
        reason: "certain_bucket lookups on items the cleaner just proved certain",
    },
    PanicBudget {
        file: "crates/core/src/pws.rs",
        budget: 2,
        reason: "dist()/max_by on uncertain items of a non-empty enumerated relation",
    },
    PanicBudget {
        file: "crates/core/src/select.rs",
        budget: 4,
        reason: "ψ-ordering over finite membership probabilities of uncertain items",
    },
    PanicBudget {
        file: "crates/core/src/semantics.rs",
        budget: 3,
        reason: "world enumeration is non-empty for validated relations",
    },
    PanicBudget {
        file: "crates/core/src/skyline.rs",
        budget: 4,
        reason: "certain_vector/dist lookups guarded by the cleaner's certainty state",
    },
    PanicBudget {
        file: "crates/evql/src/exec.rs",
        budget: 5,
        reason: "phase-1 entry is Some for every engine that analyze() routes here",
    },
];

/// In-scope library files: core and evql `src/`, excluding binaries.
fn in_scope(rel: &str) -> bool {
    (rel.starts_with("crates/core/src/") || rel.starts_with("crates/evql/src/"))
        && !rel.contains("/bin/")
}

/// Counts policy sites in one file and emits findings for files that are
/// over budget (or not in the ledger at all). Returns
/// `(counted_sites, site_allows)` for the burn-down report.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) -> (usize, usize) {
    if !in_scope(&ctx.rel) {
        return (0, 0);
    }
    let mut sites: Vec<usize> = Vec::new(); // lines
    let mut site_allows = 0usize;
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != Kind::Ident || !(t.text == "unwrap" || t.text == "expect") {
            continue;
        }
        let prev_is_dot = i
            .checked_sub(1)
            .and_then(|p| ctx.prev_code(p))
            .is_some_and(|p| ctx.toks[p].is_punct('.'));
        let next_is_call = ctx
            .next_code(i + 1)
            .is_some_and(|n| ctx.toks[n].is_punct('('));
        if !prev_is_dot || !next_is_call || ctx.in_test(t.line) {
            continue;
        }
        if ctx.allowed(RULE, t.line) {
            site_allows += 1;
            continue;
        }
        sites.push(t.line);
    }
    let budget = PANIC_ALLOWLIST
        .iter()
        .find(|b| b.file == ctx.rel)
        .map(|b| b.budget)
        .unwrap_or(0);
    if sites.len() > budget {
        let shown = sites.len().min(budget + 5);
        for &line in &sites[budget..shown] {
            out.push(Diagnostic::new(
                ctx,
                line,
                RULE,
                format!(
                    "`unwrap()`/`expect()` in library code: {} sites exceed this file's budget \
                     of {budget} (return a typed error, prove the invariant with a \
                     lint:allow(panic-unwrap) reason, or — for pre-existing debt — raise the \
                     budget in crates/lint/src/rules/panic_policy.rs with justification)",
                    sites.len()
                ),
            ));
        }
    }
    (sites.len(), site_allows)
}
