//! Rule **budget-discipline**: every oracle invocation in `crates/core`
//! must be governed by the budget/retry layer.
//!
//! A *site* is a raw `.score_batch(` / `.try_score_batch(` method call
//! in `crates/core/src` (non-test). A fn is a *gate* when its own body
//! evidently threads the budget layer — it names `QueryBudget` or
//! `RetryingOracle`, mentions a `*budget*` binding, or enforces the
//! cap idents `max_cleanings` / `max_oracle_calls` — or when it is a
//! method of those types. A site is fine when its containing fn is a
//! gate, or when every path from public API down to it passes through a
//! gate. It is a diagnostic when some `pub` non-gate fn reaches the
//! site without crossing a gate: callers can then spend oracle calls
//! the budget never sees.
//!
//! The check is a reverse reachability walk from the site's containing
//! fn up through the call graph, stopping at gates and skipping test
//! fns; any `pub` fn in that upward closure is an ungoverned entry
//! point, and the first one found (deterministic order) is named in the
//! message.

use crate::graph::Graph;
use crate::lexer::Kind;
use crate::Diagnostic;
use std::collections::BTreeSet;

pub const RULE: &str = "budget-discipline";

const ORACLE_CALLS: &[&str] = &["score_batch", "try_score_batch"];
const GATE_TYPES: &[&str] = &["QueryBudget", "RetryingOracle"];

fn site_scope(rel: &str) -> bool {
    rel.starts_with("crates/core/src/")
}

pub fn check(g: &Graph, out: &mut Vec<Diagnostic>) {
    // Gate classification, computed once.
    let gate: Vec<bool> = (0..g.fns.len()).map(|di| is_gate(g, di)).collect();
    let mut found: Vec<Diagnostic> = Vec::new();

    for (ci, call) in g.calls.iter().enumerate() {
        if !ORACLE_CALLS.contains(&call.callee.as_str()) || !call.is_method {
            continue;
        }
        let caller = call.caller;
        let ctx = g.ctx(caller);
        if !site_scope(&ctx.rel) || g.fns[caller].is_test {
            continue;
        }
        if ctx.allowed(RULE, call.line) {
            continue;
        }
        if gate[caller] {
            continue;
        }
        // Reverse reachability from the containing fn, stopping at
        // gates; note `ci` is unused past here — the site's identity is
        // (file, line) for reporting. When the containing fn is itself
        // an ungoverned pub entry point, name it directly — that is the
        // closest actionable surface.
        let _ = ci;
        let exposed: Option<usize> = if g.fns[caller].is_pub {
            Some(caller)
        } else {
            let mut visited: BTreeSet<usize> = BTreeSet::new();
            let mut queue = vec![caller];
            let mut best: Option<usize> = None;
            while let Some(di) = queue.pop() {
                if !visited.insert(di) {
                    continue;
                }
                let d = &g.fns[di];
                if d.is_test || gate[di] {
                    continue;
                }
                if d.is_pub && best.is_none_or(|e| better(g, di, e)) {
                    best = Some(di);
                }
                for &up in &g.callers[di] {
                    queue.push(up);
                }
            }
            best
        };
        if let Some(e) = exposed {
            let ed = &g.fns[e];
            found.push(Diagnostic {
                file: ctx.rel.clone(),
                line: call.line,
                rule: RULE,
                message: format!(
                    "raw `{}` call reachable from pub fn `{}` ({}:{}) without passing \
                     the QueryBudget/RetryingOracle layer — oracle spend is invisible \
                     to the budget here",
                    call.callee,
                    ed.name,
                    g.ctx(e).rel,
                    ed.line
                ),
            });
        }
    }
    found.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    found.dedup_by(|a, b| a.file == b.file && a.line == b.line);
    out.append(&mut found);
}

/// Deterministic "first" pub fn: lowest (file, line).
fn better(g: &Graph, a: usize, b: usize) -> bool {
    (&g.ctx(a).rel, g.fns[a].line) < (&g.ctx(b).rel, g.fns[b].line)
}

fn is_gate(g: &Graph, di: usize) -> bool {
    let d = &g.fns[di];
    if d.impl_type
        .as_deref()
        .is_some_and(|t| GATE_TYPES.contains(&t))
    {
        return true;
    }
    if d.body.is_none() {
        return false;
    }
    let ctx = g.ctx(di);
    for (s, e) in g.own_ranges(di) {
        let hi = e.min(ctx.toks.len().saturating_sub(1));
        for i in s..=hi {
            let t = &ctx.toks[i];
            if t.kind != Kind::Ident {
                continue;
            }
            if GATE_TYPES.contains(&t.text.as_str())
                || t.text == "max_cleanings"
                || t.text == "max_oracle_calls"
                || t.text.to_ascii_lowercase().contains("budget")
            {
                return true;
            }
        }
    }
    false
}
