//! Rule family **determinism**: byte-identical output across runs,
//! threads, and ISA tiers is a headline claim of this engine (ROADMAP
//! "Net state"; determinism suite), so constructs whose order or value
//! varies per process are machine-checked out of result paths.
//!
//! IDs:
//! * `det-hash-iter` — iteration over `HashMap`/`HashSet` (`.iter()`,
//!   `.keys()`, `.values()`, `.drain()`, `.into_iter()`, `.retain()`,
//!   `for … in &map`). `RandomState` makes the order differ per process;
//!   use `BTreeMap`/`BTreeSet` or collect-and-sort instead. Keyed
//!   *lookup* stays fine.
//! * `det-wallclock` — `Instant::now` / `SystemTime::now` outside
//!   `crates/bench` and `#[cfg(test)]`; wall-clock readings that feed
//!   anything result-shaped break reproducibility (timing *reports*
//!   can be `lint:allow`ed with a reason).
//! * `det-float-sum` — `.sum::<f32>()` in kernel modules
//!   (`crates/nn/src`): summation order is part of the bit-identical
//!   contract, so kernels must use the explicit fixed-order reducers
//!   (`kernels::deterministic_sum`-style) rather than an iterator fold
//!   whose shape is an implementation detail of the call site.
//!
//! Detection of hash-container iteration is heuristic (this is a lexer,
//! not a type checker): bindings and fields whose declaration names
//! `HashMap`/`HashSet` are tracked per file, and iteration calls on those
//! names are flagged. Shadowing a tracked name with a non-hash type in
//! the same file can false-positive — `lint:allow` with a reason.

use crate::lexer::Kind;
use crate::source::FileCtx;
use crate::Diagnostic;
use std::collections::BTreeSet;

pub const HASH_ITER: &str = "det-hash-iter";
pub const WALLCLOCK: &str = "det-wallclock";
pub const FLOAT_SUM: &str = "det-float-sum";

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Paths exempt from the ordering/wall-clock rules: benchmarks measure
/// time by definition, and test code may iterate freely.
fn exempt(rel: &str) -> bool {
    rel.starts_with("crates/bench/") || rel.starts_with("tests/") || rel.contains("/tests/")
}

pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !exempt(&ctx.rel) {
        hash_iteration(ctx, out);
        wallclock(ctx, out);
    }
    if ctx.rel.starts_with("crates/nn/src/") {
        float_sum(ctx, out);
    }
}

/// Binding and field names declared as `HashMap`/`HashSet` in this file.
fn hash_bindings(ctx: &FileCtx) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std :: collections ::` path prefix.
        let mut p = match i.checked_sub(1).and_then(|p| ctx.prev_code(p)) {
            Some(p) => p,
            None => continue,
        };
        while ctx.toks[p].is_punct(':') {
            // `::` is two ':' tokens; skip both plus the segment ident.
            let Some(q) = p
                .checked_sub(1)
                .and_then(|q| ctx.prev_code(q))
                .filter(|&q| ctx.toks[q].is_punct(':'))
            else {
                break;
            };
            let Some(seg) = q.checked_sub(1).and_then(|s| ctx.prev_code(s)) else {
                break;
            };
            if ctx.toks[seg].kind != Kind::Ident {
                break;
            }
            let Some(before) = seg.checked_sub(1).and_then(|b| ctx.prev_code(b)) else {
                break;
            };
            p = before;
        }
        // `name : HashMap<…>` (let binding with annotation, struct field,
        // or fn param) — or `name = HashMap::new()`-style construction.
        let name_tok = if ctx.toks[p].is_punct(':') || ctx.toks[p].is_punct('=') {
            p.checked_sub(1).and_then(|q| ctx.prev_code(q))
        } else {
            None
        };
        if let Some(n) = name_tok {
            if ctx.toks[n].kind == Kind::Ident && ctx.toks[n].text != "mut" {
                names.insert(ctx.toks[n].text.clone());
            }
        }
    }
    names
}

fn hash_iteration(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let names = hash_bindings(ctx);
    if names.is_empty() {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != Kind::Ident || !names.contains(&t.text) {
            continue;
        }
        if ctx.in_test(t.line) {
            continue;
        }
        // `name.iter()` and friends.
        let dot = ctx.next_code(i + 1);
        if let Some(d) = dot {
            if ctx.toks[d].is_punct('.') {
                if let Some(m) = ctx.next_code(d + 1) {
                    let mt = &ctx.toks[m];
                    if ITER_METHODS.contains(&mt.text.as_str())
                        && ctx
                            .next_code(m + 1)
                            .is_some_and(|q| ctx.toks[q].is_punct('('))
                    {
                        let line = mt.line;
                        if !ctx.allowed(HASH_ITER, line) && !ctx.allowed(HASH_ITER, t.line) {
                            out.push(Diagnostic::new(
                                ctx,
                                line,
                                HASH_ITER,
                                format!(
                                    "iteration over hash container `{}` (`.{}()`): per-process \
                                     RandomState order — use BTreeMap/BTreeSet or sort first",
                                    t.text, mt.text
                                ),
                            ));
                        }
                    }
                }
            }
        }
        // `for pat in [&][mut] [self.]name` — direct loop over the map.
        if let Some(prev) = i.checked_sub(1).and_then(|p| ctx.prev_code(p)) {
            let mut p = prev;
            // strip an optional `self .` prefix
            if ctx.toks[p].is_punct('.') {
                match p
                    .checked_sub(1)
                    .and_then(|q| ctx.prev_code(q))
                    .filter(|&q| ctx.toks[q].is_ident("self"))
                {
                    Some(q) => match q.checked_sub(1).and_then(|r| ctx.prev_code(r)) {
                        Some(r) => p = r,
                        None => continue,
                    },
                    None => continue,
                }
            }
            while ctx.toks[p].is_punct('&') || ctx.toks[p].is_ident("mut") {
                match p.checked_sub(1).and_then(|q| ctx.prev_code(q)) {
                    Some(q) => p = q,
                    None => break,
                }
            }
            if ctx.toks[p].is_ident("in")
                && ctx
                    .next_code(i + 1)
                    .is_some_and(|n| ctx.toks[n].is_punct('{'))
                && !ctx.allowed(HASH_ITER, t.line)
            {
                out.push(Diagnostic::new(
                    ctx,
                    t.line,
                    HASH_ITER,
                    format!(
                        "`for … in` over hash container `{}`: per-process RandomState order — \
                         use BTreeMap/BTreeSet or sort first",
                        t.text
                    ),
                ));
            }
        }
    }
}

fn wallclock(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        let is_clock_type = t.is_ident("Instant") || t.is_ident("SystemTime");
        if !is_clock_type || ctx.in_test(t.line) {
            continue;
        }
        // `Instant :: now` / `SystemTime :: now`
        let Some(c1) = ctx.next_code(i + 1).filter(|&c| ctx.toks[c].is_punct(':')) else {
            continue;
        };
        let Some(c2) = ctx.next_code(c1 + 1).filter(|&c| ctx.toks[c].is_punct(':')) else {
            continue;
        };
        let Some(m) = ctx
            .next_code(c2 + 1)
            .filter(|&m| ctx.toks[m].is_ident("now"))
        else {
            continue;
        };
        let line = ctx.toks[m].line;
        if ctx.allowed(WALLCLOCK, line) || ctx.allowed(WALLCLOCK, t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            ctx,
            t.line,
            WALLCLOCK,
            format!(
                "`{}::now` outside crates/bench and #[cfg(test)]: wall-clock must not reach \
                 result paths (timing-report uses need a lint:allow with a reason)",
                t.text
            ),
        ));
    }
}

fn float_sum(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("sum") || ctx.in_test(t.line) {
            continue;
        }
        // `. sum :: < f32`
        let prev_is_dot = i
            .checked_sub(1)
            .and_then(|p| ctx.prev_code(p))
            .is_some_and(|p| ctx.toks[p].is_punct('.'));
        if !prev_is_dot {
            continue;
        }
        let Some(c1) = ctx.next_code(i + 1).filter(|&c| ctx.toks[c].is_punct(':')) else {
            continue;
        };
        let Some(c2) = ctx.next_code(c1 + 1).filter(|&c| ctx.toks[c].is_punct(':')) else {
            continue;
        };
        let Some(lt) = ctx.next_code(c2 + 1).filter(|&l| ctx.toks[l].is_punct('<')) else {
            continue;
        };
        let is_f32 = ctx
            .next_code(lt + 1)
            .is_some_and(|f| ctx.toks[f].is_ident("f32"));
        if !is_f32 || ctx.allowed(FLOAT_SUM, t.line) {
            continue;
        }
        out.push(Diagnostic::new(
            ctx,
            t.line,
            FLOAT_SUM,
            "`.sum::<f32>()` in a kernel module: summation order is part of the bit-identical \
             contract — use an explicit fixed-order reducer (see kernels::deterministic_sum)"
                .to_string(),
        ));
    }
}
