//! Rule **lock-order-cycle**: static deadlock detection for the serve
//! daemon. `Mutex`/`RwLock` acquisition sites in `crates/serve` and
//! `crates/evql` are indexed into *lock classes* (by declared binding or
//! field name), held-guard spans are derived from `let`-bound guards, and
//! held-lock sets propagate through the call graph. Any cycle in the
//! resulting acquired-while-holding order — including a self-edge, which
//! is a re-entrant acquisition of a non-reentrant `std::sync` lock — is a
//! diagnostic.
//!
//! Precision contract (see `docs/LINTING.md`):
//!
//! * a guard span starts **after** the `let` statement that binds it and
//!   ends at the enclosing block's `}`, truncated at `drop(guard)` or at
//!   a shadowing re-`let` of the same name — temporaries
//!   (`m.lock().unwrap().insert(…)`) hold no span;
//! * classes are keyed by declared name (`sessions: Mutex<…>`,
//!   `state: Mutex<…>`, `let rx = Arc::new(Mutex::new(…))`), so two
//!   same-named locks in different modules would be conflated — keep lock
//!   field names distinct, which the workspace already does;
//! * held sets flow only through *precise* call edges (bare calls, path
//!   calls, and `self.method()` — an arbitrary-receiver `x.method()`
//!   resolves by name alone and would wire unrelated impls together);
//!   a workspace helper returning a `MutexGuard`/`RwLock*Guard`
//!   (`SharedCache::lock`) is a proxy acquisition of whatever it locks.
//!
//! Suppression: `lint:allow(lock-order-cycle)` on an edge's acquisition
//! line removes that edge from the order graph.

use crate::graph::Graph;
use crate::lexer::Kind;
use crate::source::FileCtx;
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

pub const RULE: &str = "lock-order-cycle";

/// Files whose acquisitions participate in the order graph.
fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/serve/src/") || rel.starts_with("crates/evql/src/")
}

const GUARD_TYPES: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One direct acquisition: `<class>.lock()` / `.read()` / `.write()`.
struct Acq {
    class: String,
    /// Token index of the class ident.
    tok: usize,
    line: usize,
}

/// One derived acquired-while-holding edge, with provenance.
#[derive(Debug)]
struct Edge {
    held: String,
    acquired: String,
    file: String,
    line: usize,
}

pub fn check(g: &Graph, out: &mut Vec<Diagnostic>) {
    let classes = collect_classes(g);
    if classes.is_empty() {
        return;
    }

    // Direct acquisitions per fn (in-scope, non-test fns only).
    let mut direct: BTreeMap<usize, Vec<Acq>> = BTreeMap::new();
    for (di, d) in g.fns.iter().enumerate() {
        let ctx = g.ctx(di);
        if d.is_test || !in_scope(&ctx.rel) {
            continue;
        }
        let acqs = direct_acquisitions(g, di, &classes);
        if !acqs.is_empty() {
            direct.insert(di, acqs);
        }
    }

    // Transitive acquired-classes fixpoint over precise call edges.
    let mut trans: Vec<BTreeSet<String>> = vec![BTreeSet::new(); g.fns.len()];
    for (&di, acqs) in &direct {
        trans[di].extend(acqs.iter().map(|a| a.class.clone()));
    }
    loop {
        let mut changed = false;
        for di in 0..g.fns.len() {
            if g.fns[di].is_test {
                continue;
            }
            let mut add: Vec<String> = Vec::new();
            for &(ci, callee) in &g.callees[di] {
                if !precise(g, ci) || g.fns[callee].is_test {
                    continue;
                }
                for c in &trans[callee] {
                    if !trans[di].contains(c) {
                        add.push(c.clone());
                    }
                }
            }
            if !add.is_empty() {
                trans[di].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Guard spans → edges.
    let mut edges: Vec<Edge> = Vec::new();
    for (di, d) in g.fns.iter().enumerate() {
        let ctx = g.ctx(di);
        if d.is_test || !in_scope(&ctx.rel) || d.body.is_none() {
            continue;
        }
        let empty = Vec::new();
        let acqs = direct.get(&di).unwrap_or(&empty);
        // Span-creating acquisitions: let-bound direct acquisitions plus
        // let-bound calls to guard-returning workspace fns.
        let mut held: Vec<(BTreeSet<String>, usize, Option<String>)> = Vec::new();
        for a in acqs {
            if let Some(binding) = let_binding(ctx, a.tok) {
                held.push((BTreeSet::from([a.class.clone()]), a.tok, binding));
            }
        }
        for &(ci, callee) in &g.callees[di] {
            if !precise(g, ci) || !returns_guard(g, callee) || trans[callee].is_empty() {
                continue;
            }
            let tok = g.calls[ci].tok;
            if let Some(binding) = let_binding(ctx, tok) {
                held.push((trans[callee].clone(), tok, binding));
            }
        }
        for (held_classes, acq_tok, binding) in held {
            let Some(span) = guard_span(ctx, d.body.expect("checked"), acq_tok, &binding) else {
                continue;
            };
            // Acquisitions and lock-acquiring calls inside the span.
            for a in acqs {
                if a.tok <= span.0 || a.tok > span.1 {
                    continue;
                }
                for h in &held_classes {
                    edges.push(Edge {
                        held: h.clone(),
                        acquired: a.class.clone(),
                        file: ctx.rel.clone(),
                        line: a.line,
                    });
                }
            }
            for &(ci, callee) in &g.callees[di] {
                let call = &g.calls[ci];
                if call.tok <= span.0 || call.tok > span.1 {
                    continue;
                }
                if !precise(g, ci) || g.fns[callee].is_test {
                    continue;
                }
                for acquired in &trans[callee] {
                    for h in &held_classes {
                        edges.push(Edge {
                            held: h.clone(),
                            acquired: acquired.clone(),
                            file: ctx.rel.clone(),
                            line: call.line,
                        });
                    }
                }
            }
        }
    }

    // Per-line suppression, then dedupe to one provenance per (held,
    // acquired) pair — the first in (file, line) order.
    let mut by_pair: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for e in edges {
        let allowed = g
            .ctxs
            .iter()
            .find(|c| c.rel == e.file)
            .is_some_and(|c| c.allowed(RULE, e.line));
        if allowed {
            continue;
        }
        let key = (e.held, e.acquired);
        let prov = (e.file, e.line);
        match by_pair.get(&key) {
            Some(p) if *p <= prov => {}
            _ => {
                by_pair.insert(key, prov);
            }
        }
    }

    // Cycle detection: SCCs of the class digraph; any SCC with more than
    // one class — or a self-edge — is a deadlock-capable order.
    let adj: BTreeMap<&str, BTreeSet<&str>> = by_pair.keys().fold(
        BTreeMap::new(),
        |mut m: BTreeMap<&str, BTreeSet<&str>>, (a, b)| {
            m.entry(a).or_default().insert(b);
            m.entry(b).or_default();
            m
        },
    );
    for scc in sccs(&adj) {
        let members: BTreeSet<&str> = scc.iter().copied().collect();
        let internal: Vec<_> = by_pair
            .iter()
            .filter(|((a, b), _)| members.contains(a.as_str()) && members.contains(b.as_str()))
            .collect();
        let cyclic = members.len() > 1 || internal.iter().any(|((a, b), _)| a == b);
        if !cyclic || internal.is_empty() {
            continue;
        }
        let mut detail: Vec<String> = internal
            .iter()
            .map(|((a, b), (f, l))| format!("{f}:{l} acquires `{b}` while `{a}` is held"))
            .collect();
        detail.sort();
        let (anchor_file, anchor_line) = internal
            .iter()
            .map(|(_, p)| (*p).clone())
            .min()
            .expect("non-empty");
        let names: Vec<&str> = members.iter().copied().collect();
        out.push(Diagnostic {
            file: anchor_file,
            line: anchor_line,
            rule: RULE,
            message: format!(
                "lock-order cycle among {{{}}} — two threads interleaving these \
                 acquisition orders can deadlock: {}",
                names.join(", "),
                detail.join("; ")
            ),
        });
    }
}

/// A call edge trusted enough to carry held-lock sets: bare or
/// path-qualified calls, or `self.method()` (see module docs).
fn precise(g: &Graph, ci: usize) -> bool {
    let c = &g.calls[ci];
    !c.is_method || c.self_recv
}

/// Whether a fn's declared return type names a guard.
fn returns_guard(g: &Graph, def: usize) -> bool {
    let d = &g.fns[def];
    if !d.has_ret {
        return false;
    }
    let ctx = g.ctx(def);
    (d.ret.0..=d.ret.1.min(ctx.toks.len().saturating_sub(1)))
        .any(|i| GUARD_TYPES.contains(&ctx.toks[i].text.as_str()))
}

/// Lock classes: names declared as `Mutex`/`RwLock` in in-scope files —
/// `name: Mutex<…>` fields/params and `name = [Arc::new(]Mutex::new(…)`
/// bindings.
fn collect_classes(g: &Graph) -> BTreeSet<String> {
    let mut classes = BTreeSet::new();
    for ctx in g.ctxs {
        if !in_scope(&ctx.rel) {
            continue;
        }
        for (i, t) in ctx.toks.iter().enumerate() {
            if !(t.is_ident("Mutex") || t.is_ident("RwLock")) {
                continue;
            }
            if let Some(name) = declared_name(ctx, i) {
                classes.insert(name);
            }
        }
    }
    classes
}

/// Walks back from a `Mutex`/`RwLock` ident over wrapper tokens —
/// `std :: sync ::` path prefixes, `Arc :: new (` constructors, `&`, `<`
/// — to the declaring `name :` or `name =` separator.
fn declared_name(ctx: &FileCtx, mutex_tok: usize) -> Option<String> {
    let mut p = mutex_tok.checked_sub(1).and_then(|p| ctx.prev_code(p))?;
    for _ in 0..16 {
        let t = &ctx.toks[p];
        if t.is_punct(':') {
            // `::` path separator (second ':' right before) or the
            // declaring annotation `name : …`.
            let before = p.checked_sub(1).and_then(|q| ctx.prev_code(q))?;
            if ctx.toks[before].is_punct(':') {
                // path `seg :: …` — skip both colons and the segment
                let seg = before.checked_sub(1).and_then(|q| ctx.prev_code(q))?;
                if ctx.toks[seg].kind != Kind::Ident {
                    return None;
                }
                p = seg.checked_sub(1).and_then(|q| ctx.prev_code(q))?;
                continue;
            }
            let name = &ctx.toks[before];
            return (name.kind == Kind::Ident && name.text != "mut").then(|| name.text.clone());
        }
        if t.is_punct('=') {
            let before = p.checked_sub(1).and_then(|q| ctx.prev_code(q))?;
            let name = &ctx.toks[before];
            return (name.kind == Kind::Ident && name.text != "mut").then(|| name.text.clone());
        }
        if t.kind == Kind::Ident || t.is_punct('(') || t.is_punct('<') || t.is_punct('&') {
            p = p.checked_sub(1).and_then(|q| ctx.prev_code(q))?;
            continue;
        }
        return None;
    }
    None
}

/// Direct `<class>.lock()/.read()/.write()` sites in `def`'s own tokens.
fn direct_acquisitions(g: &Graph, def: usize, classes: &BTreeSet<String>) -> Vec<Acq> {
    let ctx = g.ctx(def);
    let mut out = Vec::new();
    for (s, e) in g.own_ranges(def) {
        for i in s..=e.min(ctx.toks.len().saturating_sub(1)) {
            let t = &ctx.toks[i];
            if t.kind != Kind::Ident || !classes.contains(&t.text) {
                continue;
            }
            let Some(dot) = ctx.next_code(i + 1).filter(|&d| ctx.toks[d].is_punct('.')) else {
                continue;
            };
            let Some(m) = ctx
                .next_code(dot + 1)
                .filter(|&m| ACQUIRE_METHODS.contains(&ctx.toks[m].text.as_str()))
            else {
                continue;
            };
            if ctx
                .next_code(m + 1)
                .is_some_and(|o| ctx.toks[o].is_punct('('))
            {
                out.push(Acq {
                    class: t.text.clone(),
                    tok: i,
                    line: t.line,
                });
            }
        }
    }
    out
}

/// When the statement containing `tok` is a `let` binding, its bound
/// name: `Some(Some(name))` for `let [mut] name = …`, `Some(None)` for a
/// destructuring `let`, `None` when the acquisition is a temporary.
fn let_binding(ctx: &FileCtx, tok: usize) -> Option<Option<String>> {
    // Statement start: the token after the previous `;`, `{` or `}`.
    let mut i = tok;
    let start = loop {
        let p = i.checked_sub(1).and_then(|p| ctx.prev_code(p))?;
        let t = &ctx.toks[p];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break ctx.next_code(p + 1)?;
        }
        i = p;
    };
    if !ctx.toks[start].is_ident("let") {
        return None;
    }
    let mut n = ctx.next_code(start + 1)?;
    if ctx.toks[n].is_ident("mut") {
        n = ctx.next_code(n + 1)?;
    }
    if ctx.toks[n].kind == Kind::Ident {
        // `let name = …` — confirm it is a plain binding, not a pattern.
        let eq = ctx.next_code(n + 1)?;
        if ctx.toks[eq].is_punct('=') || ctx.toks[eq].is_punct(':') {
            return Some(Some(ctx.toks[n].text.clone()));
        }
    }
    Some(None) // destructuring pattern: bound, but untrackable by name
}

/// The held span of a `let`-bound guard acquired at `acq_tok`: from the
/// end of the binding statement to the enclosing block's `}`, truncated
/// at `drop(name)` or a shadowing `let name`.
fn guard_span(
    ctx: &FileCtx,
    body: (usize, usize),
    acq_tok: usize,
    binding: &Option<String>,
) -> Option<(usize, usize)> {
    // Statement end: first `;` at depth 0 from the acquisition on (or the
    // enclosing `}` if the block ends first).
    let mut depth = 0i32;
    let mut i = acq_tok;
    let stmt_end = loop {
        if i > body.1 {
            return None;
        }
        let t = &ctx.toks[i];
        if !t.is_comment() {
            if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    return None; // block ended inside the statement
                }
            } else if t.is_punct(';') && depth <= 0 {
                break i;
            }
        }
        i += 1;
    };
    // Innermost block containing the acquisition.
    let mut block_end = body.1;
    let mut innermost_open = body.0;
    for j in body.0..acq_tok {
        if ctx.toks[j].is_punct('{') {
            let close = ctx.matching_brace(j);
            if close >= acq_tok && j >= innermost_open {
                innermost_open = j;
                block_end = close;
            }
        }
    }
    let mut end = block_end;
    if let Some(name) = binding {
        let mut j = stmt_end + 1;
        while j < end {
            let t = &ctx.toks[j];
            // `drop ( name )`
            if t.is_ident("drop") {
                let open = ctx.next_code(j + 1).filter(|&o| ctx.toks[o].is_punct('('));
                let arg = open.and_then(|o| ctx.next_code(o + 1));
                if let Some(a) = arg {
                    if ctx.toks[a].is_ident(name)
                        && ctx
                            .next_code(a + 1)
                            .is_some_and(|c| ctx.toks[c].is_punct(')'))
                    {
                        end = j;
                        break;
                    }
                }
            }
            // shadowing `let [mut] name`
            if t.is_ident("let") {
                let mut n = ctx.next_code(j + 1);
                if n.is_some_and(|n| ctx.toks[n].is_ident("mut")) {
                    n = ctx.next_code(n.expect("checked") + 1);
                }
                if n.is_some_and(|n| ctx.toks[n].is_ident(name)) {
                    end = j;
                    break;
                }
            }
            j += 1;
        }
    }
    (stmt_end < end).then_some((stmt_end, end))
}

/// Strongly connected components (Kosaraju) of a tiny string digraph,
/// deterministic order.
fn sccs<'k>(adj: &BTreeMap<&'k str, BTreeSet<&'k str>>) -> Vec<Vec<&'k str>> {
    let mut order = Vec::new();
    let mut seen = BTreeSet::new();
    for &n in adj.keys() {
        dfs_order(n, adj, &mut seen, &mut order);
    }
    let mut radj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (&a, bs) in adj {
        radj.entry(a).or_default();
        for &b in bs {
            radj.entry(b).or_default().insert(a);
        }
    }
    let mut out = Vec::new();
    let mut assigned = BTreeSet::new();
    for &n in order.iter().rev() {
        if assigned.contains(n) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            if !assigned.insert(m) {
                continue;
            }
            comp.push(m);
            if let Some(preds) = radj.get(m) {
                stack.extend(preds.iter().copied());
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

fn dfs_order<'k>(
    n: &'k str,
    adj: &BTreeMap<&'k str, BTreeSet<&'k str>>,
    seen: &mut BTreeSet<&'k str>,
    order: &mut Vec<&'k str>,
) {
    if !seen.insert(n) {
        return;
    }
    if let Some(next) = adj.get(n) {
        for &m in next {
            dfs_order(m, adj, seen, order);
        }
    }
    order.push(n);
}
