//! Rule **vendor-guard** (`vendor-dep`): the build container has no
//! crates.io access, so every dependency in every workspace `Cargo.toml`
//! must resolve to a local `path` (a `vendor/` shim or a sibling
//! workspace crate) — directly, via `workspace = true` against a
//! path-based `[workspace.dependencies]` entry, or as a dotted
//! `name.workspace = true` key. A registry version (`foo = "1.0"`) or
//! `git` source would break the offline build the moment the lockfile is
//! refreshed.
//!
//! The check is a small line-oriented TOML subset parser: section
//! headers, `name = value` entries, inline tables, and
//! `[dependencies.name]` sub-tables — the only forms the workspace uses.

use crate::Diagnostic;
use std::path::Path;

pub const RULE: &str = "vendor-dep";

/// Lints one `Cargo.toml`; `rel` is its root-relative path.
pub fn check_manifest(rel: &str, text: &str, out: &mut Vec<Diagnostic>) {
    #[derive(PartialEq)]
    enum Section {
        Deps,
        /// `[dependencies.foo]` sub-table: the entry is the section.
        DepEntry {
            name: String,
            line: usize,
            ok: bool,
        },
        Other,
    }
    let mut section = Section::Other;
    let flush = |section: &mut Section, out: &mut Vec<Diagnostic>| {
        if let Section::DepEntry { name, line, ok } = &section {
            if !ok {
                out.push(Diagnostic {
                    file: rel.to_string(),
                    line: *line,
                    rule: RULE,
                    message: format!(
                        "dependency `{name}` does not resolve to a local path — offline \
                         builds require path/vendored dependencies"
                    ),
                });
            }
        }
        *section = Section::Other;
    };
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut section, out);
            let inner = line.trim_matches(|c| c == '[' || c == ']');
            let is_deps_table = inner == "dependencies"
                || inner == "dev-dependencies"
                || inner == "build-dependencies"
                || inner == "workspace.dependencies"
                || inner.ends_with(".dependencies");
            if is_deps_table {
                section = Section::Deps;
            } else if let Some((table, name)) = inner.rsplit_once('.') {
                // `[dependencies.foo]` / `[workspace.dependencies.foo]`
                let parent_is_deps = table == "dependencies"
                    || table == "dev-dependencies"
                    || table == "build-dependencies"
                    || table == "workspace.dependencies"
                    || table.ends_with(".dependencies");
                if parent_is_deps {
                    section = Section::DepEntry {
                        name: name.to_string(),
                        line: line_no,
                        ok: false,
                    };
                } else {
                    section = Section::Other;
                }
            } else {
                section = Section::Other;
            }
            continue;
        }
        match &mut section {
            Section::Deps => {
                let Some((key, value)) = line.split_once('=') else {
                    continue;
                };
                let key = key.trim();
                let value = value.trim();
                // Dotted keys: `foo.workspace = true`, `foo.path = "…"`.
                if key.ends_with(".workspace") || key.ends_with(".path") {
                    continue;
                }
                let ok = value.contains("path") && value.contains('=') && !value.contains("git")
                    || value.contains("workspace = true")
                    || value.contains("workspace=true");
                if !ok {
                    out.push(Diagnostic {
                        file: rel.to_string(),
                        line: line_no,
                        rule: RULE,
                        message: format!(
                            "dependency `{key}` = {value} does not resolve to a local path — \
                             offline builds require path/vendored dependencies"
                        ),
                    });
                }
            }
            Section::DepEntry { ok, .. } => {
                let key = line.split('=').next().unwrap_or("").trim();
                if key == "path" || (key == "workspace" && line.contains("true")) {
                    *ok = true;
                }
                if key == "git" || key == "registry" {
                    *ok = false;
                }
            }
            Section::Other => {}
        }
    }
    flush(&mut section, out);
}

/// Finds and lints every workspace `Cargo.toml` under `root`.
pub fn check(root: &Path, out: &mut Vec<Diagnostic>) {
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name == "Cargo.toml" {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                if let Ok(text) = std::fs::read_to_string(&path) {
                    check_manifest(&rel, &text, out);
                }
            }
        }
    }
}
