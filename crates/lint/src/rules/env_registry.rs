//! Rule family **env-var registry**: every `EVEREST_*` environment
//! variable is part of the engine's public operational surface, so the
//! set referenced in source and the set documented in the
//! `docs/BENCHMARKING.md` registry table must stay equal.
//!
//! IDs:
//! * `env-var-undocumented` — an `EVEREST_*` string literal in source (or
//!   a CI workflow under `.github/workflows/`) has no mention in
//!   `docs/BENCHMARKING.md`.
//! * `env-var-doc-stale` — `docs/BENCHMARKING.md` documents an
//!   `EVEREST_*` variable neither source nor CI references.
//!
//! CI workflows count as reference sites on both sides of the check: a
//! knob introduced only as a job `env:` entry (the chaos/scalar jobs set
//! several) still must be registered, and a knob referenced only from CI
//! keeps its registry row alive.

use crate::source::{everest_vars, FileCtx, VarSites};
use crate::Diagnostic;
use std::path::Path;

pub const UNDOCUMENTED: &str = "env-var-undocumented";
pub const DOC_STALE: &str = "env-var-doc-stale";

/// Registry document, relative to the lint root.
pub const REGISTRY_DOC: &str = "docs/BENCHMARKING.md";

/// Harvests `EVEREST_*` names from this file's string literals into `sites`.
pub fn collect(ctx: &FileCtx, sites: &mut VarSites) {
    for t in &ctx.toks {
        if t.kind != crate::lexer::Kind::Str {
            continue;
        }
        for var in everest_vars(&t.text) {
            sites.entry(var).or_insert((ctx.rel.clone(), t.line));
        }
    }
}

/// Harvests `EVEREST_*` names from CI workflow files
/// (`.github/workflows/*.yml|yaml`) into `sites`, line by line — YAML is
/// outside the Rust lexer's reach, but env knobs set there are just as
/// much a part of the operational surface.
pub fn collect_workflows(root: &Path, sites: &mut VarSites) {
    let dir = root.join(".github/workflows");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut files: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.extension()
                .is_some_and(|ext| ext == "yml" || ext == "yaml")
        })
        .collect();
    files.sort();
    for path in files {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        for (i, line) in text.lines().enumerate() {
            for var in everest_vars(line) {
                sites.entry(var).or_insert((rel.clone(), i + 1));
            }
        }
    }
}

/// Cross-checks harvested source vars against the registry document.
pub fn check(root: &Path, sites: &VarSites, out: &mut Vec<Diagnostic>) {
    let doc_path = root.join(REGISTRY_DOC);
    let doc = std::fs::read_to_string(&doc_path).unwrap_or_default();
    let mut doc_vars: VarSites = VarSites::new();
    for (i, line) in doc.lines().enumerate() {
        for var in everest_vars(line) {
            doc_vars
                .entry(var)
                .or_insert((REGISTRY_DOC.to_string(), i + 1));
        }
    }
    for (var, (file, line)) in sites {
        if !doc_vars.contains_key(var) {
            out.push(Diagnostic {
                file: file.clone(),
                line: *line,
                rule: UNDOCUMENTED,
                message: format!(
                    "env var `{var}` is read in source but missing from the registry table in \
                     {REGISTRY_DOC}"
                ),
            });
        }
    }
    for (var, (file, line)) in &doc_vars {
        if !sites.contains_key(var) {
            out.push(Diagnostic {
                file: file.clone(),
                line: *line,
                rule: DOC_STALE,
                message: format!(
                    "env var `{var}` is documented in {REGISTRY_DOC} but no source file \
                     references it"
                ),
            });
        }
    }
}
