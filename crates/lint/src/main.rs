//! `everest-lint` binary: `cargo lint` / CI entry point.
//!
//! Usage: `everest-lint [--check] [--json] [--baseline PATH]
//! [--update-baseline] [ROOT]`
//!
//! * With no `ROOT`, lints the workspace containing the current
//!   directory (walking up to the first `Cargo.toml` with a
//!   `[workspace]` table).
//! * `--json` prints the machine-readable report (schema in
//!   `docs/LINTING.md`) instead of the human lines.
//! * `--baseline PATH` ratchets against a committed `lint_baseline.json`:
//!   exit 1 on any finding not in the baseline *or* on a stale baseline
//!   entry; findings covered by the baseline pass.
//! * `--update-baseline` (with `--baseline`) rewrites the baseline from
//!   the current findings instead of failing — how a fix is banked.
//! * `--check` is accepted for CI-invocation clarity; the exit code is
//!   the same either way: 0 when clean, 1 when there are findings (or
//!   ratchet violations), 2 on usage or I/O errors. There is
//!   deliberately no `--fix`.

#![deny(unsafe_code)]

use everest_lint::{baseline, lint_root, rules::panic_policy::PANIC_ALLOWLIST};
use std::path::PathBuf;

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--json" => json = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("everest-lint: --baseline needs a path");
                    std::process::exit(2);
                }
            },
            "--update-baseline" => update_baseline = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: everest-lint [--check] [--json] [--baseline PATH] \
                     [--update-baseline] [ROOT]"
                );
                return;
            }
            _ if arg.starts_with('-') => {
                eprintln!("everest-lint: unknown flag `{arg}`");
                std::process::exit(2);
            }
            _ => root = Some(PathBuf::from(arg)),
        }
    }
    if update_baseline && baseline_path.is_none() {
        eprintln!("everest-lint: --update-baseline needs --baseline PATH");
        std::process::exit(2);
    }
    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("everest-lint: no workspace Cargo.toml found above the current dir");
                std::process::exit(2);
            }
        },
    };
    if !root.is_dir() {
        eprintln!("everest-lint: root `{}` is not a directory", root.display());
        std::process::exit(2);
    }

    let report = lint_root(&root);

    // Ratchet mode: the baseline decides pass/fail, not the raw count.
    if let Some(path) = &baseline_path {
        if update_baseline {
            let text = baseline::render_baseline(&report.diagnostics);
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("everest-lint: cannot write `{}`: {e}", path.display());
                std::process::exit(2);
            }
            eprintln!(
                "everest-lint: baseline `{}` rewritten with {} finding(s)",
                path.display(),
                report.diagnostics.len()
            );
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("everest-lint: cannot read `{}`: {e}", path.display());
                std::process::exit(2);
            }
        };
        let base = match baseline::Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("everest-lint: bad baseline `{}`: {e}", path.display());
                std::process::exit(2);
            }
        };
        let problems = baseline::diff(&report.diagnostics, &base);
        if json {
            print!("{}", baseline::render_report(&report));
        } else {
            for d in &report.diagnostics {
                println!("{d}");
            }
            for p in &problems {
                println!("ratchet: {p}");
            }
            println!(
                "everest-lint: {} finding(s), {} baselined, {} ratchet violation(s)",
                report.diagnostics.len(),
                base.entries.values().sum::<usize>(),
                problems.len()
            );
        }
        if !problems.is_empty() {
            if json {
                for p in &problems {
                    eprintln!("ratchet: {p}");
                }
            }
            std::process::exit(1);
        }
        return;
    }

    if json {
        print!("{}", baseline::render_report(&report));
        if !report.diagnostics.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    for d in &report.diagnostics {
        println!("{d}");
    }
    // Panic-policy burn-down: visible every run so the debt trends down.
    println!(
        "panic-policy burn-down: {} budgeted unwrap/expect sites across {} allowlisted files \
         (budget {}), plus {} per-site lint:allow justifications",
        report.panic_sites,
        PANIC_ALLOWLIST.len(),
        report.panic_budget,
        report.panic_site_allows,
    );
    if report.panic_sites < report.panic_budget {
        println!(
            "note: panic budget is slack by {} — tighten the ledger in \
             crates/lint/src/rules/panic_policy.rs to bank the progress",
            report.panic_budget - report.panic_sites
        );
    }
    if report.diagnostics.is_empty() {
        println!(
            "everest-lint: clean ({} files scanned)",
            report.files_scanned
        );
    } else {
        println!(
            "everest-lint: {} finding(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        std::process::exit(1);
    }
}

/// Walks up from the current directory to a `Cargo.toml` declaring a
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
