//! `everest-lint` binary: `cargo lint` / CI entry point.
//!
//! Usage: `everest-lint [--check] [ROOT]`
//!
//! * With no `ROOT`, lints the workspace containing the current
//!   directory (walking up to the first `Cargo.toml` with a
//!   `[workspace]` table).
//! * `--check` is accepted for CI-invocation clarity; the exit code is
//!   the same either way: 0 when clean, 1 when there are findings, 2 on
//!   usage or I/O errors. There is deliberately no `--fix`.

#![deny(unsafe_code)]

use everest_lint::{lint_root, rules::panic_policy::PANIC_ALLOWLIST};
use std::path::PathBuf;

fn main() {
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => {}
            "--help" | "-h" => {
                eprintln!("usage: everest-lint [--check] [ROOT]");
                return;
            }
            _ if arg.starts_with('-') => {
                eprintln!("everest-lint: unknown flag `{arg}`");
                std::process::exit(2);
            }
            _ => root = Some(PathBuf::from(arg)),
        }
    }
    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("everest-lint: no workspace Cargo.toml found above the current dir");
                std::process::exit(2);
            }
        },
    };
    if !root.is_dir() {
        eprintln!("everest-lint: root `{}` is not a directory", root.display());
        std::process::exit(2);
    }

    let report = lint_root(&root);
    for d in &report.diagnostics {
        println!("{d}");
    }
    // Panic-policy burn-down: visible every run so the debt trends down.
    println!(
        "panic-policy burn-down: {} budgeted unwrap/expect sites across {} allowlisted files \
         (budget {}), plus {} per-site lint:allow justifications",
        report.panic_sites,
        PANIC_ALLOWLIST.len(),
        report.panic_budget,
        report.panic_site_allows,
    );
    if report.panic_sites < report.panic_budget {
        println!(
            "note: panic budget is slack by {} — tighten the ledger in \
             crates/lint/src/rules/panic_policy.rs to bank the progress",
            report.panic_budget - report.panic_sites
        );
    }
    if report.diagnostics.is_empty() {
        println!(
            "everest-lint: clean ({} files scanned)",
            report.files_scanned
        );
    } else {
        println!(
            "everest-lint: {} finding(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        std::process::exit(1);
    }
}

/// Walks up from the current directory to a `Cargo.toml` declaring a
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
