//! Workspace symbol index and call graph — the substrate for the
//! cross-function rule families (`lock-order-cycle`, `det-taint`,
//! `budget-discipline`).
//!
//! Built purely from the [`crate::lexer`] token streams, so the same
//! precision contract applies as everywhere in this crate: this is a
//! lexer, not a type checker. The graph reconstructs:
//!
//! * **fn definitions** — name, innermost `impl`/`trait` type, `pub`-ness,
//!   `#[cfg(test)]` membership, whether the signature declares a return
//!   type, and the token spans of the return type and body;
//! * **call sites** — `name(…)`, `path::name(…)`, and `.name(…)` method
//!   calls, attributed to the *innermost* enclosing definition (so a
//!   nested `impl Drop` inside a fn body never pollutes the outer fn);
//! * **resolution** — name-based: a bare or method call links to every
//!   workspace fn with that name (which handles trait dispatch for free);
//!   a `Type::name(…)` call whose qualifier is a known workspace
//!   `impl`/`trait` type links only within that type; an uppercase
//!   qualifier that is *not* a workspace type (e.g. `Vec::new`) resolves
//!   to nothing; a lowercase qualifier is treated as a module path and
//!   falls back to name-only resolution. `Self::name(…)` resolves within
//!   the caller's own type. A `self.name(…)` receiver prefers same-type
//!   candidates when any exist.
//!
//! What it deliberately does **not** resolve (documented in
//! `docs/LINTING.md`): closures-as-values, function pointers, turbofish
//! call syntax, macro-generated code, and the [`UNRESOLVED_NAMES`] set of
//! derive/std-trait glue names (`drop`, `clone`, `fmt`, …) where a
//! workspace definition and the ubiquitous std name collide — linking
//! those would wire every `drop(guard)` to every `impl Drop` in the
//! workspace. Rules built on this graph must prefer missing an exotic
//! construct over flagging a correct one.

use crate::lexer::Kind;
use crate::source::FileCtx;
use std::collections::{BTreeMap, BTreeSet};

/// One `fn` definition somewhere in the scanned workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Index into the `FileCtx` slice the graph was built from.
    pub file: usize,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Innermost `impl`/`trait` type name containing the def, when any.
    pub impl_type: Option<String>,
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Signature declares a return type (`-> …` after the params).
    pub has_ret: bool,
    /// Token range of the return type, `ret.0 == ret.1` when none.
    pub ret: (usize, usize),
    /// Token indices of the body `{` and `}`; `None` for trait decls.
    pub body: Option<(usize, usize)>,
}

/// One call expression, attributed to its innermost enclosing fn.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index into [`Graph::fns`] of the enclosing definition.
    pub caller: usize,
    /// Called name (last path segment / method name).
    pub callee: String,
    /// `Foo::bar(…)` → `Some("Foo")`; bare and method calls → `None`.
    pub qualifier: Option<String>,
    /// `.bar(…)` method-call syntax.
    pub is_method: bool,
    /// Receiver is literally `self` (only meaningful for method calls).
    pub self_recv: bool,
    /// Token index of the callee identifier.
    pub tok: usize,
    pub line: usize,
}

/// Fn names never linked through the graph: derive/std-trait glue where a
/// workspace definition and the ubiquitous std name collide. Resolving
/// these by name would create edges from every `drop(x)` / `a == b` /
/// `format!`-driven `fmt` call to unrelated workspace impls.
pub const UNRESOLVED_NAMES: &[&str] = &[
    "drop",
    "clone",
    "fmt",
    "default",
    "from",
    "into",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "next",
    "deref",
    "deref_mut",
    "borrow",
    "borrow_mut",
    "to_string",
    "as_ref",
    "as_mut",
    "index",
    "index_mut",
];

/// Keywords that look like `ident (` but are never calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "match", "return", "loop", "let", "mut", "ref", "move",
    "as", "fn", "impl", "trait", "struct", "enum", "union", "type", "const", "static", "use",
    "mod", "pub", "unsafe", "extern", "where", "dyn", "box", "break", "continue", "async", "await",
    "yield",
];

/// The workspace call graph plus symbol index.
pub struct Graph<'a> {
    pub ctxs: &'a [FileCtx],
    pub fns: Vec<FnDef>,
    pub calls: Vec<CallSite>,
    /// Fn name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Every `impl`/`trait` type name seen (for qualifier resolution).
    pub impl_types: BTreeSet<String>,
    /// Per fn: `(call index, resolved callee fn index)` edges, in token
    /// order, deduplicated per `(call, callee)` pair.
    pub callees: Vec<Vec<(usize, usize)>>,
    /// Per fn: caller fn indices, deduplicated.
    pub callers: Vec<Vec<usize>>,
}

impl<'a> Graph<'a> {
    pub fn build(ctxs: &'a [FileCtx]) -> Graph<'a> {
        let mut g = Graph {
            ctxs,
            fns: Vec::new(),
            calls: Vec::new(),
            by_name: BTreeMap::new(),
            impl_types: BTreeSet::new(),
            callees: Vec::new(),
            callers: Vec::new(),
        };
        for (fi, ctx) in ctxs.iter().enumerate() {
            g.collect_defs(fi, ctx);
        }
        for (i, d) in g.fns.iter().enumerate() {
            g.by_name.entry(d.name.clone()).or_default().push(i);
            if let Some(t) = &d.impl_type {
                g.impl_types.insert(t.clone());
            }
        }
        for (fi, ctx) in ctxs.iter().enumerate() {
            g.collect_calls(fi, ctx);
        }
        g.callees = vec![Vec::new(); g.fns.len()];
        g.callers = vec![Vec::new(); g.fns.len()];
        for (ci, call) in g.calls.iter().enumerate() {
            for target in g.resolve(call) {
                g.callees[call.caller].push((ci, target));
                if !g.callers[target].contains(&call.caller) {
                    g.callers[target].push(call.caller);
                }
            }
        }
        g
    }

    /// The `FileCtx` a definition lives in.
    pub fn ctx(&self, def: usize) -> &FileCtx {
        &self.ctxs[self.fns[def].file]
    }

    /// Resolution targets for one call site (see the module docs for the
    /// name-based resolution contract).
    pub fn resolve(&self, call: &CallSite) -> Vec<usize> {
        if UNRESOLVED_NAMES.contains(&call.callee.as_str()) {
            return Vec::new();
        }
        let Some(all) = self.by_name.get(&call.callee) else {
            return Vec::new();
        };
        // Body-less trait declarations are never call targets: dispatch
        // goes to the bodied impls (trait *default* methods have bodies
        // and stay in the set).
        let cands: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| self.fns[i].body.is_some())
            .collect();
        if cands.is_empty() {
            return Vec::new();
        }
        let same_type = |idx: usize, ty: &Option<String>| -> bool {
            ty.is_some() && self.fns[idx].impl_type == *ty
        };
        match call.qualifier.as_deref() {
            Some("Self") => {
                let ty = self.fns[call.caller].impl_type.clone();
                cands.into_iter().filter(|&i| same_type(i, &ty)).collect()
            }
            Some(q) if self.impl_types.contains(q) => {
                let ty = Some(q.to_string());
                cands.into_iter().filter(|&i| same_type(i, &ty)).collect()
            }
            // An uppercase qualifier that is not a workspace type is an
            // external type (`Vec::new`, `Instant::now`): no edge.
            Some(q) if q.starts_with(|c: char| c.is_ascii_uppercase()) => Vec::new(),
            // Lowercase qualifier: a module path — name-only resolution.
            _ => {
                if call.is_method && call.self_recv {
                    // `self.name(…)`: prefer same-type candidates when any
                    // exist (trait default methods keep the full set).
                    let ty = self.fns[call.caller].impl_type.clone();
                    let narrowed: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&i| same_type(i, &ty))
                        .collect();
                    if !narrowed.is_empty() {
                        return narrowed;
                    }
                }
                cands
            }
        }
    }

    /// Token ranges belonging to `def` itself: its signature and body minus
    /// any nested definitions (an `fn` or `impl` declared inside the body).
    pub fn own_ranges(&self, def: usize) -> Vec<(usize, usize)> {
        let d = &self.fns[def];
        let Some((open, close)) = d.body else {
            return vec![(d.kw, d.kw)];
        };
        // Nested defs in the same file whose body lies strictly inside.
        let mut holes: Vec<(usize, usize)> = self
            .fns
            .iter()
            .filter(|n| n.file == d.file)
            .filter_map(|n| n.body.map(|b| (n.kw, b.1)))
            .filter(|&(s, e)| s > open && e < close)
            .collect();
        holes.sort_unstable();
        let mut out = Vec::new();
        let mut cur = d.kw;
        for (s, e) in holes {
            if s > cur {
                out.push((cur, s - 1));
            }
            cur = cur.max(e + 1);
        }
        if cur <= close {
            out.push((cur, close));
        }
        out
    }

    /// Whether any of `def`'s own (non-nested) tokens satisfies `pred`.
    pub fn own_tokens_any(&self, def: usize, pred: impl Fn(usize) -> bool) -> bool {
        self.own_ranges(def)
            .iter()
            .any(|&(s, e)| (s..=e).any(&pred))
    }

    /// Innermost definition in file `fi` whose span contains token `i`.
    fn innermost_def(&self, fi: usize, i: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (di, d) in self.fns.iter().enumerate() {
            if d.file != fi {
                continue;
            }
            let Some((_, close)) = d.body else { continue };
            if d.kw <= i && i <= close {
                match best {
                    Some(b) if self.fns[b].kw >= d.kw => {}
                    _ => best = Some(di),
                }
            }
        }
        best
    }

    fn collect_defs(&mut self, fi: usize, ctx: &FileCtx) {
        // `impl`/`trait` regions: (body span, type name).
        let mut regions: Vec<((usize, usize), String)> = Vec::new();
        let mut i = 0;
        while i < ctx.toks.len() {
            let t = &ctx.toks[i];
            if t.is_ident("impl") || t.is_ident("trait") {
                if let Some((span, name)) = impl_region(ctx, i) {
                    regions.push((span, name));
                    // Do not skip the body: nested impls inside fns (e.g.
                    // an `impl Drop` guard) must be seen too.
                }
            }
            i += 1;
        }

        let mut i = 0;
        while i < ctx.toks.len() {
            if !ctx.toks[i].is_ident("fn") {
                i += 1;
                continue;
            }
            let Some(name_i) = ctx.next_code(i + 1) else {
                break;
            };
            if ctx.toks[name_i].kind != Kind::Ident {
                // `fn(` pointer type or similar — not a definition.
                i += 1;
                continue;
            }
            let name = ctx.toks[name_i].text.clone();
            let sig = parse_signature(ctx, name_i);
            let impl_type = regions
                .iter()
                .filter(|((s, e), _)| *s <= i && i <= *e)
                .max_by_key(|((s, _), _)| *s)
                .map(|(_, n)| n.clone());
            self.fns.push(FnDef {
                name,
                file: fi,
                line: ctx.toks[i].line,
                kw: i,
                impl_type,
                is_pub: is_pub_fn(ctx, i),
                is_test: ctx.in_test(ctx.toks[i].line),
                has_ret: sig.has_ret,
                ret: sig.ret,
                body: sig.body,
            });
            i = name_i + 1;
        }
    }

    fn collect_calls(&mut self, fi: usize, ctx: &FileCtx) {
        for i in 0..ctx.toks.len() {
            let t = &ctx.toks[i];
            if t.kind != Kind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                continue;
            }
            // Callee ident must be directly followed by `(` (macros are
            // `name!(…)` and fall out here; turbofish is unresolved).
            let Some(open) = ctx.next_code(i + 1).filter(|&j| ctx.toks[j].is_punct('(')) else {
                continue;
            };
            let _ = open;
            let Some(prev) = i.checked_sub(1).and_then(|p| ctx.prev_code(p)) else {
                continue;
            };
            // A definition, not a call.
            if ctx.toks[prev].is_ident("fn") {
                continue;
            }
            let Some(caller) = self.innermost_def(fi, i) else {
                continue; // call in const/static initializer — unattributed
            };
            let (qualifier, is_method, self_recv) = classify_prefix(ctx, i, prev);
            self.calls.push(CallSite {
                caller,
                callee: t.text.clone(),
                qualifier,
                is_method,
                self_recv,
                tok: i,
                line: t.line,
            });
        }
    }
}

/// Classifies the tokens before a callee ident: path qualifier
/// (`Foo :: name`), method call (`. name`), or bare call.
fn classify_prefix(ctx: &FileCtx, _callee: usize, prev: usize) -> (Option<String>, bool, bool) {
    if ctx.toks[prev].is_punct('.') {
        let self_recv = prev
            .checked_sub(1)
            .and_then(|p| ctx.prev_code(p))
            .is_some_and(|p| ctx.toks[p].is_ident("self"));
        return (None, true, self_recv);
    }
    // `Qual :: name` — two ':' then the qualifying segment.
    if ctx.toks[prev].is_punct(':') {
        let q = prev
            .checked_sub(1)
            .and_then(|p| ctx.prev_code(p))
            .filter(|&p| ctx.toks[p].is_punct(':'))
            .and_then(|p| p.checked_sub(1))
            .and_then(|p| ctx.prev_code(p))
            .filter(|&p| ctx.toks[p].kind == Kind::Ident)
            .map(|p| ctx.toks[p].text.clone());
        return (q, false, false);
    }
    (None, false, false)
}

/// `pub`-ness of the fn whose `fn` keyword is at `kw`: walk back over the
/// item-header tokens (`unsafe`, `const`, `extern "C"`, `async`,
/// visibility parens) looking for `pub`.
fn is_pub_fn(ctx: &FileCtx, kw: usize) -> bool {
    let mut i = kw;
    for _ in 0..8 {
        let Some(p) = i.checked_sub(1).and_then(|p| ctx.prev_code(p)) else {
            return false;
        };
        let t = &ctx.toks[p];
        if t.is_ident("pub") {
            return true;
        }
        let header = matches!(t.kind, Kind::Str)
            || t.is_punct('(')
            || t.is_punct(')')
            || (t.kind == Kind::Ident
                && matches!(
                    t.text.as_str(),
                    "unsafe" | "const" | "extern" | "async" | "crate" | "super" | "self" | "in"
                ));
        if !header {
            return false;
        }
        i = p;
    }
    false
}

struct Signature {
    has_ret: bool,
    ret: (usize, usize),
    body: Option<(usize, usize)>,
}

/// Parses the signature following the fn name at `name_i`: skips the
/// generic parameter list (angle matching that ignores `->`-closed `>` and
/// paren groups, so `<F: Fn(u32) -> bool>` parses), finds the parameter
/// parens, then the optional `-> …` return type, then the body braces or
/// the trait-declaration `;`.
fn parse_signature(ctx: &FileCtx, name_i: usize) -> Signature {
    let none = Signature {
        has_ret: false,
        ret: (name_i, name_i),
        body: None,
    };
    let Some(mut i) = ctx.next_code(name_i + 1) else {
        return none;
    };
    if ctx.toks[i].is_punct('<') {
        let close = matching_angle(ctx, i);
        let Some(n) = ctx.next_code(close + 1) else {
            return none;
        };
        i = n;
    }
    if !ctx.toks[i].is_punct('(') {
        return none;
    }
    let params_close = matching_paren(ctx, i);
    let Some(after) = ctx.next_code(params_close + 1) else {
        return none;
    };
    let mut has_ret = false;
    let mut ret = (after, after);
    let mut j = after;
    if ctx.toks[j].is_punct('-')
        && ctx
            .next_code(j + 1)
            .is_some_and(|k| ctx.toks[k].is_punct('>'))
    {
        has_ret = true;
        let gt = ctx.next_code(j + 1).expect("checked above");
        let Some(start) = ctx.next_code(gt + 1) else {
            return Signature {
                has_ret,
                ret: (gt, gt),
                body: None,
            };
        };
        // Return type runs to the body `{`, a `where`, or the decl `;`.
        let mut k = start;
        while let Some(n) = ctx.next_code(k) {
            if ctx.toks[n].is_punct('{')
                || ctx.toks[n].is_punct(';')
                || ctx.toks[n].is_ident("where")
            {
                break;
            }
            k = n + 1;
        }
        ret = (start, k);
        j = k;
    }
    // Find the body `{` (or `;` for a body-less trait declaration).
    let mut k = j;
    let body = loop {
        let Some(n) = ctx.next_code(k) else {
            break None;
        };
        if ctx.toks[n].is_punct('{') {
            break Some((n, ctx.matching_brace(n)));
        }
        if ctx.toks[n].is_punct(';') {
            break None;
        }
        k = n + 1;
    };
    Signature { has_ret, ret, body }
}

/// Matching `>` for the `<` at `open`, skipping paren groups and treating
/// `->`'s `>` as non-closing (so `Fn(u32) -> bool` inside bounds parses).
fn matching_angle(ctx: &FileCtx, open: usize) -> usize {
    let mut depth = 0usize;
    let mut paren = 0usize;
    let mut i = open;
    while i < ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if paren > 0 {
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            }
        } else if t.is_punct('(') {
            paren = 1;
        } else if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            let after_dash = i
                .checked_sub(1)
                .and_then(|p| ctx.prev_code(p))
                .is_some_and(|p| ctx.toks[p].is_punct('-'));
            if !after_dash {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        i += 1;
    }
    ctx.toks.len().saturating_sub(1)
}

/// Matching `)` for the `(` at `open`.
fn matching_paren(ctx: &FileCtx, open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in ctx.toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    ctx.toks.len().saturating_sub(1)
}

/// The body span and subject type of the `impl`/`trait` at token `kw`.
/// `impl Trait for Type { … }` yields `Type`; `impl Type { … }` and
/// `trait Name { … }` yield the single name; path types yield the last
/// segment before any generics.
fn impl_region(ctx: &FileCtx, kw: usize) -> Option<((usize, usize), String)> {
    // Body `{` — the header (generics, bounds, where clauses) is brace-free.
    let mut j = kw + 1;
    let open = loop {
        let n = ctx.next_code(j)?;
        if ctx.toks[n].is_punct('{') {
            break n;
        }
        if ctx.toks[n].is_punct(';') {
            return None; // `impl Trait for Type;` — nothing inside
        }
        j = n + 1;
    };
    let close = ctx.matching_brace(open);
    let header: Vec<usize> = (kw + 1..open)
        .filter(|&i| !ctx.toks[i].is_comment())
        .collect();
    // Subject starts after `for` when present, else after the generics.
    let start = header
        .iter()
        .position(|&i| ctx.toks[i].is_ident("for"))
        .map(|p| p + 1)
        .unwrap_or_else(|| {
            if header.first().is_some_and(|&i| ctx.toks[i].is_punct('<')) {
                let close_g = matching_angle(ctx, header[0]);
                header.iter().position(|&i| i > close_g).unwrap_or(0)
            } else {
                0
            }
        });
    // Last path segment: idents joined by `::`, stopping at `<` or the end.
    let mut name = None;
    let mut k = start;
    while k < header.len() {
        let t = &ctx.toks[header[k]];
        if t.kind == Kind::Ident && !matches!(t.text.as_str(), "dyn" | "mut") {
            name = Some(t.text.clone());
            k += 1;
        } else if t.is_punct(':') || t.is_punct('&') || t.kind == Kind::Lifetime {
            k += 1;
        } else {
            break;
        }
    }
    name.map(|n| ((kw, close), n))
}
