//! `cargo lint --json` output and the `lint_baseline.json` ratchet.
//!
//! The repo commits a baseline of known findings aggregated by
//! `(file, rule)` count. A ratchet run (`--baseline <path>`) fails on:
//!
//! * a **new** finding — a `(file, rule)` pair whose current count
//!   exceeds its baselined count (including pairs absent from the
//!   baseline), and
//! * a **stale** baseline — a baselined pair whose current count is
//!   lower (the fix must be banked by regenerating the baseline with
//!   `--update-baseline`, so the ratchet can never loosen silently).
//!
//! Counts rather than line numbers keep the baseline stable under
//! unrelated edits above a finding; a finding moving between files or
//! changing rule still trips the ratchet.
//!
//! Everything here is hand-rolled (the build env is offline, the crate
//! has no deps): a minimal JSON value parser — strict enough for the
//! two documents this tool itself emits — and deterministic renderers.
//! `--json` output is sorted by `(file, line, rule)` and
//! byte-reproducible for a given workspace state.

use crate::{Diagnostic, Report};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema version stamped into both documents.
pub const VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape(s, &mut out);
    out.push('"');
    out
}

/// The `--json` report document (see `docs/LINTING.md` for the schema).
pub fn render_report(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": {VERSION},");
    out.push_str("  \"summary\": {\n");
    let _ = writeln!(out, "    \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "    \"findings\": {},", report.diagnostics.len());
    let _ = writeln!(out, "    \"panic_sites\": {},", report.panic_sites);
    let _ = writeln!(out, "    \"panic_budget\": {}", report.panic_budget);
    out.push_str("  },\n");
    out.push_str("  \"findings\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            quoted(&d.file),
            d.line,
            quoted(d.rule),
            quoted(&d.message)
        );
    }
    out.push_str(if report.diagnostics.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    out.push_str("}\n");
    out
}

/// Aggregates diagnostics into baseline form: `(file, rule) → count`.
pub fn aggregate(diagnostics: &[Diagnostic]) -> BTreeMap<(String, String), usize> {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in diagnostics {
        *counts
            .entry((d.file.clone(), d.rule.to_string()))
            .or_insert(0) += 1;
    }
    counts
}

/// The committed `lint_baseline.json` document.
pub fn render_baseline(diagnostics: &[Diagnostic]) -> String {
    let counts = aggregate(diagnostics);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": {VERSION},");
    out.push_str("  \"findings\": [");
    for (i, ((file, rule), count)) in counts.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"file\": {}, \"rule\": {}, \"count\": {}}}",
            quoted(file),
            quoted(rule),
            count
        );
    }
    out.push_str(if counts.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parsed baseline: `(file, rule) → count`.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    pub entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let (value, rest) = Json::parse(text.trim())?;
        if !rest.trim().is_empty() {
            return Err("trailing data after JSON document".into());
        }
        let Json::Object(fields) = value else {
            return Err("baseline root must be an object".into());
        };
        let version = fields
            .iter()
            .find(|(k, _)| k == "version")
            .ok_or("baseline missing `version`")?;
        match version.1 {
            Json::Number(v) if v == VERSION => {}
            _ => return Err(format!("unsupported baseline version (want {VERSION})")),
        }
        let findings = fields
            .iter()
            .find(|(k, _)| k == "findings")
            .ok_or("baseline missing `findings`")?;
        let Json::Array(items) = &findings.1 else {
            return Err("`findings` must be an array".into());
        };
        let mut entries = BTreeMap::new();
        for item in items {
            let Json::Object(f) = item else {
                return Err("each finding must be an object".into());
            };
            let get = |name: &str| f.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            let (Some(Json::String(file)), Some(Json::String(rule)), Some(Json::Number(count))) =
                (get("file"), get("rule"), get("count"))
            else {
                return Err("finding needs string `file`, string `rule`, number `count`".into());
            };
            let prev = entries.insert((file.clone(), rule.clone()), *count as usize);
            if prev.is_some() {
                return Err(format!("duplicate baseline entry for {file} / {rule}"));
            }
        }
        Ok(Baseline { entries })
    }
}

/// One ratchet violation, pre-formatted for display.
pub fn diff(current: &[Diagnostic], baseline: &Baseline) -> Vec<String> {
    let counts = aggregate(current);
    let mut problems = Vec::new();
    for ((file, rule), &n) in &counts {
        let base = baseline
            .entries
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if n > base {
            problems.push(format!(
                "new finding: {file} [{rule}] — {n} now vs {base} baselined"
            ));
        }
    }
    for ((file, rule), &base) in &baseline.entries {
        let n = counts
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if n < base {
            problems.push(format!(
                "stale baseline: {file} [{rule}] — {n} now vs {base} baselined; \
                 regenerate with --update-baseline to bank the fix"
            ));
        }
    }
    problems.sort();
    problems
}

/// Minimal JSON value — just what the two documents above need.
#[derive(Debug, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(u64),
    Bool(bool),
    Null,
}

impl Json {
    /// Parses one value off the front of `s`; returns it and the rest.
    fn parse(s: &str) -> Result<(Json, &str), String> {
        let s = s.trim_start();
        let mut chars = s.chars();
        match chars.next() {
            Some('{') => {
                let mut rest = s[1..].trim_start();
                let mut fields = Vec::new();
                if let Some(r) = rest.strip_prefix('}') {
                    return Ok((Json::Object(fields), r));
                }
                loop {
                    let (key, r) = Json::parse(rest)?;
                    let Json::String(key) = key else {
                        return Err("object key must be a string".into());
                    };
                    let r = r
                        .trim_start()
                        .strip_prefix(':')
                        .ok_or("expected `:` after object key")?;
                    let (val, r) = Json::parse(r)?;
                    fields.push((key, val));
                    let r = r.trim_start();
                    if let Some(r) = r.strip_prefix(',') {
                        rest = r;
                    } else if let Some(r) = r.strip_prefix('}') {
                        return Ok((Json::Object(fields), r));
                    } else {
                        return Err("expected `,` or `}` in object".into());
                    }
                }
            }
            Some('[') => {
                let mut rest = s[1..].trim_start();
                let mut items = Vec::new();
                if let Some(r) = rest.strip_prefix(']') {
                    return Ok((Json::Array(items), r));
                }
                loop {
                    let (val, r) = Json::parse(rest)?;
                    items.push(val);
                    let r = r.trim_start();
                    if let Some(r) = r.strip_prefix(',') {
                        rest = r;
                    } else if let Some(r) = r.strip_prefix(']') {
                        return Ok((Json::Array(items), r));
                    } else {
                        return Err("expected `,` or `]` in array".into());
                    }
                }
            }
            Some('"') => {
                let mut out = String::new();
                let mut iter = s.char_indices().skip(1);
                while let Some((i, c)) = iter.next() {
                    match c {
                        '"' => return Ok((Json::String(out), &s[i + 1..])),
                        '\\' => match iter.next().map(|(_, e)| e) {
                            Some('"') => out.push('"'),
                            Some('\\') => out.push('\\'),
                            Some('/') => out.push('/'),
                            Some('n') => out.push('\n'),
                            Some('r') => out.push('\r'),
                            Some('t') => out.push('\t'),
                            Some('u') => {
                                let mut code = 0u32;
                                for _ in 0..4 {
                                    let d = iter
                                        .next()
                                        .and_then(|(_, h)| h.to_digit(16))
                                        .ok_or("bad \\u escape")?;
                                    code = code * 16 + d;
                                }
                                out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            }
                            _ => return Err("unsupported string escape".into()),
                        },
                        c => out.push(c),
                    }
                }
                Err("unterminated string".into())
            }
            Some(c) if c.is_ascii_digit() => {
                let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
                let n: u64 = s[..end].parse().map_err(|_| "bad number".to_string())?;
                Ok((Json::Number(n), &s[end..]))
            }
            _ if s.starts_with("true") => Ok((Json::Bool(true), &s[4..])),
            _ if s.starts_with("false") => Ok((Json::Bool(false), &s[5..])),
            _ if s.starts_with("null") => Ok((Json::Null, &s[4..])),
            _ => Err("unexpected JSON token".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: usize, rule: &'static str) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message: format!("msg with \"quotes\" and \\ backslash at {line}"),
        }
    }

    #[test]
    fn baseline_roundtrip() {
        let diags = vec![
            diag("a.rs", 3, "det-taint"),
            diag("a.rs", 9, "det-taint"),
            diag("b.rs", 1, "lock-order-cycle"),
        ];
        let text = render_baseline(&diags);
        let parsed = Baseline::parse(&text).expect("parses");
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.entries[&("a.rs".into(), "det-taint".into())], 2);
        assert_eq!(
            parsed.entries[&("b.rs".into(), "lock-order-cycle".into())],
            1
        );
        assert!(diff(&diags, &parsed).is_empty());
    }

    #[test]
    fn empty_baseline_roundtrip() {
        let text = render_baseline(&[]);
        let parsed = Baseline::parse(&text).expect("parses");
        assert!(parsed.entries.is_empty());
        assert!(diff(&[], &parsed).is_empty());
    }

    #[test]
    fn new_finding_trips_ratchet() {
        let baseline =
            Baseline::parse(&render_baseline(&[diag("a.rs", 3, "det-taint")])).expect("parses");
        let now = vec![diag("a.rs", 3, "det-taint"), diag("c.rs", 7, "det-taint")];
        let problems = diff(&now, &baseline);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("new finding"), "{problems:?}");
        assert!(problems[0].contains("c.rs"), "{problems:?}");
    }

    #[test]
    fn count_increase_trips_ratchet() {
        let baseline =
            Baseline::parse(&render_baseline(&[diag("a.rs", 3, "det-taint")])).expect("parses");
        let now = vec![diag("a.rs", 3, "det-taint"), diag("a.rs", 8, "det-taint")];
        let problems = diff(&now, &baseline);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("2 now vs 1 baselined"), "{problems:?}");
    }

    #[test]
    fn stale_baseline_trips_ratchet() {
        let baseline =
            Baseline::parse(&render_baseline(&[diag("a.rs", 3, "det-taint")])).expect("parses");
        let problems = diff(&[], &baseline);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("stale baseline"), "{problems:?}");
    }

    #[test]
    fn report_json_is_stable_and_escaped() {
        let report = Report {
            diagnostics: vec![diag("a.rs", 3, "det-taint")],
            files_scanned: 10,
            panic_sites: 2,
            panic_budget: 5,
            panic_site_allows: 2,
        };
        let a = render_report(&report);
        let b = render_report(&report);
        assert_eq!(a, b);
        assert!(a.contains("\"version\": 1"));
        assert!(a.contains("\\\"quotes\\\""));
        assert!(a.contains("\"files_scanned\": 10"));
        // The findings array must itself be valid JSON for the parser.
        let (v, rest) = Json::parse(&a).expect("report is valid JSON");
        assert!(rest.trim().is_empty());
        let Json::Object(fields) = v else {
            panic!("object")
        };
        assert!(fields.iter().any(|(k, _)| k == "findings"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"version\": 99, \"findings\": []}").is_err());
        assert!(Baseline::parse(
            "{\"version\": 1, \"findings\": [{\"file\": \"a\", \"rule\": \"r\", \"count\": 1}, \
             {\"file\": \"a\", \"rule\": \"r\", \"count\": 2}]}"
        )
        .is_err());
    }
}
