//! Query budgets, deadlines, cooperative cancellation, and the
//! termination status of a (possibly degraded) Top-K answer.
//!
//! The paper's stop rule (Eq. 1: clean until `p̂ ≥ thres`) assumes the
//! oracle may run forever. Under production constraints a query can also
//! end because it ran out of oracle calls, hit its simulated-seconds
//! deadline, was cancelled by its client, or because the oracle itself
//! went down. The probabilistic machinery makes all of those *principled*
//! exits: the current certain Top-K under the posterior is still an exact
//! anytime answer, just with an honest confidence below the requested
//! threshold. [`Termination`] records which exit was taken;
//! [`QueryBudget`] carries the limits into the Phase-2 loop.
//!
//! Budgets are charged to the **simulated clock** (oracle invocations and
//! their sim-seconds), never wall-clock, so a run under a budget is
//! byte-deterministic given the fault schedule.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation flag, checked between cleaning batches.
///
/// Cloning shares the flag: the serving layer keeps one half and hands
/// the other to the query, then flips it when the client disconnects.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the query's
    /// next between-batches check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Limits on one query's Phase-2 cleaning loop. The default is
/// unlimited — the paper's run-to-the-guarantee behaviour.
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    /// Cap on oracle cleanings (the `WITHIN <n> ORACLE CALLS` knob).
    pub max_oracle_calls: Option<usize>,
    /// Deadline in *simulated* seconds of oracle work (scoring cost plus
    /// fault/backoff overhead), checked between batches. Phase-1 time is
    /// not charged: the deadline governs the interactive cleaning loop.
    pub deadline_sim_seconds: Option<f64>,
    /// Cooperative cancellation, checked between batches.
    pub cancel: Option<CancelToken>,
}

impl QueryBudget {
    /// No limits (run to the confidence guarantee).
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// True when the attached [`CancelToken`] (if any) has fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }
}

/// Why a Phase-2 run stopped. Everything except [`Termination::Converged`]
/// is a *degraded* exit: the answer is still the exact certain Top-K
/// under the current posterior, with its honest achieved confidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The Eq.-1 stop rule fired: `p̂ ≥ thres` (or nothing was left
    /// uncertain).
    Converged,
    /// The oracle-call cap ran out.
    BudgetExhausted,
    /// The simulated-seconds deadline passed.
    Deadline,
    /// The client cancelled the query.
    Cancelled,
    /// The oracle failed and retries/breaker gave up.
    OracleDown,
}

impl Termination {
    /// Whether the answer is degraded (any exit but convergence).
    pub fn is_degraded(self) -> bool {
        self != Termination::Converged
    }

    /// Stable lower-case label (rendered answers, metrics, docs).
    pub fn as_str(self) -> &'static str {
        match self {
            Termination::Converged => "converged",
            Termination::BudgetExhausted => "budget-exhausted",
            Termination::Deadline => "deadline",
            Termination::Cancelled => "cancelled",
            Termination::OracleDown => "oracle-down",
        }
    }

    /// Stable wire code (the canonical answer encoding).
    pub fn code(self) -> u8 {
        match self {
            Termination::Converged => 1,
            Termination::BudgetExhausted => 2,
            Termination::Deadline => 3,
            Termination::Cancelled => 4,
            Termination::OracleDown => 5,
        }
    }

    /// Inverse of [`Termination::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => Termination::Converged,
            2 => Termination::BudgetExhausted,
            3 => Termination::Deadline,
            4 => Termination::Cancelled,
            5 => Termination::OracleDown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        let budget = QueryBudget {
            cancel: Some(b),
            ..QueryBudget::unlimited()
        };
        assert!(budget.is_cancelled());
        assert!(!QueryBudget::unlimited().is_cancelled());
    }

    #[test]
    fn termination_codes_round_trip() {
        for t in [
            Termination::Converged,
            Termination::BudgetExhausted,
            Termination::Deadline,
            Termination::Cancelled,
            Termination::OracleDown,
        ] {
            assert_eq!(Termination::from_code(t.code()), Some(t));
            assert_eq!(t.is_degraded(), t != Termination::Converged);
            assert!(!t.as_str().is_empty());
        }
        assert_eq!(Termination::from_code(0), None);
        assert_eq!(Termination::from_code(6), None);
    }
}
