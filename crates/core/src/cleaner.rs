//! Phase 2: Top-K processing via online, oracle-in-the-loop uncertain data
//! cleaning (§3.3, Figure 1 right).
//!
//! Starting from the Phase-1 uncertain relation, the cleaner repeatedly
//! (i) extracts the Top-K of the *certain* subset (certain-result
//! condition), (ii) evaluates its confidence `p̂` with `Topk-prob`, and
//! (iii) if `p̂ < thres`, asks `Select-candidate` for the most promising
//! batch of uncertain items and confirms their exact scores with the
//! oracle. Termination is guaranteed: cleaning strictly shrinks the
//! uncertain set and a fully-certain relation has confidence 1.

use crate::budget::{QueryBudget, Termination};
use crate::select::{CandidateSelector, SelectStats};
use crate::topkprob::{topk_prob, JointCdf};
use crate::xtuple::{ItemId, UncertainRelation};
use everest_models::OracleError;
use std::cmp::Reverse;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Resolves an item's exact score bucket (by running the expensive oracle).
///
/// Frame-level queries clean one frame per item; window queries sample a
/// fraction of the window's frames (§3.4). Implementations track their own
/// oracle-invocation counts for cost accounting.
pub trait CleaningOracle {
    /// Exact buckets for `items`, in order.
    fn clean_batch(&mut self, items: &[ItemId]) -> Vec<u32>;

    /// Fallible cleaning: the default wraps the infallible path and never
    /// fails. Adapters over a fallible [`everest_models::Oracle`] override
    /// it so oracle failures surface as [`Termination::OracleDown`]
    /// instead of panics.
    fn try_clean_batch(&mut self, items: &[ItemId]) -> Result<Vec<u32>, OracleError> {
        Ok(self.clean_batch(items))
    }

    /// Simulated seconds this oracle has consumed so far (scoring cost
    /// plus fault/backoff overhead). The cleaner's deadline check reads
    /// this between batches. Default: not accounted (deadlines never
    /// fire).
    fn sim_seconds_spent(&self) -> f64 {
        0.0
    }
}

/// A `CleaningOracle` backed by a closure (used by tests and simple setups).
pub struct FnCleaningOracle<F: FnMut(ItemId) -> u32>(pub F);

impl<F: FnMut(ItemId) -> u32> CleaningOracle for FnCleaningOracle<F> {
    fn clean_batch(&mut self, items: &[ItemId]) -> Vec<u32> {
        items.iter().map(|&i| (self.0)(i)).collect()
    }
}

/// Phase-2 configuration.
#[derive(Debug, Clone)]
pub struct CleanerConfig {
    /// Result size K (default 50, the paper's default query).
    pub k: usize,
    /// Probability threshold `thres` (default 0.9).
    pub thres: f64,
    /// Batch-inference size `b` (§3.5; the paper measures b = 8 on their GPU).
    pub batch_size: usize,
    /// ψ re-sort period for the first 100 iterations (§3.3.2; 10).
    pub resort_period: usize,
    /// Optional hard cap on cleanings (diagnostics only; `None` = run to
    /// the guarantee). A cap is enforced strictly — it bounds the
    /// bootstrap too, so a capped run may return *fewer than K* items
    /// (with `converged = false`).
    pub max_cleanings: Option<usize>,
    /// Query-level limits: oracle-call cap, simulated-seconds deadline,
    /// cooperative cancellation. Checked between cleaning batches; the
    /// default is unlimited. A call cap here and `max_cleanings` compose
    /// (the tighter one wins).
    pub budget: QueryBudget,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            k: 50,
            thres: 0.9,
            batch_size: 8,
            resort_period: 10,
            max_cleanings: None,
            budget: QueryBudget::unlimited(),
        }
    }
}

/// Result of a Phase-2 run.
#[derive(Debug, Clone)]
pub struct CleanOutcome {
    /// The Top-K item ids, ordered by (bucket desc, id asc). All certain.
    pub topk: Vec<ItemId>,
    /// Final confidence `p̂ = Pr(R̂ = R)` under PWS.
    pub confidence: f64,
    /// Select-clean iterations executed.
    pub iterations: usize,
    /// Items cleaned during Phase 2 (excludes items certain on entry).
    pub cleaned: usize,
    /// Whether the confidence target was met (equivalent to
    /// `termination == Termination::Converged`).
    pub converged: bool,
    /// Why the run stopped. Anything but `Converged` marks a *degraded*
    /// answer: still the exact certain Top-K under the posterior, with
    /// its honest achieved confidence.
    pub termination: Termination,
    /// Wall-clock time spent inside `Select-candidate`.
    pub select_time: Duration,
    /// Selector statistics (examined counts, resorts).
    pub select_stats: SelectStats,
}

/// Runs Phase 2 to completion.
///
/// Panics if the relation has fewer than `k` items.
pub fn run_cleaner(
    rel: &mut UncertainRelation,
    oracle: &mut dyn CleaningOracle,
    cfg: &CleanerConfig,
) -> CleanOutcome {
    assert!(cfg.k >= 1, "K must be at least 1");
    assert!(
        (0.0..=1.0).contains(&cfg.thres),
        "thres must be a probability"
    );
    assert!(cfg.batch_size >= 1);
    assert!(
        rel.len() >= cfg.k,
        "relation has {} items but K = {}",
        rel.len(),
        cfg.k
    );

    let mut h = JointCdf::build(rel);
    let mut selector = CandidateSelector::new(rel, cfg.resort_period);
    // Certain items ordered by (bucket desc, id asc).
    let mut certain: BTreeSet<(Reverse<u32>, ItemId)> = (0..rel.len())
        .filter_map(|id| rel.certain_bucket(id).map(|b| (Reverse(b), id)))
        .collect();

    let mut iterations = 0usize;
    let mut cleaned = 0usize;
    let mut select_time = Duration::ZERO;
    let max_bucket = rel.max_bucket();

    let term = loop {
        // Degradation checks run between batches, cheapest first:
        // cancellation, then the simulated-seconds deadline, then the
        // oracle-call budget (inside the branches below).
        if cfg.budget.is_cancelled() {
            break Termination::Cancelled;
        }
        if let Some(deadline) = cfg.budget.deadline_sim_seconds {
            if oracle.sim_seconds_spent() >= deadline {
                break Termination::Deadline;
            }
        }
        // Remaining cleaning budget: the tighter of `max_cleanings` and
        // the query budget's oracle-call cap (None = unlimited).
        let budget: Option<usize> = [cfg.max_cleanings, cfg.budget.max_oracle_calls]
            .into_iter()
            .flatten()
            .map(|m| m.saturating_sub(cleaned))
            .min();

        // Bootstrap: the certain-result condition needs ≥ K certain items.
        if certain.len() < cfg.k {
            if budget == Some(0) {
                // Out of budget before the answer even exists: return the
                // certain items we have (fewer than K), non-converged.
                break Termination::BudgetExhausted;
            }
            let mut by_mean: Vec<ItemId> = rel.uncertain_ids();
            by_mean.sort_by(|&a, &b| {
                rel.mean_bucket(b)
                    .partial_cmp(&rel.mean_bucket(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let need = (cfg.k - certain.len())
                .min(by_mean.len())
                .min(budget.unwrap_or(usize::MAX));
            assert!(need > 0, "cannot reach K certain items");
            let batch: Vec<ItemId> = by_mean.into_iter().take(need).collect();
            if clean_items(oracle, &batch, rel, &mut h, &mut certain).is_err() {
                break Termination::OracleDown;
            }
            cleaned += batch.len();
            iterations += 1;
            continue;
        }

        // Threshold frame k_i and penultimate frame p_i from the certain set.
        let top: Vec<(Reverse<u32>, ItemId)> = certain.iter().take(cfg.k).copied().collect();
        let s_k = top[cfg.k - 1].0 .0 as usize;
        let s_p = if cfg.k >= 2 {
            top[cfg.k - 2].0 .0 as usize
        } else {
            max_bucket
        };

        let confidence = topk_prob(&h, s_k);
        if confidence >= cfg.thres || h.members() == 0 {
            break Termination::Converged;
        }
        if budget == Some(0) {
            break Termination::BudgetExhausted;
        }

        // Select and clean the next batch (clamped to the budget).
        // lint:allow(det-wallclock): feeds the reported select_time stat
        // only; answer selection never branches on wall time.
        let started = Instant::now();
        let batch_size = cfg
            .batch_size
            .min(rel.num_uncertain())
            .min(budget.unwrap_or(usize::MAX));
        let batch = selector.select_batch(rel, &h, s_k, s_p, batch_size);
        select_time += started.elapsed();
        debug_assert!(!batch.is_empty());
        if clean_items(oracle, &batch, rel, &mut h, &mut certain).is_err() {
            break Termination::OracleDown;
        }
        cleaned += batch.len();
        iterations += 1;
    };

    // Assemble the (possibly degraded) anytime answer from the current
    // posterior: the certain Top-K with its honest achieved confidence.
    let top: Vec<(Reverse<u32>, ItemId)> = certain.iter().take(cfg.k).copied().collect();
    let confidence = if top.len() < cfg.k {
        0.0 // aborted mid-bootstrap: no certain-result answer exists yet
    } else if h.members() == 0 {
        1.0
    } else {
        topk_prob(&h, top[cfg.k - 1].0 .0 as usize)
    };
    CleanOutcome {
        topk: top.into_iter().map(|(_, id)| id).collect(),
        confidence,
        iterations,
        cleaned,
        converged: term == Termination::Converged,
        termination: term,
        select_time,
        select_stats: selector.stats,
    }
}

/// Confirms `items` with the oracle and retires their uncertainty. A
/// failed batch leaves the relation untouched (the oracle scored
/// nothing), so the caller can return a consistent degraded answer.
fn clean_items(
    oracle: &mut dyn CleaningOracle,
    items: &[ItemId],
    rel: &mut UncertainRelation,
    h: &mut JointCdf,
    certain: &mut BTreeSet<(Reverse<u32>, ItemId)>,
) -> Result<(), OracleError> {
    let buckets = oracle.try_clean_batch(items)?;
    for (&id, &b) in items.iter().zip(buckets.iter()) {
        let old = rel.clean(id, b);
        h.remove(&old);
        certain.insert((Reverse(b), id));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DiscreteDist;
    use crate::pws::topk_confidence_bruteforce;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a relation whose uncertain distributions are noisy views of
    /// `truth`, plus an oracle that reveals the truth.
    fn noisy_relation(
        truth: &[u32],
        max_bucket: usize,
        certain_seed: usize,
        seed: u64,
    ) -> (UncertainRelation, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rel = UncertainRelation::new(1.0, max_bucket);
        for (i, &t) in truth.iter().enumerate() {
            if i < certain_seed {
                rel.push_certain(t);
            } else {
                // triangular noise around the truth
                let mut masses = vec![0.0; max_bucket + 1];
                for db in -2i64..=2 {
                    let b = (t as i64 + db).clamp(0, max_bucket as i64) as usize;
                    masses[b] += match db.abs() {
                        0 => 0.4,
                        1 => 0.2,
                        _ => 0.1,
                    } * rng.gen_range(0.5..1.5);
                }
                rel.push_uncertain(DiscreteDist::from_masses(&masses));
            }
        }
        (rel, truth.to_vec())
    }

    #[test]
    fn converges_and_returns_certain_topk() {
        let mut rng = StdRng::seed_from_u64(1);
        let truth: Vec<u32> = (0..200).map(|_| rng.gen_range(0..=10)).collect();
        let (mut rel, t) = noisy_relation(&truth, 10, 20, 2);
        let mut oracle = FnCleaningOracle(|id| t[id]);
        let cfg = CleanerConfig {
            k: 5,
            thres: 0.9,
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        assert!(out.converged);
        assert!(out.confidence >= 0.9);
        assert_eq!(out.topk.len(), 5);
        // certain-result condition
        for &id in &out.topk {
            assert!(rel.is_certain(id), "answer item {id} is not certain");
        }
        // every answer's exact bucket must be ≥ the threshold bucket
        let buckets: Vec<u32> = out
            .topk
            .iter()
            .map(|&id| rel.certain_bucket(id).unwrap())
            .collect();
        assert!(
            buckets.windows(2).all(|w| w[0] >= w[1]),
            "not sorted: {buckets:?}"
        );
    }

    #[test]
    fn confidence_matches_bruteforce_on_small_relation() {
        let truth: Vec<u32> = vec![3, 1, 4, 0, 2, 4, 1, 3];
        let (mut rel, t) = noisy_relation(&truth, 4, 2, 3);
        let mut oracle = FnCleaningOracle(|id| t[id]);
        let cfg = CleanerConfig {
            k: 2,
            thres: 0.8,
            batch_size: 1,
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        let brute = topk_confidence_bruteforce(&rel, &out.topk, 2).unwrap();
        assert!(
            (out.confidence - brute).abs() < 1e-9,
            "fast {} vs brute {brute}",
            out.confidence
        );
        assert!(out.confidence >= 0.8);
    }

    #[test]
    fn answer_is_correct_when_proxy_is_wrong() {
        // Proxy says item 0 is probably low (but keeps calibrated tail
        // mass) and item 1 is high; truth is reversed. A high threshold
        // must force both to be cleaned, surfacing the true top item.
        // (If the proxy put *zero* mass on the truth, PWS would rightly be
        // confident in the wrong answer — the guarantee is conditional on
        // the proxy's distributions not assigning zero to reality.)
        let mut rel = UncertainRelation::new(1.0, 5);
        let truth: Vec<u32> = vec![5, 0, 1, 1, 2, 2, 3, 1, 0, 0];
        for (i, &t) in truth.iter().enumerate() {
            if i < 2 {
                let masses = if i == 0 {
                    vec![0.70, 0.20, 0.05, 0.03, 0.01, 0.01]
                } else {
                    vec![0.01, 0.01, 0.03, 0.05, 0.30, 0.60]
                };
                rel.push_uncertain(DiscreteDist::from_masses(&masses));
            } else {
                rel.push_certain(t);
            }
        }
        let mut oracle = FnCleaningOracle(|id| truth[id]);
        let cfg = CleanerConfig {
            k: 1,
            thres: 0.99,
            batch_size: 1,
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        assert!(out.converged);
        // With thres = 0.99 the misleading pair must get cleaned and the
        // true top item (0, bucket 5) must win.
        assert_eq!(out.topk, vec![0]);
        assert_eq!(out.confidence, 1.0);
    }

    #[test]
    fn all_certain_relation_returns_immediately() {
        let mut rel = UncertainRelation::new(1.0, 5);
        for b in [5u32, 3, 4, 1, 0] {
            rel.push_certain(b);
        }
        let mut oracle = FnCleaningOracle(|_| panic!("oracle must not be called"));
        let cfg = CleanerConfig {
            k: 2,
            thres: 0.99,
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        assert_eq!(out.cleaned, 0);
        assert_eq!(out.confidence, 1.0);
        assert_eq!(out.topk, vec![0, 2]); // buckets 5 and 4
    }

    #[test]
    fn thres_zero_stops_after_bootstrap() {
        let truth: Vec<u32> = (0..50).map(|i| (i % 7) as u32).collect();
        let (mut rel, t) = noisy_relation(&truth, 6, 0, 5);
        let mut oracle = FnCleaningOracle(|id| t[id]);
        let cfg = CleanerConfig {
            k: 3,
            thres: 0.0,
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        // Needs K certain items, then any confidence passes.
        assert_eq!(out.cleaned, 3);
        assert!(out.converged);
    }

    #[test]
    fn max_cleanings_caps_work() {
        let truth: Vec<u32> = (0..300).map(|i| (i % 11) as u32).collect();
        let (mut rel, t) = noisy_relation(&truth, 10, 20, 6);
        let mut oracle = FnCleaningOracle(|id| t[id]);
        let cfg = CleanerConfig {
            k: 5,
            thres: 0.9999,
            max_cleanings: Some(10),
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        assert!(out.cleaned <= 10 + cfg.batch_size);
        if !out.converged {
            assert!(out.confidence < 0.9999);
        }
    }

    #[test]
    fn higher_threshold_cleans_more() {
        let mut rng = StdRng::seed_from_u64(7);
        let truth: Vec<u32> = (0..400).map(|_| rng.gen_range(0..=12)).collect();
        let run = |thres: f64| {
            let (mut rel, t) = noisy_relation(&truth, 12, 30, 8);
            let mut oracle = FnCleaningOracle(|id| t[id]);
            let cfg = CleanerConfig {
                k: 10,
                thres,
                ..Default::default()
            };
            run_cleaner(&mut rel, &mut oracle, &cfg).cleaned
        };
        let low = run(0.5);
        let high = run(0.99);
        assert!(
            high >= low,
            "thres 0.99 cleaned {high} < thres 0.5 cleaned {low}"
        );
    }

    #[test]
    fn termination_is_converged_on_normal_runs() {
        let truth: Vec<u32> = (0..50).map(|i| (i % 7) as u32).collect();
        let (mut rel, t) = noisy_relation(&truth, 6, 10, 11);
        let mut oracle = FnCleaningOracle(|id| t[id]);
        let out = run_cleaner(
            &mut rel,
            &mut oracle,
            &CleanerConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert_eq!(out.termination, Termination::Converged);
        assert!(out.converged);
        assert!(!out.termination.is_degraded());
    }

    #[test]
    fn query_budget_cap_reports_budget_exhausted() {
        let truth: Vec<u32> = (0..300).map(|i| (i % 11) as u32).collect();
        let (mut rel, t) = noisy_relation(&truth, 10, 20, 12);
        let mut oracle = FnCleaningOracle(|id| t[id]);
        let cfg = CleanerConfig {
            k: 5,
            thres: 0.99999,
            batch_size: 1,
            budget: QueryBudget {
                max_oracle_calls: Some(3),
                ..QueryBudget::unlimited()
            },
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        assert_eq!(out.termination, Termination::BudgetExhausted);
        assert!(!out.converged);
        assert_eq!(out.cleaned, 3);
        assert_eq!(out.topk.len(), 5, "20 certain items exist on entry");
        assert!(out.confidence < 0.99999);
    }

    #[test]
    fn cancelled_token_stops_before_cleaning() {
        let truth: Vec<u32> = (0..100).map(|i| (i % 9) as u32).collect();
        let (mut rel, t) = noisy_relation(&truth, 8, 10, 13);
        let mut oracle = FnCleaningOracle(|id| t[id]);
        let token = crate::budget::CancelToken::new();
        token.cancel();
        let cfg = CleanerConfig {
            k: 4,
            budget: QueryBudget {
                cancel: Some(token),
                ..QueryBudget::unlimited()
            },
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        assert_eq!(out.termination, Termination::Cancelled);
        assert_eq!(out.cleaned, 0);
        assert!(!out.converged);
    }

    /// An oracle charging 0.1 simulated seconds per cleaning.
    struct CostedOracle<'a> {
        truth: &'a [u32],
        spent: f64,
    }

    impl CleaningOracle for CostedOracle<'_> {
        fn clean_batch(&mut self, items: &[ItemId]) -> Vec<u32> {
            self.spent += items.len() as f64 * 0.1;
            items.iter().map(|&i| self.truth[i]).collect()
        }

        fn sim_seconds_spent(&self) -> f64 {
            self.spent
        }
    }

    #[test]
    fn deadline_is_simulated_seconds_not_wall_clock() {
        let truth: Vec<u32> = (0..200).map(|i| (i % 13) as u32).collect();
        let (mut rel, t) = noisy_relation(&truth, 12, 30, 14);
        let mut oracle = CostedOracle {
            truth: &t,
            spent: 0.0,
        };
        let cfg = CleanerConfig {
            k: 5,
            thres: 0.99999,
            batch_size: 1,
            budget: QueryBudget {
                deadline_sim_seconds: Some(0.35),
                ..QueryBudget::unlimited()
            },
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        if out.termination == Termination::Deadline {
            // Checked between batches: at most one batch overshoots.
            assert!(oracle.spent < 0.35 + 0.1 + 1e-9);
            assert!(!out.converged);
        } else {
            assert_eq!(out.termination, Termination::Converged);
        }
    }

    /// An oracle that dies after `live` successful batches.
    struct DyingOracle<'a> {
        truth: &'a [u32],
        live: usize,
    }

    impl CleaningOracle for DyingOracle<'_> {
        fn clean_batch(&mut self, items: &[ItemId]) -> Vec<u32> {
            items.iter().map(|&i| self.truth[i]).collect()
        }

        fn try_clean_batch(&mut self, items: &[ItemId]) -> Result<Vec<u32>, OracleError> {
            if self.live == 0 {
                return Err(OracleError::Transient("oracle died"));
            }
            self.live -= 1;
            Ok(self.clean_batch(items))
        }
    }

    #[test]
    fn oracle_failure_degrades_to_oracle_down() {
        let truth: Vec<u32> = (0..200).map(|i| (i % 13) as u32).collect();
        let (mut rel, t) = noisy_relation(&truth, 12, 30, 15);
        let mut oracle = DyingOracle { truth: &t, live: 2 };
        let cfg = CleanerConfig {
            k: 5,
            thres: 0.99999,
            batch_size: 1,
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        assert_eq!(out.termination, Termination::OracleDown);
        assert!(!out.converged);
        assert_eq!(out.cleaned, 2);
        assert_eq!(out.topk.len(), 5);
        // The degraded answer is still entirely certain.
        for &id in &out.topk {
            assert!(rel.is_certain(id));
        }
    }

    #[test]
    fn degraded_confidence_matches_posterior_recomputation() {
        // The degradation contract: a degraded answer's reported
        // confidence equals Eq.-1 `topk_confidence` recomputed from the
        // relation's returned posterior state.
        use crate::semantics_dp::topk_confidence;
        let truth: Vec<u32> = (0..150).map(|i| (i * 7 % 13) as u32).collect();
        for cap in [0usize, 1, 3, 8, 40] {
            let (mut rel, t) = noisy_relation(&truth, 12, 10, 16);
            let mut oracle = FnCleaningOracle(|id| t[id]);
            let cfg = CleanerConfig {
                k: 6,
                thres: 0.99999,
                batch_size: 3,
                budget: QueryBudget {
                    max_oracle_calls: Some(cap),
                    ..QueryBudget::unlimited()
                },
                ..Default::default()
            };
            let out = run_cleaner(&mut rel, &mut oracle, &cfg);
            let recomputed = topk_confidence(&rel, &out.topk, 6);
            assert!(
                (out.confidence - recomputed).abs() < 1e-9,
                "cap {cap}: reported {} vs recomputed {recomputed}",
                out.confidence
            );
        }
    }

    /// A fallible test oracle: fails call `i` whenever the seeded hash
    /// says so (a deterministic fault schedule), charges 0.05 simulated
    /// seconds per confirmed item.
    struct SeededFlakyCleaner<'a> {
        truth: &'a [u32],
        seed: u64,
        calls: u64,
        spent: f64,
    }

    impl CleaningOracle for SeededFlakyCleaner<'_> {
        fn clean_batch(&mut self, items: &[ItemId]) -> Vec<u32> {
            items.iter().map(|&i| self.truth[i]).collect()
        }

        fn try_clean_batch(&mut self, items: &[ItemId]) -> Result<Vec<u32>, OracleError> {
            let idx = self.calls;
            self.calls += 1;
            let mut z = self
                .seed
                .wrapping_add(idx.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^= z >> 27;
            if z % 100 < 15 {
                return Err(OracleError::Transient("injected"));
            }
            self.spent += items.len() as f64 * 0.05;
            Ok(self.clean_batch(items))
        }

        fn sim_seconds_spent(&self) -> f64 {
            self.spent
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// The degradation contract under *random* budgets and fault
        /// schedules: whatever stopped the run (cap, deadline, a fault),
        /// the reported confidence equals Eq.-1 `topk_confidence`
        /// recomputed from the relation's returned posterior, and the
        /// answer is entirely certain.
        #[test]
        fn degraded_answers_honor_the_posterior(
            cap in 0usize..40,
            deadline_steps in 0u32..30,
            fault_seed in 0u64..1_000,
            data_seed in 0u64..1_000,
        ) {
            use crate::semantics_dp::topk_confidence;
            let truth: Vec<u32> = (0..120)
                .map(|i: u64| ((i.wrapping_mul(data_seed + 7)) % 13) as u32)
                .collect();
            let (mut rel, t) = noisy_relation(&truth, 12, 8, data_seed);
            let mut oracle = SeededFlakyCleaner {
                truth: &t,
                seed: fault_seed,
                calls: 0,
                spent: 0.0,
            };
            let cfg = CleanerConfig {
                k: 5,
                thres: 0.999,
                batch_size: 2,
                budget: QueryBudget {
                    max_oracle_calls: Some(cap),
                    deadline_sim_seconds: Some(deadline_steps as f64 * 0.05),
                    ..QueryBudget::unlimited()
                },
                ..Default::default()
            };
            let out = run_cleaner(&mut rel, &mut oracle, &cfg);
            for &id in &out.topk {
                proptest::prop_assert!(rel.is_certain(id));
            }
            let recomputed = topk_confidence(&rel, &out.topk, 5);
            proptest::prop_assert!(
                (out.confidence - recomputed).abs() < 1e-9,
                "termination {:?}: reported {} vs recomputed {}",
                out.termination, out.confidence, recomputed
            );
            proptest::prop_assert_eq!(
                out.converged,
                out.termination == Termination::Converged
            );
        }
    }

    #[test]
    #[should_panic(expected = "relation has")]
    fn too_small_relation_panics() {
        let mut rel = UncertainRelation::new(1.0, 2);
        rel.push_certain(1);
        let mut oracle = FnCleaningOracle(|_| 0);
        let _ = run_cleaner(&mut rel, &mut oracle, &CleanerConfig::default());
    }

    #[test]
    fn exact_result_matches_ground_truth_topk_scores() {
        // With thres close to 1 the returned set's scores must match the
        // true Top-K scores (sets may differ under ties).
        let mut rng = StdRng::seed_from_u64(9);
        let truth: Vec<u32> = (0..250).map(|_| rng.gen_range(0..=15)).collect();
        let (mut rel, t) = noisy_relation(&truth, 15, 25, 10);
        let t2 = t.clone();
        let mut oracle = FnCleaningOracle(|id| t2[id]);
        let cfg = CleanerConfig {
            k: 8,
            thres: 0.99,
            ..Default::default()
        };
        let out = run_cleaner(&mut rel, &mut oracle, &cfg);
        let mut expect: Vec<u32> = t.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        let got: Vec<u32> = out
            .topk
            .iter()
            .map(|&id| rel.certain_bucket(id).unwrap())
            .collect();
        // allow the bottom item to differ by ties only when confidence < 1
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!(
                g >= e || out.confidence < 1.0,
                "top scores diverge: got {got:?}, expect {:?}",
                &expect[..8]
            );
        }
    }
}
