//! Continuous Top-K over a live frame stream (the "live feeds" direction
//! the paper motivates with traffic cameras and dashcam fleets).
//!
//! ## Model
//!
//! Frames arrive one at a time (driven by `everest_video::arrival` or any
//! other source), each carrying its Phase-1 proxy distribution. The engine
//! maintains a continuous PT-k answer over either the full prefix seen so
//! far (`window = None`, a landmark query) or a sliding window of the last
//! `w` frames; a tumbling window is the special case `emit_every == w`.
//! Every `emit_every` arrivals the engine *emits* an answer: the Top-K of
//! the certain subset together with its Eq.-2 confidence.
//!
//! ## O(delta) maintenance
//!
//! Between emits only the delta is touched: each arriving frame is one
//! [`JointCdf::add`], each expiring frame one [`JointCdf::remove`] — the
//! ~8 ns/bucket incremental updates measured by the `topk_prob/incremental`
//! bench — instead of an O(n) [`JointCdf::build`] per emit. The
//! [`Maintenance::Rebuild`] mode keeps the per-emit rebuild alive as the
//! *batch reference*: a from-scratch run over the same prefix that the
//! streaming≡batch equivalence harness (`tests/stream_e2e.rs`) compares
//! against at every emit point.
//!
//! ## Boundary-focused cleaning
//!
//! Instead of spending the oracle budget up front, each emit cleans one
//! frame at a time at the currently-unstable rank boundary: the uncertain
//! frame with the largest ψ (Eq. 7) at the *current* thresholds
//! `(S_k, S_p)`, recomputed after every confirmation (Fagin-style
//! threshold processing). The policy is deliberately stateless and
//! deterministic — argmax ψ, ties by ascending frame id — so a batch
//! replay reproduces the exact oracle-call sequence, which is what makes
//! byte-identical streaming≡batch comparison possible. (The batch engine's
//! [`crate::select::CandidateSelector`] keeps its lazy stale-ψ schedule;
//! that laziness is an *intra-query* optimisation with no stable meaning
//! across emits.)

use crate::budget::{QueryBudget, Termination};
use crate::cleaner::CleaningOracle;
use crate::dist::DiscreteDist;
use crate::select::psi;
use crate::topkprob::{topk_prob, JointCdf};
use crate::xtuple::{ItemId, UncertainRelation};
use everest_models::OracleError;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// How the joint CDF is maintained across stream steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Maintenance {
    /// O(delta): one [`JointCdf::add`]/[`JointCdf::remove`] per arriving /
    /// expiring frame. The production mode.
    Incremental,
    /// O(n): rebuild the joint CDF and the certain set from scratch at
    /// every emit. The batch reference the equivalence harness replays.
    Rebuild,
}

/// Configuration of a continuous Top-K query.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Result size K.
    pub k: usize,
    /// Confidence threshold `thres` per emit.
    pub thres: f64,
    /// Emit an answer every `emit_every` arrivals.
    pub emit_every: usize,
    /// Sliding-window length in frames; `None` queries the full prefix.
    /// `emit_every == window` gives tumbling windows.
    pub window: Option<usize>,
    /// Oracle confirmations allowed per emit; `None` cleans until the
    /// threshold is met (the batch guarantee, amortised over the stream).
    pub budget_per_emit: Option<usize>,
    /// Stream-wide limits: a total oracle-call cap, a simulated-seconds
    /// deadline, and/or a cancellation token — all checked between
    /// confirmations. The per-emit budget composes with these (tighter
    /// wins). Default is unlimited.
    pub budget: QueryBudget,
    pub maintenance: Maintenance,
    /// Bucket grid shared by every arriving distribution.
    pub quant_step: f64,
    pub max_bucket: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            k: 5,
            thres: 0.9,
            emit_every: 25,
            window: None,
            budget_per_emit: None,
            budget: QueryBudget::unlimited(),
            maintenance: Maintenance::Incremental,
            quant_step: 1.0,
            max_bucket: 16,
        }
    }
}

/// One emitted answer of a continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamAnswer {
    /// Number of frames that had arrived when this answer was emitted.
    pub at_frame: usize,
    /// First frame of the active window (0 for landmark queries).
    pub window_start: usize,
    /// `(frame, bucket)` rows ordered by (bucket desc, frame asc). All
    /// oracle-confirmed (certain-result condition). May hold fewer than K
    /// rows early in the stream or when the budget runs out mid-bootstrap.
    pub topk: Vec<(ItemId, u32)>,
    /// Per row: `H(bucket)` — the probability that no currently-uncertain
    /// frame strictly outranks this row ("retention probability").
    pub stability: Vec<f64>,
    /// Eq.-2 confidence `p̂` of the emitted set.
    pub confidence: f64,
    /// Whether `p̂ ≥ thres` was reached within this emit's budget.
    pub converged: bool,
    /// Why this emit stopped cleaning (equals [`Termination::Converged`]
    /// exactly when `converged`).
    pub termination: Termination,
    /// Oracle confirmations spent on this emit.
    pub cleaned: usize,
}

impl StreamAnswer {
    /// Deterministic text rendering (the byte-identity surface of the
    /// streaming≡batch harness).
    pub fn render(&self, quant_step: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "emit @{:<7} window [{}, {})  confidence {:.6}  {}",
            self.at_frame,
            self.window_start,
            self.at_frame,
            self.confidence,
            if self.converged {
                "converged"
            } else if self.termination == Termination::BudgetExhausted {
                "budget-capped"
            } else {
                self.termination.as_str()
            },
        );
        let _ = writeln!(out, "rank  frame      score  stability");
        for (i, &(frame, bucket)) in self.topk.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<5} {:<8} {:>7.3}   {:.6}",
                i + 1,
                frame,
                bucket as f64 * quant_step,
                self.stability[i],
            );
        }
        out
    }
}

/// The continuous Top-K engine.
///
/// Feed frames with [`push_frame`](StreamTopK::push_frame); every
/// `emit_every`-th arrival returns a [`StreamAnswer`]. Oracle confirmations
/// persist across emits (a frame is never cleaned twice), and expired
/// frames leave the joint CDF in O(buckets) each.
#[derive(Debug)]
pub struct StreamTopK {
    cfg: StreamConfig,
    /// Every arrived frame's proxy distribution, by frame id.
    dists: Vec<DiscreteDist>,
    /// Oracle-confirmed exact buckets (kept past expiry; frames never
    /// re-enter a forward-moving window).
    cleaned: BTreeMap<ItemId, u32>,
    /// Active frames still uncertain.
    uncertain_active: BTreeSet<ItemId>,
    /// Active certain frames ordered by (bucket desc, frame asc).
    certain: BTreeSet<(Reverse<u32>, ItemId)>,
    /// Joint CDF over the active uncertain frames.
    h: JointCdf,
    /// First active frame (window low edge).
    lo: usize,
    emits: usize,
    cleaned_total: usize,
}

impl StreamTopK {
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(cfg.k >= 1, "K must be at least 1");
        assert!(
            (0.0..=1.0).contains(&cfg.thres),
            "thres must be a probability"
        );
        assert!(cfg.emit_every >= 1, "emit stride must be positive");
        if let Some(w) = cfg.window {
            assert!(w >= 1, "window length must be positive");
        }
        let empty = UncertainRelation::new(cfg.quant_step, cfg.max_bucket);
        StreamTopK {
            h: JointCdf::build(&empty),
            cfg,
            dists: Vec::new(),
            cleaned: BTreeMap::new(),
            uncertain_active: BTreeSet::new(),
            certain: BTreeSet::new(),
            lo: 0,
            emits: 0,
            cleaned_total: 0,
        }
    }

    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Frames arrived so far.
    pub fn n_frames(&self) -> usize {
        self.dists.len()
    }

    /// First frame of the active window.
    pub fn window_start(&self) -> usize {
        self.lo
    }

    /// Total oracle confirmations across the stream.
    pub fn cleaned_total(&self) -> usize {
        self.cleaned_total
    }

    /// Emits produced so far.
    pub fn emits(&self) -> usize {
        self.emits
    }

    /// Feeds one arriving frame; returns an answer on emit boundaries.
    pub fn push_frame(
        &mut self,
        dist: DiscreteDist,
        oracle: &mut dyn CleaningOracle,
    ) -> Option<StreamAnswer> {
        assert_eq!(
            dist.max_bucket(),
            self.cfg.max_bucket,
            "arriving frame is on a different bucket grid"
        );
        let id = self.dists.len();
        if self.cfg.maintenance == Maintenance::Incremental {
            self.h.add(&dist);
        }
        self.uncertain_active.insert(id);
        self.dists.push(dist);
        self.advance_window();
        if self.dists.len().is_multiple_of(self.cfg.emit_every) {
            Some(self.emit(oracle))
        } else {
            None
        }
    }

    /// Expires frames that fell out of the sliding window.
    fn advance_window(&mut self) {
        let Some(w) = self.cfg.window else { return };
        let new_lo = self.dists.len().saturating_sub(w);
        for frame in self.lo..new_lo {
            if let Some(&b) = self.cleaned.get(&frame) {
                self.certain.remove(&(Reverse(b), frame));
            } else if self.uncertain_active.remove(&frame)
                && self.cfg.maintenance == Maintenance::Incremental
            {
                self.h.remove(&self.dists[frame]);
            }
        }
        self.lo = new_lo;
    }

    /// From-scratch reconstruction of the joint CDF and the certain set
    /// (the batch half of the equivalence harness).
    fn rebuild(&mut self) {
        self.certain = self
            .cleaned
            .range(self.lo..)
            .map(|(&f, &b)| (Reverse(b), f))
            .collect();
        let mut rel = UncertainRelation::new(self.cfg.quant_step, self.cfg.max_bucket);
        for &frame in &self.uncertain_active {
            rel.push_uncertain(self.dists[frame].clone());
        }
        self.h = JointCdf::build(&rel);
    }

    /// Confirms one frame with the oracle and retires its uncertainty.
    /// A failed confirmation leaves the frame uncertain.
    fn clean_one(
        &mut self,
        frame: ItemId,
        oracle: &mut dyn CleaningOracle,
    ) -> Result<(), OracleError> {
        let bucket = oracle.try_clean_batch(&[frame])?[0];
        let was_uncertain = self.uncertain_active.remove(&frame);
        debug_assert!(was_uncertain, "frame {frame} cleaned twice");
        self.h.remove(&self.dists[frame]);
        self.cleaned.insert(frame, bucket);
        self.certain.insert((Reverse(bucket), frame));
        self.cleaned_total += 1;
        Ok(())
    }

    /// The uncertain frame maximising `key`, ties by ascending frame id.
    fn argmax_uncertain(&self, mut key: impl FnMut(&DiscreteDist) -> f64) -> Option<ItemId> {
        let mut best: Option<(f64, ItemId)> = None;
        for &frame in &self.uncertain_active {
            let v = key(&self.dists[frame]);
            if best.is_none_or(|(bv, _)| v > bv) {
                best = Some((v, frame));
            }
        }
        best.map(|(_, frame)| frame)
    }

    /// Runs the per-emit answer maintenance: bootstrap to K certain frames,
    /// then boundary-focused argmax-ψ cleaning until `thres` or budget.
    fn emit(&mut self, oracle: &mut dyn CleaningOracle) -> StreamAnswer {
        self.emits += 1;
        if self.cfg.maintenance == Maintenance::Rebuild {
            self.rebuild();
        }
        let n = self.dists.len();
        let k_eff = self.cfg.k.min(n - self.lo);
        let mut budget = self.cfg.budget_per_emit;
        let mut spent = 0usize;

        let cancel = self.cfg.budget.cancel.clone();
        let deadline = self.cfg.budget.deadline_sim_seconds;
        let stream_cap = self.cfg.budget.max_oracle_calls;
        // Checked before every confirmation: cancellation, the stream-wide
        // deadline/call cap, then the per-emit budget (which this consumes).
        // `None` means the next confirmation may proceed.
        let gate = |cleaned_total: usize,
                    sim_spent: f64,
                    budget: &mut Option<usize>|
         -> Option<Termination> {
            if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                return Some(Termination::Cancelled);
            }
            if deadline.is_some_and(|d| sim_spent >= d) {
                return Some(Termination::Deadline);
            }
            if stream_cap.is_some_and(|m| cleaned_total >= m) {
                return Some(Termination::BudgetExhausted);
            }
            match budget {
                Some(0) => Some(Termination::BudgetExhausted),
                Some(b) => {
                    *b -= 1;
                    None
                }
                None => None,
            }
        };
        let mut blocked: Option<Termination> = None;

        // Bootstrap: the certain-result condition needs k_eff certain
        // frames; confirm the highest-mean uncertain frames first.
        while self.certain.len() < k_eff {
            if let Some(t) = gate(self.cleaned_total, oracle.sim_seconds_spent(), &mut budget) {
                blocked = Some(t);
                break;
            }
            let pick = self
                .argmax_uncertain(|d| d.mean_bucket())
                // lint:allow(panic-unwrap): certain.len() < k_eff ≤ active count, so an
                // active uncertain frame exists
                .expect("fewer certain frames than active frames");
            if self.clean_one(pick, oracle).is_err() {
                blocked = Some(Termination::OracleDown);
                break;
            }
            spent += 1;
        }

        let (confidence, termination) = loop {
            if self.certain.len() < k_eff {
                // budget/deadline/cancel/failure mid-bootstrap
                break (0.0, blocked.unwrap_or(Termination::BudgetExhausted));
            }
            let top_last: Vec<(Reverse<u32>, ItemId)> =
                self.certain.iter().take(k_eff).copied().collect();
            let s_k = top_last[k_eff - 1].0 .0 as usize;
            let s_p = if k_eff >= 2 {
                top_last[k_eff - 2].0 .0 as usize
            } else {
                self.cfg.max_bucket
            };
            if self.h.members() == 0 {
                break (1.0, Termination::Converged);
            }
            let conf = topk_prob(&self.h, s_k);
            if conf >= self.cfg.thres {
                break (conf, Termination::Converged);
            }
            if let Some(t) = gate(self.cleaned_total, oracle.sim_seconds_spent(), &mut budget) {
                break (conf, t);
            }
            let pick = self
                .argmax_uncertain(|d| psi(d, s_k, s_p))
                // lint:allow(panic-unwrap): the h.members() == 0 branch above broke out
                .expect("members > 0 implies an uncertain frame");
            if self.clean_one(pick, oracle).is_err() {
                break (conf, Termination::OracleDown);
            }
            spent += 1;
        };
        let converged = termination == Termination::Converged;

        let topk: Vec<(ItemId, u32)> = self
            .certain
            .iter()
            .take(k_eff)
            .map(|&(Reverse(b), f)| (f, b))
            .collect();
        let stability = topk
            .iter()
            .map(|&(_, b)| topk_prob(&self.h, b as usize))
            .collect();
        StreamAnswer {
            at_frame: n,
            window_start: self.lo,
            topk,
            stability,
            confidence,
            converged,
            termination,
            cleaned: spent,
        }
    }
}

/// Feeds every distribution through a fresh engine, collecting the emits.
pub fn run_stream(
    cfg: &StreamConfig,
    dists: &[DiscreteDist],
    oracle: &mut dyn CleaningOracle,
) -> Vec<StreamAnswer> {
    let mut engine = StreamTopK::new(cfg.clone());
    dists
        .iter()
        .filter_map(|d| engine.push_frame(d.clone(), oracle))
        .collect()
}

/// The batch half of the streaming≡batch equivalence: the same emit
/// schedule and cleaning policy replayed from scratch with per-emit
/// [`JointCdf::build`] instead of incremental maintenance. An answer at
/// emit point `t` depends only on frames `0..t`, so element `i` of the
/// result is exactly "a from-scratch batch run over the prefix ending at
/// emit `i`".
pub fn batch_reference(
    cfg: &StreamConfig,
    dists: &[DiscreteDist],
    oracle: &mut dyn CleaningOracle,
) -> Vec<StreamAnswer> {
    let mut batch_cfg = cfg.clone();
    batch_cfg.maintenance = Maintenance::Rebuild;
    run_stream(&batch_cfg, dists, oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cleaner::FnCleaningOracle;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Noisy triangular proxies around a ground truth, as in the cleaner
    /// tests.
    fn noisy_dists(truth: &[u32], max_bucket: usize, seed: u64) -> Vec<DiscreteDist> {
        let mut rng = StdRng::seed_from_u64(seed);
        truth
            .iter()
            .map(|&t| {
                let mut masses = vec![0.0; max_bucket + 1];
                for db in -2i64..=2 {
                    let b = (t as i64 + db).clamp(0, max_bucket as i64) as usize;
                    masses[b] += match db.abs() {
                        0 => 0.4,
                        1 => 0.2,
                        _ => 0.1,
                    } * rng.gen_range(0.5..1.5);
                }
                DiscreteDist::from_masses(&masses)
            })
            .collect()
    }

    fn fixture(n: usize, seed: u64) -> (Vec<u32>, Vec<DiscreteDist>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<u32> = (0..n).map(|_| rng.gen_range(0..=10)).collect();
        let dists = noisy_dists(&truth, 10, seed ^ 0xABCD);
        (truth, dists)
    }

    #[test]
    fn emits_on_stride_and_converges() {
        let (truth, dists) = fixture(120, 1);
        let mut oracle = FnCleaningOracle(|id| truth[id]);
        let cfg = StreamConfig {
            k: 3,
            emit_every: 30,
            max_bucket: 10,
            ..StreamConfig::default()
        };
        let answers = run_stream(&cfg, &dists, &mut oracle);
        assert_eq!(answers.len(), 4);
        for (i, a) in answers.iter().enumerate() {
            assert_eq!(a.at_frame, (i + 1) * 30);
            assert_eq!(a.window_start, 0);
            assert_eq!(a.topk.len(), 3);
            assert!(a.converged, "unlimited budget must converge");
            assert!(a.confidence >= 0.9);
            // certain-result condition: answers are oracle-confirmed truth
            for &(f, b) in &a.topk {
                assert_eq!(b, truth[f], "frame {f}");
            }
            // ranks ordered (bucket desc, frame asc)
            for w in a.topk.windows(2) {
                assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
            }
        }
    }

    #[test]
    fn answers_match_prefix_ground_truth() {
        let (truth, dists) = fixture(200, 2);
        let mut oracle = FnCleaningOracle(|id| truth[id]);
        let cfg = StreamConfig {
            k: 4,
            thres: 0.95,
            emit_every: 50,
            max_bucket: 10,
            ..StreamConfig::default()
        };
        for a in run_stream(&cfg, &dists, &mut oracle) {
            // The emitted score multiset must match the true Top-4 of the
            // prefix whenever the answer fully converged.
            let mut expect: Vec<u32> = truth[..a.at_frame].to_vec();
            expect.sort_unstable_by(|x, y| y.cmp(x));
            let got: Vec<u32> = a.topk.iter().map(|&(_, b)| b).collect();
            for (g, e) in got.iter().zip(&expect) {
                assert!(
                    g >= e || a.confidence < 1.0,
                    "got {got:?} expect {expect:?}"
                );
            }
        }
    }

    #[test]
    fn sliding_window_expires_frames() {
        let (truth, dists) = fixture(150, 3);
        let mut oracle = FnCleaningOracle(|id| truth[id]);
        let cfg = StreamConfig {
            k: 2,
            emit_every: 25,
            window: Some(50),
            max_bucket: 10,
            ..StreamConfig::default()
        };
        let answers = run_stream(&cfg, &dists, &mut oracle);
        for a in &answers {
            assert_eq!(a.window_start, a.at_frame.saturating_sub(50));
            for &(f, _) in &a.topk {
                assert!(f >= a.window_start, "expired frame {f} in answer");
            }
        }
    }

    #[test]
    fn early_emits_are_underfilled_not_panicking() {
        let (truth, dists) = fixture(8, 4);
        let mut oracle = FnCleaningOracle(|id| truth[id]);
        let cfg = StreamConfig {
            k: 5,
            emit_every: 2,
            max_bucket: 10,
            ..StreamConfig::default()
        };
        let answers = run_stream(&cfg, &dists, &mut oracle);
        assert_eq!(answers[0].topk.len(), 2); // only 2 frames exist yet
        assert_eq!(answers[1].topk.len(), 4);
        assert_eq!(answers[2].topk.len(), 5);
    }

    #[test]
    fn zero_budget_emits_nonconverged() {
        let (truth, dists) = fixture(60, 5);
        let mut oracle = FnCleaningOracle(|_| -> u32 { panic!("budget 0 must not clean") });
        let _ = truth;
        let cfg = StreamConfig {
            k: 3,
            emit_every: 20,
            budget_per_emit: Some(0),
            max_bucket: 10,
            ..StreamConfig::default()
        };
        for a in run_stream(&cfg, &dists, &mut oracle) {
            assert!(!a.converged);
            assert_eq!(a.cleaned, 0);
            assert!(a.topk.is_empty(), "no certain frames without cleaning");
        }
    }

    #[test]
    fn budget_caps_cleaning_per_emit() {
        let (truth, dists) = fixture(100, 6);
        let mut oracle = FnCleaningOracle(|id| truth[id]);
        let cfg = StreamConfig {
            k: 3,
            thres: 0.99,
            emit_every: 20,
            budget_per_emit: Some(4),
            max_bucket: 10,
            ..StreamConfig::default()
        };
        for a in run_stream(&cfg, &dists, &mut oracle) {
            assert!(a.cleaned <= 4);
            if !a.converged {
                assert!(a.confidence < 0.99);
            }
        }
    }

    /// Like [`fixture`], but with bucket headroom above the truth range so
    /// `s_k < max_bucket` and convergence genuinely needs cleaning (a top
    /// bucket of exactly `max_bucket` makes Eq. 2 trivially 1.0).
    fn slack_fixture(n: usize, seed: u64) -> (Vec<u32>, Vec<DiscreteDist>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<u32> = (0..n).map(|_| rng.gen_range(0..=10)).collect();
        let dists = noisy_dists(&truth, 16, seed ^ 0xABCD);
        (truth, dists)
    }

    /// A truth oracle that charges simulated seconds per confirmation and
    /// can be wired to die after a set number of calls.
    struct ChaosStreamOracle<'a> {
        truth: &'a [u32],
        cleans: usize,
        cost: f64,
        die_after: Option<usize>,
    }

    impl CleaningOracle for ChaosStreamOracle<'_> {
        fn clean_batch(&mut self, items: &[ItemId]) -> Vec<u32> {
            self.cleans += items.len();
            items.iter().map(|&i| self.truth[i]).collect()
        }

        fn try_clean_batch(&mut self, items: &[ItemId]) -> Result<Vec<u32>, OracleError> {
            if self.die_after.is_some_and(|n| self.cleans >= n) {
                return Err(OracleError::Transient("oracle host down"));
            }
            Ok(self.clean_batch(items))
        }

        fn sim_seconds_spent(&self) -> f64 {
            self.cleans as f64 * self.cost
        }
    }

    #[test]
    fn stream_wide_call_cap_reports_budget_exhausted() {
        let (truth, dists) = slack_fixture(80, 11);
        let mut oracle = ChaosStreamOracle {
            truth: &truth,
            cleans: 0,
            cost: 0.0,
            die_after: None,
        };
        let cfg = StreamConfig {
            k: 3,
            thres: 0.99,
            emit_every: 20,
            budget: QueryBudget {
                max_oracle_calls: Some(5),
                ..QueryBudget::unlimited()
            },
            max_bucket: 16,
            ..StreamConfig::default()
        };
        let answers = run_stream(&cfg, &dists, &mut oracle);
        let total: usize = answers.iter().map(|a| a.cleaned).sum();
        assert!(total <= 5, "stream-wide cap exceeded: {total}");
        let last = answers.last().unwrap();
        assert_eq!(last.termination, Termination::BudgetExhausted);
        assert!(!last.converged);
        for a in &answers {
            assert_eq!(a.converged, a.termination == Termination::Converged);
        }
    }

    #[test]
    fn stream_deadline_is_simulated_seconds() {
        let (truth, dists) = slack_fixture(80, 12);
        let mut oracle = ChaosStreamOracle {
            truth: &truth,
            cleans: 0,
            cost: 0.1,
            die_after: None,
        };
        let cfg = StreamConfig {
            k: 3,
            thres: 0.99,
            emit_every: 20,
            budget: QueryBudget {
                deadline_sim_seconds: Some(0.25),
                ..QueryBudget::unlimited()
            },
            max_bucket: 16,
            ..StreamConfig::default()
        };
        let answers = run_stream(&cfg, &dists, &mut oracle);
        // Checked between confirmations: at most one overshoot past 0.25s.
        assert!(oracle.sim_seconds_spent() <= 0.25 + 0.1 + 1e-12);
        assert!(answers
            .iter()
            .any(|a| a.termination == Termination::Deadline));
    }

    #[test]
    fn cancelled_stream_emits_degraded_answers() {
        let (truth, dists) = fixture(40, 13);
        let mut oracle = FnCleaningOracle(|id| truth[id]);
        let token = crate::budget::CancelToken::new();
        token.cancel();
        let cfg = StreamConfig {
            k: 3,
            emit_every: 20,
            budget: QueryBudget {
                cancel: Some(token),
                ..QueryBudget::unlimited()
            },
            max_bucket: 10,
            ..StreamConfig::default()
        };
        for a in run_stream(&cfg, &dists, &mut oracle) {
            assert_eq!(a.termination, Termination::Cancelled);
            assert_eq!(a.cleaned, 0);
            assert!(!a.converged);
        }
    }

    #[test]
    fn oracle_down_mid_stream_degrades() {
        let (truth, dists) = slack_fixture(80, 14);
        let mut oracle = ChaosStreamOracle {
            truth: &truth,
            cleans: 0,
            cost: 0.0,
            die_after: Some(4),
        };
        let cfg = StreamConfig {
            k: 3,
            thres: 0.99,
            emit_every: 20,
            max_bucket: 16,
            ..StreamConfig::default()
        };
        let answers = run_stream(&cfg, &dists, &mut oracle);
        assert!(answers
            .iter()
            .any(|a| a.termination == Termination::OracleDown));
        // Confirmed rows stay honest even under failure.
        for a in &answers {
            for &(f, b) in &a.topk {
                assert_eq!(b, truth[f]);
            }
        }
    }

    #[test]
    fn incremental_equals_rebuild_smoke() {
        let (truth, dists) = fixture(180, 7);
        let cfg = StreamConfig {
            k: 4,
            emit_every: 15,
            window: Some(60),
            max_bucket: 10,
            ..StreamConfig::default()
        };
        let mut o1 = FnCleaningOracle(|id| truth[id]);
        let mut o2 = FnCleaningOracle(|id| truth[id]);
        let live = run_stream(&cfg, &dists, &mut o1);
        let batch = batch_reference(&cfg, &dists, &mut o2);
        assert_eq!(live.len(), batch.len());
        for (a, b) in live.iter().zip(&batch) {
            assert_eq!(a.topk, b.topk);
            assert_eq!(a.cleaned, b.cleaned);
            assert!((a.confidence - b.confidence).abs() < 1e-9);
            assert_eq!(
                a.render(1.0),
                b.render(1.0),
                "render must be byte-identical"
            );
        }
    }

    #[test]
    fn render_is_stable() {
        let (truth, dists) = fixture(40, 8);
        let mut oracle = FnCleaningOracle(|id| truth[id]);
        let cfg = StreamConfig {
            k: 2,
            emit_every: 40,
            max_bucket: 10,
            ..StreamConfig::default()
        };
        let answers = run_stream(&cfg, &dists, &mut oracle);
        let text = answers[0].render(1.0);
        assert!(text.starts_with("emit @40"), "got:\n{text}");
        assert!(text.contains("confidence"));
        assert_eq!(text.lines().count(), 2 + answers[0].topk.len());
    }

    #[test]
    fn cleaning_persists_across_emits() {
        let (truth, dists) = fixture(90, 9);
        let truth2 = truth.clone();
        let mut calls = 0usize;
        let mut oracle = FnCleaningOracle(|id| {
            calls += 1;
            truth2[id]
        });
        let cfg = StreamConfig {
            k: 3,
            emit_every: 30,
            max_bucket: 10,
            ..StreamConfig::default()
        };
        let mut engine = StreamTopK::new(cfg);
        let mut seen = BTreeSet::new();
        for d in &dists {
            let _ = engine.push_frame(d.clone(), &mut oracle);
        }
        // No frame may ever be cleaned twice: total calls == distinct cleans.
        seen.extend(0..engine.cleaned_total());
        assert_eq!(calls, engine.cleaned_total());
    }
}
