//! Alternative uncertain Top-K semantics from the literature (§2,
//! "Uncertain Top-K Processing"), implemented over the possible-world
//! enumerator so their behaviour can be contrasted with Everest's
//! guarantee experimentally:
//!
//! * **U-TopK** (Soliman et al.): the result *set* with the highest
//!   probability of being the Top-K. The paper's critique: the winner may
//!   still have very low absolute probability — there is no threshold
//!   guarantee.
//! * **U-KRanks** (Soliman et al.): position-by-position — the i-th result
//!   is the item most likely to be ranked i-th. Critique: the assembled
//!   set as a whole need not be the most probable Top-K (the same item can
//!   even win several positions).
//! * **Probabilistic threshold Top-K, PT-k** (Hua et al.): all items whose
//!   *membership* probability `Pr(f ∈ Top-K)` exceeds a threshold.
//!   Critique: the result may contain fewer (even zero) or more than K
//!   items, and says nothing about the set as a whole.
//!
//! All three assume no run-time oracle; they rank the uncertain relation
//! as-is. That is exactly the contrast with Everest's
//! oracle-in-the-loop processing, whose answer meets `Pr(R̂ = R) ≥ thres`
//! *and* is fully oracle-confirmed.
//!
//! The implementations in this module enumerate possible worlds and are
//! **exponential** — they are the correctness oracle that the
//! polynomial-time dynamic programs in [`crate::semantics_dp`] are
//! property-tested against, and they refuse oversized relations with a
//! typed [`TooManyWorlds`] error. Production-size comparisons (the
//! `semantics_comparison` experiment) run on the DP layer; see
//! `docs/SEMANTICS.md` for the full map.

use crate::pws::{enumerate_worlds, TooManyWorlds, World};
use crate::semantics_dp;
use crate::xtuple::{ItemId, UncertainRelation};
use std::collections::BTreeMap;

/// The Top-K item set of one world, ties broken by ascending id
/// (deterministic canonical answer).
fn topk_of_world(world: &World, k: usize) -> Vec<ItemId> {
    let mut ids: Vec<ItemId> = (0..world.buckets.len()).collect();
    ids.sort_by(|&a, &b| world.buckets[b].cmp(&world.buckets[a]).then(a.cmp(&b)));
    let mut top: Vec<ItemId> = ids.into_iter().take(k).collect();
    top.sort_unstable();
    top
}

/// U-TopK by world enumeration: the most probable Top-K *set*, with its
/// probability (test oracle for [`semantics_dp::u_topk_dp`]).
///
/// Returns `(set, probability)`; the set is sorted by item id. Errors with
/// [`TooManyWorlds`] on relations too large to enumerate.
pub fn u_topk(rel: &UncertainRelation, k: usize) -> Result<(Vec<ItemId>, f64), TooManyWorlds> {
    assert!(k >= 1 && k <= rel.len(), "K out of range");
    // BTreeMap so the max_by scan below runs in sorted-key order — the
    // total tie-break already made the winner unique, but iteration order
    // is part of the byte-identical contract (determinism suite).
    let mut scores: BTreeMap<Vec<ItemId>, f64> = BTreeMap::new();
    for world in enumerate_worlds(rel)? {
        *scores.entry(topk_of_world(&world, k)).or_insert(0.0) += world.prob;
    }
    Ok(scores
        .into_iter()
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                // deterministic tie-break on the set itself
                .then_with(|| b.0.cmp(&a.0))
        })
        .expect("at least one world"))
}

/// U-KRanks by world enumeration: for each rank i (0-based), the item most
/// likely to occupy it (test oracle for [`semantics_dp::u_kranks_dp`]).
///
/// Returns `ranks[i] = (item, probability)`. Note the same item may win
/// multiple ranks — one of the semantic quirks the paper points out.
/// Errors with [`TooManyWorlds`] on relations too large to enumerate.
pub fn u_kranks(rel: &UncertainRelation, k: usize) -> Result<Vec<(ItemId, f64)>, TooManyWorlds> {
    Ok(rank_probabilities(rel, k)?
        .into_iter()
        .map(|probs| {
            probs
                .into_iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
                .expect("non-empty")
        })
        .collect())
}

/// The full positional table by world enumeration:
/// `table[i][f] = Pr(item f is ranked i-th)` for every rank `i < k` (test
/// oracle for [`semantics_dp::RankTable`]).
pub fn rank_probabilities(
    rel: &UncertainRelation,
    k: usize,
) -> Result<Vec<Vec<f64>>, TooManyWorlds> {
    assert!(k >= 1 && k <= rel.len(), "K out of range");
    let n = rel.len();
    let mut rank_prob = vec![vec![0.0f64; n]; k];
    for world in enumerate_worlds(rel)? {
        let mut ids: Vec<ItemId> = (0..n).collect();
        ids.sort_by(|&a, &b| world.buckets[b].cmp(&world.buckets[a]).then(a.cmp(&b)));
        for (i, &f) in ids.iter().take(k).enumerate() {
            rank_prob[i][f] += world.prob;
        }
    }
    Ok(rank_prob)
}

/// Membership probabilities `Pr(f ∈ Top-K)` for every item, by world
/// enumeration (test oracle for [`semantics_dp::topk_membership_dp`]).
pub fn topk_membership(rel: &UncertainRelation, k: usize) -> Result<Vec<f64>, TooManyWorlds> {
    assert!(k >= 1 && k <= rel.len(), "K out of range");
    let n = rel.len();
    let mut member = vec![0.0f64; n];
    for world in enumerate_worlds(rel)? {
        for f in topk_of_world(&world, k) {
            member[f] += world.prob;
        }
    }
    Ok(member)
}

/// PT-k by world enumeration: every item whose Top-K membership
/// probability is at least `p` (test oracle for
/// [`semantics_dp::probabilistic_threshold_topk_dp`]). May return fewer or
/// more than K items — including the empty set.
pub fn probabilistic_threshold_topk(
    rel: &UncertainRelation,
    k: usize,
    p: f64,
) -> Result<Vec<ItemId>, TooManyWorlds> {
    Ok(topk_membership(rel, k)?
        .into_iter()
        .enumerate()
        .filter(|&(_, prob)| prob >= p)
        .map(|(f, _)| f)
        .collect())
}

/// **Expected ranks** (Cormode, Li & Yi \[19\]): `E[rank(f)]` over possible
/// worlds, where the rank of `f` in a world counts the items scoring
/// strictly higher plus half the items tying it (the midpoint convention
/// makes the statistic symmetric under ties).
///
/// Unlike U-TopK / U-KRanks / PT-k, expected ranks are computable in
/// **polynomial time** — `O(n·m)` here via two global per-bucket tables —
/// which was \[19\]'s selling point. By linearity of expectation,
///
/// ```text
/// E[rank(f)] = Σ_{g≠f} [ Pr(S_g > S_f) + ½·Pr(S_g = S_f) ]
///            = Σ_b Pr(S_f = b) · [ (G(b) − Pr(S_f > b)) + ½(T(b) − Pr(S_f = b)) ]
/// ```
///
/// with `G(b) = Σ_g Pr(S_g > b)` and `T(b) = Σ_g Pr(S_g = b)`.
pub fn expected_ranks(rel: &UncertainRelation) -> Vec<f64> {
    let n = rel.len();
    let m = rel.max_bucket() + 1;
    // G[b] = Σ_g Pr(S_g > b);  T[b] = Σ_g Pr(S_g = b)
    let mut above = vec![0.0f64; m];
    let mut tie = vec![0.0f64; m];
    for g in 0..n {
        for (b, (a, t)) in above.iter_mut().zip(tie.iter_mut()).enumerate() {
            *a += 1.0 - rel.cdf(g, b);
            *t += rel.pmf(g, b);
        }
    }
    (0..n)
        .map(|f| {
            (0..m)
                .map(|b| {
                    let pf = rel.pmf(f, b);
                    if pf == 0.0 {
                        return 0.0;
                    }
                    let others_above = above[b] - (1.0 - rel.cdf(f, b));
                    let others_tie = tie[b] - pf;
                    pf * (others_above + 0.5 * others_tie)
                })
                .sum()
        })
        .collect()
}

/// Expected-rank Top-K: the K items with the smallest expected ranks
/// (ties by ascending id), together with those ranks.
pub fn expected_rank_topk(rel: &UncertainRelation, k: usize) -> Vec<(ItemId, f64)> {
    assert!(k >= 1 && k <= rel.len(), "K out of range");
    let ranks = expected_ranks(rel);
    let mut ids: Vec<ItemId> = (0..rel.len()).collect();
    ids.sort_by(|&a, &b| {
        ranks[a]
            .partial_cmp(&ranks[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    ids.into_iter().take(k).map(|f| (f, ranks[f])).collect()
}

/// Brute-force expected ranks via world enumeration (test oracle for
/// [`expected_ranks`]; exponential, errors with [`TooManyWorlds`]).
pub fn pws_expected_ranks(rel: &UncertainRelation) -> Result<Vec<f64>, TooManyWorlds> {
    let n = rel.len();
    let mut ranks = vec![0.0f64; n];
    for world in enumerate_worlds(rel)? {
        for (f, rank) in ranks.iter_mut().enumerate() {
            let mut r = 0.0;
            for (g, bg) in world.buckets.iter().enumerate() {
                if g == f {
                    continue;
                }
                match bg.cmp(&world.buckets[f]) {
                    std::cmp::Ordering::Greater => r += 1.0,
                    std::cmp::Ordering::Equal => r += 0.5,
                    std::cmp::Ordering::Less => {}
                }
            }
            *rank += world.prob * r;
        }
    }
    Ok(ranks)
}

/// A side-by-side comparison of every implemented uncertain Top-K
/// semantic on one relation — the experimental companion of §2's survey
/// table (used by the `semantics_comparison` bench bin and docs).
#[derive(Debug, Clone)]
pub struct SemanticsComparison {
    pub k: usize,
    /// U-TopK answer and its (possibly low) probability.
    pub u_topk: (Vec<ItemId>, f64),
    /// U-KRanks: per-rank winners (repeats possible).
    pub u_kranks: Vec<(ItemId, f64)>,
    /// PT-k at the given threshold (size may differ from K).
    pub ptk: Vec<ItemId>,
    pub ptk_threshold: f64,
    /// Expected-rank Top-K.
    pub expected_rank: Vec<(ItemId, f64)>,
}

/// Runs all semantics on one relation.
///
/// Evaluation goes through the polynomial-time layer
/// ([`crate::semantics_dp`]), so — unlike the enumeration oracles above —
/// this works on relations of hundreds of items, not just enumerable toys.
pub fn compare_semantics(rel: &UncertainRelation, k: usize, ptk_p: f64) -> SemanticsComparison {
    // One rank-distribution DP serves U-KRanks, PT-k and the U-TopK
    // search's membership bounds.
    let table = semantics_dp::RankTable::build(rel, k);
    let member = table.memberships();
    SemanticsComparison {
        k,
        u_topk: semantics_dp::u_topk_with_memberships(rel, k, &member),
        u_kranks: table.u_kranks(),
        ptk: member
            .into_iter()
            .enumerate()
            .filter(|&(_, prob)| prob >= ptk_p)
            .map(|(f, _)| f)
            .collect(),
        ptk_threshold: ptk_p,
        expected_rank: expected_rank_topk(rel, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DiscreteDist;
    use crate::xtuple::table_1a;

    fn d(masses: &[f64]) -> DiscreteDist {
        DiscreteDist::from_masses(masses)
    }

    #[test]
    fn u_topk_on_table_1a() {
        let (set, p) = u_topk(&table_1a(), 1).unwrap();
        // f3 dominates: it is the most probable Top-1.
        assert_eq!(set, vec![2]);
        assert!(p > 0.5 && p < 1.0, "probability {p}");
    }

    #[test]
    fn u_topk_probability_can_be_low() {
        // The paper's critique: the most probable set may still be unlikely.
        // Five iid uniform items over 4 buckets: every Top-1 winner is ~1/5.
        let mut rel = UncertainRelation::new(1.0, 3);
        for _ in 0..5 {
            rel.push_uncertain(d(&[0.25, 0.25, 0.25, 0.25]));
        }
        let (_, p) = u_topk(&rel, 1).unwrap();
        assert!(p < 0.5, "no guarantee: winner probability is only {p}");
    }

    #[test]
    fn u_kranks_positions_sum_to_valid_probs() {
        let ranks = u_kranks(&table_1a(), 2).unwrap();
        assert_eq!(ranks.len(), 2);
        for &(f, p) in &ranks {
            assert!(f < 3);
            assert!(p > 0.0 && p <= 1.0);
        }
        // rank-1 winner should be f3 (it has the highest counts).
        assert_eq!(ranks[0].0, 2);
    }

    #[test]
    fn u_kranks_rank_probabilities_are_exact() {
        let mut rel = UncertainRelation::new(1.0, 3);
        rel.push_uncertain(d(&[0.0, 0.0, 0.5, 0.5])); // strong: always rank 1
        rel.push_uncertain(d(&[0.9, 0.1, 0.0, 0.0])); // weak
        rel.push_uncertain(d(&[0.9, 0.1, 0.0, 0.0])); // weak
        let ranks = u_kranks(&rel, 2).unwrap();
        assert_eq!(ranks[0], (0, 1.0), "strong item wins rank 1 certainly");
        // Rank 2 goes to item 1 except when (item1 = 0, item2 = 1):
        // Pr = 1 − 0.9·0.1 = 0.91 (ties at 0 break to the lower id).
        assert_eq!(ranks[1].0, 1);
        assert!((ranks[1].1 - 0.91).abs() < 1e-9, "got {}", ranks[1].1);
    }

    #[test]
    fn membership_probabilities_sum_to_k() {
        let member = topk_membership(&table_1a(), 2).unwrap();
        let total: f64 = member.iter().sum();
        assert!(
            (total - 2.0).abs() < 1e-9,
            "Σ membership must equal K, got {total}"
        );
    }

    #[test]
    fn ptk_can_return_empty_or_oversized_sets() {
        // Uniform items: with a high threshold nothing qualifies…
        let mut rel = UncertainRelation::new(1.0, 3);
        for _ in 0..6 {
            rel.push_uncertain(d(&[0.25, 0.25, 0.25, 0.25]));
        }
        assert!(probabilistic_threshold_topk(&rel, 1, 0.9)
            .unwrap()
            .is_empty());
        // …and with a low threshold more than K items qualify.
        let many = probabilistic_threshold_topk(&rel, 1, 0.05).unwrap();
        assert!(many.len() > 1, "PT-1 returned {} items", many.len());
    }

    #[test]
    fn certain_relation_all_semantics_agree() {
        let mut rel = UncertainRelation::new(1.0, 5);
        rel.push_certain(5);
        rel.push_certain(3);
        rel.push_certain(1);
        let (set, p) = u_topk(&rel, 2).unwrap();
        assert_eq!(set, vec![0, 1]);
        assert_eq!(p, 1.0);
        let ranks = u_kranks(&rel, 2).unwrap();
        assert_eq!(ranks[0], (0, 1.0));
        assert_eq!(ranks[1], (1, 1.0));
        assert_eq!(
            probabilistic_threshold_topk(&rel, 2, 0.99).unwrap(),
            vec![0, 1]
        );
        let er = expected_rank_topk(&rel, 2);
        assert_eq!(er[0], (0, 0.0), "the top item has nothing above it");
        assert_eq!(er[1], (1, 1.0), "exactly one item above");
    }

    #[test]
    fn oversized_relations_error_instead_of_aborting() {
        let mut rel = UncertainRelation::new(1.0, 9);
        let masses = vec![0.1; 10];
        for _ in 0..25 {
            rel.push_uncertain(d(&masses));
        }
        assert!(u_topk(&rel, 3).is_err());
        assert!(u_kranks(&rel, 3).is_err());
        assert!(topk_membership(&rel, 3).is_err());
        assert!(probabilistic_threshold_topk(&rel, 3, 0.5).is_err());
        assert!(pws_expected_ranks(&rel).is_err());
        // …while the polynomial paths (and the comparison bundle built on
        // them) still work.
        let cmp = compare_semantics(&rel, 3, 0.5);
        assert_eq!(cmp.u_topk.0.len(), 3);
        assert!(expected_ranks(&rel).len() == 25);
    }

    #[test]
    fn expected_ranks_match_world_enumeration() {
        for rel in [table_1a(), {
            let mut r = UncertainRelation::new(1.0, 3);
            r.push_uncertain(d(&[0.1, 0.2, 0.3, 0.4]));
            r.push_certain(2);
            r.push_uncertain(d(&[0.7, 0.0, 0.0, 0.3]));
            r.push_uncertain(d(&[0.25, 0.25, 0.25, 0.25]));
            r
        }] {
            let fast = expected_ranks(&rel);
            let brute = pws_expected_ranks(&rel).unwrap();
            for (f, (a, b)) in fast.iter().zip(&brute).enumerate() {
                assert!((a - b).abs() < 1e-9, "item {f}: fast {a} vs brute {b}");
            }
        }
    }

    #[test]
    fn expected_ranks_sum_is_fixed_by_pair_count() {
        // Σ_f E[rank(f)] = Σ pairs [Pr(>) + Pr(<) + 2·½·Pr(=)] = C(n,2):
        // every unordered pair contributes exactly 1 in every world.
        let rel = table_1a();
        let total: f64 = expected_ranks(&rel).iter().sum();
        let n = rel.len() as f64;
        assert!((total - n * (n - 1.0) / 2.0).abs() < 1e-9, "got {total}");
    }

    #[test]
    fn expected_rank_topk_orders_by_rank() {
        let rel = table_1a();
        let er = expected_rank_topk(&rel, 3);
        assert_eq!(er.len(), 3);
        assert!(er.windows(2).all(|w| w[0].1 <= w[1].1));
        // f3 has the stochastically largest score → smallest expected rank
        assert_eq!(er[0].0, 2);
    }

    #[test]
    fn expected_ranks_can_disagree_with_u_topk() {
        // A classic [19]-style example: a bimodal item vs a safe middle
        // item. The bimodal one wins Top-1 most often (U-Top1 picks it),
        // but its expected rank is dragged down by the bad mode.
        let mut rel = UncertainRelation::new(1.0, 4);
        rel.push_uncertain(d(&[0.45, 0.0, 0.0, 0.0, 0.55])); // bimodal: 0 or 4
        rel.push_certain(3); // safe: always 3
        rel.push_certain(2);
        let (set, _) = u_topk(&rel, 1).unwrap();
        assert_eq!(set, vec![0], "U-Top1 picks the gambler");
        let er = expected_rank_topk(&rel, 1);
        assert_eq!(er[0].0, 1, "expected rank prefers the safe item");
    }

    #[test]
    fn compare_semantics_bundles_everything() {
        let rel = table_1a();
        let cmp = compare_semantics(&rel, 2, 0.5);
        assert_eq!(cmp.k, 2);
        assert_eq!(cmp.u_kranks.len(), 2);
        assert_eq!(cmp.expected_rank.len(), 2);
        assert_eq!(cmp.ptk_threshold, 0.5);
        // All semantics agree that f3 is a Top-2 member here.
        assert!(cmp.u_topk.0.contains(&2));
        assert!(cmp.expected_rank.iter().any(|&(f, _)| f == 2));
    }

    #[test]
    fn compare_semantics_matches_the_enumeration_oracles() {
        let rel = table_1a();
        let cmp = compare_semantics(&rel, 2, 0.5);
        let (bf_set, bf_p) = u_topk(&rel, 2).unwrap();
        assert_eq!(cmp.u_topk.0, bf_set);
        assert!((cmp.u_topk.1 - bf_p).abs() < 1e-9);
        let bf_ranks = u_kranks(&rel, 2).unwrap();
        for (dp, bf) in cmp.u_kranks.iter().zip(&bf_ranks) {
            assert_eq!(dp.0, bf.0);
            assert!((dp.1 - bf.1).abs() < 1e-9);
        }
        assert_eq!(cmp.ptk, probabilistic_threshold_topk(&rel, 2, 0.5).unwrap());
    }
}
