//! The end-to-end Everest engine: Phase 1 + Phase 2 with full cost
//! accounting (Figure 1).
//!
//! [`Everest::prepare`] runs Phase 1 once per (video, scoring function);
//! the returned [`PreparedVideo`] then serves any number of frame-level or
//! window queries, each re-running Phase 2 on a fresh copy of `D0` (the
//! paper re-runs both phases per query; reusing Phase 1 across a parameter
//! sweep only removes redundant identical work — each query's reported
//! time still includes the full Phase-1 charge).

use crate::budget::Termination;
use crate::cleaner::{run_cleaner, CleanerConfig, CleaningOracle};
use crate::phase1::{run_phase1, Phase1Config, Phase1Output};
use crate::sim::{component, SimClock};
use crate::window::{build_window_relation, tumbling_windows, WindowCleaningOracle, WindowInfo};
use crate::xtuple::ItemId;
use everest_models::Oracle;
use everest_video::store::DecodeCostModel;
use everest_video::VideoStore;
use std::time::Instant;

/// The Everest engine entry point.
pub struct Everest;

impl Everest {
    /// Phase 1: builds the initial uncertain relation and proxy model.
    pub fn prepare(
        video: &dyn VideoStore,
        oracle: &dyn Oracle,
        cfg: &Phase1Config,
    ) -> PreparedVideo {
        let phase1 = run_phase1(video, oracle, cfg);
        PreparedVideo {
            phase1,
            n_frames: video.num_frames(),
        }
    }
}

/// Phase-1 artifacts bound to one video + scoring function.
#[derive(Debug, Clone)]
pub struct PreparedVideo {
    pub phase1: Phase1Output,
    n_frames: usize,
}

/// One returned Top-K item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultItem {
    /// Frame index (frame queries) or window start frame (window queries).
    pub frame: usize,
    /// Window frame range (frame queries report a 1-frame range).
    pub range: (usize, usize),
    /// Oracle-confirmed score (window queries: sampled mean).
    pub score: f64,
}

/// Full report of one query.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// The Top-K answer, best first. Every item is oracle-confirmed
    /// (certain-result condition).
    pub items: Vec<ResultItem>,
    /// `Pr(R̂ = R)` under possible-world semantics at termination.
    pub confidence: f64,
    /// Whether the confidence threshold was met.
    pub converged: bool,
    /// Why Phase 2 stopped (converged, or a degraded exit: budget,
    /// deadline, cancellation, oracle failure).
    pub termination: Termination,
    /// Simulated-time breakdown (Phase 1 + Phase 2), Table 8 style.
    pub clock: SimClock,
    /// Phase-2 iterations (select → clean rounds).
    pub iterations: usize,
    /// Items cleaned in Phase 2.
    pub cleaned: usize,
    /// Total items in the uncertain relation.
    pub total_items: usize,
    /// Oracle frames consumed by Phase-2 confirmation.
    pub oracle_frames: usize,
    /// Real wall time of Phase 2.
    pub phase2_wall: std::time::Duration,
}

impl QueryReport {
    /// Fraction of items cleaned during Phase 2 (Table 8b).
    pub fn pct_cleaned(&self) -> f64 {
        if self.total_items == 0 {
            0.0
        } else {
            self.cleaned as f64 / self.total_items as f64
        }
    }

    /// Total simulated end-to-end latency, seconds.
    pub fn sim_seconds(&self) -> f64 {
        self.clock.total()
    }

    /// Answer frame ids (or window start frames).
    pub fn frames(&self) -> Vec<usize> {
        self.items.iter().map(|i| i.frame).collect()
    }
}

/// Phase-2 oracle adapter for frame queries: item id = retained position.
struct FrameCleaningOracle<'a> {
    oracle: &'a dyn Oracle,
    retained: &'a [usize],
    step: f64,
    max_bucket: usize,
    frames_scored: usize,
    trace: Vec<usize>,
    /// Oracle overhead (fault penalties, backoff) already accumulated
    /// when this query started; `sim_seconds_spent` reports the delta.
    overhead0: f64,
}

impl FrameCleaningOracle<'_> {
    fn buckets(&self, scores: &[f64]) -> Vec<u32> {
        scores
            .iter()
            .map(|&s| ((s / self.step).round().max(0.0) as usize).min(self.max_bucket) as u32)
            .collect()
    }

    /// Fault/backoff overhead charged by the wrapped oracle during this
    /// query, in simulated seconds.
    fn overhead(&self) -> f64 {
        self.oracle.sim_overhead_seconds() - self.overhead0
    }
}

impl CleaningOracle for FrameCleaningOracle<'_> {
    fn clean_batch(&mut self, items: &[ItemId]) -> Vec<u32> {
        let frames: Vec<usize> = items.iter().map(|&i| self.retained[i]).collect();
        let scores = self.oracle.score_batch(&frames);
        self.frames_scored += frames.len();
        self.trace.extend_from_slice(&frames);
        self.buckets(&scores)
    }

    fn try_clean_batch(
        &mut self,
        items: &[ItemId],
    ) -> Result<Vec<u32>, everest_models::OracleError> {
        let frames: Vec<usize> = items.iter().map(|&i| self.retained[i]).collect();
        let scores = self.oracle.try_score_batch(&frames)?;
        self.frames_scored += frames.len();
        self.trace.extend_from_slice(&frames);
        Ok(self.buckets(&scores))
    }

    fn sim_seconds_spent(&self) -> f64 {
        self.frames_scored as f64 * self.oracle.cost_per_frame() + self.overhead()
    }
}

impl PreparedVideo {
    /// Rebuilds a prepared video from persisted Phase-1 artifacts (see
    /// `crate::ingest`). The caller vouches that `phase1` was produced for
    /// a video of `n_frames` frames.
    pub fn from_parts(phase1: Phase1Output, n_frames: usize) -> Self {
        PreparedVideo { phase1, n_frames }
    }

    /// Number of frames of the underlying video.
    pub fn n_frames(&self) -> usize {
        self.n_frames
    }

    /// Runs a frame-level Top-K query (Phase 2).
    pub fn query_topk(
        &self,
        oracle: &dyn Oracle,
        k: usize,
        thres: f64,
        cleaner: &CleanerConfig,
    ) -> QueryReport {
        // lint:allow(det-wallclock): feeds the reported wall_time stat
        // only; query results never branch on wall time.
        let started = Instant::now();
        let mut relation = self.phase1.relation.clone();
        let retained = self.phase1.segments.retained();
        let mut cleaning = FrameCleaningOracle {
            oracle,
            retained,
            step: relation.step(),
            max_bucket: relation.max_bucket(),
            frames_scored: 0,
            trace: Vec::new(),
            overhead0: oracle.sim_overhead_seconds(),
        };
        let cfg = CleanerConfig {
            k,
            thres,
            ..cleaner.clone()
        };
        let outcome = run_cleaner(&mut relation, &mut cleaning, &cfg);

        let mut clock = self.phase1.clock.clone();
        let decode = DecodeCostModel::default();
        clock.charge(
            component::CONFIRM,
            cleaning.frames_scored as f64 * oracle.cost_per_frame()
                + cleaning.overhead()
                + decode.trace_cost(&cleaning.trace),
        );
        clock.charge(component::SELECT, outcome.select_time.as_secs_f64());

        let items = outcome
            .topk
            .iter()
            .map(|&id| {
                let frame = retained[id];
                let bucket = relation.certain_bucket(id).expect("answer is certain");
                ResultItem {
                    frame,
                    range: (frame, frame + 1),
                    score: relation.bucket_to_score(bucket),
                }
            })
            .collect();
        QueryReport {
            items,
            confidence: outcome.confidence,
            converged: outcome.converged,
            termination: outcome.termination,
            clock,
            iterations: outcome.iterations,
            cleaned: outcome.cleaned,
            total_items: relation.len(),
            oracle_frames: cleaning.frames_scored,
            phase2_wall: started.elapsed(),
        }
    }

    /// Runs a Top-K window query (§3.4): tumbling windows of `window_len`
    /// frames, confirmed by sampling `sample_frac` of each window's frames.
    pub fn query_topk_windows(
        &self,
        oracle: &dyn Oracle,
        k: usize,
        thres: f64,
        window_len: usize,
        sample_frac: f64,
        cleaner: &CleanerConfig,
    ) -> QueryReport {
        let windows = tumbling_windows(self.n_frames, window_len);
        self.query_topk_over_windows(oracle, k, thres, windows, sample_frac, cleaner)
    }

    /// Runs a Top-K query over *sliding* windows of `window_len` frames
    /// hopping by `slide` — the sliding extension of §3.4 (see
    /// [`crate::window::sliding_windows`] for the independence caveat when
    /// `slide < window_len`).
    pub fn query_topk_sliding_windows(
        &self,
        oracle: &dyn Oracle,
        k: usize,
        thres: f64,
        window_len: usize,
        slide: usize,
        sample_frac: f64,
        cleaner: &CleanerConfig,
    ) -> QueryReport {
        let windows = crate::window::sliding_windows(self.n_frames, window_len, slide);
        self.query_topk_over_windows(oracle, k, thres, windows, sample_frac, cleaner)
    }

    /// Shared window-query body over an explicit window list.
    fn query_topk_over_windows(
        &self,
        oracle: &dyn Oracle,
        k: usize,
        thres: f64,
        windows: Vec<crate::window::WindowInfo>,
        sample_frac: f64,
        cleaner: &CleanerConfig,
    ) -> QueryReport {
        // lint:allow(det-wallclock): feeds the reported wall_time stat
        // only; window-query results never branch on wall time.
        let started = Instant::now();
        // Window scores are means of frame scores: reuse the frame grid but
        // refine the step for sub-integer means.
        let step = self.phase1.relation.step() / 4.0;
        let max_bucket = (self.phase1.relation.max_bucket() * 4 + 4).min(4 * 400);
        let mut relation = build_window_relation(
            &self.phase1.mixtures,
            &self.phase1.segments,
            &windows,
            step,
            max_bucket,
        );
        let mut cleaning = WindowCleaningOracle::new(
            oracle,
            &windows,
            sample_frac,
            step,
            max_bucket,
            self.phase1_seed() ^ WINDOW_SAMPLE_SALT,
        );
        let cfg = CleanerConfig {
            k,
            thres,
            ..cleaner.clone()
        };
        let outcome = run_cleaner(&mut relation, &mut cleaning, &cfg);

        let mut clock = self.phase1.clock.clone();
        let decode = DecodeCostModel::default();
        clock.charge(
            component::CONFIRM,
            cleaning.frames_scored as f64 * (oracle.cost_per_frame() + decode.seq_cost * 4.0),
        );
        clock.charge(component::SELECT, outcome.select_time.as_secs_f64());

        let items = outcome
            .topk
            .iter()
            .map(|&wid| {
                let w = windows[wid];
                let bucket = relation.certain_bucket(wid).expect("answer is certain");
                ResultItem {
                    frame: w.start,
                    range: (w.start, w.end),
                    score: relation.bucket_to_score(bucket),
                }
            })
            .collect();
        QueryReport {
            items,
            confidence: outcome.confidence,
            converged: outcome.converged,
            termination: outcome.termination,
            clock,
            iterations: outcome.iterations,
            cleaned: outcome.cleaned,
            total_items: relation.len(),
            oracle_frames: cleaning.frames_scored,
            phase2_wall: started.elapsed(),
        }
    }

    /// The tumbling windows a window query of this length would use.
    pub fn windows(&self, window_len: usize) -> Vec<WindowInfo> {
        tumbling_windows(self.n_frames, window_len)
    }

    fn phase1_seed(&self) -> u64 {
        // derive a stable seed from phase-1 size characteristics
        (self.phase1.relation.len() as u64) << 20 | self.n_frames as u64
    }
}

const WINDOW_SAMPLE_SALT: u64 = 0x81D_7005;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate_topk, GroundTruth};
    use crate::phase1::Phase1Config;
    use everest_models::{counting_oracle, ExactScoreOracle, InstrumentedOracle};
    use everest_nn::train::TrainConfig;
    use everest_nn::HyperGrid;
    use everest_video::arrival::{ArrivalConfig, Timeline};
    use everest_video::scene::{SceneConfig, SyntheticVideo};

    fn tiny_setup() -> (SyntheticVideo, ExactScoreOracle) {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 1_500,
                ..ArrivalConfig::default()
            },
            29,
        );
        let v = SyntheticVideo::new(SceneConfig::default(), tl, 29, 30.0);
        let o = counting_oracle(&v);
        (v, o)
    }

    fn fast_phase1() -> Phase1Config {
        Phase1Config {
            sample_frac: 0.1,
            sample_cap: 150,
            sample_min: 32,
            grid: HyperGrid::single(3, 16),
            train: TrainConfig {
                epochs: 8,
                batch_size: 32,
                ..TrainConfig::default()
            },
            conv_channels: vec![6, 12],
            threads: 4,
            ..Phase1Config::default()
        }
    }

    #[test]
    fn end_to_end_frame_query_meets_threshold() {
        let (v, o) = tiny_setup();
        let oracle = InstrumentedOracle::new(o);
        let prepared = Everest::prepare(&v, &oracle, &fast_phase1());
        let report = prepared.query_topk(&oracle, 10, 0.9, &CleanerConfig::default());
        assert!(report.converged);
        assert!(report.confidence >= 0.9);
        assert_eq!(report.items.len(), 10);
        // certain-result condition: every reported score is the exact score
        for item in &report.items {
            let exact = oracle.inner().all_scores()[item.frame];
            assert_eq!(item.score, exact, "frame {}", item.frame);
        }
        // quality against exact ground truth over retained frames
        let retained = prepared.phase1.segments.retained();
        let truth = GroundTruth::new(
            retained
                .iter()
                .map(|&t| oracle.inner().all_scores()[t])
                .collect(),
        );
        let answer_pos: Vec<usize> = report
            .items
            .iter()
            .map(|i| retained.iter().position(|&t| t == i.frame).unwrap())
            .collect();
        let q = evaluate_topk(&truth, &answer_pos, 10);
        assert!(q.precision >= 0.8, "precision {}", q.precision);
    }

    #[test]
    fn sim_clock_includes_all_components() {
        let (v, o) = tiny_setup();
        let oracle = InstrumentedOracle::new(o);
        let prepared = Everest::prepare(&v, &oracle, &fast_phase1());
        let report = prepared.query_topk(&oracle, 5, 0.9, &CleanerConfig::default());
        assert!(report.clock.component(component::LABEL) > 0.0);
        assert!(report.clock.component(component::TRAIN) > 0.0);
        assert!(report.clock.component(component::POPULATE) > 0.0);
        assert!(report.sim_seconds() > 0.0);
        assert!(report.pct_cleaned() <= 1.0);
    }

    #[test]
    fn higher_k_does_not_break() {
        let (v, o) = tiny_setup();
        let oracle = InstrumentedOracle::new(o);
        let prepared = Everest::prepare(&v, &oracle, &fast_phase1());
        for k in [1, 5, 25] {
            let report = prepared.query_topk(&oracle, k, 0.9, &CleanerConfig::default());
            assert_eq!(report.items.len(), k);
            assert!(report.converged, "k={k}");
            // descending scores
            let scores: Vec<f64> = report.items.iter().map(|i| i.score).collect();
            assert!(scores.windows(2).all(|w| w[0] >= w[1]), "k={k}: {scores:?}");
        }
    }

    #[test]
    fn window_query_end_to_end() {
        let (v, o) = tiny_setup();
        let oracle = InstrumentedOracle::new(o);
        let prepared = Everest::prepare(&v, &oracle, &fast_phase1());
        let report =
            prepared.query_topk_windows(&oracle, 5, 0.9, 30, 0.5, &CleanerConfig::default());
        assert!(report.converged);
        assert_eq!(report.items.len(), 5);
        for item in &report.items {
            assert_eq!(
                item.range.1 - item.range.0,
                30.min(item.range.1 - item.range.0)
            );
            assert!(item.range.0 % 30 == 0, "window must start on a boundary");
        }
        // sampled window means should be near the exact window means
        let exact =
            crate::window::exact_window_scores(oracle.inner().all_scores(), &prepared.windows(30));
        for item in &report.items {
            let wid = item.frame / 30;
            assert!(
                (item.score - exact[wid]).abs() <= 2.0,
                "window {wid}: sampled {} vs exact {}",
                item.score,
                exact[wid]
            );
        }
    }

    #[test]
    fn queries_are_reusable_and_deterministic() {
        let (v, o) = tiny_setup();
        let oracle = InstrumentedOracle::new(o);
        let prepared = Everest::prepare(&v, &oracle, &fast_phase1());
        let a = prepared.query_topk(&oracle, 5, 0.9, &CleanerConfig::default());
        let b = prepared.query_topk(&oracle, 5, 0.9, &CleanerConfig::default());
        assert_eq!(a.frames(), b.frames());
        assert_eq!(a.confidence, b.confidence);
        assert_eq!(a.cleaned, b.cleaned);
    }
}
