//! The uncertain relation: a collection of x-tuples (§2, Table 1a).
//!
//! Every item (frame in frame-level queries, window in window queries) is
//! either **uncertain** — carrying the discrete score distribution produced
//! by Phase 1 — or **certain** — its exact bucket is known, either because
//! it was oracle-labelled while collecting training data or because Phase 2
//! cleaned it. The certain-result condition (§3) means query answers are
//! drawn exclusively from the certain subset.

use crate::dist::DiscreteDist;
use serde::{Deserialize, Serialize};

/// Identifier of an item within an [`UncertainRelation`] (dense index).
pub type ItemId = usize;

/// The state of one x-tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ItemState {
    /// Score distribution from the proxy model.
    Uncertain(DiscreteDist),
    /// Exact bucket confirmed by the oracle.
    Certain(u32),
}

/// An uncertain relation over a shared quantization grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertainRelation {
    /// Score units per bucket (1.0 for counting scores).
    step: f64,
    /// All buckets live in `0 ..= max_bucket`.
    max_bucket: usize,
    items: Vec<ItemState>,
    /// Original (pre-cleaning) distributions of items that started
    /// uncertain, kept for Eq. 3-style analysis and diagnostics.
    num_certain: usize,
}

impl UncertainRelation {
    pub fn new(step: f64, max_bucket: usize) -> Self {
        assert!(step > 0.0, "step must be positive");
        UncertainRelation {
            step,
            max_bucket,
            items: Vec::new(),
            num_certain: 0,
        }
    }

    pub fn step(&self) -> f64 {
        self.step
    }

    pub fn max_bucket(&self) -> usize {
        self.max_bucket
    }

    /// Adds an uncertain item; the distribution must match the grid.
    pub fn push_uncertain(&mut self, dist: DiscreteDist) -> ItemId {
        assert_eq!(
            dist.max_bucket(),
            self.max_bucket,
            "distribution grid mismatch (item {} vs relation {})",
            dist.max_bucket(),
            self.max_bucket
        );
        self.items.push(ItemState::Uncertain(dist));
        self.items.len() - 1
    }

    /// Adds an already-certain item (e.g. a frame labelled while collecting
    /// CMDN training data — §3.2: "no work is wasted").
    pub fn push_certain(&mut self, bucket: u32) -> ItemId {
        assert!(bucket as usize <= self.max_bucket, "bucket beyond grid");
        self.items.push(ItemState::Certain(bucket));
        self.num_certain += 1;
        self.items.len() - 1
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn num_certain(&self) -> usize {
        self.num_certain
    }

    pub fn num_uncertain(&self) -> usize {
        self.items.len() - self.num_certain
    }

    pub fn is_certain(&self, id: ItemId) -> bool {
        matches!(self.items[id], ItemState::Certain(_))
    }

    /// The exact bucket of a certain item; `None` while uncertain.
    pub fn certain_bucket(&self, id: ItemId) -> Option<u32> {
        match &self.items[id] {
            ItemState::Certain(b) => Some(*b),
            ItemState::Uncertain(_) => None,
        }
    }

    /// The distribution of an uncertain item; `None` once certain.
    pub fn dist(&self, id: ItemId) -> Option<&DiscreteDist> {
        match &self.items[id] {
            ItemState::Uncertain(d) => Some(d),
            ItemState::Certain(_) => None,
        }
    }

    /// `F_f(t)` for any item: certain items are step functions.
    pub fn cdf(&self, id: ItemId, bucket: usize) -> f64 {
        match &self.items[id] {
            ItemState::Uncertain(d) => d.cdf(bucket),
            ItemState::Certain(b) => {
                if (*b as usize) <= bucket {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// `Pr(S_f = bucket)` for any item: certain items are point masses.
    pub fn pmf(&self, id: ItemId, bucket: usize) -> f64 {
        match &self.items[id] {
            ItemState::Uncertain(d) => d.pmf(bucket),
            ItemState::Certain(b) => {
                if *b as usize == bucket {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// `(lowest, highest)` bucket with positive mass for any item; a
    /// certain item's support is the single bucket it was confirmed at.
    pub fn support(&self, id: ItemId) -> (usize, usize) {
        match &self.items[id] {
            ItemState::Uncertain(d) => (d.support_min(), d.support_max()),
            ItemState::Certain(b) => (*b as usize, *b as usize),
        }
    }

    /// Marks an item certain with its oracle-confirmed bucket, returning its
    /// previous distribution. Panics if it was already certain.
    pub fn clean(&mut self, id: ItemId, bucket: u32) -> DiscreteDist {
        assert!(bucket as usize <= self.max_bucket, "bucket beyond grid");
        match std::mem::replace(&mut self.items[id], ItemState::Certain(bucket)) {
            ItemState::Uncertain(d) => {
                self.num_certain += 1;
                d
            }
            ItemState::Certain(_) => panic!("item {id} cleaned twice"),
        }
    }

    /// Ids of all certain items.
    pub fn certain_ids(&self) -> Vec<ItemId> {
        (0..self.items.len())
            .filter(|&i| self.is_certain(i))
            .collect()
    }

    /// Ids of all uncertain items.
    pub fn uncertain_ids(&self) -> Vec<ItemId> {
        (0..self.items.len())
            .filter(|&i| !self.is_certain(i))
            .collect()
    }

    /// Converts a bucket index to score units.
    pub fn bucket_to_score(&self, bucket: u32) -> f64 {
        bucket as f64 * self.step
    }

    /// Converts a score to the nearest bucket (clamped to the grid).
    pub fn score_to_bucket(&self, score: f64) -> u32 {
        ((score / self.step).round().max(0.0) as usize).min(self.max_bucket) as u32
    }

    /// Expected bucket of any item (exact bucket when certain).
    pub fn mean_bucket(&self, id: ItemId) -> f64 {
        match &self.items[id] {
            ItemState::Uncertain(d) => d.mean_bucket(),
            ItemState::Certain(b) => *b as f64,
        }
    }
}

#[cfg(test)]
pub(crate) use tests::table_1a;

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(masses: &[f64]) -> DiscreteDist {
        DiscreteDist::from_masses(masses)
    }

    /// The running example of Table 1a: three frames over buckets {0,1,2}.
    pub(crate) fn table_1a() -> UncertainRelation {
        let mut r = UncertainRelation::new(1.0, 2);
        r.push_uncertain(dist(&[0.78, 0.21, 0.01]));
        r.push_uncertain(dist(&[0.49, 0.42, 0.09]));
        r.push_uncertain(dist(&[0.16, 0.48, 0.36]));
        r
    }

    #[test]
    fn push_and_query() {
        let r = table_1a();
        assert_eq!(r.len(), 3);
        assert_eq!(r.num_uncertain(), 3);
        assert_eq!(r.num_certain(), 0);
        assert!((r.cdf(0, 1) - 0.99).abs() < 1e-12);
        assert!((r.cdf(2, 0) - 0.16).abs() < 1e-12);
    }

    #[test]
    fn clean_moves_item_to_certain() {
        let mut r = table_1a();
        let old = r.clean(2, 0); // Table 5: Oracle(f3) returns 0
        assert!((old.pmf(1) - 0.48).abs() < 1e-12);
        assert!(r.is_certain(2));
        assert_eq!(r.certain_bucket(2), Some(0));
        assert_eq!(r.num_certain(), 1);
        assert_eq!(r.certain_ids(), vec![2]);
        assert_eq!(r.uncertain_ids(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "cleaned twice")]
    fn double_clean_panics() {
        let mut r = table_1a();
        r.clean(0, 1);
        r.clean(0, 1);
    }

    #[test]
    fn certain_cdf_is_step_function() {
        let mut r = UncertainRelation::new(1.0, 3);
        r.push_certain(2);
        assert_eq!(r.cdf(0, 1), 0.0);
        assert_eq!(r.cdf(0, 2), 1.0);
        assert_eq!(r.cdf(0, 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "grid mismatch")]
    fn grid_mismatch_rejected() {
        let mut r = UncertainRelation::new(1.0, 2);
        r.push_uncertain(dist(&[0.5, 0.5])); // max_bucket 1, relation expects 2
    }

    #[test]
    fn score_bucket_roundtrip() {
        let r = UncertainRelation::new(0.5, 10);
        assert_eq!(r.score_to_bucket(2.3), 5); // 2.3/0.5 = 4.6 → 5
        assert_eq!(r.bucket_to_score(5), 2.5);
        assert_eq!(r.score_to_bucket(-3.0), 0);
        assert_eq!(r.score_to_bucket(1e9), 10);
    }

    #[test]
    fn pmf_and_support_for_both_states() {
        let mut r = UncertainRelation::new(1.0, 3);
        r.push_uncertain(dist(&[0.0, 0.4, 0.6, 0.0]));
        r.push_certain(2);
        assert!((r.pmf(0, 1) - 0.4).abs() < 1e-12);
        assert_eq!(r.pmf(0, 0), 0.0);
        assert_eq!(r.support(0), (1, 2));
        assert_eq!(r.pmf(1, 2), 1.0);
        assert_eq!(r.pmf(1, 1), 0.0);
        assert_eq!(r.support(1), (2, 2));
    }

    #[test]
    fn mean_bucket_for_both_states() {
        let mut r = UncertainRelation::new(1.0, 2);
        r.push_uncertain(dist(&[0.0, 0.5, 0.5]));
        r.push_certain(2);
        assert!((r.mean_bucket(0) - 1.5).abs() < 1e-12);
        assert_eq!(r.mean_bucket(1), 2.0);
    }
}
