//! `Select-candidate` (§3.3.2): choosing the most promising uncertain item
//! to clean next.
//!
//! For each uncertain item `f`, the expected confidence after cleaning it,
//! `E[X_f]` (Eq. 4–6), is computed in closed form from the item's own CDF
//! and the joint CDF excluding it. Scanning every item per iteration is too
//! slow, so items are examined in descending order of the **sort factor**
//!
//! ```text
//! ψ_j(f) = (1 − F_f(S_k_j)) / F_f(S_p_j)
//! ```
//!
//! whose induced upper bound `U(X_f) = p̂_i + γ_i·ψ_j(f)` (Eq. 7/8) permits
//! early stopping. ψ is computed lazily at iteration `j ≤ i`: since `S_k`
//! and `S_p` only grow over iterations, `ψ_j(f) ≥ ψ_i(f)`, so a stale ψ
//! still yields a valid upper bound. (The paper's §3.3.2 states the
//! inequality as `ψ_j ≤ ψ_i`; the monotonicity that actually holds — and
//! that the bound requires — is `ψ_j ≥ ψ_i`, which is what we implement.)
//!
//! The re-sort schedule follows the paper: every `resort_period` (10)
//! iterations for the first 100 iterations, then only when `S_k` or `S_p`
//! change.

use crate::dist::DiscreteDist;
use crate::topkprob::JointCdf;
use crate::xtuple::{ItemId, UncertainRelation};

/// The sort factor ψ (Eq. 7). `F_f(S_p) = 0` maps to +∞: such an item is
/// certainly above the penultimate threshold and must be cleaned first.
pub fn psi(dist: &DiscreteDist, s_k: usize, s_p: usize) -> f64 {
    let fk = dist.cdf(s_k);
    let fp = dist.cdf(s_p);
    if fp == 0.0 {
        f64::INFINITY
    } else {
        (1.0 - fk) / fp
    }
}

/// Eq. 6: expected confidence of the *next* iteration if item `id` is
/// cleaned now, marginalising over its possible exact scores.
///
/// `s_k` is the current threshold bucket (K-th certain score), `s_p` the
/// penultimate bucket ((K−1)-th certain score; pass the grid maximum when
/// K = 1, where any score above `s_k` becomes the new threshold).
pub fn expected_confidence(
    rel: &UncertainRelation,
    h: &JointCdf,
    id: ItemId,
    s_k: usize,
    s_p: usize,
) -> f64 {
    debug_assert!(s_k <= s_p, "threshold above penultimate ({s_k} > {s_p})");
    let d = rel
        .dist(id)
        .expect("expected_confidence needs an uncertain item");
    // Case s ≤ S_k: answer unchanged, f's uncertainty discounted.
    let mut e = d.cdf(s_k) * h.value_excluding(d, s_k);
    // Case S_k < s ≤ S_p: f becomes the new K-th; threshold moves to s.
    let hi = s_p.min(d.support_max());
    for s in (s_k + 1)..=hi {
        let p = d.pmf(s);
        if p > 0.0 {
            e += p * h.value_excluding(d, s);
        }
    }
    // Case s > S_p: the old penultimate becomes the threshold.
    let tail = 1.0 - d.cdf(s_p);
    if tail > 0.0 {
        e += tail * h.value_excluding(d, s_p);
    }
    e
}

/// Statistics of the candidate-selection machinery (early-stop ablation).
#[derive(Debug, Clone, Copy, Default)]
pub struct SelectStats {
    /// Total `E[X_f]` evaluations performed.
    pub examined: u64,
    /// Total candidate-selection invocations.
    pub invocations: u64,
    /// Number of ψ re-sorts.
    pub resorts: u64,
}

/// Stateful candidate selector with the lazy ψ-ordering of §3.3.2.
#[derive(Debug, Clone)]
pub struct CandidateSelector {
    /// Uncertain item ids in descending stale-ψ order.
    order: Vec<ItemId>,
    /// Stale ψ values aligned with `order`.
    psi: Vec<f64>,
    /// The (s_k, s_p) the current ordering was computed at.
    sorted_at: Option<(usize, usize)>,
    /// Iterations seen so far (the paper's `i`).
    iteration: usize,
    /// Re-sort period within the first 100 iterations.
    resort_period: usize,
    pub stats: SelectStats,
    /// When true, every call re-sorts and scans all items (baseline for the
    /// `ablation_earlystop` bench).
    pub exhaustive: bool,
}

impl CandidateSelector {
    pub fn new(rel: &UncertainRelation, resort_period: usize) -> Self {
        assert!(resort_period >= 1);
        CandidateSelector {
            order: rel.uncertain_ids(),
            psi: Vec::new(),
            sorted_at: None,
            iteration: 0,
            resort_period,
            stats: SelectStats::default(),
            exhaustive: false,
        }
    }

    /// The frame order the prefetcher should warm (§3.5 "Prefetching"):
    /// descending stale ψ, i.e. the order candidates will be examined in.
    pub fn prefetch_order(&self) -> &[ItemId] {
        &self.order
    }

    fn needs_resort(&self, s_k: usize, s_p: usize) -> bool {
        match self.sorted_at {
            None => true,
            Some(at) => {
                if self.exhaustive {
                    return true;
                }
                if self.iteration < 100 {
                    self.iteration.is_multiple_of(self.resort_period)
                } else {
                    at != (s_k, s_p)
                }
            }
        }
    }

    fn resort(&mut self, rel: &UncertainRelation, s_k: usize, s_p: usize) {
        // Drop cleaned items and recompute ψ at the current thresholds.
        self.order.retain(|&id| !rel.is_certain(id));
        let mut keyed: Vec<(f64, ItemId)> = self
            .order
            .iter()
            .map(|&id| (psi(rel.dist(id).expect("uncertain"), s_k, s_p), id))
            .collect();
        // Descending ψ, ties by ascending id for determinism.
        keyed.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        self.order = keyed.iter().map(|&(_, id)| id).collect();
        self.psi = keyed.into_iter().map(|(p, _)| p).collect();
        self.sorted_at = Some((s_k, s_p));
        self.stats.resorts += 1;
    }

    /// Selects up to `batch` uncertain items maximising `E[X_f]`, using the
    /// upper bound for early stopping.
    pub fn select_batch(
        &mut self,
        rel: &UncertainRelation,
        h: &JointCdf,
        s_k: usize,
        s_p: usize,
        batch: usize,
    ) -> Vec<ItemId> {
        assert!(batch >= 1);
        self.iteration += 1;
        self.stats.invocations += 1;
        if self.needs_resort(s_k, s_p) {
            self.resort(rel, s_k, s_p);
        }
        let p_hat = h.value(s_k);
        let gamma = h.value(s_p);

        // Top-`batch` E values found so far, kept sorted ascending so the
        // worst kept value is `best[0]`.
        let mut best: Vec<(f64, ItemId)> = Vec::with_capacity(batch + 1);
        for pos in 0..self.order.len() {
            let id = self.order[pos];
            if rel.is_certain(id) {
                continue; // cleaned since the last re-sort
            }
            let stale_psi = self.psi.get(pos).copied().unwrap_or(f64::INFINITY);
            let bound = if stale_psi.is_infinite() {
                f64::INFINITY
            } else {
                p_hat + gamma * stale_psi
            };
            if !self.exhaustive && best.len() == batch && bound <= best[0].0 {
                break; // every remaining item has a smaller upper bound
            }
            let e = expected_confidence(rel, h, id, s_k, s_p);
            self.stats.examined += 1;
            if best.len() < batch {
                best.push((e, id));
                best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            } else if e > best[0].0 {
                best[0] = (e, id);
                best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            }
        }
        // Return in descending-E order.
        best.reverse();
        best.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DiscreteDist;

    fn d(masses: &[f64]) -> DiscreteDist {
        DiscreteDist::from_masses(masses)
    }

    /// A relation with a couple of certain items and varied uncertain ones.
    fn setup() -> (UncertainRelation, JointCdf) {
        let mut rel = UncertainRelation::new(1.0, 4);
        rel.push_certain(3); // id 0 — top certain
        rel.push_certain(2); // id 1 — threshold for K = 2
        rel.push_uncertain(d(&[0.1, 0.1, 0.2, 0.3, 0.3])); // id 2: likely high
        rel.push_uncertain(d(&[0.7, 0.2, 0.1, 0.0, 0.0])); // id 3: likely low
        rel.push_uncertain(d(&[0.0, 0.0, 0.0, 0.0, 1.0])); // id 4: certainly 4 > s_p
        let h = JointCdf::build(&rel);
        (rel, h)
    }

    #[test]
    fn psi_orders_promising_items_first() {
        let (rel, _) = setup();
        // K = 2: s_k = 2 (bucket of id 1), s_p = 3 (bucket of id 0)
        let p2 = psi(rel.dist(2).unwrap(), 2, 3);
        let p3 = psi(rel.dist(3).unwrap(), 2, 3);
        let p4 = psi(rel.dist(4).unwrap(), 2, 3);
        assert!(p4.is_infinite(), "F(s_p)=0 item must sort first");
        assert!(p2 > p3, "high-scoring item should outrank low-scoring one");
    }

    #[test]
    fn expected_confidence_is_at_least_current() {
        let (rel, h) = setup();
        let p_hat = h.value(2);
        for id in [2, 3, 4] {
            let e = expected_confidence(&rel, &h, id, 2, 3);
            assert!(
                e >= p_hat - 1e-12,
                "cleaning cannot reduce expected confidence: id {id}, {e} < {p_hat}"
            );
            assert!(e <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn expected_confidence_matches_manual_enumeration() {
        // Manually marginalise: for each possible exact score s of the item,
        // the next-iteration confidence is computable from the other items.
        let (rel, h) = setup();
        let id = 2;
        let dist = rel.dist(id).unwrap().clone();
        let mut manual = 0.0;
        for s in 0..=4usize {
            let p = dist.pmf(s);
            if p == 0.0 {
                continue;
            }
            // Simulate cleaning id → s on a copy.
            let mut rel2 = rel.clone();
            let mut h2 = h.clone();
            let old = rel2.clean(id, s as u32);
            h2.remove(&old);
            // New certain set for K=2: buckets {3, 2, s}. Threshold = 2nd.
            let mut certain: Vec<u32> = vec![3, 2, s as u32];
            certain.sort_unstable_by(|a, b| b.cmp(a));
            let new_sk = certain[1] as usize;
            manual += p * crate::topkprob::topk_prob(&h2, new_sk);
        }
        let fast = expected_confidence(&rel, &h, id, 2, 3);
        assert!(
            (fast - manual).abs() < 1e-12,
            "fast {fast} vs manual {manual}"
        );
    }

    #[test]
    fn select_batch_prefers_must_clean_items() {
        let (rel, h) = setup();
        let mut sel = CandidateSelector::new(&rel, 10);
        let batch = sel.select_batch(&rel, &h, 2, 3, 1);
        // id 4 forces H(s_k) = 0: cleaning it is the only way to make progress,
        // and its E[X] dominates.
        assert_eq!(batch, vec![4]);
    }

    #[test]
    fn select_batch_returns_descending_e() {
        let (rel, h) = setup();
        let mut sel = CandidateSelector::new(&rel, 10);
        let batch = sel.select_batch(&rel, &h, 2, 3, 3);
        assert_eq!(batch.len(), 3);
        let es: Vec<f64> = batch
            .iter()
            .map(|&id| expected_confidence(&rel, &h, id, 2, 3))
            .collect();
        assert!(
            es.windows(2).all(|w| w[0] >= w[1] - 1e-12),
            "not descending: {es:?}"
        );
    }

    #[test]
    fn early_stop_agrees_with_exhaustive_scan() {
        let (rel, h) = setup();
        let mut lazy = CandidateSelector::new(&rel, 10);
        let mut full = CandidateSelector::new(&rel, 10);
        full.exhaustive = true;
        let a = lazy.select_batch(&rel, &h, 2, 3, 2);
        let b = full.select_batch(&rel, &h, 2, 3, 2);
        assert_eq!(a, b);
        assert!(lazy.stats.examined <= full.stats.examined);
    }

    #[test]
    fn selector_skips_cleaned_items() {
        let (mut rel, mut h) = setup();
        let mut sel = CandidateSelector::new(&rel, 10);
        let first = sel.select_batch(&rel, &h, 2, 3, 1)[0];
        let old = rel.clean(first, 4);
        h.remove(&old);
        let second = sel.select_batch(&rel, &h, 2, 4, 1)[0];
        assert_ne!(first, second);
        assert!(!rel.is_certain(second));
    }

    #[test]
    fn resort_schedule_matches_paper() {
        let (rel, h) = setup();
        let mut sel = CandidateSelector::new(&rel, 10);
        // 30 iterations with unchanged thresholds: initial sort + every 10th.
        for _ in 0..30 {
            let _ = sel.select_batch(&rel, &h, 2, 3, 1);
        }
        // iterations 1..=30: sorts at i=1 (initial), i=10, 20, 30
        assert_eq!(sel.stats.resorts, 4, "resorts: {}", sel.stats.resorts);
    }

    #[test]
    fn late_iterations_resort_only_on_threshold_change() {
        let (rel, h) = setup();
        let mut sel = CandidateSelector::new(&rel, 10);
        for _ in 0..120 {
            let _ = sel.select_batch(&rel, &h, 2, 3, 1);
        }
        let resorts_before = sel.stats.resorts;
        // unchanged thresholds → no resort
        let _ = sel.select_batch(&rel, &h, 2, 3, 1);
        assert_eq!(sel.stats.resorts, resorts_before);
        // changed threshold → resort
        let _ = sel.select_batch(&rel, &h, 3, 3, 1);
        assert_eq!(sel.stats.resorts, resorts_before + 1);
    }

    #[test]
    fn k1_uses_grid_max_as_penultimate() {
        let mut rel = UncertainRelation::new(1.0, 4);
        rel.push_certain(1);
        rel.push_uncertain(d(&[0.2, 0.2, 0.2, 0.2, 0.2]));
        let h = JointCdf::build(&rel);
        // K = 1: s_p = max_bucket; expected confidence must marginalise over
        // all s > s_k as "new threshold = s".
        let e = expected_confidence(&rel, &h, 1, 1, 4);
        // After cleaning, the relation is fully certain → every branch gives 1.
        assert!((e - 1.0).abs() < 1e-12);
    }
}
