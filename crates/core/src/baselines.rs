//! The baselines of §4 "Baselines": scan-and-test, HOG, TinyYOLOv3-only,
//! CMDN-only, and Select-and-TopK.
//!
//! Each returns a Top-K frame set and a simulated latency, so Figure 4 can
//! compare speedup and result quality across methods.

use crate::pipeline::PreparedVideo;
use everest_models::{CheapScorer, ExactScoreOracle, Oracle};
use everest_video::store::DecodeCostModel;

/// Output of one baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    pub name: String,
    /// Top-K frame indices, best first.
    pub topk: Vec<usize>,
    /// Simulated end-to-end latency, seconds.
    pub sim_seconds: f64,
}

/// Top-K indices of a score table (descending score, ties by index).
pub fn topk_indices(scores: &[f64], k: usize) -> Vec<usize> {
    assert!(k >= 1 && k <= scores.len(), "K out of range");
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// The naive exact baseline: oracle on every frame (§1 "scan-and-test").
pub fn scan_and_test(oracle: &ExactScoreOracle, k: usize) -> BaselineResult {
    let n = oracle.num_frames();
    let decode = DecodeCostModel::default();
    BaselineResult {
        name: "scan-and-test".into(),
        topk: topk_indices(oracle.all_scores(), k),
        sim_seconds: n as f64 * oracle.cost_per_frame() + decode.sequential_scan_cost(n),
    }
}

/// A scan-every-frame cheap scorer (HOG / TinyYOLOv3): rank by its own
/// noisy scores.
pub fn cheap_scan(scorer: &dyn CheapScorer, k: usize) -> BaselineResult {
    let n = scorer.num_frames();
    let decode = DecodeCostModel::default();
    BaselineResult {
        name: scorer.name().to_string(),
        topk: topk_indices(&scorer.score_all(), k),
        sim_seconds: n as f64 * scorer.cost_per_frame() + decode.sequential_scan_cost(n),
    }
}

/// CMDN-only (§4 "Baselines"): Phase 1 alone, ranking retained frames by
/// the mean of their CMDN score distribution.
pub fn cmdn_only(prepared: &PreparedVideo, k: usize) -> BaselineResult {
    let retained = prepared.phase1.segments.retained();
    let means: Vec<f64> = prepared.phase1.mixtures.iter().map(|m| m.mean()).collect();
    let topk = topk_indices(&means, k)
        .into_iter()
        .map(|p| retained[p])
        .collect();
    BaselineResult {
        name: "cmdn-only".into(),
        topk,
        sim_seconds: prepared.phase1.clock.total(),
    }
}

/// One Select-and-TopK evaluation at a fixed `λ` (§4 "Baselines"): a
/// NoScope-style range selection `S_f ≥ λM`, followed by Top-K over the
/// oracle-confirmed candidates (false-positive rate 0, as in the paper's
/// configuration).
///
/// The paper's key finding is that selection-only systems "perform well on
/// point queries, but not on range queries": NoScope's specialised model is
/// a *binary classifier*, far less informative than a score distribution.
/// We simulate it as a weak noisy scorer (σ ≈ 2 score units — a shallow
/// binary CNN cannot count) whose decision threshold is lowered until the
/// configured false-negative rate is met; guaranteeing recall with a weak
/// classifier is exactly what blows the candidate set up toward the whole
/// video.
///
/// As in the paper, only oracle time is charged (specialised-model training
/// and scanning are excluded, mimicking offline ingestion à la Focus).
pub fn select_and_topk_at_lambda(
    prepared: &PreparedVideo,
    oracle: &ExactScoreOracle,
    k: usize,
    lambda: f64,
    fn_tolerance: f64,
) -> Option<BaselineResult> {
    use everest_video::util::{frame_rng, gaussian};
    let retained = prepared.phase1.segments.retained();
    let m = prepared.phase1.max_labeled_score;
    let threshold = lambda * m;
    // The specialised classifier's score = truth + N(0, σ_cls). To keep
    // Pr(miss | S_f ≥ λM) ≤ fn_tolerance, its decision threshold must drop
    // by z_{fn}·σ_cls below λM.
    const SIGMA_CLS: f64 = 2.0;
    let z = inverse_normal_tail(fn_tolerance);
    let decision = threshold - z * SIGMA_CLS;
    let mut candidates: Vec<usize> = Vec::new();
    for &frame in retained.iter() {
        let mut rng = frame_rng(0x5e1ec7, frame);
        let classifier_score = oracle.all_scores()[frame] + SIGMA_CLS * gaussian(&mut rng);
        if classifier_score >= decision {
            candidates.push(frame);
        }
    }
    if candidates.len() < k {
        return None; // λ too aggressive: the range query starves Top-K
    }
    // lint:allow(budget-discipline): the λ-sweep baseline deliberately
    // models the non-Everest competitor, which spends oracle calls with no
    // budget layer; it is benchmarked, never served.
    let scores = oracle.score_batch(&candidates);
    let order = topk_indices(&scores, k);
    let topk: Vec<usize> = order.into_iter().map(|i| candidates[i]).collect();
    let decode = DecodeCostModel::default();
    Some(BaselineResult {
        name: format!("select-and-topk(λ={lambda:.2})"),
        topk,
        sim_seconds: candidates.len() as f64 * oracle.cost_per_frame()
            + decode.trace_cost(&candidates),
    })
}

/// z such that `Pr(N(0,1) < -z) = tail` (one-sided), via bisection on the
/// normal CDF; used to place the classifier's decision threshold.
fn inverse_normal_tail(tail: f64) -> f64 {
    let tail = tail.clamp(1e-6, 0.5);
    let (mut lo, mut hi) = (0.0f64, 8.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let p = everest_nn::mixture::normal_cdf(-mid, 0.0, 1.0);
        if p > tail {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The paper's calibration protocol: sweep λ and report the run with the
/// largest speedup subject to precision ≥ `precision_target` (falling back
/// to the most precise run when none qualifies).
pub fn select_and_topk_calibrated(
    prepared: &PreparedVideo,
    oracle: &ExactScoreOracle,
    k: usize,
    precision_target: f64,
) -> BaselineResult {
    use crate::metrics::{evaluate_topk, GroundTruth};
    let truth = GroundTruth::new(oracle.all_scores().to_vec());
    let lambdas = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2];
    let mut best_ok: Option<(f64, BaselineResult)> = None; // (sim, result)
    let mut best_any: Option<(f64, BaselineResult)> = None; // (precision, result)
    for &lambda in &lambdas {
        let Some(result) = select_and_topk_at_lambda(prepared, oracle, k, lambda, 0.05) else {
            continue;
        };
        let q = evaluate_topk(&truth, &result.topk, k);
        if q.precision >= precision_target {
            let better = best_ok
                .as_ref()
                .is_none_or(|(s, _)| result.sim_seconds < *s);
            if better {
                best_ok = Some((result.sim_seconds, result.clone()));
            }
        }
        let better_any = best_any.as_ref().is_none_or(|(p, _)| q.precision > *p);
        if better_any {
            best_any = Some((q.precision, result));
        }
    }
    best_ok
        .map(|(_, r)| r)
        .or(best_any.map(|(_, r)| r))
        .expect("at least one λ must produce ≥ K candidates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate_topk, GroundTruth};
    use crate::phase1::Phase1Config;
    use crate::pipeline::Everest;
    use everest_models::{counting_oracle, HogScorer, InstrumentedOracle, TinyYoloScorer};
    use everest_nn::train::TrainConfig;
    use everest_nn::HyperGrid;
    use everest_video::arrival::{ArrivalConfig, Timeline};
    use everest_video::scene::{SceneConfig, SyntheticVideo};

    fn setup() -> (SyntheticVideo, ExactScoreOracle) {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 1_500,
                ..ArrivalConfig::default()
            },
            31,
        );
        let v = SyntheticVideo::new(SceneConfig::default(), tl, 31, 30.0);
        let o = counting_oracle(&v);
        (v, o)
    }

    fn fast_phase1() -> Phase1Config {
        Phase1Config {
            sample_frac: 0.1,
            sample_cap: 150,
            sample_min: 32,
            grid: HyperGrid::single(3, 16),
            train: TrainConfig {
                epochs: 8,
                batch_size: 32,
                ..TrainConfig::default()
            },
            conv_channels: vec![6, 12],
            threads: 4,
            ..Phase1Config::default()
        }
    }

    #[test]
    fn topk_indices_orders_and_breaks_ties() {
        let scores = vec![1.0, 5.0, 5.0, 3.0];
        assert_eq!(topk_indices(&scores, 3), vec![1, 2, 3]);
    }

    #[test]
    fn scan_and_test_is_exact() {
        let (_, o) = setup();
        let r = scan_and_test(&o, 10);
        let truth = GroundTruth::new(o.all_scores().to_vec());
        let q = evaluate_topk(&truth, &r.topk, 10);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.score_error, 0.0);
        assert!(r.sim_seconds > 0.0);
    }

    #[test]
    fn cheap_scorers_have_low_precision_for_topk() {
        let (_, o) = setup();
        let truth = GroundTruth::new(o.all_scores().to_vec());
        let hog = cheap_scan(&HogScorer::new(o.clone(), 3), 25);
        let tiny = cheap_scan(&TinyYoloScorer::new(o.clone(), 3), 25);
        let qh = evaluate_topk(&truth, &hog.topk, 25);
        let qt = evaluate_topk(&truth, &tiny.topk, 25);
        // The paper reports zero-to-near-zero precision for both.
        assert!(qh.precision < 0.6, "HOG precision {}", qh.precision);
        assert!(qt.precision < 0.8, "TinyYOLO precision {}", qt.precision);
        // and both are much faster than scan-and-test on simulated time
        let scan = scan_and_test(&o, 25);
        assert!(tiny.sim_seconds < scan.sim_seconds);
    }

    #[test]
    fn cmdn_only_uses_phase1_cost() {
        let (v, o) = setup();
        let oracle = InstrumentedOracle::new(o);
        let prepared = Everest::prepare(&v, &oracle, &fast_phase1());
        let r = cmdn_only(&prepared, 10);
        assert_eq!(r.topk.len(), 10);
        assert!((r.sim_seconds - prepared.phase1.clock.total()).abs() < 1e-12);
    }

    #[test]
    fn select_and_topk_lambda_tradeoff() {
        let (v, o) = setup();
        let oracle = InstrumentedOracle::new(o.clone());
        let prepared = Everest::prepare(&v, &oracle, &fast_phase1());
        // smaller λ ⇒ more candidates ⇒ more oracle time
        let lo = select_and_topk_at_lambda(&prepared, &o, 10, 0.2, 0.05);
        let hi = select_and_topk_at_lambda(&prepared, &o, 10, 0.8, 0.05);
        if let (Some(lo), Some(hi)) = (lo, hi) {
            assert!(lo.sim_seconds >= hi.sim_seconds);
        }
    }

    #[test]
    fn select_and_topk_calibrated_meets_target_or_best_effort() {
        let (v, o) = setup();
        let oracle = InstrumentedOracle::new(o.clone());
        let prepared = Everest::prepare(&v, &oracle, &fast_phase1());
        let r = select_and_topk_calibrated(&prepared, &o, 10, 0.9);
        assert_eq!(r.topk.len(), 10);
        assert!(r.sim_seconds > 0.0);
    }
}
