//! Brute-force possible-world semantics (Eq. 1) — the correctness oracle
//! for the fast path.
//!
//! §3 defines the confidence of a Top-K answer as the total probability of
//! the possible worlds in which the answer is (a) Top-K (Eq. 1). The fast
//! path (Eq. 2/3, [`crate::topkprob`]) is an algebraic simplification under
//! the certain-result condition; this module enumerates worlds explicitly
//! so tests (including property tests) can verify the equivalence on small
//! relations — the paper's Table 4 example included.
//!
//! Ties follow the paper's footnote 1: an answer `R̂` counts as Top-K in a
//! world when **no item outside `R̂` scores strictly higher than the lowest
//! score inside `R̂`**.
//!
//! Enumeration is guarded by [`MAX_WORLDS`]: oversized relations yield a
//! typed [`TooManyWorlds`] error instead of aborting, so callers can fall
//! back to a polynomial path — Eq. 2/3 in [`crate::topkprob`] for Everest's
//! own confidence, [`crate::semantics_dp`] for the §2 alternative
//! semantics.

use crate::xtuple::{ItemId, UncertainRelation};
use std::fmt;

/// Enumeration guard: relations with more possible worlds than this are
/// rejected (the caller should be using the fast path).
pub const MAX_WORLDS: u128 = 2_000_000;

/// Error: the relation's possible-world count exceeds [`MAX_WORLDS`], so
/// brute-force enumeration was refused. Recoverable — use the polynomial
/// paths ([`crate::topkprob`], [`crate::semantics_dp`]) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooManyWorlds {
    /// The offending world count (saturating; capped at `u128::MAX`).
    pub worlds: u128,
    /// The guard it exceeded ([`MAX_WORLDS`]).
    pub limit: u128,
}

impl fmt::Display for TooManyWorlds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "relation too large for brute-force enumeration ({} worlds > limit {}); \
             use the polynomial paths (topkprob / semantics_dp)",
            self.worlds, self.limit
        )
    }
}

impl std::error::Error for TooManyWorlds {}

/// Number of possible worlds of the relation (saturating product of the
/// per-item support sizes; certain items contribute a factor of 1).
pub fn count_worlds(rel: &UncertainRelation) -> u128 {
    let mut count: u128 = 1;
    for id in 0..rel.len() {
        let options = match rel.dist(id) {
            Some(d) => (d.support_max() - d.support_min() + 1) as u128,
            None => 1,
        };
        count = count.saturating_mul(options);
    }
    count
}

/// One fully instantiated world: a score bucket per item, plus its
/// probability.
#[derive(Debug, Clone)]
pub struct World {
    pub buckets: Vec<u32>,
    pub prob: f64,
}

/// Enumerates every possible world of the relation.
///
/// Certain items contribute their exact bucket with probability 1;
/// uncertain items contribute each support bucket with its PMF mass.
///
/// Returns [`TooManyWorlds`] (instead of panicking) when the world count
/// exceeds [`MAX_WORLDS`], so callers degrade gracefully to the
/// polynomial paths.
pub fn enumerate_worlds(rel: &UncertainRelation) -> Result<Vec<World>, TooManyWorlds> {
    let n = rel.len();
    let world_count = count_worlds(rel);
    if world_count > MAX_WORLDS {
        return Err(TooManyWorlds {
            worlds: world_count,
            limit: MAX_WORLDS,
        });
    }

    let mut worlds = vec![World {
        buckets: vec![0; n],
        prob: 1.0,
    }];
    for id in 0..n {
        match rel.certain_bucket(id) {
            Some(b) => {
                for w in &mut worlds {
                    w.buckets[id] = b;
                }
            }
            None => {
                let d = rel.dist(id).expect("uncertain item has dist");
                let mut next = Vec::with_capacity(worlds.len() * 2);
                for w in &worlds {
                    for bucket in d.support_min()..=d.support_max() {
                        let p = d.pmf(bucket);
                        if p == 0.0 {
                            continue;
                        }
                        let mut nw = w.clone();
                        nw.buckets[id] = bucket as u32;
                        nw.prob = w.prob * p;
                        next.push(nw);
                    }
                }
                worlds = next;
            }
        }
    }
    Ok(worlds)
}

/// Whether `answer` is a valid Top-K set in the given world (tie-tolerant).
pub fn is_topk_in_world(world: &World, answer: &[ItemId], k: usize) -> bool {
    if answer.len() != k {
        return false;
    }
    let min_in = answer
        .iter()
        .map(|&id| world.buckets[id])
        .min()
        .expect("non-empty answer");
    world
        .buckets
        .iter()
        .enumerate()
        .filter(|(id, _)| !answer.contains(id))
        .all(|(_, &b)| b <= min_in)
}

/// Eq. 1: the confidence of `answer` as the probability mass of the worlds
/// where it is Top-K.
///
/// Errors with [`TooManyWorlds`] on oversized relations; the polynomial
/// equivalent is [`crate::semantics_dp::topk_confidence`].
pub fn topk_confidence_bruteforce(
    rel: &UncertainRelation,
    answer: &[ItemId],
    k: usize,
) -> Result<f64, TooManyWorlds> {
    Ok(enumerate_worlds(rel)?
        .iter()
        .filter(|w| is_topk_in_world(w, answer, k))
        .map(|w| w.prob)
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DiscreteDist;
    use crate::xtuple::table_1a;

    #[test]
    fn world_count_and_mass() {
        let rel = table_1a();
        let worlds = enumerate_worlds(&rel).expect("enumerable");
        assert_eq!(worlds.len(), 27); // 3^3 as in §3 ("out of 3^3")
        let mass: f64 = worlds.iter().map(|w| w.prob).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table4_world_probabilities() {
        // W1 = (0,0,0): 0.78 × 0.49 × 0.16; W2 = (1,0,0): 0.21 × 0.49 × 0.16
        let rel = table_1a();
        let worlds = enumerate_worlds(&rel).expect("enumerable");
        let find = |b: &[u32]| {
            worlds
                .iter()
                .find(|w| w.buckets == b)
                .map(|w| w.prob)
                .expect("world exists")
        };
        assert!((find(&[0, 0, 0]) - 0.78 * 0.49 * 0.16).abs() < 1e-12);
        assert!((find(&[1, 0, 0]) - 0.21 * 0.49 * 0.16).abs() < 1e-12);
    }

    #[test]
    fn paper_top1_confidence_of_f3_is_085() {
        // §3: "the Top-1 result of Table 1a is {f3} with confidence 0.85".
        let rel = table_1a();
        let p = topk_confidence_bruteforce(&rel, &[2], 1).unwrap();
        assert!((p - 0.8476).abs() < 0.01, "expected ≈0.85, got {p}");
    }

    #[test]
    fn paper_updated_confidence_after_cleaning_f3_is_038() {
        // §3/Table 5: after Oracle(f3) = 0, {f3}'s Top-1 confidence drops to
        // 0.78 × 0.49 ≈ 0.38 (worlds where f1 = f2 = 0).
        let mut rel = table_1a();
        rel.clean(2, 0);
        let p = topk_confidence_bruteforce(&rel, &[2], 1).unwrap();
        assert!((p - 0.78 * 0.49).abs() < 1e-9, "expected ≈0.382, got {p}");
    }

    #[test]
    fn certain_relation_confidence_is_binary() {
        let mut rel = UncertainRelation::new(1.0, 4);
        rel.push_certain(4);
        rel.push_certain(2);
        rel.push_certain(1);
        assert_eq!(topk_confidence_bruteforce(&rel, &[0], 1).unwrap(), 1.0);
        assert_eq!(topk_confidence_bruteforce(&rel, &[1], 1).unwrap(), 0.0);
        assert_eq!(topk_confidence_bruteforce(&rel, &[0, 1], 2).unwrap(), 1.0);
    }

    #[test]
    fn ties_count_as_valid_topk() {
        let mut rel = UncertainRelation::new(1.0, 1);
        rel.push_certain(1);
        rel.push_certain(1);
        // Either single frame is a valid Top-1 when both tie.
        assert_eq!(topk_confidence_bruteforce(&rel, &[0], 1).unwrap(), 1.0);
        assert_eq!(topk_confidence_bruteforce(&rel, &[1], 1).unwrap(), 1.0);
    }

    #[test]
    fn wrong_answer_size_has_zero_confidence() {
        let rel = table_1a();
        assert_eq!(topk_confidence_bruteforce(&rel, &[0, 1], 1).unwrap(), 0.0);
    }

    #[test]
    fn enumeration_guard_returns_typed_error() {
        let mut rel = UncertainRelation::new(1.0, 9);
        let masses = vec![0.1; 10];
        for _ in 0..25 {
            rel.push_uncertain(DiscreteDist::from_masses(&masses));
        }
        assert_eq!(count_worlds(&rel), 10u128.pow(25));
        let err = enumerate_worlds(&rel).expect_err("must refuse 10^25 worlds");
        assert_eq!(err.limit, MAX_WORLDS);
        assert_eq!(err.worlds, 10u128.pow(25));
        assert!(err.to_string().contains("too large"));
        let err2 = topk_confidence_bruteforce(&rel, &[0], 1).expect_err("propagates");
        assert_eq!(err, err2);
    }

    #[test]
    fn count_worlds_saturates_instead_of_overflowing() {
        let mut rel = UncertainRelation::new(1.0, 9);
        let masses = vec![0.1; 10];
        for _ in 0..200 {
            rel.push_uncertain(DiscreteDist::from_masses(&masses));
        }
        assert_eq!(count_worlds(&rel), u128::MAX);
        assert!(enumerate_worlds(&rel).is_err());
    }
}
