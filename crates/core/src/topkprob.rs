//! `Topk-prob` (§3.3.1): the confidence of a candidate Top-K answer.
//!
//! Under the certain-result condition, Eq. 2 collapses Eq. 1's exponential
//! sum over possible worlds to a product over the *uncertain* items:
//!
//! ```text
//! p̂_i = ∏_{f ∈ D_u_i} Pr(S_f ≤ S_k_i)
//! ```
//!
//! The paper precomputes the joint CDF `H(t) = ∏_{f ∈ D_u_0} F_f(t)` once
//! and divides out cleaned items per evaluation (Eq. 3). We maintain the
//! same quantity **incrementally in log space**: per bucket `t` we keep the
//! sum of `log F_f(t)` over currently-uncertain items plus a counter of
//! items with `F_f(t) = 0`. Cleaning an item removes its factor in
//! O(#buckets). This is numerically safe where a literal Eq. 3 would divide
//! by zero when a cleaned item's prior CDF was 0 at the threshold (the
//! proxy was wrong about it) — a case that does occur in practice.

use crate::dist::DiscreteDist;
use crate::xtuple::UncertainRelation;

/// Incrementally-maintained joint CDF over the uncertain items.
#[derive(Debug, Clone)]
pub struct JointCdf {
    /// Per bucket `t`: Σ log F_f(t) over uncertain items with F_f(t) > 0.
    log_sum: Vec<f64>,
    /// Per bucket `t`: #{uncertain items with F_f(t) = 0}.
    zero_count: Vec<u32>,
    /// Number of uncertain items currently contributing.
    members: usize,
}

impl JointCdf {
    /// Builds the joint CDF over every currently-uncertain item of the
    /// relation (the `H` of Eq. 3, except it tracks cleaning updates).
    pub fn build(rel: &UncertainRelation) -> Self {
        let mut h = JointCdf {
            log_sum: vec![0.0; rel.max_bucket() + 1],
            zero_count: vec![0; rel.max_bucket() + 1],
            members: 0,
        };
        for id in 0..rel.len() {
            if let Some(d) = rel.dist(id) {
                h.add(d);
            }
        }
        h
    }

    /// Number of buckets in the grid.
    pub fn num_buckets(&self) -> usize {
        self.log_sum.len()
    }

    /// Number of uncertain items currently contributing factors.
    pub fn members(&self) -> usize {
        self.members
    }

    /// Adds one item's factors.
    pub fn add(&mut self, dist: &DiscreteDist) {
        assert_eq!(dist.len(), self.log_sum.len(), "grid mismatch");
        for t in 0..self.log_sum.len() {
            let f = dist.cdf(t);
            if f == 0.0 {
                self.zero_count[t] += 1;
            } else {
                self.log_sum[t] += f.ln();
            }
        }
        self.members += 1;
    }

    /// Removes one item's factors (call with the distribution returned by
    /// [`UncertainRelation::clean`]).
    pub fn remove(&mut self, dist: &DiscreteDist) {
        assert_eq!(dist.len(), self.log_sum.len(), "grid mismatch");
        assert!(self.members > 0, "removing from empty joint CDF");
        for t in 0..self.log_sum.len() {
            let f = dist.cdf(t);
            if f == 0.0 {
                debug_assert!(self.zero_count[t] > 0);
                self.zero_count[t] -= 1;
            } else {
                self.log_sum[t] -= f.ln();
            }
        }
        self.members -= 1;
    }

    /// `H(t) = ∏_{f uncertain} F_f(t)`; saturates to the all-ones product
    /// beyond the grid.
    pub fn value(&self, t: usize) -> f64 {
        if t >= self.log_sum.len() {
            return 1.0;
        }
        if self.zero_count[t] > 0 {
            0.0
        } else {
            self.log_sum[t].exp()
        }
    }

    /// `H(t) / F_f(t)` — the joint CDF excluding one member item, computed
    /// without division (Eq. 5/6 denominators).
    pub fn value_excluding(&self, dist: &DiscreteDist, t: usize) -> f64 {
        if t >= self.log_sum.len() {
            return 1.0;
        }
        let f = dist.cdf(t);
        if f == 0.0 {
            // `dist` accounts for one of the zeros; any other zero keeps H at 0.
            if self.zero_count[t] > 1 {
                0.0
            } else {
                self.log_sum[t].exp()
            }
        } else if self.zero_count[t] > 0 {
            0.0
        } else {
            (self.log_sum[t] - f.ln()).exp()
        }
    }
}

/// Eq. 2: the confidence of an answer whose K-th ("threshold") certain item
/// has bucket `s_k`, given the joint CDF over the current uncertain items.
///
/// Returns 1 when no uncertainty remains.
pub fn topk_prob(h: &JointCdf, s_k: usize) -> f64 {
    if h.members() == 0 {
        return 1.0;
    }
    h.value(s_k)
}

/// Direct evaluation of Eq. 2 by multiplying CDFs — the reference
/// implementation used by tests and the `ablation_eq3` bench.
pub fn topk_prob_naive(rel: &UncertainRelation, s_k: usize) -> f64 {
    let mut p = 1.0;
    for id in 0..rel.len() {
        if let Some(d) = rel.dist(id) {
            p *= d.cdf(s_k);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pws::topk_confidence_bruteforce;
    use crate::xtuple::table_1a;

    #[test]
    fn matches_naive_product() {
        let rel = table_1a();
        let h = JointCdf::build(&rel);
        for t in 0..=2 {
            assert!(
                (h.value(t) - topk_prob_naive(&rel, t)).abs() < 1e-12,
                "H({t}) mismatch"
            );
        }
    }

    #[test]
    fn matches_bruteforce_after_cleaning() {
        // Clean f3 to 0 (Table 5) and compare Eq. 2 against Eq. 1.
        let mut rel = table_1a();
        let mut h = JointCdf::build(&rel);
        let old = rel.clean(2, 0);
        h.remove(&old);
        // answer {f3} has threshold bucket 0
        let fast = topk_prob(&h, 0);
        let brute = topk_confidence_bruteforce(&rel, &[2], 1).unwrap();
        assert!((fast - brute).abs() < 1e-12, "fast {fast} vs brute {brute}");
        assert!((fast - 0.78 * 0.49).abs() < 1e-12);
    }

    #[test]
    fn empty_uncertainty_gives_certainty() {
        let mut rel = UncertainRelation::new(1.0, 2);
        rel.push_certain(2);
        let h = JointCdf::build(&rel);
        assert_eq!(h.members(), 0);
        assert_eq!(topk_prob(&h, 0), 1.0);
    }

    #[test]
    fn zero_cdf_buckets_zero_the_product() {
        use crate::dist::DiscreteDist;
        let mut rel = UncertainRelation::new(1.0, 3);
        // This frame is certainly ≥ 2, so H(0) = H(1) = 0.
        rel.push_uncertain(DiscreteDist::from_masses(&[0.0, 0.0, 0.5, 0.5]));
        rel.push_uncertain(DiscreteDist::from_masses(&[0.5, 0.5, 0.0, 0.0]));
        let h = JointCdf::build(&rel);
        assert_eq!(h.value(0), 0.0);
        assert_eq!(h.value(1), 0.0);
        assert!(h.value(2) > 0.0);
        assert!((h.value(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn value_excluding_removes_exactly_one_factor() {
        use crate::dist::DiscreteDist;
        let mut rel = UncertainRelation::new(1.0, 2);
        let d0 = DiscreteDist::from_masses(&[0.5, 0.3, 0.2]);
        let d1 = DiscreteDist::from_masses(&[0.0, 0.6, 0.4]); // F(0) = 0
        rel.push_uncertain(d0.clone());
        rel.push_uncertain(d1.clone());
        let h = JointCdf::build(&rel);
        // excluding d1 at t=0: only d0 remains → 0.5
        assert!((h.value_excluding(&d1, 0) - 0.5).abs() < 1e-12);
        // excluding d0 at t=0: d1 remains with F(0)=0 → 0
        assert_eq!(h.value_excluding(&d0, 0), 0.0);
        // at t=1: H = 0.8 × 0.6; excluding d0 → 0.6
        assert!((h.value_excluding(&d0, 1) - 0.6).abs() < 1e-12);
        // beyond grid
        assert_eq!(h.value_excluding(&d0, 99), 1.0);
    }

    #[test]
    fn incremental_removal_matches_rebuild() {
        let mut rel = table_1a();
        let mut h = JointCdf::build(&rel);
        let old = rel.clean(1, 1);
        h.remove(&old);
        let rebuilt = JointCdf::build(&rel);
        for t in 0..=2 {
            assert!(
                (h.value(t) - rebuilt.value(t)).abs() < 1e-12,
                "incremental vs rebuild at {t}"
            );
        }
        assert_eq!(h.members(), rebuilt.members());
    }

    #[test]
    fn beyond_grid_saturates() {
        let rel = table_1a();
        let h = JointCdf::build(&rel);
        assert_eq!(h.value(2), 1.0); // every CDF is 1 at the top bucket
        assert_eq!(h.value(1000), 1.0);
    }
}
