//! Simulated-time accounting.
//!
//! The paper measures end-to-end latency on a GTX1080Ti; our substrate
//! replaces the GPU models with ground-truth lookups, so *time* is
//! accounted explicitly: every component charges its simulated cost to a
//! [`SimClock`]. Reported speedups are ratios of simulated times, which
//! preserves the paper's comparative shape regardless of the host CPU.
//!
//! Constants are calibration knobs (documented in DESIGN.md §2). The
//! oracle and baseline scorer costs live with their models in
//! `everest-models`; this module holds the pipeline-side constants.

use std::collections::BTreeMap;

/// Simulated cost of CMDN inference per frame (batched GPU), seconds.
pub const CMDN_INFER_COST: f64 = 1.5e-3;

/// Simulated CMDN training cost per (sample × epoch × model), seconds.
pub const CMDN_TRAIN_COST: f64 = 3.0e-4;

/// Simulated difference-detector cost per frame, seconds.
pub const DIFF_COST: f64 = 5.0e-5;

/// Component labels used in the Table 8 breakdown.
pub mod component {
    /// Phase 1: labelling sampled frames with the oracle.
    pub const LABEL: &str = "label_sample_by_oracle";
    /// Phase 1: CMDN training (all grid configurations).
    pub const TRAIN: &str = "cmdn_training";
    /// Phase 1: populating D0 (decode + diff detect + CMDN inference).
    pub const POPULATE: &str = "populate_d0";
    /// Phase 2: Select-candidate algorithmic time (measured wall clock).
    pub const SELECT: &str = "select_candidate";
    /// Phase 2: confirming frames with the oracle.
    pub const CONFIRM: &str = "confirm_by_oracle";

    /// All known component labels.
    pub const ALL: [&str; 5] = [LABEL, TRAIN, POPULATE, SELECT, CONFIRM];

    /// Resolves a component name back to its static label (used when
    /// deserializing persisted clocks).
    pub fn resolve(name: &str) -> Option<&'static str> {
        ALL.into_iter().find(|&c| c == name)
    }
}

/// A component-labelled simulated clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    components: BTreeMap<&'static str, f64>,
}

impl SimClock {
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Charges `seconds` of simulated time to `component`.
    pub fn charge(&mut self, component: &'static str, seconds: f64) {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "invalid charge {seconds}"
        );
        *self.components.entry(component).or_insert(0.0) += seconds;
    }

    /// Simulated seconds charged to one component.
    pub fn component(&self, component: &str) -> f64 {
        self.components.get(component).copied().unwrap_or(0.0)
    }

    /// Total simulated seconds across components.
    pub fn total(&self) -> f64 {
        self.components.values().sum()
    }

    /// Fraction of the total charged to one component (0 when empty).
    pub fn fraction(&self, component: &str) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.component(component) / total
        }
    }

    /// All components with their charges, in label order.
    pub fn breakdown(&self) -> Vec<(&'static str, f64)> {
        self.components.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Owned `(name, seconds)` entries — the persistence-friendly form of
    /// [`Self::breakdown`] (see `everest-core::ingest`).
    pub fn entries(&self) -> Vec<(String, f64)> {
        self.components
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect()
    }

    /// Rebuilds a clock from persisted entries. Unknown component names
    /// are rejected — they indicate a version mismatch.
    pub fn from_entries(entries: &[(String, f64)]) -> Result<SimClock, String> {
        let mut clock = SimClock::new();
        for (name, secs) in entries {
            let label = component::resolve(name)
                .ok_or_else(|| format!("unknown clock component `{name}`"))?;
            if !(secs.is_finite() && *secs >= 0.0) {
                return Err(format!("component `{name}` has invalid charge {secs}"));
            }
            clock.charge(label, *secs);
        }
        Ok(clock)
    }

    /// Merges another clock into this one.
    pub fn merge(&mut self, other: &SimClock) {
        for (&k, &v) in &other.components {
            *self.components.entry(k).or_insert(0.0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut c = SimClock::new();
        c.charge(component::LABEL, 2.0);
        c.charge(component::TRAIN, 3.0);
        c.charge(component::LABEL, 1.0);
        assert_eq!(c.component(component::LABEL), 3.0);
        assert_eq!(c.total(), 6.0);
        assert!((c.fraction(component::TRAIN) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_clock() {
        let c = SimClock::new();
        assert_eq!(c.total(), 0.0);
        assert_eq!(c.fraction(component::LABEL), 0.0);
        assert!(c.breakdown().is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimClock::new();
        a.charge(component::SELECT, 1.0);
        let mut b = SimClock::new();
        b.charge(component::SELECT, 2.0);
        b.charge(component::CONFIRM, 5.0);
        a.merge(&b);
        assert_eq!(a.component(component::SELECT), 3.0);
        assert_eq!(a.component(component::CONFIRM), 5.0);
    }

    #[test]
    #[should_panic(expected = "invalid charge")]
    fn negative_charge_panics() {
        let mut c = SimClock::new();
        c.charge(component::LABEL, -1.0);
    }

    #[test]
    fn breakdown_is_deterministic() {
        let mut c = SimClock::new();
        c.charge(component::TRAIN, 1.0);
        c.charge(component::LABEL, 1.0);
        let labels: Vec<&str> = c.breakdown().iter().map(|&(k, _)| k).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(labels, sorted);
    }
}
