//! Phase 1 (§3.2): building the initial uncertain relation `D0`.
//!
//! 1. Run the difference detector; only retained frames become x-tuples.
//! 2. Sample frames, label them with the oracle (training + hold-out sets).
//! 3. Train the CMDN hyper-parameter grid; keep the smallest-NLL model.
//! 4. Run the chosen CMDN over every retained frame → Gaussian mixtures.
//! 5. Truncate/quantize the mixtures onto a shared bucket grid; insert the
//!    oracle-labelled frames as *certain* so no work is wasted.
//!
//! Sampling constants: the paper uses `min{0.5 %·n, 30 000}` training
//! frames and a 3 000-frame hold-out against multi-million-frame videos.
//! Our videos are scaled ~1/400, so the defaults keep the same functional
//! form with rescaled constants (`min{2.5 %·n, 2 000}`, hold-out 15 % of
//! the sample) — a CMDN still needs a few hundred samples to train.

use crate::dist::DiscreteDist;
use crate::sim::{component, SimClock, CMDN_INFER_COST, CMDN_TRAIN_COST, DIFF_COST};
use crate::xtuple::UncertainRelation;
use everest_models::Oracle;
use everest_nn::cmdn::CmdnConfig;
use everest_nn::train::{grid_search, parallel_chunks, HyperGrid, Sample, TrainConfig};
use everest_nn::{Cmdn, GaussianMixture};
use everest_video::diff::{DiffConfig, DifferenceDetector, Segments};
use everest_video::store::DecodeCostModel;
use everest_video::VideoStore;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Phase-1 configuration.
#[derive(Debug, Clone)]
pub struct Phase1Config {
    /// Training-sample fraction of the full frame count.
    pub sample_frac: f64,
    /// Cap on the training-sample size.
    pub sample_cap: usize,
    /// Floor on the training-sample size: unlike the paper's multi-million
    /// frame videos, a scaled video's `frac × n` can drop below what a CMDN
    /// needs to train at all.
    pub sample_min: usize,
    /// Hold-out size as a fraction of the training sample (min 32 frames).
    pub holdout_frac: f64,
    /// CMDN hyper-parameter grid (§3.5).
    pub grid: HyperGrid,
    /// Training-loop settings.
    pub train: TrainConfig,
    /// Conv-stack widths (must divide the input resolution by `2^depth`).
    pub conv_channels: Vec<usize>,
    /// Floor on mixture component σ.
    pub sigma_min: f64,
    /// Difference-detector settings.
    pub diff: DiffConfig,
    /// Quantization step (1.0 for counting; user-supplied otherwise, §3.2).
    pub quant_step: f64,
    /// Hard cap on the bucket-grid size.
    pub max_bucket_cap: usize,
    /// Worker threads for rendering/inference.
    pub threads: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for Phase1Config {
    fn default() -> Self {
        Phase1Config {
            sample_frac: 0.025,
            sample_cap: 2_000,
            sample_min: 200,
            holdout_frac: 0.15,
            grid: HyperGrid::default(),
            train: TrainConfig::default(),
            conv_channels: vec![8, 16, 32],
            sigma_min: 0.25,
            diff: DiffConfig::default(),
            quant_step: 1.0,
            max_bucket_cap: 400,
            threads: default_threads(),
            seed: 0,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// Everything Phase 1 produces; reusable across Phase-2 queries on the same
/// video + scoring function.
#[derive(Debug, Clone)]
pub struct Phase1Output {
    /// The initial uncertain relation `D0`; item id = retained position.
    pub relation: UncertainRelation,
    /// Difference-detector segmentation (windows need it).
    pub segments: Segments,
    /// CMDN mixtures per retained frame (windows need them).
    pub mixtures: Vec<GaussianMixture>,
    /// Oracle-labelled retained positions → exact score.
    pub labeled: BTreeMap<usize, f64>,
    /// Grid-search results `(g, h, holdout_nll)`.
    pub grid_results: Vec<(usize, usize, f64)>,
    /// The selected proxy model.
    pub model: Cmdn,
    /// Simulated-time charges of Phase 1.
    pub clock: SimClock,
    /// Real wall time of Phase 1.
    pub wall: Duration,
    /// Largest labelled score (the `M` of the Select-and-TopK baseline).
    pub max_labeled_score: f64,
}

/// Renders one frame at the CMDN input resolution (`(h, w)`), appending
/// its flattened pixels to `out` — the single place the render-or-resize
/// policy lives (training samples, the fused scorer, and tests all route
/// through it).
pub fn render_frame_into(
    video: &dyn VideoStore,
    t: usize,
    input: (usize, usize),
    out: &mut Vec<f32>,
) {
    let f = video.frame(t);
    if (f.height(), f.width()) == input {
        out.extend_from_slice(f.pixels());
    } else {
        out.extend_from_slice(f.resize(input.1, input.0).pixels());
    }
}

/// Renders frames into flattened CMDN inputs, in parallel.
pub fn render_inputs(
    video: &dyn VideoStore,
    frames: &[usize],
    input: (usize, usize),
    threads: usize,
) -> Vec<Vec<f32>> {
    let parts: Vec<Vec<Vec<f32>>> = parallel_chunks(frames, threads, "render", |part| {
        part.iter()
            .map(|&t| {
                let mut px = Vec::new();
                render_frame_into(video, t, input, &mut px);
                px
            })
            .collect()
    });
    parts.into_iter().flatten().collect()
}

/// Frames per batched forward in the fused scoring pipeline. With the
/// SIMD kernels and the allocation-free forward, per-call overhead is
/// small and the first conv layer's packed-patch matrix (~37 KB/frame)
/// falls out of cache as the batch widens: measured per-frame cost on the
/// reference machine is ~39 µs at 4 frames vs ~41 µs at 1/16 and ~45 µs
/// at 32, so 4 is the sweet spot. (Batch width never changes results —
/// the GEMM accumulation order per output element is batch-independent.)
const INFER_BATCH: usize = 4;

/// Fused render + CMDN-score pass over `frames`, in parallel: each worker
/// owns a model clone and renders its share of the frames **directly into
/// a packed sample-major buffer** (no per-frame `Vec`, no materialised
/// frame set), feeding [`Cmdn::predict_many`]-batched forwards. Returns
/// one mixture per frame, in input order — bit-identical to scoring the
/// frames one at a time, whatever the thread count or batch width (the
/// GEMM accumulation order per output element is batch-independent).
pub fn score_frames(
    video: &dyn VideoStore,
    model: &Cmdn,
    frames: &[usize],
    threads: usize,
) -> Vec<GaussianMixture> {
    let input = model.config().input;
    let parts: Vec<Vec<GaussianMixture>> = parallel_chunks(frames, threads, "score", |part| {
        let mut worker = model.clone();
        let mut xs: Vec<f32> = Vec::new();
        let mut out = Vec::with_capacity(part.len());
        for sub in part.chunks(INFER_BATCH) {
            xs.clear();
            for &t in sub {
                render_frame_into(video, t, input, &mut xs);
            }
            out.extend(worker.predict_many(&xs));
        }
        out
    });
    parts.into_iter().flatten().collect()
}

/// Runs Phase 1 end to end.
pub fn run_phase1(video: &dyn VideoStore, oracle: &dyn Oracle, cfg: &Phase1Config) -> Phase1Output {
    assert_eq!(
        video.num_frames(),
        oracle.num_frames(),
        "oracle and video must cover the same frames"
    );
    // lint:allow(det-wallclock): feeds the reported ingest wall-time stat
    // only; the simulated cost model (SimClock) drives every decision.
    let started = Instant::now();
    let mut clock = SimClock::new();
    let n = video.num_frames();
    let decode = DecodeCostModel::default();

    // 1. Difference detection (one sequential decode pass + MSE per frame).
    let segments = DifferenceDetector::new(cfg.diff).run(video);
    clock.charge(
        component::POPULATE,
        n as f64 * DIFF_COST + decode.sequential_scan_cost(n),
    );
    let retained = segments.retained().to_vec();
    assert!(
        !retained.is_empty(),
        "difference detector retained no frames"
    );

    // 2. Sampling plan over retained frames.
    let m_target = ((cfg.sample_frac * n as f64).ceil() as usize)
        .clamp(cfg.sample_min.max(16), cfg.sample_cap.max(cfg.sample_min));
    let h_target = ((m_target as f64 * cfg.holdout_frac).ceil() as usize).max(32);
    let mut positions: Vec<usize> = (0..retained.len()).collect();
    const SAMPLE_SALT: u64 = 0x5a4d_71e5;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ SAMPLE_SALT);
    positions.shuffle(&mut rng);
    let m = m_target.min(positions.len().saturating_sub(1)).max(1);
    let h = h_target.min(positions.len() - m);
    let train_pos = &positions[..m];
    let holdout_pos = &positions[m..m + h];

    // 3. Oracle-label the sample (cost: one oracle call per frame).
    let labelled_pos: Vec<usize> = train_pos.iter().chain(holdout_pos).copied().collect();
    let labelled_frames: Vec<usize> = labelled_pos.iter().map(|&p| retained[p]).collect();
    // lint:allow(budget-discipline): Phase-1 labeling is charged to the
    // LABEL cost component on the very next statement; QueryBudget governs
    // the Phase-2 interactive loop, not this up-front sampling pass.
    let labels = oracle.score_batch(&labelled_frames);
    clock.charge(
        component::LABEL,
        labelled_frames.len() as f64 * oracle.cost_per_frame()
            + decode.trace_cost(&labelled_frames),
    );
    let labeled: BTreeMap<usize, f64> = labelled_pos
        .iter()
        .copied()
        .zip(labels.iter().copied())
        .collect();
    let max_labeled_score = labels.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min_labeled_score = labels.iter().cloned().fold(f64::INFINITY, f64::min);

    // 4. CMDN grid search on the labelled sample.
    let input_hw = cmdn_input_dims(video, cfg.conv_channels.len());
    let make_samples = |pos: &[usize]| -> Vec<Sample> {
        let frames: Vec<usize> = pos.iter().map(|&p| retained[p]).collect();
        let inputs = render_inputs(video, &frames, input_hw, cfg.threads);
        inputs
            .into_iter()
            .zip(pos.iter().map(|p| labeled[p]))
            .collect()
    };
    let train_set = make_samples(train_pos);
    let holdout_set = make_samples(holdout_pos);
    let base = CmdnConfig {
        input: input_hw,
        conv_channels: cfg.conv_channels.clone(),
        hidden: 32,
        num_gaussians: 5,
        sigma_min: cfg.sigma_min,
        target_range: (
            min_labeled_score,
            max_labeled_score.max(min_labeled_score + 1.0),
        ),
        seed: cfg.seed,
    };
    let outcome = grid_search(&cfg.grid, &base, &cfg.train, &train_set, &holdout_set);
    clock.charge(
        component::TRAIN,
        outcome.total_epochs as f64 * train_set.len() as f64 * CMDN_TRAIN_COST,
    );
    let model = outcome.best.model.clone();

    // 5. CMDN inference over every retained frame: the fused pipeline
    // renders each worker's share straight into packed batch buffers, so
    // the frame set is never materialised (memory stays bounded by
    // threads × INFER_BATCH frames).
    let mixtures = score_frames(video, &model, &retained, cfg.threads);
    clock.charge(
        component::POPULATE,
        retained.len() as f64 * CMDN_INFER_COST + decode.trace_cost(&retained),
    );

    // 6. Shared bucket grid: cover labelled scores and mixture 3σ ranges.
    let mix_max = mixtures
        .iter()
        .map(|m| m.truncated_range().1)
        .fold(0.0f64, f64::max);
    let needed = (max_labeled_score.max(mix_max) / cfg.quant_step).ceil() as usize + 2;
    let max_bucket = needed.clamp(4, cfg.max_bucket_cap);

    // 7. Populate D0: labelled frames enter certain, the rest uncertain.
    let mut relation = UncertainRelation::new(cfg.quant_step, max_bucket);
    for (pos, mixture) in mixtures.iter().enumerate() {
        match labeled.get(&pos) {
            Some(&score) => {
                let b = relation.score_to_bucket(score);
                relation.push_certain(b);
            }
            None => {
                let masses = mixture.quantize(cfg.quant_step, max_bucket);
                relation.push_uncertain(DiscreteDist::from_masses(&masses));
            }
        }
    }

    Phase1Output {
        relation,
        segments,
        mixtures,
        labeled,
        grid_results: outcome.evaluated,
        model,
        clock,
        wall: started.elapsed(),
        max_labeled_score,
    }
}

/// Populates an uncertain relation over `video` with a **pre-trained**
/// CMDN — the *model drift* scenario of §3.1 ("tracking model drift in
/// visual data is still an ongoing research"): a proxy trained on one
/// video serving another.
///
/// Compared to [`run_phase1`]: no sampling, no labelling, no training —
/// the clock is charged only for the difference detector and the populate
/// pass, and the relation starts with *zero* certain items (Phase 2's
/// bootstrap will oracle-confirm its first K candidates). The
/// `ablation_drift` experiment uses this to measure what a drifted proxy
/// costs in cleaning volume and answer quality.
pub fn populate_with_model(
    video: &dyn VideoStore,
    model: &Cmdn,
    cfg: &Phase1Config,
) -> Phase1Output {
    // lint:allow(det-wallclock): feeds the reported ingest wall-time stat
    // only; the simulated cost model (SimClock) drives every decision.
    let started = Instant::now();
    let mut clock = SimClock::new();
    let n = video.num_frames();
    let decode = DecodeCostModel::default();
    let input_hw = model.config().input;
    assert_eq!(
        cmdn_input_dims(video, model.config().conv_channels.len()),
        input_hw,
        "pre-trained model input dims must match the video's CMDN dims"
    );

    let segments = DifferenceDetector::new(cfg.diff).run(video);
    clock.charge(
        component::POPULATE,
        n as f64 * DIFF_COST + decode.sequential_scan_cost(n),
    );
    let retained = segments.retained().to_vec();
    assert!(
        !retained.is_empty(),
        "difference detector retained no frames"
    );

    let mixtures = score_frames(video, model, &retained, cfg.threads);
    clock.charge(
        component::POPULATE,
        retained.len() as f64 * CMDN_INFER_COST + decode.trace_cost(&retained),
    );

    let mix_max = mixtures
        .iter()
        .map(|m| m.truncated_range().1)
        .fold(0.0f64, f64::max);
    let needed = (mix_max / cfg.quant_step).ceil() as usize + 2;
    let max_bucket = needed.clamp(4, cfg.max_bucket_cap);

    let mut relation = UncertainRelation::new(cfg.quant_step, max_bucket);
    for mixture in &mixtures {
        let masses = mixture.quantize(cfg.quant_step, max_bucket);
        relation.push_uncertain(DiscreteDist::from_masses(&masses));
    }

    Phase1Output {
        relation,
        segments,
        mixtures,
        labeled: BTreeMap::new(),
        grid_results: Vec::new(),
        model: model.clone(),
        clock,
        wall: started.elapsed(),
        max_labeled_score: mix_max,
    }
}

/// CMDN input dims: the video resolution when it divides cleanly by the
/// pooling stack, otherwise the nearest 32×32 resize (the paper resizes to
/// a fixed CMDN resolution as well).
fn cmdn_input_dims(video: &dyn VideoStore, depth: usize) -> (usize, usize) {
    let div = 1usize << depth;
    let (h, w) = (video.height(), video.width());
    if h % div == 0 && w % div == 0 {
        (h, w)
    } else {
        (32, 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_models::counting_oracle;
    use everest_video::arrival::{ArrivalConfig, Timeline};
    use everest_video::scene::{SceneConfig, SyntheticVideo};

    fn tiny_setup() -> (SyntheticVideo, everest_models::ExactScoreOracle) {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 1_200,
                ..ArrivalConfig::default()
            },
            13,
        );
        let v = SyntheticVideo::new(SceneConfig::default(), tl, 13, 30.0);
        let o = counting_oracle(&v);
        (v, o)
    }

    fn fast_cfg() -> Phase1Config {
        Phase1Config {
            sample_frac: 0.1,
            sample_cap: 150,
            sample_min: 32,
            grid: HyperGrid::single(3, 16),
            train: TrainConfig {
                epochs: 6,
                batch_size: 32,
                ..TrainConfig::default()
            },
            conv_channels: vec![6, 12],
            threads: 4,
            ..Phase1Config::default()
        }
    }

    #[test]
    fn phase1_builds_consistent_relation() {
        let (v, o) = tiny_setup();
        let out = run_phase1(&v, &o, &fast_cfg());
        assert_eq!(out.relation.len(), out.segments.num_retained());
        assert_eq!(out.mixtures.len(), out.segments.num_retained());
        assert!(
            out.relation.num_certain() > 0,
            "labelled frames must be certain"
        );
        assert!(out.relation.num_uncertain() > 0);
        // labelled certain buckets must equal the oracle's exact counts
        for (&pos, &score) in &out.labeled {
            assert_eq!(
                out.relation.certain_bucket(pos),
                Some(out.relation.score_to_bucket(score)),
                "labelled frame at position {pos}"
            );
        }
    }

    #[test]
    fn phase1_charges_all_components() {
        let (v, o) = tiny_setup();
        let out = run_phase1(&v, &o, &fast_cfg());
        assert!(out.clock.component(component::LABEL) > 0.0);
        assert!(out.clock.component(component::TRAIN) > 0.0);
        assert!(out.clock.component(component::POPULATE) > 0.0);
        assert_eq!(out.clock.component(component::CONFIRM), 0.0);
    }

    #[test]
    fn phase1_is_deterministic() {
        let (v, o) = tiny_setup();
        let a = run_phase1(&v, &o, &fast_cfg());
        let b = run_phase1(&v, &o, &fast_cfg());
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.grid_results, b.grid_results);
    }

    #[test]
    fn grid_covers_labelled_scores() {
        let (v, o) = tiny_setup();
        let out = run_phase1(&v, &o, &fast_cfg());
        let max_label = out.labeled.values().cloned().fold(0.0f64, f64::max);
        assert!(
            out.relation.max_bucket() as f64 * out.relation.step() >= max_label,
            "grid must cover the labelled maximum"
        );
    }

    #[test]
    fn populate_with_model_reuses_weights_without_labels() {
        let (v, o) = tiny_setup();
        let cfg = fast_cfg();
        let native = run_phase1(&v, &o, &cfg);
        let drifted = populate_with_model(&v, &native.model, &cfg);
        // same video + same model → same segmentation and mixtures
        assert_eq!(drifted.segments, native.segments);
        assert_eq!(drifted.mixtures.len(), native.mixtures.len());
        // but no labels, no training charge, all-uncertain relation
        assert!(drifted.labeled.is_empty());
        assert!(drifted.grid_results.is_empty());
        assert_eq!(drifted.relation.num_certain(), 0);
        assert_eq!(drifted.relation.len(), drifted.segments.num_retained());
        assert_eq!(drifted.clock.component(crate::sim::component::TRAIN), 0.0);
        assert_eq!(drifted.clock.component(crate::sim::component::LABEL), 0.0);
        assert!(drifted.clock.component(crate::sim::component::POPULATE) > 0.0);
    }

    #[test]
    fn render_inputs_matches_direct_render() {
        let (v, _) = tiny_setup();
        let frames = vec![0, 7, 100];
        let inputs = render_inputs(&v, &frames, (32, 32), 2);
        assert_eq!(inputs.len(), 3);
        assert_eq!(inputs[1], v.frame(7).pixels().to_vec());
    }

    /// The fused render+score pipeline must agree exactly with scoring
    /// each frame alone, whatever the thread count.
    #[test]
    fn score_frames_matches_per_frame_predict() {
        let (v, o) = tiny_setup();
        let out = run_phase1(&v, &o, &fast_cfg());
        let frames: Vec<usize> = out.segments.retained().iter().copied().take(37).collect();
        let mut single = out.model.clone();
        for threads in [1usize, 3] {
            let fused = score_frames(&v, &out.model, &frames, threads);
            assert_eq!(fused.len(), frames.len());
            for (i, &t) in frames.iter().enumerate() {
                let mut input = Vec::new();
                render_frame_into(&v, t, single.config().input, &mut input);
                assert_eq!(
                    fused[i],
                    single.predict(&input),
                    "frame {t} threads {threads}"
                );
            }
        }
    }
}
