//! Persistent ingestion index: save Phase-1 artifacts, serve queries later.
//!
//! §4.2 observes that "Phase 1 can be done offline during data ingestion
//! (e.g. Focus) or even at the edge where the videos are produced". This
//! module is that mode: an [`IngestIndex`] captures everything Phase 2
//! needs — the uncertain relation `D0`, the difference-detector
//! segmentation, the per-frame CMDN mixtures (for window queries), the
//! oracle-labelled samples, and the trained proxy model itself — in a
//! versioned, self-validating JSON document.
//!
//! A restored index answers frame, window and sliding-window queries
//! exactly like a freshly prepared one ([`IngestIndex::into_prepared`]
//! rebuilds the [`PreparedVideo`]); the simulated-clock charges of Phase 1
//! are preserved so reported end-to-end latencies stay honest.
//!
//! Format: JSON via `serde_json` (human-inspectable, append-friendly for
//! catalogs of indexes; see DESIGN.md for the dependency note).

use crate::phase1::Phase1Output;
use crate::pipeline::PreparedVideo;
use crate::sim::SimClock;
use crate::xtuple::UncertainRelation;
use everest_nn::{Cmdn, GaussianMixture};
use everest_video::diff::Segments;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::time::Duration;

/// Current on-disk format version.
pub const INGEST_FORMAT_VERSION: u32 = 1;

/// Everything a query needs from Phase 1, in persistable form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestIndex {
    /// Format version ([`INGEST_FORMAT_VERSION`] when written by this
    /// build).
    pub version: u32,
    /// Name of the video this index was built for (a label; the loader
    /// checks it when the caller supplies an expectation).
    pub video_name: String,
    /// Frame count of the ingested video.
    pub n_frames: usize,
    /// The initial uncertain relation `D0`.
    pub relation: UncertainRelation,
    /// Difference-detector segmentation.
    pub segments: Segments,
    /// CMDN mixtures per retained frame.
    pub mixtures: Vec<GaussianMixture>,
    /// Oracle-labelled retained positions → exact score.
    pub labeled: Vec<(usize, f64)>,
    /// Hyper-parameter grid results `(g, h, holdout_nll)`.
    pub grid_results: Vec<(usize, usize, f64)>,
    /// The selected proxy model (weights only; training state is
    /// rebuilt on load).
    pub model: Cmdn,
    /// Simulated-clock charges of Phase 1.
    pub clock: Vec<(String, f64)>,
    /// Real wall seconds Phase 1 took when it ran.
    pub wall_secs: f64,
    /// Largest labelled score (the `M` of the Select-and-TopK baseline).
    pub max_labeled_score: f64,
}

/// Why loading or validating an index failed.
#[derive(Debug)]
pub enum IngestError {
    Io(std::io::Error),
    Format(serde_json::Error),
    /// The file's version is not readable by this build.
    Version {
        found: u32,
        supported: u32,
    },
    /// Internal inconsistency (corrupted or hand-edited file).
    Integrity(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest I/O error: {e}"),
            IngestError::Format(e) => write!(f, "ingest format error: {e}"),
            IngestError::Version { found, supported } => {
                write!(
                    f,
                    "ingest index version {found} unsupported (this build reads {supported})"
                )
            }
            IngestError::Integrity(msg) => write!(f, "ingest integrity error: {msg}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<serde_json::Error> for IngestError {
    fn from(e: serde_json::Error) -> Self {
        IngestError::Format(e)
    }
}

impl IngestIndex {
    /// Captures a freshly prepared video into a persistable index.
    pub fn from_prepared(video_name: impl Into<String>, prepared: &PreparedVideo) -> Self {
        let p = &prepared.phase1;
        // BTreeMap iteration is already key-ascending, so the serialized
        // order is deterministic by construction.
        let labeled: Vec<(usize, f64)> = p.labeled.iter().map(|(&k, &v)| (k, v)).collect();
        IngestIndex {
            version: INGEST_FORMAT_VERSION,
            video_name: video_name.into(),
            n_frames: prepared.n_frames(),
            relation: p.relation.clone(),
            segments: p.segments.clone(),
            mixtures: p.mixtures.clone(),
            labeled,
            grid_results: p.grid_results.clone(),
            model: p.model.clone(),
            clock: p.clock.entries(),
            wall_secs: p.wall.as_secs_f64(),
            max_labeled_score: p.max_labeled_score,
        }
    }

    /// Validates the index and rebuilds a query-ready [`PreparedVideo`].
    pub fn into_prepared(self) -> Result<PreparedVideo, IngestError> {
        if self.version != INGEST_FORMAT_VERSION {
            return Err(IngestError::Version {
                found: self.version,
                supported: INGEST_FORMAT_VERSION,
            });
        }
        self.validate()?;
        let clock = SimClock::from_entries(&self.clock).map_err(IngestError::Integrity)?;
        let labeled: BTreeMap<usize, f64> = self.labeled.into_iter().collect();
        let phase1 = Phase1Output {
            relation: self.relation,
            segments: self.segments,
            mixtures: self.mixtures,
            labeled,
            grid_results: self.grid_results,
            model: self.model,
            clock,
            wall: Duration::from_secs_f64(self.wall_secs.max(0.0)),
            max_labeled_score: self.max_labeled_score,
        };
        Ok(PreparedVideo::from_parts(phase1, self.n_frames))
    }

    /// Structural consistency checks (anything a hand-edited or truncated
    /// file could violate without failing JSON parsing).
    pub fn validate(&self) -> Result<(), IngestError> {
        let n_retained = self.segments.num_retained();
        if self.relation.len() != n_retained {
            return Err(IngestError::Integrity(format!(
                "relation has {} items but the segmentation retains {n_retained} frames",
                self.relation.len()
            )));
        }
        if self.mixtures.len() != n_retained {
            return Err(IngestError::Integrity(format!(
                "{} mixtures for {n_retained} retained frames",
                self.mixtures.len()
            )));
        }
        if self.segments.n_frames() != self.n_frames {
            return Err(IngestError::Integrity(format!(
                "segmentation covers {} frames, index claims {}",
                self.segments.n_frames(),
                self.n_frames
            )));
        }
        for &(pos, score) in &self.labeled {
            if pos >= self.relation.len() {
                return Err(IngestError::Integrity(format!(
                    "labelled position {pos} beyond the relation"
                )));
            }
            if !score.is_finite() {
                return Err(IngestError::Integrity(format!(
                    "labelled position {pos} has non-finite score {score}"
                )));
            }
        }
        if !self.max_labeled_score.is_finite() {
            return Err(IngestError::Integrity(
                "non-finite max_labeled_score".into(),
            ));
        }
        if !(self.wall_secs.is_finite() && self.wall_secs >= 0.0) {
            return Err(IngestError::Integrity(format!(
                "invalid wall_secs {}",
                self.wall_secs
            )));
        }
        Ok(())
    }

    /// Serializes to JSON.
    pub fn write_to(&self, w: impl Write) -> Result<(), IngestError> {
        serde_json::to_writer(w, self)?;
        Ok(())
    }

    /// Deserializes from JSON (validation happens in
    /// [`Self::into_prepared`], or call [`Self::validate`] directly).
    pub fn read_from(r: impl Read) -> Result<Self, IngestError> {
        Ok(serde_json::from_reader(r)?)
    }

    /// Saves to a file (overwrites).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), IngestError> {
        let file = std::fs::File::create(path)?;
        self.write_to(BufWriter::new(file))
    }

    /// Loads from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, IngestError> {
        let file = std::fs::File::open(path)?;
        Self::read_from(BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cleaner::CleanerConfig;
    use crate::phase1::Phase1Config;
    use crate::pipeline::Everest;
    use everest_models::{counting_oracle, InstrumentedOracle};
    use everest_nn::train::TrainConfig;
    use everest_nn::HyperGrid;
    use everest_video::arrival::{ArrivalConfig, Timeline};
    use everest_video::scene::{SceneConfig, SyntheticVideo};

    fn prepared_fixture() -> (
        SyntheticVideo,
        InstrumentedOracle<everest_models::ExactScoreOracle>,
        PreparedVideo,
    ) {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 900,
                ..ArrivalConfig::default()
            },
            17,
        );
        let video = SyntheticVideo::new(SceneConfig::default(), tl, 17, 30.0);
        let oracle = InstrumentedOracle::new(counting_oracle(&video));
        let cfg = Phase1Config {
            sample_frac: 0.1,
            sample_cap: 120,
            sample_min: 48,
            grid: HyperGrid::single(2, 8),
            train: TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
            conv_channels: vec![4, 8],
            threads: 2,
            ..Phase1Config::default()
        };
        let prepared = Everest::prepare(&video, &oracle, &cfg);
        (video, oracle, prepared)
    }

    #[test]
    fn round_trip_preserves_phase1_artifacts() {
        let (_v, _o, prepared) = prepared_fixture();
        let index = IngestIndex::from_prepared("fixture", &prepared);
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        let restored = IngestIndex::read_from(buf.as_slice()).unwrap();
        assert_eq!(restored.version, INGEST_FORMAT_VERSION);
        assert_eq!(restored.video_name, "fixture");
        assert_eq!(restored.n_frames, prepared.n_frames());
        assert_eq!(restored.relation, prepared.phase1.relation);
        assert_eq!(restored.segments, prepared.phase1.segments);
        assert_eq!(restored.mixtures.len(), prepared.phase1.mixtures.len());
        let back = restored.into_prepared().unwrap();
        assert_eq!(back.n_frames(), prepared.n_frames());
        assert_eq!(back.phase1.relation, prepared.phase1.relation);
        assert_eq!(back.phase1.labeled, prepared.phase1.labeled);
        assert!(
            (back.phase1.clock.total() - prepared.phase1.clock.total()).abs() < 1e-12,
            "clock charges must survive persistence"
        );
    }

    #[test]
    fn restored_index_answers_queries_identically() {
        let (_v, oracle, prepared) = prepared_fixture();
        let index = IngestIndex::from_prepared("fixture", &prepared);
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        let restored = IngestIndex::read_from(buf.as_slice())
            .unwrap()
            .into_prepared()
            .unwrap();

        let cfg = CleanerConfig {
            k: 5,
            thres: 0.9,
            ..Default::default()
        };
        let fresh = prepared.query_topk(&oracle, 5, 0.9, &cfg);
        let loaded = restored.query_topk(&oracle, 5, 0.9, &cfg);
        assert_eq!(fresh.frames(), loaded.frames());
        assert_eq!(fresh.confidence, loaded.confidence);
        assert_eq!(fresh.cleaned, loaded.cleaned);
        assert_eq!(fresh.iterations, loaded.iterations);

        // window queries too (they use segments + mixtures)
        let fresh_w = prepared.query_topk_windows(&oracle, 3, 0.9, 30, 0.5, &cfg);
        let loaded_w = restored.query_topk_windows(&oracle, 3, 0.9, 30, 0.5, &cfg);
        assert_eq!(fresh_w.frames(), loaded_w.frames());
    }

    #[test]
    fn restored_model_predicts_identically() {
        let (video, _o, prepared) = prepared_fixture();
        let index = IngestIndex::from_prepared("fixture", &prepared);
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        let restored = IngestIndex::read_from(buf.as_slice()).unwrap();

        // The proxy model's weights survive: same input → same mixture.
        let frames = crate::phase1::render_inputs(
            &video,
            &[7, 123],
            prepared.phase1.model.config().input,
            2,
        );
        let mut a = prepared.phase1.model.clone();
        let mut b = restored.model.clone();
        for input in &frames {
            let ma = a.predict(input);
            let mb = b.predict(input);
            assert_eq!(ma.components().len(), mb.components().len());
            for (ca, cb) in ma.components().iter().zip(mb.components()) {
                assert!((ca.mean - cb.mean).abs() < 1e-6);
                assert!((ca.std - cb.std).abs() < 1e-6);
                assert!((ca.weight - cb.weight).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (_v, _o, prepared) = prepared_fixture();
        let mut index = IngestIndex::from_prepared("fixture", &prepared);
        index.version = 999;
        match index.into_prepared() {
            Err(IngestError::Version { found: 999, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn integrity_checks_catch_corruption() {
        let (_v, _o, prepared) = prepared_fixture();

        let mut bad = IngestIndex::from_prepared("fixture", &prepared);
        bad.mixtures.pop();
        assert!(matches!(bad.validate(), Err(IngestError::Integrity(_))));

        let mut bad = IngestIndex::from_prepared("fixture", &prepared);
        bad.labeled.push((usize::MAX, 1.0));
        assert!(matches!(bad.validate(), Err(IngestError::Integrity(_))));

        let mut bad = IngestIndex::from_prepared("fixture", &prepared);
        bad.n_frames += 1;
        assert!(matches!(bad.validate(), Err(IngestError::Integrity(_))));

        let mut bad = IngestIndex::from_prepared("fixture", &prepared);
        bad.clock.push(("warp_drive".into(), 3.0));
        assert!(matches!(
            bad.into_prepared(),
            Err(IngestError::Integrity(_))
        ));
    }

    #[test]
    fn save_and_load_files() {
        let (_v, _o, prepared) = prepared_fixture();
        let index = IngestIndex::from_prepared("fixture", &prepared);
        let dir = std::env::temp_dir().join("everest-ingest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fixture.index.json");
        index.save(&path).unwrap();
        let loaded = IngestIndex::load(&path).unwrap();
        assert_eq!(loaded.relation, index.relation);
        std::fs::remove_file(&path).ok();
        // missing file is an Io error
        assert!(matches!(
            IngestIndex::load(dir.join("nope.json")),
            Err(IngestError::Io(_))
        ));
    }
}
