//! ψ-ordered frame prefetching (§3.5 "Prefetching").
//!
//! Phase 2 accesses frames non-sequentially (in candidate-selection order),
//! which would stall a real GPU on decode. Everest prefetches frames in
//! the ψ sort order — the order `Select-candidate` will examine them — so
//! decoded frames are ready when the oracle asks. This module implements
//! the prefetcher as a real background worker over a bounded crossbeam
//! channel; the decode-cost benefit is quantified by
//! [`prefetch_saving`] and the `ablation_prefetch` bench.

use crossbeam::channel::{bounded, Receiver};
use everest_video::frame::Frame;
use everest_video::store::DecodeCostModel;
use everest_video::VideoStore;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A background frame prefetcher.
///
/// Frames are decoded by a worker thread in the given order and buffered in
/// a bounded queue (backpressure keeps memory bounded). Dropping the
/// prefetcher stops the worker once the queue drains.
pub struct Prefetcher {
    rx: Receiver<(usize, Frame)>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns a prefetcher over `video` that decodes `order` front to back,
    /// keeping at most `capacity` frames buffered.
    pub fn spawn<V: VideoStore + 'static>(
        video: Arc<V>,
        order: Vec<usize>,
        capacity: usize,
    ) -> Prefetcher {
        assert!(
            capacity >= 1,
            "prefetch buffer must hold at least one frame"
        );
        let (tx, rx) = bounded(capacity);
        let handle = std::thread::spawn(move || {
            for idx in order {
                let frame = video.frame(idx);
                if tx.send((idx, frame)).is_err() {
                    break; // consumer dropped
                }
            }
        });
        Prefetcher {
            rx,
            handle: Some(handle),
        }
    }

    /// Next prefetched frame, blocking until available; `None` when the
    /// order is exhausted.
    pub fn next(&self) -> Option<(usize, Frame)> {
        self.rx.recv().ok()
    }

    /// Non-blocking variant.
    pub fn try_next(&self) -> Option<(usize, Frame)> {
        self.rx.try_recv().ok()
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Disconnect the channel so the worker unblocks, then join.
        let (_tx, rx) = bounded(1);
        self.rx = rx;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Simulated decode-cost saving of accessing `frames` in prefetch (given)
/// order versus the order `Select-candidate` actually consumed them
/// (`consumption`): prefetching converts consumption-order seeks into
/// prefetch-order seeks.
pub fn prefetch_saving(
    model: &DecodeCostModel,
    prefetch_order: &[usize],
    consumption_order: &[usize],
) -> f64 {
    model.trace_cost(consumption_order) - model.trace_cost(prefetch_order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_video::frame::Frame;
    use everest_video::store::InMemoryVideo;

    fn video(n: usize) -> Arc<InMemoryVideo> {
        let frames = (0..n)
            .map(|i| Frame::filled(4, 4, i as f32 / n as f32))
            .collect();
        Arc::new(InMemoryVideo::new(frames, 30.0))
    }

    #[test]
    fn delivers_frames_in_requested_order() {
        let v = video(10);
        let order = vec![3, 1, 7, 0];
        let p = Prefetcher::spawn(v.clone(), order.clone(), 2);
        let mut got = Vec::new();
        while let Some((idx, frame)) = p.next() {
            assert_eq!(frame, v.frame(idx));
            got.push(idx);
        }
        assert_eq!(got, order);
    }

    #[test]
    fn bounded_buffer_applies_backpressure() {
        let v = video(100);
        let p = Prefetcher::spawn(v, (0..100).collect(), 4);
        // Let the worker fill the buffer, then consume everything.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut count = 0;
        while p.next().is_some() {
            count += 1;
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn early_drop_stops_worker() {
        let v = video(1000);
        let p = Prefetcher::spawn(v, (0..1000).collect(), 2);
        let _ = p.next();
        drop(p); // must not hang
    }

    #[test]
    fn sorted_prefetch_saves_decode_cost() {
        let model = DecodeCostModel::new(1.0, 16);
        // Candidates cluster around hot moments (bursts), so sorted access
        // turns most decodes into cheap sequential ones; scattered
        // consumption pays the mid-GOP seek penalty every time.
        let consumption: Vec<usize> = vec![50, 10, 90, 51, 11, 91, 52, 12, 92, 53, 13];
        let mut prefetch = consumption.clone();
        prefetch.sort_unstable();
        let saving = prefetch_saving(&model, &prefetch, &consumption);
        assert!(
            saving > 0.0,
            "sorted prefetch should save decode cost: {saving}"
        );
    }
}
