//! Polynomial-time evaluation of the §2 uncertain Top-K semantics.
//!
//! [`crate::semantics`] defines U-TopK, U-KRanks and PT-k by literally
//! enumerating possible worlds — exponential, guarded by
//! [`crate::pws::MAX_WORLDS`], and unusable beyond toy relations. This
//! module computes the same answers in polynomial time, which is what lets
//! the `semantics_comparison` experiment (and any future large-relation
//! workload) run on relations of hundreds of items.
//!
//! The engine is a **rank-distribution dynamic program** over score
//! buckets ([`RankTable`]). For the canonical world ranking — bucket
//! descending, ties broken by ascending item id (the same deterministic
//! rule the enumeration oracle uses) — item `f` placed at bucket `b` is
//! outranked by `g` exactly when `S_g > b`, or `S_g = b` with `g < f`.
//! Conditioned on `S_f = b`, the number of items outranking `f` is a sum
//! of independent Bernoullis, so its distribution (a Poisson binomial,
//! truncated at `K`) comes from multiplying out one linear factor per
//! item. Running one truncated product left-to-right (`Pr(S_g ≥ b)` for
//! `g < f`) and one right-to-left (`Pr(S_g > b)` for `g > f`) and
//! convolving the two at each split yields `Pr(rank(f) = i)` for every
//! item and every rank `i < K` in **O(n·m·K²)** total (n items, m+1
//! buckets) — versus `Ω(mⁿ)` for enumeration.
//!
//! From the shared table:
//!
//! * **U-KRanks** reads the per-rank argmax ([`u_kranks_dp`]);
//! * **PT-k** thresholds the membership marginals `Pr(rank(f) < K)`
//!   ([`topk_membership_dp`], [`probabilistic_threshold_topk_dp`]);
//! * **U-TopK** uses the memberships as admissible upper bounds for a
//!   best-first candidate-set search whose scoring oracle,
//!   [`topk_set_probability`], evaluates any set exactly in O(K·m·n) by
//!   conditioning on the set's weakest member ([`u_topk_dp`]);
//! * truncated expected ranks `E[min(rank, K)]` fall out of the table
//!   directly ([`RankTable::truncated_expected_ranks`]).
//!
//! [`topk_confidence`] additionally gives a closed form for the paper's
//! Eq. 1 answer confidence under the footnote-1 tie rule, replacing
//! [`crate::pws::topk_confidence_bruteforce`] at scale.
//!
//! Every function here is property-tested against the enumeration oracle
//! on all enumerable relations (`tests/semantics_properties.rs`,
//! `tests/pws_equivalence.rs`); see `docs/SEMANTICS.md` for the guide and
//! the worked Table 1a example.

use crate::xtuple::{ItemId, UncertainRelation};

/// `Pr(rank(f) = i)` for every item `f` and rank `i < K` under the
/// canonical world ranking (bucket descending, id ascending), plus the
/// overflow mass `Pr(rank(f) ≥ K)` — the shared table behind U-KRanks,
/// PT-k and the U-TopK search.
///
/// Built in O(n·m·K²) by [`RankTable::build`]; `n` items over `m+1`
/// buckets.
///
/// ```
/// use everest_core::dist::DiscreteDist;
/// use everest_core::semantics_dp::RankTable;
/// use everest_core::xtuple::UncertainRelation;
///
/// // Table 1a's three frames.
/// let mut rel = UncertainRelation::new(1.0, 2);
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.78, 0.21, 0.01]));
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.49, 0.42, 0.09]));
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.16, 0.48, 0.36]));
/// let table = RankTable::build(&rel, 1);
/// // Pr(f3 is the Top-1): 0.48·0.78·0.49 + 0.36·0.99·0.91 = 0.50778
/// assert!((table.membership(2) - 0.50778).abs() < 1e-12);
/// // Memberships always sum to K.
/// let total: f64 = (0..3).map(|f| table.membership(f)).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct RankTable {
    k: usize,
    /// `probs[f][i] = Pr(rank(f) = i)` for `i < k`; `probs[f][k] =
    /// Pr(rank(f) ≥ k)`.
    probs: Vec<Vec<f64>>,
}

/// Multiplies a truncated counting polynomial by one Bernoulli(`p`)
/// factor in place: `new[i] = old[i]·(1−p) + old[i−1]·p`, with the last
/// slot absorbing all mass at counts ≥ its index.
fn bernoulli_mult(poly: &mut [f64], p: f64) {
    let cap = poly.len() - 1;
    if cap == 0 {
        return; // all mass already in the overflow slot
    }
    poly[cap] += poly[cap - 1] * p;
    for i in (1..cap).rev() {
        poly[i] = poly[i] * (1.0 - p) + poly[i - 1] * p;
    }
    poly[0] *= 1.0 - p;
}

/// Convolves two truncated counting polynomials, folding everything at or
/// beyond the cap into the final slot.
fn truncated_convolution(a: &[f64], b: &[f64]) -> Vec<f64> {
    let cap = a.len() - 1;
    debug_assert_eq!(a.len(), b.len());
    let mut out = vec![0.0; cap + 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0.0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[(i + j).min(cap)] += ai * bj;
        }
    }
    out
}

impl RankTable {
    /// Runs the rank-distribution DP for Top-`k` over the whole relation.
    ///
    /// Panics if `k` is 0 or exceeds the relation size (same contract as
    /// the enumeration oracle).
    pub fn build(rel: &UncertainRelation, k: usize) -> Self {
        let n = rel.len();
        assert!(k >= 1 && k <= n, "K out of range");
        let m = rel.max_bucket();
        let mut probs = vec![vec![0.0f64; k + 1]; n];
        // suffix[f] = distribution of #{g ≥ f : S_g > b}, truncated at k.
        let mut suffix: Vec<Vec<f64>> = vec![vec![0.0; k + 1]; n + 1];
        for b in 0..=m {
            suffix[n].fill(0.0);
            suffix[n][0] = 1.0;
            for f in (0..n).rev() {
                let (head, tail) = suffix.split_at_mut(f + 1);
                head[f].copy_from_slice(&tail[0]);
                bernoulli_mult(&mut head[f], 1.0 - rel.cdf(f, b));
            }
            // prefix = distribution of #{g < f : S_g ≥ b}, truncated at k.
            let mut prefix = vec![0.0; k + 1];
            prefix[0] = 1.0;
            for (f, row) in probs.iter_mut().enumerate() {
                let pf = rel.pmf(f, b);
                if pf > 0.0 {
                    let outranked = truncated_convolution(&prefix, &suffix[f + 1]);
                    for (slot, &c) in row.iter_mut().zip(&outranked) {
                        *slot += pf * c;
                    }
                }
                let ge = if b == 0 { 1.0 } else { 1.0 - rel.cdf(f, b - 1) };
                bernoulli_mult(&mut prefix, ge);
            }
        }
        RankTable { k, probs }
    }

    /// The `K` this table was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of items covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the table covers no items (never true: `K ≥ 1` forces a
    /// non-empty relation).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// `Pr(rank(f) = rank)` for `rank < K` (0-based, canonical ranking).
    pub fn rank_prob(&self, f: ItemId, rank: usize) -> f64 {
        assert!(
            rank < self.k,
            "rank {rank} not covered by a Top-{} table",
            self.k
        );
        self.probs[f][rank]
    }

    /// `Pr(rank(f) ≥ K)` — the truncated tail mass.
    pub fn beyond_prob(&self, f: ItemId) -> f64 {
        self.probs[f][self.k]
    }

    /// `Pr(f ∈ Top-K) = Pr(rank(f) < K)`.
    pub fn membership(&self, f: ItemId) -> f64 {
        self.probs[f][..self.k].iter().sum()
    }

    /// All membership probabilities, indexed by item id.
    pub fn memberships(&self) -> Vec<f64> {
        (0..self.len()).map(|f| self.membership(f)).collect()
    }

    /// U-KRanks straight off the table: for each rank, the item with the
    /// highest probability of occupying it (ties to the lowest id, same
    /// rule as the enumeration oracle).
    pub fn u_kranks(&self) -> Vec<(ItemId, f64)> {
        (0..self.k)
            .map(|rank| {
                let mut best = (0, self.probs[0][rank]);
                for (f, row) in self.probs.iter().enumerate().skip(1) {
                    if row[rank] > best.1 {
                        best = (f, row[rank]);
                    }
                }
                best
            })
            .collect()
    }

    /// `E[min(rank(f), K)]` per item — the expected rank truncated at `K`,
    /// exactly computable from the truncated table. A Top-K-centric
    /// cousin of [`crate::semantics::expected_ranks`] (which uses the
    /// midpoint tie convention of \[19\] and is untruncated).
    pub fn truncated_expected_ranks(&self) -> Vec<f64> {
        self.probs
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, &p)| i as f64 * p)
                    .sum::<f64>()
            })
            .collect()
    }
}

/// U-KRanks in polynomial time: for each rank `i < k`, the item most
/// likely to be ranked `i`-th. Same answer (and tie rule) as the
/// exponential [`crate::semantics::u_kranks`].
///
/// ```
/// use everest_core::dist::DiscreteDist;
/// use everest_core::semantics_dp::u_kranks_dp;
/// use everest_core::xtuple::UncertainRelation;
///
/// let mut rel = UncertainRelation::new(1.0, 3);
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.0, 0.0, 0.5, 0.5])); // strong
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.9, 0.1, 0.0, 0.0])); // weak
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.9, 0.1, 0.0, 0.0])); // weak
/// let ranks = u_kranks_dp(&rel, 2);
/// assert_eq!(ranks[0], (0, 1.0)); // the strong item always wins rank 1
/// assert_eq!(ranks[1].0, 1); // rank 2: item 1, Pr = 1 − 0.9·0.1 = 0.91
/// assert!((ranks[1].1 - 0.91).abs() < 1e-12);
/// ```
pub fn u_kranks_dp(rel: &UncertainRelation, k: usize) -> Vec<(ItemId, f64)> {
    RankTable::build(rel, k).u_kranks()
}

/// Membership probabilities `Pr(f ∈ Top-K)` for every item, in polynomial
/// time. Same values as the exponential
/// [`crate::semantics::topk_membership`].
pub fn topk_membership_dp(rel: &UncertainRelation, k: usize) -> Vec<f64> {
    RankTable::build(rel, k).memberships()
}

/// PT-k in polynomial time: every item whose Top-K membership probability
/// is at least `p`. May return fewer or more than `k` items — including
/// the empty set (the §2 critique).
///
/// ```
/// use everest_core::dist::DiscreteDist;
/// use everest_core::semantics_dp::probabilistic_threshold_topk_dp;
/// use everest_core::xtuple::UncertainRelation;
///
/// let mut rel = UncertainRelation::new(1.0, 3);
/// for _ in 0..6 {
///     rel.push_uncertain(DiscreteDist::from_masses(&[0.25; 4]));
/// }
/// // Six iid items: nobody clears 0.9, everybody clears 0.05.
/// assert!(probabilistic_threshold_topk_dp(&rel, 1, 0.9).is_empty());
/// assert_eq!(probabilistic_threshold_topk_dp(&rel, 1, 0.05).len(), 6);
/// ```
pub fn probabilistic_threshold_topk_dp(rel: &UncertainRelation, k: usize, p: f64) -> Vec<ItemId> {
    topk_membership_dp(rel, k)
        .into_iter()
        .enumerate()
        .filter(|&(_, prob)| prob >= p)
        .map(|(f, _)| f)
        .collect()
}

/// `Pr(S_g < b)` — one bucket below the CDF.
fn cdf_below(rel: &UncertainRelation, g: ItemId, b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        rel.cdf(g, b - 1)
    }
}

/// Exact probability that `set` is the **canonical** Top-`set.len()` of a
/// random world (bucket descending, ties to the ascending id — the same
/// deterministic answer the enumeration oracle accumulates).
///
/// Conditions on which member is the set's weakest under the canonical
/// order and at which bucket: the event factorizes over the independent
/// items, giving O(K·m·n) total. This is the scoring oracle of
/// [`u_topk_dp`].
///
/// ```
/// use everest_core::dist::DiscreteDist;
/// use everest_core::semantics_dp::topk_set_probability;
/// use everest_core::xtuple::UncertainRelation;
///
/// let mut rel = UncertainRelation::new(1.0, 2);
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.78, 0.21, 0.01]));
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.49, 0.42, 0.09]));
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.16, 0.48, 0.36]));
/// // The three Top-1 candidates partition the worlds.
/// let p: f64 = (0..3).map(|f| topk_set_probability(&rel, &[f])).sum();
/// assert!((p - 1.0).abs() < 1e-12);
/// assert!((topk_set_probability(&rel, &[2]) - 0.50778).abs() < 1e-12);
/// ```
pub fn topk_set_probability(rel: &UncertainRelation, set: &[ItemId]) -> f64 {
    let n = rel.len();
    let k = set.len();
    assert!(k >= 1 && k <= n, "K out of range");
    let mut in_set = vec![false; n];
    for &f in set {
        assert!(!in_set[f], "duplicate item {f} in candidate set");
        in_set[f] = true;
    }
    let mut total = 0.0;
    // Condition on the weakest member f* and its bucket b: members must
    // outrank (b, f*), non-members must rank below it.
    for &fstar in set {
        let (lo, hi) = rel.support(fstar);
        for b in lo..=hi {
            let pf = rel.pmf(fstar, b);
            if pf == 0.0 {
                continue;
            }
            let mut term = pf;
            for (g, &is_member) in in_set.iter().enumerate() {
                if g == fstar {
                    continue;
                }
                let factor = if is_member {
                    // strictly above, or tied with a smaller id
                    (1.0 - rel.cdf(g, b)) + if g < fstar { rel.pmf(g, b) } else { 0.0 }
                } else {
                    // strictly below, or tied with a larger id
                    cdf_below(rel, g, b) + if g > fstar { rel.pmf(g, b) } else { 0.0 }
                };
                if factor == 0.0 {
                    term = 0.0;
                    break;
                }
                term *= factor;
            }
            total += term;
        }
    }
    total.min(1.0)
}

/// Whether two items carry the same score distribution (certain items
/// compare by bucket). Used for the U-TopK dominance reduction.
fn same_dist(rel: &UncertainRelation, a: ItemId, b: ItemId) -> bool {
    match (rel.certain_bucket(a), rel.certain_bucket(b)) {
        (Some(x), Some(y)) => x == y,
        (None, None) => rel.dist(a) == rel.dist(b),
        _ => false,
    }
}

/// Groups items into identical-distribution equivalence classes and
/// returns each item's class id.
fn distribution_classes(rel: &UncertainRelation) -> Vec<usize> {
    let n = rel.len();
    let mut reps: Vec<ItemId> = Vec::new();
    let mut class_of = vec![0usize; n];
    for (f, class) in class_of.iter_mut().enumerate() {
        match reps.iter().position(|&r| same_dist(rel, r, f)) {
            Some(c) => *class = c,
            None => {
                *class = reps.len();
                reps.push(f);
            }
        }
    }
    class_of
}

/// Streams every `need`-subset of `free` (ascending positions) that is
/// **class-prefix-closed**: a position may only be chosen if no earlier
/// position of the same class was skipped. This is the exact dominance
/// reduction for identical-distribution items — swapping a chosen item
/// for a skipped lower-id twin never decreases a set's probability, so
/// the lexicographically smallest maximizer is always prefix-closed.
fn for_each_prefix_closed_subset(
    free: &[usize],
    class_of_free: &[usize],
    num_classes: usize,
    need: usize,
    visit: &mut impl FnMut(&[usize]),
) {
    fn rec(
        free: &[usize],
        class_of_free: &[usize],
        idx: usize,
        need: usize,
        chosen: &mut Vec<usize>,
        blocked: &mut [bool],
        visit: &mut impl FnMut(&[usize]),
    ) {
        if chosen.len() == need {
            visit(chosen);
            return;
        }
        if free.len() - idx < need - chosen.len() {
            return; // not enough positions left
        }
        let c = class_of_free[idx];
        if !blocked[c] {
            chosen.push(free[idx]);
            rec(free, class_of_free, idx + 1, need, chosen, blocked, visit);
            chosen.pop();
        }
        // skipping this position blocks the rest of its class
        let was = blocked[c];
        blocked[c] = true;
        rec(free, class_of_free, idx + 1, need, chosen, blocked, visit);
        blocked[c] = was;
    }
    let mut blocked = vec![false; num_classes];
    let mut chosen = Vec::with_capacity(need);
    rec(
        free,
        class_of_free,
        0,
        need,
        &mut chosen,
        &mut blocked,
        visit,
    );
}

/// U-TopK without world enumeration: the most probable canonical Top-K
/// *set*, with its probability. Same answer as the exponential
/// [`crate::semantics::u_topk`].
///
/// Candidate sets are scored exactly by [`topk_set_probability`] and
/// searched best-first under the admissible bound `Pr(T is the Top-K) ≤
/// min_{f∈T} Pr(f ∈ Top-K)`: sets are visited in decreasing order of
/// their weakest member's membership probability, and the search stops as
/// soon as the best exact score dominates the bound on everything
/// unvisited. Items with *identical* distributions are collapsed by an
/// exact dominance reduction (the lexicographically smallest maximizer
/// always takes the lowest ids of each identical-distribution class
/// first), so tie-heavy relations — the common case for counting scores —
/// don't blow the search up. With distinguishable strengths it terminates
/// after a handful of evaluations (the membership Top-K itself is usually
/// optimal); on adversarial near-exchangeable relations — where every set
/// is roughly equally improbable but no two items are exactly alike — it
/// can degrade toward exhaustive `C(n, K)` scoring, which is still
/// exponentially cheaper than enumerating worlds.
///
/// ```
/// use everest_core::dist::DiscreteDist;
/// use everest_core::semantics_dp::u_topk_dp;
/// use everest_core::xtuple::UncertainRelation;
///
/// let mut rel = UncertainRelation::new(1.0, 2);
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.78, 0.21, 0.01]));
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.49, 0.42, 0.09]));
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.16, 0.48, 0.36]));
/// let (set, p) = u_topk_dp(&rel, 1);
/// assert_eq!(set, vec![2]); // f3 is the most probable Top-1…
/// assert!((p - 0.50778).abs() < 1e-12); // …but only at ~51% (§2 critique)
/// ```
pub fn u_topk_dp(rel: &UncertainRelation, k: usize) -> (Vec<ItemId>, f64) {
    u_topk_with_memberships(rel, k, &topk_membership_dp(rel, k))
}

/// [`u_topk_dp`] with the membership marginals supplied by the caller —
/// lets [`crate::semantics::compare_semantics`] reuse one [`RankTable`]
/// for every semantic instead of rebuilding the DP per entry point.
pub fn u_topk_with_memberships(
    rel: &UncertainRelation,
    k: usize,
    member: &[f64],
) -> (Vec<ItemId>, f64) {
    let n = rel.len();
    assert!(k >= 1 && k <= n, "K out of range");
    assert_eq!(member.len(), n, "one membership probability per item");
    // Items by decreasing membership (ties to the lower id for
    // determinism): level j considers the sets whose weakest member — in
    // this order — is order[j-1], bounded above by member[order[j-1]].
    let mut order: Vec<ItemId> = (0..n).collect();
    order.sort_by(|&a, &b| {
        member[b]
            .partial_cmp(&member[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let class_of: Vec<usize> = distribution_classes(rel);
    let num_classes = class_of.iter().max().copied().unwrap_or(0) + 1;
    let mut best_set: Vec<ItemId> = Vec::new();
    let mut best_p = f64::NEG_INFINITY;
    for j in k..=n {
        // Every set not yet visited has its weakest member at or after
        // order[j-1], so its probability is at most this bound.
        if best_p >= member[order[j - 1]] {
            break;
        }
        // The anchor (level weakest) brings its whole class prefix along:
        // same-class items with lower ids sort before it and, by
        // dominance, must be in any candidate that contains it.
        let anchor = order[j - 1];
        let required: Vec<usize> = (0..j - 1)
            .filter(|&p| class_of[order[p]] == class_of[anchor])
            .collect();
        if required.len() > k - 1 {
            continue; // anchor can't be the weakest of any prefix-closed set
        }
        let free: Vec<usize> = (0..j - 1)
            .filter(|&p| class_of[order[p]] != class_of[anchor])
            .collect();
        let class_of_free: Vec<usize> = free.iter().map(|&p| class_of[order[p]]).collect();
        let need = k - 1 - required.len();
        for_each_prefix_closed_subset(&free, &class_of_free, num_classes, need, &mut |combo| {
            let mut set: Vec<ItemId> = combo.iter().map(|&p| order[p]).collect();
            set.extend(required.iter().map(|&p| order[p]));
            set.push(anchor);
            set.sort_unstable();
            let p = topk_set_probability(rel, &set);
            // strict improvement, or the lexicographically smaller set on
            // an exact tie (the enumeration oracle's tie rule)
            if p > best_p || (p == best_p && set < best_set) {
                best_set = set;
                best_p = p;
            }
        });
    }
    (best_set, best_p)
}

/// Eq. 1 confidence of `answer` as a Top-`k` result, in closed form —
/// the polynomial replacement for
/// [`crate::pws::topk_confidence_bruteforce`].
///
/// Uses the paper's footnote-1 tie rule: `answer` counts as Top-K in a
/// world when no outside item scores **strictly higher** than the lowest
/// score inside the answer (ties are tolerated, unlike the canonical-set
/// semantics of [`topk_set_probability`]). Conditioning on the answer's
/// minimum score `M` makes the outside items independent of it:
/// `Σ_t Pr(M = t) · ∏_{g∉answer} F_g(t)`, which is O(n·m).
///
/// Returns 0 when `answer` is not exactly `k` items (wrong-cardinality
/// answers are Top-K in no world).
///
/// ```
/// use everest_core::dist::DiscreteDist;
/// use everest_core::semantics_dp::topk_confidence;
/// use everest_core::xtuple::UncertainRelation;
///
/// let mut rel = UncertainRelation::new(1.0, 2);
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.78, 0.21, 0.01]));
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.49, 0.42, 0.09]));
/// rel.push_uncertain(DiscreteDist::from_masses(&[0.16, 0.48, 0.36]));
/// // §3: the Top-1 result {f3} has confidence ≈ 0.85
/// // (0.16·0.78·0.49 + 0.48·0.99·0.91 + 0.36 = 0.853584).
/// assert!((topk_confidence(&rel, &[2], 1) - 0.853584).abs() < 1e-9);
/// ```
pub fn topk_confidence(rel: &UncertainRelation, answer: &[ItemId], k: usize) -> f64 {
    if answer.len() != k {
        return 0.0;
    }
    let n = rel.len();
    let m = rel.max_bucket();
    let mut in_answer = vec![false; n];
    for &f in answer {
        in_answer[f] = true;
    }
    let mut total = 0.0;
    for t in 0..=m {
        // Pr(min over the answer = t) via the survival products.
        let p_ge: f64 = answer.iter().map(|&f| 1.0 - cdf_below(rel, f, t)).product();
        let p_gt: f64 = answer.iter().map(|&f| 1.0 - rel.cdf(f, t)).product();
        let p_min_eq = p_ge - p_gt;
        if p_min_eq <= 0.0 {
            continue;
        }
        let mut outside = 1.0;
        for (g, &in_ans) in in_answer.iter().enumerate() {
            if !in_ans {
                outside *= rel.cdf(g, t);
                if outside == 0.0 {
                    break;
                }
            }
        }
        total += p_min_eq * outside;
    }
    total.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DiscreteDist;
    use crate::xtuple::table_1a;

    fn d(masses: &[f64]) -> DiscreteDist {
        DiscreteDist::from_masses(masses)
    }

    #[test]
    fn bernoulli_mult_tracks_poisson_binomial() {
        // Three coins with p = 0.5, capped at 2: (1/8, 3/8, 4/8).
        let mut poly = vec![1.0, 0.0, 0.0];
        for _ in 0..3 {
            bernoulli_mult(&mut poly, 0.5);
        }
        assert!((poly[0] - 0.125).abs() < 1e-12);
        assert!((poly[1] - 0.375).abs() < 1e-12);
        assert!((poly[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn truncated_convolution_folds_overflow() {
        let a = vec![0.5, 0.5, 0.0];
        let b = vec![0.0, 0.5, 0.5];
        // counts: 1 w.p. .25, 2 w.p. .5, 3 w.p. .25 → capped [0, .25, .75]
        let c = truncated_convolution(&a, &b);
        assert!((c[0] - 0.0).abs() < 1e-12);
        assert!((c[1] - 0.25).abs() < 1e-12);
        assert!((c[2] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn prefix_closed_subsets_enumerate_all_singleton_classes() {
        // All-distinct classes: the generator degrades to plain
        // combinations.
        let free = [0usize, 1, 2, 3];
        let classes = [0usize, 1, 2, 3];
        let mut seen = Vec::new();
        for_each_prefix_closed_subset(&free, &classes, 4, 2, &mut |c| seen.push(c.to_vec()));
        seen.sort();
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        let mut empty = 0;
        for_each_prefix_closed_subset(&free, &classes, 4, 0, &mut |c| {
            assert!(c.is_empty());
            empty += 1;
        });
        assert_eq!(empty, 1, "need = 0 yields exactly the empty subset");
    }

    #[test]
    fn prefix_closed_subsets_respect_class_dominance() {
        // Positions 0..4 all in one class: only id-prefixes are admissible.
        let free = [0usize, 1, 2, 3];
        let classes = [0usize, 0, 0, 0];
        let mut seen = Vec::new();
        for_each_prefix_closed_subset(&free, &classes, 1, 2, &mut |c| seen.push(c.to_vec()));
        assert_eq!(seen, vec![vec![0, 1]], "only the 2-prefix survives");
        // Two interleaved classes a(0,2) / b(1,3): picking position 2
        // requires position 0, picking 3 requires 1.
        let classes = [0usize, 1, 0, 1];
        let mut seen = Vec::new();
        for_each_prefix_closed_subset(&free, &classes, 2, 2, &mut |c| {
            let mut c = c.to_vec();
            c.sort_unstable();
            seen.push(c);
        });
        seen.sort();
        assert_eq!(seen, vec![vec![0, 1], vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn distribution_classes_group_identical_items() {
        let mut rel = UncertainRelation::new(1.0, 2);
        rel.push_uncertain(d(&[0.5, 0.5, 0.0]));
        rel.push_uncertain(d(&[0.2, 0.2, 0.6]));
        rel.push_uncertain(d(&[0.5, 0.5, 0.0])); // twin of item 0
        rel.push_certain(1);
        rel.push_certain(1); // twin of item 3
        rel.push_certain(2);
        assert_eq!(distribution_classes(&rel), vec![0, 1, 0, 2, 2, 3]);
    }

    #[test]
    fn u_topk_dp_collapses_identical_items() {
        // 24 identical strong items + 24 identical weak ones: the Top-8 is
        // the 8 lowest-id strong items by canonical dominance, and the
        // search must find it without enumerating C(24,8) sets.
        let mut rel = UncertainRelation::new(1.0, 4);
        for _ in 0..24 {
            rel.push_uncertain(d(&[0.0, 0.0, 0.2, 0.4, 0.4]));
        }
        for _ in 0..24 {
            rel.push_uncertain(d(&[0.4, 0.4, 0.2, 0.0, 0.0]));
        }
        let started = std::time::Instant::now();
        let (set, p) = u_topk_dp(&rel, 8);
        assert!(started.elapsed() < std::time::Duration::from_secs(1));
        assert_eq!(set, (0..8).collect::<Vec<_>>());
        assert!(p > 0.0 && p <= 1.0);
    }

    #[test]
    fn rank_table_rows_are_distributions() {
        let table = RankTable::build(&table_1a(), 2);
        for f in 0..3 {
            let total: f64 =
                (0..2).map(|i| table.rank_prob(f, i)).sum::<f64>() + table.beyond_prob(f);
            assert!((total - 1.0).abs() < 1e-9, "item {f}: mass {total}");
        }
        let member_sum: f64 = table.memberships().iter().sum();
        assert!((member_sum - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table_1a_top1_set_probabilities_partition() {
        // Hand-computed canonical Top-1 probabilities for Table 1a.
        let rel = table_1a();
        let p: Vec<f64> = (0..3).map(|f| topk_set_probability(&rel, &[f])).collect();
        assert!((p[0] - 0.193456).abs() < 1e-9);
        assert!((p[1] - 0.298764).abs() < 1e-9);
        assert!((p[2] - 0.50778).abs() < 1e-9);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn u_topk_dp_on_table_1a() {
        let (set, p) = u_topk_dp(&table_1a(), 1);
        assert_eq!(set, vec![2]);
        assert!((p - 0.50778).abs() < 1e-9);
    }

    #[test]
    fn certain_relation_all_dp_semantics_agree() {
        let mut rel = UncertainRelation::new(1.0, 5);
        rel.push_certain(5);
        rel.push_certain(3);
        rel.push_certain(1);
        let (set, p) = u_topk_dp(&rel, 2);
        assert_eq!(set, vec![0, 1]);
        assert_eq!(p, 1.0);
        let ranks = u_kranks_dp(&rel, 2);
        assert_eq!(ranks[0], (0, 1.0));
        assert_eq!(ranks[1], (1, 1.0));
        assert_eq!(probabilistic_threshold_topk_dp(&rel, 2, 0.99), vec![0, 1]);
        assert_eq!(topk_confidence(&rel, &[0, 1], 2), 1.0);
        assert_eq!(topk_confidence(&rel, &[1, 2], 2), 0.0);
    }

    #[test]
    fn canonical_ties_break_to_the_lower_id() {
        let mut rel = UncertainRelation::new(1.0, 1);
        rel.push_certain(1);
        rel.push_certain(1);
        // Canonically item 0 wins the tie in every world…
        assert_eq!(topk_set_probability(&rel, &[0]), 1.0);
        assert_eq!(topk_set_probability(&rel, &[1]), 0.0);
        assert_eq!(u_topk_dp(&rel, 1), (vec![0], 1.0));
        // …but under the footnote-1 tie rule either answer is valid.
        assert_eq!(topk_confidence(&rel, &[0], 1), 1.0);
        assert_eq!(topk_confidence(&rel, &[1], 1), 1.0);
    }

    #[test]
    fn confidence_matches_paper_table_5() {
        // After Oracle(f3) = 0, {f3}'s Top-1 confidence drops to
        // 0.78 × 0.49 (§3 / Table 5).
        let mut rel = table_1a();
        rel.clean(2, 0);
        let p = topk_confidence(&rel, &[2], 1);
        assert!((p - 0.78 * 0.49).abs() < 1e-12);
    }

    #[test]
    fn wrong_cardinality_answers_have_zero_confidence() {
        let rel = table_1a();
        assert_eq!(topk_confidence(&rel, &[0, 1], 1), 0.0);
    }

    #[test]
    fn truncated_expected_ranks_on_certain_relation() {
        let mut rel = UncertainRelation::new(1.0, 5);
        rel.push_certain(5);
        rel.push_certain(3);
        rel.push_certain(1);
        let t = RankTable::build(&rel, 2).truncated_expected_ranks();
        assert_eq!(t, vec![0.0, 1.0, 2.0]); // ranks 0, 1, and ≥2 ⇒ capped at 2
    }

    #[test]
    fn u_topk_dp_handles_k_equal_n() {
        let mut rel = UncertainRelation::new(1.0, 2);
        rel.push_uncertain(d(&[0.3, 0.3, 0.4]));
        rel.push_uncertain(d(&[0.5, 0.5, 0.0]));
        let (set, p) = u_topk_dp(&rel, 2);
        assert_eq!(set, vec![0, 1]);
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dp_scales_where_enumeration_cannot() {
        // 40 items × 6-bucket supports ≈ 6⁴⁰ worlds — far past MAX_WORLDS.
        let mut rel = UncertainRelation::new(1.0, 8);
        for i in 0..40 {
            let center = (i % 9) as f64;
            let masses: Vec<f64> = (0..=8)
                .map(|b| (-((b as f64 - center) / 1.3).powi(2)).exp() + 1e-6)
                .collect();
            rel.push_uncertain(d(&masses));
        }
        let table = RankTable::build(&rel, 5);
        let member_sum: f64 = table.memberships().iter().sum();
        assert!((member_sum - 5.0).abs() < 1e-6);
        let (set, p) = u_topk_dp(&rel, 5);
        assert_eq!(set.len(), 5);
        assert!(p > 0.0 && p <= 1.0);
        assert_eq!(u_kranks_dp(&rel, 5).len(), 5);
    }
}
