//! Top-K over tumbling windows (§3.4).
//!
//! A video is divided into consecutive non-overlapping windows of `L`
//! frames; a window's score is the mean of its frames' scores. The window
//! score distribution is approximated by a single Gaussian (Eq. 9) using
//! the difference detector's segmentation: frames in a segment share their
//! retained representative's CMDN mixture (moments ¯μ, ¯σ²), and segments
//! are treated as independent:
//!
//! ```text
//! S_w ~ N( (1/L) Σ_t |s_t| ¯μ_r_t ,  (1/L) Σ_t |s_t| ¯σ²_r_t )
//! ```
//!
//! (We reproduce Eq. 9 exactly as printed, including its variance form.)
//! Confirming a window with the oracle samples ~10 % of its frames and
//! uses the sample mean (§3.4), so window "certain" scores are themselves
//! estimates — the source of the small precision fluctuations the paper
//! reports in §4.2.3.

use crate::cleaner::CleaningOracle;
use crate::xtuple::{ItemId, UncertainRelation};
use everest_models::Oracle;
use everest_nn::GaussianMixture;
use everest_video::diff::Segments;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A tumbling window: the half-open frame range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowInfo {
    pub start: usize,
    pub end: usize,
}

impl WindowInfo {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Splits `n_frames` into tumbling windows of `len` frames (the final
/// window may be shorter).
pub fn tumbling_windows(n_frames: usize, len: usize) -> Vec<WindowInfo> {
    assert!(len >= 1, "window length must be positive");
    (0..n_frames.div_ceil(len))
        .map(|i| WindowInfo {
            start: i * len,
            end: ((i + 1) * len).min(n_frames),
        })
        .collect()
}

/// Sliding (hopping) windows of `len` frames every `slide` frames — an
/// extension beyond the paper's tumbling windows (§3.4).
///
/// Window starts are `0, slide, 2·slide, …`; the last start is the
/// smallest multiple of `slide` whose window reaches the end of the video
/// (so trailing stub windows that are strict subsets of an earlier window
/// are not generated). `slide == len` degenerates to
/// [`tumbling_windows`].
///
/// **Independence caveat:** overlapping windows share frames, so their
/// scores are *not* independent and Eq. 2's product form treats the
/// confidence as an approximation. The certain-result condition is
/// unaffected — every returned window is still oracle-confirmed — and
/// [`suppress_overlaps`] can post-process the answer into disjoint
/// moments.
pub fn sliding_windows(n_frames: usize, len: usize, slide: usize) -> Vec<WindowInfo> {
    assert!(len >= 1, "window length must be positive");
    assert!(slide >= 1, "slide must be positive");
    assert!(
        slide <= len,
        "slide {slide} > len {len} would leave uncovered gaps"
    );
    if n_frames == 0 {
        return Vec::new();
    }
    if n_frames <= len {
        return vec![WindowInfo {
            start: 0,
            end: n_frames,
        }];
    }
    let last = (n_frames - len).div_ceil(slide);
    (0..=last)
        .map(|i| {
            let start = i * slide;
            WindowInfo {
                start,
                end: (start + len).min(n_frames),
            }
        })
        .collect()
}

/// Greedily filters a ranked window answer down to pairwise-disjoint
/// windows: earlier (better-ranked) windows win; any later window
/// overlapping a kept one is dropped.
///
/// Useful after a sliding-window Top-K, where the top of the ranking is
/// typically several shifted copies of the same moment.
pub fn suppress_overlaps(ranked: &[WindowInfo]) -> Vec<WindowInfo> {
    let mut kept: Vec<WindowInfo> = Vec::new();
    for &w in ranked {
        if kept.iter().all(|k| w.end <= k.start || w.start >= k.end) {
            kept.push(w);
        }
    }
    kept
}

/// Builds the window-level uncertain relation from per-retained-frame CMDN
/// mixtures (Eq. 9 + quantization).
///
/// `mixtures[p]` is the mixture of the `p`-th retained frame (aligned with
/// `segments.retained()`); `step`/`max_bucket` define the shared window
/// score grid.
pub fn build_window_relation(
    mixtures: &[GaussianMixture],
    segments: &Segments,
    windows: &[WindowInfo],
    step: f64,
    max_bucket: usize,
) -> UncertainRelation {
    assert_eq!(
        mixtures.len(),
        segments.num_retained(),
        "one mixture per retained frame required"
    );
    let mut rel = UncertainRelation::new(step, max_bucket);
    for w in windows {
        assert!(!w.is_empty(), "empty window {w:?}");
        let l = w.len() as f64;
        let mut mean = 0.0;
        let mut var = 0.0;
        for (rep_frame, seg_size) in segments.window_segments(w.start, w.end) {
            let pos = segments.representative_position(rep_frame);
            let m = &mixtures[pos];
            mean += seg_size as f64 * m.mean() / l;
            var += seg_size as f64 * m.variance() / l;
        }
        // Guard against a degenerate zero-variance Gaussian.
        let std = var.sqrt().max(step / 10.0);
        let gauss = GaussianMixture::single(mean, std);
        let masses = gauss.quantize(step, max_bucket);
        rel.push_uncertain(crate::dist::DiscreteDist::from_masses(&masses));
    }
    rel
}

/// Exact window scores (mean of exact frame scores) — ground truth for
/// window-query metrics and the scan-and-test window baseline.
pub fn exact_window_scores(frame_scores: &[f64], windows: &[WindowInfo]) -> Vec<f64> {
    windows
        .iter()
        .map(|w| frame_scores[w.start..w.end].iter().sum::<f64>() / w.len() as f64)
        .collect()
}

/// The window-cleaning oracle of §3.4: confirming a window samples
/// `ceil(sample_frac × L)` of its frames, scores them with the deep oracle,
/// and uses the sample mean as the window's (certain) score.
pub struct WindowCleaningOracle<'a> {
    oracle: &'a dyn Oracle,
    windows: &'a [WindowInfo],
    sample_frac: f64,
    step: f64,
    max_bucket: usize,
    rng: StdRng,
    /// Total frames sent to the deep oracle (cost accounting).
    pub frames_scored: usize,
    /// Oracle overhead already accumulated when this query started.
    overhead0: f64,
}

impl<'a> WindowCleaningOracle<'a> {
    pub fn new(
        oracle: &'a dyn Oracle,
        windows: &'a [WindowInfo],
        sample_frac: f64,
        step: f64,
        max_bucket: usize,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&sample_frac) && sample_frac > 0.0);
        WindowCleaningOracle {
            oracle,
            windows,
            sample_frac,
            step,
            max_bucket,
            rng: StdRng::seed_from_u64(seed),
            frames_scored: 0,
            overhead0: oracle.sim_overhead_seconds(),
        }
    }

    /// The sampled frames for confirming window `wid` (advances the RNG).
    fn sample_frames(&mut self, wid: ItemId) -> Vec<usize> {
        let w = self.windows[wid];
        let m = ((w.len() as f64 * self.sample_frac).ceil() as usize).clamp(1, w.len());
        let mut frames: Vec<usize> = (w.start..w.end).collect();
        frames.shuffle(&mut self.rng);
        frames.truncate(m);
        frames
    }

    fn mean_bucket(&self, scores: &[f64]) -> u32 {
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        ((mean / self.step).round().max(0.0) as usize).min(self.max_bucket) as u32
    }
}

impl CleaningOracle for WindowCleaningOracle<'_> {
    fn clean_batch(&mut self, items: &[ItemId]) -> Vec<u32> {
        items
            .iter()
            .map(|&wid| {
                let frames = self.sample_frames(wid);
                let scores = self.oracle.score_batch(&frames);
                self.frames_scored += frames.len();
                self.mean_bucket(&scores)
            })
            .collect()
    }

    fn try_clean_batch(
        &mut self,
        items: &[ItemId],
    ) -> Result<Vec<u32>, everest_models::OracleError> {
        // A mid-batch failure discards the whole batch's confirmations:
        // frames scored before the failure are still charged (the work
        // happened), and the RNG has advanced — both deterministic given
        // the fault schedule.
        items
            .iter()
            .map(|&wid| {
                let frames = self.sample_frames(wid);
                let scores = self.oracle.try_score_batch(&frames)?;
                self.frames_scored += frames.len();
                Ok(self.mean_bucket(&scores))
            })
            .collect()
    }

    fn sim_seconds_spent(&self) -> f64 {
        self.frames_scored as f64 * self.oracle.cost_per_frame()
            + (self.oracle.sim_overhead_seconds() - self.overhead0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_models::ExactScoreOracle;
    use everest_video::diff::Segments;

    #[test]
    fn tumbling_windows_partition_frames() {
        let ws = tumbling_windows(100, 30);
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0], WindowInfo { start: 0, end: 30 });
        assert_eq!(
            ws[3],
            WindowInfo {
                start: 90,
                end: 100
            }
        );
        let total: usize = ws.iter().map(|w| w.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn window_of_one_frame_each() {
        let ws = tumbling_windows(5, 1);
        assert_eq!(ws.len(), 5);
        assert!(ws.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn eq9_single_segment_window() {
        // One retained frame represents the whole 10-frame window: the
        // window mean equals the frame's mixture mean and the variance
        // follows Eq. 9: (1/L)·L·σ² = σ².
        let segs = Segments::from_parts(vec![5], vec![0; 10]);
        let mixtures = vec![GaussianMixture::single(4.0, 1.0)];
        let ws = tumbling_windows(10, 10);
        let rel = build_window_relation(&mixtures, &segs, &ws, 1.0, 10);
        assert_eq!(rel.len(), 1);
        let d = rel.dist(0).unwrap();
        assert!(
            (d.mean_bucket() - 4.0).abs() < 0.2,
            "mean {}",
            d.mean_bucket()
        );
    }

    #[test]
    fn eq9_mixes_segment_moments() {
        // Two segments of 5 frames each with means 2 and 6 → window mean 4.
        let rep_of: Vec<u32> = [vec![0u32; 5], vec![1u32; 5]].concat();
        let segs = Segments::from_parts(vec![2, 7], rep_of);
        let mixtures = vec![
            GaussianMixture::single(2.0, 0.5),
            GaussianMixture::single(6.0, 0.5),
        ];
        let ws = tumbling_windows(10, 10);
        let rel = build_window_relation(&mixtures, &segs, &ws, 1.0, 10);
        let d = rel.dist(0).unwrap();
        assert!(
            (d.mean_bucket() - 4.0).abs() < 0.2,
            "mean {}",
            d.mean_bucket()
        );
    }

    #[test]
    fn exact_window_scores_are_means() {
        let frames = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ws = tumbling_windows(6, 3);
        let scores = exact_window_scores(&frames, &ws);
        assert_eq!(scores, vec![2.0, 5.0]);
    }

    #[test]
    fn window_oracle_full_sampling_is_exact() {
        let frame_scores: Vec<f64> = (0..30).map(|i| (i % 5) as f64).collect();
        let oracle = ExactScoreOracle::new("gt", frame_scores.clone(), 0.01);
        let ws = tumbling_windows(30, 10);
        let mut wo = WindowCleaningOracle::new(&oracle, &ws, 1.0, 0.5, 40, 7);
        let buckets = wo.clean_batch(&[0, 1, 2]);
        let exact = exact_window_scores(&frame_scores, &ws);
        for (b, e) in buckets.iter().zip(exact.iter()) {
            assert_eq!(*b as f64 * 0.5, *e, "full sampling must be exact");
        }
        assert_eq!(wo.frames_scored, 30);
    }

    #[test]
    fn window_oracle_sampling_is_unbiasedish() {
        let frame_scores: Vec<f64> = (0..300).map(|i| ((i / 30) % 4) as f64).collect();
        let oracle = ExactScoreOracle::new("gt", frame_scores.clone(), 0.01);
        let ws = tumbling_windows(300, 100);
        let exact = exact_window_scores(&frame_scores, &ws);
        let mut wo = WindowCleaningOracle::new(&oracle, &ws, 0.1, 0.25, 40, 3);
        let buckets = wo.clean_batch(&[0, 1, 2]);
        for (b, e) in buckets.iter().zip(exact.iter()) {
            let got = *b as f64 * 0.25;
            assert!(
                (got - e).abs() <= 1.0,
                "sampled window mean {got} too far from exact {e}"
            );
        }
        assert_eq!(wo.frames_scored, 30); // 10% of 3 windows × 100 frames
    }

    #[test]
    #[should_panic(expected = "one mixture per retained frame")]
    fn mixture_count_mismatch_panics() {
        let segs = Segments::identity(4);
        let ws = tumbling_windows(4, 2);
        let _ = build_window_relation(&[], &segs, &ws, 1.0, 5);
    }

    #[test]
    fn sliding_equals_tumbling_when_slide_is_len() {
        for (n, len) in [(100, 30), (90, 30), (1, 1), (7, 10)] {
            assert_eq!(
                sliding_windows(n, len, len),
                tumbling_windows(n, len),
                "n={n} len={len}"
            );
        }
    }

    #[test]
    fn sliding_windows_hop_and_cover() {
        let ws = sliding_windows(10, 5, 2);
        assert_eq!(
            ws,
            vec![
                WindowInfo { start: 0, end: 5 },
                WindowInfo { start: 2, end: 7 },
                WindowInfo { start: 4, end: 9 },
                WindowInfo { start: 6, end: 10 },
            ]
        );
        // every frame is covered by at least one window
        for f in 0..10 {
            assert!(
                ws.iter().any(|w| w.start <= f && f < w.end),
                "frame {f} uncovered"
            );
        }
        // no stub window that is a subset of the previous one
        for pair in ws.windows(2) {
            assert!(pair[1].start > pair[0].start);
            assert!(pair[1].end > pair[0].end);
        }
    }

    #[test]
    fn sliding_short_video_yields_single_window() {
        assert_eq!(
            sliding_windows(4, 10, 3),
            vec![WindowInfo { start: 0, end: 4 }]
        );
        assert!(sliding_windows(0, 10, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "uncovered gaps")]
    fn sliding_rejects_gappy_slide() {
        let _ = sliding_windows(100, 10, 11);
    }

    #[test]
    fn suppress_overlaps_keeps_best_ranked_disjoint_set() {
        let w = |s: usize, e: usize| WindowInfo { start: s, end: e };
        // ranked best-first: the 2nd overlaps the 1st and is dropped; the
        // 3rd is disjoint and kept; the 4th overlaps the 3rd and is dropped.
        let ranked = [w(10, 20), w(15, 25), w(30, 40), w(39, 49), w(0, 10)];
        assert_eq!(
            suppress_overlaps(&ranked),
            vec![w(10, 20), w(30, 40), w(0, 10)]
        );
        assert!(suppress_overlaps(&[]).is_empty());
    }

    #[test]
    fn suppress_overlaps_touching_windows_are_disjoint() {
        let w = |s: usize, e: usize| WindowInfo { start: s, end: e };
        // [0,10) and [10,20) share no frame: both kept.
        assert_eq!(
            suppress_overlaps(&[w(0, 10), w(10, 20)]),
            vec![w(0, 10), w(10, 20)]
        );
    }
}
