//! Probabilistic skyline over uncertain video data — the future-work
//! direction the paper names in §5 ("Finding the skyline \[6\] from such
//! uncertain video data"), built in Everest's oracle-in-the-loop style.
//!
//! ## Setting
//!
//! Each frame carries a *vector* of `d` scores (e.g. `(cars, persons)`),
//! each given as an independent per-dimension x-tuple distribution (the
//! difference-detector argument of §3.2 justifies independence across
//! frames; a separate CMDN per scoring function justifies independence
//! across dimensions). Frame `a` **dominates** `b` (`a ≻ b`) iff
//! `a_j ≥ b_j` on every dimension and `a_j > b_j` on at least one. The
//! **skyline** is the set of non-dominated frames.
//!
//! ## Oracle-in-the-loop skyline cleaning
//!
//! Mirroring §3.3, the answer `R̂` is the skyline of the *certain* subset
//! (certain-result condition), and its confidence is the probability that
//! `R̂` equals the true skyline. Under item independence that probability
//! factorizes exactly like Eq. 2:
//!
//! ```text
//! p̂ = Π_{u ∈ Dᵘ} Pr(S_u ∈ Dominated(R̂))
//! ```
//!
//! because `R̂` is wrong iff some uncertain item escapes domination by
//! `R̂`: an escaped item either joins the skyline or evicts a member
//! (and a dominated item can do neither — domination is transitive, so
//! `u ≺ r ∈ R̂` and `u ≻ r' ∈ R̂` would give `r ≻ r'`, contradicting both
//! being skyline members). `Dominated(R̂)` is a deterministic region —
//! `R̂`'s scores are oracle-confirmed — so each factor is a plain
//! probability mass, computed in `O(m)` per item for `d = 2` via the
//! staircase of `R̂` (and by grid enumeration for `d = 3`).
//!
//! The cleaning loop repeatedly confirms the uncertain item with the
//! **smallest** factor — the analogue of §3.3.2's ψ ordering: for a
//! product of probabilities, the smallest factor is both the largest drag
//! on `p̂` and the item most likely to change the skyline.

use crate::dist::DiscreteDist;
use crate::xtuple::ItemId;
use std::collections::{BTreeMap, BTreeSet};

/// One dimension of one item: a distribution or an exact bucket.
#[derive(Debug, Clone, PartialEq)]
pub enum DimState {
    Uncertain(DiscreteDist),
    Certain(u32),
}

impl DimState {
    fn pmf(&self, bucket: usize) -> f64 {
        match self {
            DimState::Uncertain(d) => d.pmf(bucket),
            DimState::Certain(b) => {
                if *b as usize == bucket {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn cdf(&self, bucket: i64) -> f64 {
        if bucket < 0 {
            return 0.0;
        }
        match self {
            DimState::Uncertain(d) => d.cdf(bucket as usize),
            DimState::Certain(b) => {
                if (*b as i64) <= bucket {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn support(&self) -> (usize, usize) {
        match self {
            DimState::Uncertain(d) => (d.support_min(), d.support_max()),
            DimState::Certain(b) => (*b as usize, *b as usize),
        }
    }
}

/// A multi-dimensional uncertain relation: `items[i][j]` is item `i`'s
/// score state on dimension `j`. All dimensions share one bucket grid per
/// dimension (`max_bucket[j]`).
#[derive(Debug, Clone)]
pub struct VectorRelation {
    max_bucket: Vec<usize>,
    items: Vec<Vec<DimState>>,
    num_certain: usize,
}

impl VectorRelation {
    pub fn new(max_bucket: Vec<usize>) -> Self {
        assert!(
            (2..=3).contains(&max_bucket.len()),
            "skylines need 2 or 3 dimensions, got {}",
            max_bucket.len()
        );
        VectorRelation {
            max_bucket,
            items: Vec::new(),
            num_certain: 0,
        }
    }

    pub fn dims(&self) -> usize {
        self.max_bucket.len()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn num_certain(&self) -> usize {
        self.num_certain
    }

    pub fn max_bucket(&self, dim: usize) -> usize {
        self.max_bucket[dim]
    }

    /// Adds an item with per-dimension states (certain dimensions allowed,
    /// but the item counts as certain only when *all* dimensions are).
    pub fn push(&mut self, dims: Vec<DimState>) -> ItemId {
        assert_eq!(dims.len(), self.dims(), "dimension count mismatch");
        for (j, d) in dims.iter().enumerate() {
            let max = match d {
                DimState::Uncertain(dist) => dist.max_bucket(),
                DimState::Certain(b) => *b as usize,
            };
            assert!(
                max <= self.max_bucket[j],
                "dim {j}: bucket {max} beyond grid {}",
                self.max_bucket[j]
            );
            if let DimState::Uncertain(dist) = d {
                assert_eq!(
                    dist.max_bucket(),
                    self.max_bucket[j],
                    "dim {j}: distribution grid mismatch"
                );
            }
        }
        if dims.iter().all(|d| matches!(d, DimState::Certain(_))) {
            self.num_certain += 1;
        }
        self.items.push(dims);
        self.items.len() - 1
    }

    /// Convenience: push a fully-certain vector.
    pub fn push_certain(&mut self, v: &[u32]) -> ItemId {
        self.push(v.iter().map(|&b| DimState::Certain(b)).collect())
    }

    /// Convenience: push a fully-uncertain vector.
    pub fn push_uncertain(&mut self, dists: Vec<DiscreteDist>) -> ItemId {
        self.push(dists.into_iter().map(DimState::Uncertain).collect())
    }

    pub fn is_certain(&self, id: ItemId) -> bool {
        self.items[id]
            .iter()
            .all(|d| matches!(d, DimState::Certain(_)))
    }

    /// The exact vector of a certain item.
    pub fn certain_vector(&self, id: ItemId) -> Option<Vec<u32>> {
        self.items[id]
            .iter()
            .map(|d| match d {
                DimState::Certain(b) => Some(*b),
                DimState::Uncertain(_) => None,
            })
            .collect()
    }

    /// Marks an item certain with oracle-confirmed buckets.
    pub fn clean(&mut self, id: ItemId, v: &[u32]) {
        assert_eq!(v.len(), self.dims(), "dimension count mismatch");
        assert!(!self.is_certain(id), "item {id} cleaned twice");
        for (j, &b) in v.iter().enumerate() {
            assert!(
                b as usize <= self.max_bucket[j],
                "dim {j}: bucket {b} beyond grid"
            );
        }
        self.items[id] = v.iter().map(|&b| DimState::Certain(b)).collect();
        self.num_certain += 1;
    }

    pub fn certain_ids(&self) -> Vec<ItemId> {
        (0..self.len()).filter(|&i| self.is_certain(i)).collect()
    }

    pub fn uncertain_ids(&self) -> Vec<ItemId> {
        (0..self.len()).filter(|&i| !self.is_certain(i)).collect()
    }

    /// `Pr(S_{id,j} = bucket)` — per-dimension probability mass.
    pub fn dim_pmf(&self, id: ItemId, j: usize, bucket: usize) -> f64 {
        self.items[id][j].pmf(bucket)
    }

    /// `Pr(S_{id,j} ≤ bucket)` — per-dimension CDF (`bucket = -1` gives 0).
    pub fn dim_cdf(&self, id: ItemId, j: usize, bucket: i64) -> f64 {
        self.items[id][j].cdf(bucket)
    }

    #[cfg(test)]
    fn dim(&self, id: ItemId, j: usize) -> &DimState {
        &self.items[id][j]
    }
}

/// Zips per-dimension [`crate::xtuple::UncertainRelation`]s (one Phase-1
/// run per scoring function over the *same* video) into a
/// [`VectorRelation`].
///
/// Items must align 1:1 — both Phase-1 runs see the same retained frames
/// because the difference detector is score-independent. An item is
/// vector-certain only when every dimension was labelled during sampling.
pub fn zip_relations(dims: &[&crate::xtuple::UncertainRelation]) -> VectorRelation {
    assert!(
        (2..=3).contains(&dims.len()),
        "skylines need 2 or 3 dimensions"
    );
    let n = dims[0].len();
    for (j, r) in dims.iter().enumerate() {
        assert_eq!(
            r.len(),
            n,
            "dimension {j} has {} items, expected {n}",
            r.len()
        );
    }
    let mut rel = VectorRelation::new(dims.iter().map(|r| r.max_bucket()).collect());
    for i in 0..n {
        let states: Vec<DimState> = dims
            .iter()
            .map(|r| match r.certain_bucket(i) {
                Some(b) => DimState::Certain(b),
                None => DimState::Uncertain(r.dist(i).expect("uncertain item").clone()),
            })
            .collect();
        rel.push(states);
    }
    rel
}

/// `a ≻ b`: componentwise ≥ with at least one strict >.
pub fn dominates(a: &[u32], b: &[u32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strict = true;
        }
    }
    strict
}

/// Skyline of a set of certain vectors: ids of the non-dominated ones,
/// in input order.
///
/// Sort-filter skyline: candidates are visited in descending
/// coordinate-sum order. Dominance implies a strictly larger sum, so any
/// dominator of `v` is visited before `v`, and (by transitivity) some
/// *skyline* member dominating `v` is already accepted when `v` arrives —
/// each candidate therefore compares only against the accepted skyline,
/// with an early exit on the first dominator. Typical cost is
/// `O(n log n + n·|skyline|)` versus the all-pairs `O(n²)` of
/// [`skyline_of_pairwise`], which survives as the property-test oracle
/// and the benchmark baseline (`skyline/skyline_of_pairwise_2000`).
pub fn skyline_of(vectors: &[(ItemId, Vec<u32>)]) -> Vec<ItemId> {
    // Precomputed sums (recomputing the key inside the sort comparator
    // costs more than the filter itself); equal-sum ties break by input
    // index, so the visit order — and with it the result — is fully
    // deterministic.
    let mut order: Vec<(u64, u32)> = vectors
        .iter()
        .enumerate()
        .map(|(i, (_, v))| (v.iter().map(|&x| x as u64).sum::<u64>(), i as u32))
        .collect();
    order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut sky: Vec<u32> = Vec::new();
    for &(_, i) in &order {
        if !sky
            .iter()
            .any(|&s| dominates(&vectors[s as usize].1, &vectors[i as usize].1))
        {
            sky.push(i);
        }
    }
    sky.sort_unstable();
    sky.into_iter().map(|i| vectors[i as usize].0).collect()
}

/// The original all-pairs skyline (`O(s²)`): the oracle [`skyline_of`] is
/// property-tested against.
pub fn skyline_of_pairwise(vectors: &[(ItemId, Vec<u32>)]) -> Vec<ItemId> {
    vectors
        .iter()
        .filter(|(_, v)| !vectors.iter().any(|(_, w)| dominates(w, v)))
        .map(|(id, _)| *id)
        .collect()
}

/// `Pr(S_u ∈ Dominated(points))` for an uncertain item `u` whose
/// dimensions are independent, against a *certain* point set.
///
/// For `d = 2` this walks `u`'s x-support once against the staircase of
/// `points` (`O(m + s)` after an `O(s)` staircase build per call). For
/// `d = 3` it enumerates `u`'s support grid (`O(m³ · s)` worst case, fine
/// at video-score bucket counts).
pub fn prob_dominated(rel: &VectorRelation, u: ItemId, points: &[Vec<u32>]) -> f64 {
    prob_dominated_dims(&rel.items[u], points)
}

/// [`prob_dominated`] for a free-standing item given as per-dimension
/// states — the form the incremental [`SkylineMaintainer`] uses, where
/// items live outside any fixed-index relation.
pub fn prob_dominated_dims(item: &[DimState], points: &[Vec<u32>]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    match item.len() {
        2 => prob_dominated_2d(item, points),
        3 => prob_dominated_grid(item, points),
        d => panic!("skylines need 2 or 3 dimensions, got {d}"),
    }
}

fn prob_dominated_2d(item: &[DimState], points: &[Vec<u32>]) -> f64 {
    let x_state = &item[0];
    let y_state = &item[1];
    let (x_lo, x_hi) = x_state.support();

    // For each x, the largest y that is still dominated:
    //   ybound(x) = max( max{p.y   : p.x > x},     (strict on dim 0)
    //                    max{p.y − 1 : p.x == x} ) (strict on dim 1)
    // Walk x over u's support; maintaining maxima over points sorted by x
    // descending would be O(s log s + m); a direct scan is O(m·s) but both
    // m and s are small — keep the direct form, it is obviously correct.
    let mut total = 0.0;
    for x in x_lo..=x_hi {
        let px = x_state.pmf(x);
        if px == 0.0 {
            continue;
        }
        let mut ybound: i64 = -1;
        for p in points {
            let (p0, p1) = (p[0] as usize, p[1] as i64);
            if p0 > x {
                ybound = ybound.max(p1);
            } else if p0 == x {
                ybound = ybound.max(p1 - 1);
            }
        }
        total += px * y_state.cdf(ybound);
    }
    total
}

fn prob_dominated_grid(item: &[DimState], points: &[Vec<u32>]) -> f64 {
    let supports: Vec<(usize, usize)> = item.iter().map(|d| d.support()).collect();
    let mut total = 0.0;
    let mut v = vec![0u32; item.len()];
    enumerate_support(item, &supports, 0, 1.0, &mut v, &mut |v, mass| {
        if points.iter().any(|p| dominates(p, v)) {
            total += mass;
        }
    });
    total
}

fn enumerate_support(
    item: &[DimState],
    supports: &[(usize, usize)],
    j: usize,
    mass: f64,
    v: &mut Vec<u32>,
    f: &mut impl FnMut(&[u32], f64),
) {
    if mass == 0.0 {
        return;
    }
    if j == supports.len() {
        f(v, mass);
        return;
    }
    let (lo, hi) = supports[j];
    for b in lo..=hi {
        let p = item[j].pmf(b);
        if p > 0.0 {
            v[j] = b as u32;
            enumerate_support(item, supports, j + 1, mass * p, v, f);
        }
    }
}

/// The state of a skyline query against a relation: the certain skyline,
/// per-uncertain-item domination factors, and the confidence product.
#[derive(Debug, Clone)]
pub struct SkylineState {
    /// Skyline of the certain subset (the candidate answer `R̂`).
    pub skyline: Vec<ItemId>,
    /// `Pr(S_u ∈ Dominated(R̂))` per uncertain item, paired with its id.
    pub factors: Vec<(ItemId, f64)>,
    /// `p̂ = Π factors`.
    pub confidence: f64,
}

/// Computes the full [`SkylineState`] of a relation.
pub fn skyline_state(rel: &VectorRelation) -> SkylineState {
    let certain: Vec<(ItemId, Vec<u32>)> = rel
        .certain_ids()
        .into_iter()
        .map(|id| (id, rel.certain_vector(id).expect("certain")))
        .collect();
    let skyline = skyline_of(&certain);
    let points: Vec<Vec<u32>> = skyline
        .iter()
        .map(|&id| rel.certain_vector(id).expect("certain"))
        .collect();
    let mut confidence = 1.0;
    let factors: Vec<(ItemId, f64)> = rel
        .uncertain_ids()
        .into_iter()
        .map(|u| {
            let p = prob_dominated(rel, u, &points);
            confidence *= p;
            (u, p)
        })
        .collect();
    SkylineState {
        skyline,
        factors,
        confidence,
    }
}

/// Counters of the incremental maintainer's actual work — asserted by
/// tests (and read by benches) to pin the O(affected) claim.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintainerStats {
    /// Domination factors (re)computed.
    pub factor_recomputes: u64,
    /// Full certain-skyline rebuilds (only on skyline-member removal).
    pub skyline_rebuilds: u64,
}

/// Incrementally-maintained [`SkylineState`] under item insertion, removal
/// and cleaning — the streaming counterpart of [`skyline_state`], which
/// survives unchanged as the from-scratch oracle it is property-tested
/// against (`tests/skyline_properties.rs`).
///
/// The key observation (d = 2): adding or removing a staircase point
/// `(a, b)` changes `ybound(x)` only for `x ≤ a`, so only uncertain items
/// whose x-support intersects `[0, max a over changed points]` can see a
/// different domination factor — everything else keeps its stored value,
/// bit-for-bit (the staircase walk consumes integer `ybound`s, which are
/// unchanged outside the affected range). For d = 3 any staircase change
/// recomputes all factors; insertions of dominated points and removals of
/// non-members never touch a factor in either dimensionality. This retires
/// the ROADMAP item about [`run_skyline_cleaner`] recomputing every factor
/// per iteration.
#[derive(Debug, Clone)]
pub struct SkylineMaintainer {
    max_bucket: Vec<usize>,
    items: BTreeMap<ItemId, Vec<DimState>>,
    /// Certain skyline member ids.
    skyline: BTreeSet<ItemId>,
    /// Domination factors of the not-fully-certain items.
    factors: BTreeMap<ItemId, f64>,
    pub stats: MaintainerStats,
}

impl SkylineMaintainer {
    pub fn new(max_bucket: Vec<usize>) -> Self {
        assert!(
            (2..=3).contains(&max_bucket.len()),
            "skylines need 2 or 3 dimensions, got {}",
            max_bucket.len()
        );
        SkylineMaintainer {
            max_bucket,
            items: BTreeMap::new(),
            skyline: BTreeSet::new(),
            factors: BTreeMap::new(),
            stats: MaintainerStats::default(),
        }
    }

    /// Seeds a maintainer with every item of a relation (ids preserved).
    pub fn from_relation(rel: &VectorRelation) -> Self {
        let mut m = SkylineMaintainer::new(rel.max_bucket.clone());
        for (id, dims) in rel.items.iter().enumerate() {
            m.insert(id, dims.clone());
        }
        m
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn contains(&self, id: ItemId) -> bool {
        self.items.contains_key(&id)
    }

    fn vector_of(dims: &[DimState]) -> Option<Vec<u32>> {
        dims.iter()
            .map(|d| match d {
                DimState::Certain(b) => Some(*b),
                DimState::Uncertain(_) => None,
            })
            .collect()
    }

    /// Current skyline point vectors, ascending id order.
    fn points(&self) -> Vec<Vec<u32>> {
        self.skyline
            .iter()
            // lint:allow(panic-unwrap): only fully-certain items ever enter `skyline`
            .map(|s| Self::vector_of(&self.items[s]).expect("skyline member is certain"))
            .collect()
    }

    /// Adds an item under a fresh id (never reuse an id while present).
    pub fn insert(&mut self, id: ItemId, dims: Vec<DimState>) {
        assert_eq!(
            dims.len(),
            self.max_bucket.len(),
            "dimension count mismatch"
        );
        for (j, d) in dims.iter().enumerate() {
            match d {
                DimState::Uncertain(dist) => assert_eq!(
                    dist.max_bucket(),
                    self.max_bucket[j],
                    "dim {j}: distribution grid mismatch"
                ),
                DimState::Certain(b) => assert!(
                    *b as usize <= self.max_bucket[j],
                    "dim {j}: bucket {b} beyond grid"
                ),
            }
        }
        assert!(!self.items.contains_key(&id), "item {id} already present");
        match Self::vector_of(&dims) {
            Some(v) => {
                self.items.insert(id, dims);
                self.insert_certain_point(id, v);
            }
            None => {
                let f = prob_dominated_dims(&dims, &self.points());
                self.stats.factor_recomputes += 1;
                self.items.insert(id, dims);
                self.factors.insert(id, f);
            }
        }
    }

    /// Folds a new certain point into the skyline and refreshes only the
    /// factors its staircase change can reach.
    fn insert_certain_point(&mut self, id: ItemId, v: Vec<u32>) {
        let dominated = self.skyline.iter().any(|s| {
            // lint:allow(panic-unwrap): only fully-certain items ever enter `skyline`
            let w = Self::vector_of(&self.items[s]).expect("certain");
            dominates(&w, &v)
        });
        if dominated {
            // A dominated point changes neither the skyline nor any factor.
            return;
        }
        let evicted: Vec<ItemId> = self
            .skyline
            .iter()
            .filter(|s| {
                // lint:allow(panic-unwrap): only fully-certain items ever enter `skyline`
                let w = Self::vector_of(&self.items[s]).expect("certain");
                dominates(&v, &w)
            })
            .copied()
            .collect();
        let mut changed: Vec<Vec<u32>> = evicted
            .iter()
            // lint:allow(panic-unwrap): evicted ids came out of `skyline`, hence certain
            .map(|s| Self::vector_of(&self.items[s]).expect("certain"))
            .collect();
        for s in &evicted {
            self.skyline.remove(s);
        }
        self.skyline.insert(id);
        changed.push(v);
        self.refresh_factors(&changed);
    }

    /// Removes an item (stream expiry). Uncertain items and dominated
    /// certain points leave without touching any factor; removing a
    /// skyline member rebuilds the certain skyline (dominated points may
    /// re-enter) and refreshes the affected factors.
    pub fn remove(&mut self, id: ItemId) {
        // lint:allow(panic-unwrap): removing an id never inserted is a caller bug
        let dims = self.items.remove(&id).expect("removing unknown item");
        if self.factors.remove(&id).is_some() {
            return;
        }
        if !self.skyline.remove(&id) {
            return;
        }
        // lint:allow(panic-unwrap): the id was in `skyline`, hence fully certain
        let v = Self::vector_of(&dims).expect("certain");
        let certain: Vec<(ItemId, Vec<u32>)> = self
            .items
            .iter()
            .filter_map(|(&i, d)| Self::vector_of(d).map(|w| (i, w)))
            .collect();
        let new_sky: BTreeSet<ItemId> = skyline_of(&certain).into_iter().collect();
        self.stats.skyline_rebuilds += 1;
        let mut changed: Vec<Vec<u32>> = new_sky
            .difference(&self.skyline)
            // lint:allow(panic-unwrap): `skyline_of` only ranges over the certain subset
            .map(|i| Self::vector_of(&self.items[i]).expect("certain"))
            .collect();
        changed.push(v);
        self.skyline = new_sky;
        self.refresh_factors(&changed);
    }

    /// Confirms an uncertain item's exact vector (oracle cleaning).
    pub fn clean(&mut self, id: ItemId, v: &[u32]) {
        assert_eq!(v.len(), self.max_bucket.len(), "dimension count mismatch");
        for (j, &b) in v.iter().enumerate() {
            assert!(
                b as usize <= self.max_bucket[j],
                "dim {j}: bucket {b} beyond grid"
            );
        }
        // lint:allow(panic-unwrap): cleaning an id never inserted is a caller bug
        let dims = self.items.get_mut(&id).expect("cleaning unknown item");
        assert!(
            dims.iter().any(|d| matches!(d, DimState::Uncertain(_))),
            "item {id} cleaned twice"
        );
        *dims = v.iter().map(|&b| DimState::Certain(b)).collect();
        self.factors.remove(&id);
        self.insert_certain_point(id, v.to_vec());
    }

    /// Recomputes the factors a staircase change can affect. `changed`
    /// holds every point added to or removed from the skyline.
    fn refresh_factors(&mut self, changed: &[Vec<u32>]) {
        if changed.is_empty() || self.factors.is_empty() {
            return;
        }
        let points = self.points();
        let two_d = self.max_bucket.len() == 2;
        let x_cut = changed.iter().map(|p| p[0] as usize).max().unwrap_or(0);
        let ids: Vec<ItemId> = self.factors.keys().copied().collect();
        for id in ids {
            let dims = &self.items[&id];
            if two_d && dims[0].support().0 > x_cut {
                continue; // its ybound(x) range is untouched
            }
            let f = prob_dominated_dims(dims, &points);
            self.stats.factor_recomputes += 1;
            self.factors.insert(id, f);
        }
    }

    /// The current [`SkylineState`], identical (to fp identity of each
    /// factor) to `skyline_state` on an equivalent relation.
    pub fn state(&self) -> SkylineState {
        let mut confidence = 1.0;
        let factors: Vec<(ItemId, f64)> = self
            .factors
            .iter()
            .map(|(&id, &f)| {
                confidence *= f;
                (id, f)
            })
            .collect();
        SkylineState {
            skyline: self.skyline.iter().copied().collect(),
            factors,
            confidence,
        }
    }
}

/// The oracle that confirms exact score vectors (one deep model per
/// dimension, each charged per frame by the caller).
pub trait SkylineOracle {
    /// Exact bucket vectors for a batch of items.
    fn clean_batch(&mut self, items: &[ItemId]) -> Vec<Vec<u32>>;
}

/// Configuration of the skyline cleaning loop.
#[derive(Debug, Clone)]
pub struct SkylineConfig {
    /// Confidence threshold `thres`.
    pub thres: f64,
    /// Oracle batch size (§3.5's batch inference).
    pub batch_size: usize,
    /// Diagnostics-only cap on cleanings.
    pub max_cleanings: Option<usize>,
}

impl Default for SkylineConfig {
    fn default() -> Self {
        SkylineConfig {
            thres: 0.9,
            batch_size: 8,
            max_cleanings: None,
        }
    }
}

/// Result of a skyline query.
#[derive(Debug, Clone)]
pub struct SkylineOutcome {
    /// The answer: certain, non-dominated items (ids), unordered.
    pub skyline: Vec<ItemId>,
    /// `Pr(R̂ = Sky)` at termination.
    pub confidence: f64,
    pub converged: bool,
    pub iterations: usize,
    pub cleaned: usize,
}

/// Runs the oracle-in-the-loop skyline query until
/// `Pr(R̂ = Sky) ≥ thres` (§3.3 adapted to domination).
///
/// Each iteration confirms the `batch_size` uncertain items with the
/// smallest domination factors. Like Phase 2 for Top-K, the loop always
/// terminates: every cleaning strictly shrinks `Dᵘ`, and with `Dᵘ = ∅`
/// the confidence is exactly 1.
///
/// The per-iteration state comes from an incremental [`SkylineMaintainer`]
/// (each cleaning refreshes only the factors its staircase change can
/// reach) rather than a full [`skyline_state`] recompute; the two are
/// property-tested equal, factor for factor.
pub fn run_skyline_cleaner(
    rel: &mut VectorRelation,
    oracle: &mut dyn SkylineOracle,
    cfg: &SkylineConfig,
) -> SkylineOutcome {
    assert!((0.0..1.0).contains(&cfg.thres), "thres must be in [0, 1)");
    assert!(cfg.batch_size >= 1);
    let mut maintainer = SkylineMaintainer::from_relation(rel);
    let mut iterations = 0;
    let mut cleaned = 0;
    loop {
        let state = maintainer.state();
        if state.confidence >= cfg.thres {
            return SkylineOutcome {
                skyline: state.skyline,
                confidence: state.confidence,
                converged: true,
                iterations,
                cleaned,
            };
        }
        if let Some(cap) = cfg.max_cleanings {
            if cleaned >= cap {
                return SkylineOutcome {
                    skyline: state.skyline,
                    confidence: state.confidence,
                    converged: false,
                    iterations,
                    cleaned,
                };
            }
        }
        // Clean the items with the smallest domination factors.
        let mut by_factor = state.factors;
        by_factor.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let batch: Vec<ItemId> = by_factor
            .iter()
            .take(cfg.batch_size)
            .map(|&(id, _)| id)
            .collect();
        debug_assert!(!batch.is_empty(), "confidence < 1 requires uncertain items");
        let vectors = oracle.clean_batch(&batch);
        assert_eq!(
            vectors.len(),
            batch.len(),
            "oracle must answer the whole batch"
        );
        for (id, v) in batch.iter().zip(&vectors) {
            rel.clean(*id, v);
            maintainer.clean(*id, v);
            cleaned += 1;
        }
        iterations += 1;
    }
}

/// Brute-force possible-world skyline probability — the test oracle for
/// [`skyline_state`]. Enumerates every combination of the uncertain items'
/// supports (exponential; tiny relations only).
///
/// Returns `Pr(skyline(world) == candidate)` where worlds fix certain
/// items at their exact vectors.
pub fn pws_skyline_probability(rel: &VectorRelation, candidate: &[ItemId]) -> f64 {
    let uncertain = rel.uncertain_ids();
    let certain: Vec<(ItemId, Vec<u32>)> = rel
        .certain_ids()
        .into_iter()
        .map(|id| (id, rel.certain_vector(id).expect("certain")))
        .collect();
    let mut total = 0.0;
    let mut sorted_candidate: Vec<ItemId> = candidate.to_vec();
    sorted_candidate.sort_unstable();

    // Recursive world enumeration over uncertain items.
    fn recurse(
        rel: &VectorRelation,
        uncertain: &[ItemId],
        fixed: &mut Vec<(ItemId, Vec<u32>)>,
        mass: f64,
        candidate: &[ItemId],
        total: &mut f64,
    ) {
        if mass == 0.0 {
            return;
        }
        match uncertain.split_first() {
            None => {
                let mut sky = skyline_of(fixed);
                sky.sort_unstable();
                if sky == candidate {
                    *total += mass;
                }
            }
            Some((&u, rest)) => {
                let item = &rel.items[u];
                let supports: Vec<(usize, usize)> = item.iter().map(|d| d.support()).collect();
                let mut v = vec![0u32; rel.dims()];
                enumerate_support(item, &supports, 0, 1.0, &mut v, &mut |v, m| {
                    fixed.push((u, v.to_vec()));
                    recurse(rel, rest, fixed, mass * m, candidate, total);
                    fixed.pop();
                });
            }
        }
    }

    let mut fixed = certain;
    recurse(
        rel,
        &uncertain,
        &mut fixed,
        1.0,
        &sorted_candidate,
        &mut total,
    );
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(masses: &[f64]) -> DiscreteDist {
        DiscreteDist::from_masses(masses)
    }

    #[test]
    fn dominates_needs_a_strict_dimension() {
        assert!(dominates(&[2, 3], &[1, 3]));
        assert!(dominates(&[2, 3], &[2, 2]));
        assert!(
            !dominates(&[2, 3], &[2, 3]),
            "equal vectors do not dominate"
        );
        assert!(!dominates(&[2, 3], &[3, 2]), "incomparable");
        assert!(!dominates(&[1, 1], &[2, 0]), "incomparable the other way");
    }

    #[test]
    fn skyline_of_certain_vectors() {
        let vs = vec![
            (0, vec![5, 1]),
            (1, vec![3, 3]),
            (2, vec![1, 5]),
            (3, vec![2, 2]), // dominated by (3,3)
            (4, vec![5, 1]), // ties with item 0: neither dominates
        ];
        let mut sky = skyline_of(&vs);
        sky.sort_unstable();
        assert_eq!(sky, vec![0, 1, 2, 4]);
        assert_eq!(skyline_of(&vs), skyline_of_pairwise(&vs));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Sort-filter skyline ≡ all-pairs oracle on random vector sets
        /// (2-D and 3-D, dense ties included).
        #[test]
        fn sorted_skyline_equals_pairwise(
            dims in 2usize..4,
            n in 0usize..60,
            seed in 0u64..10_000,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let vectors: Vec<(ItemId, Vec<u32>)> = (0..n)
                .map(|i| (i, (0..dims).map(|_| rng.gen_range(0..6u32)).collect()))
                .collect();
            proptest::prop_assert_eq!(skyline_of(&vectors), skyline_of_pairwise(&vectors));
        }
    }

    #[test]
    fn prob_dominated_2d_hand_computed() {
        // u = (X, Y), X uniform {0,1}, Y uniform {0,1}; point set {(1,1)}.
        // Dominated(·): (0,0) ✓ (0,1) ✓ (1,0) ✓ (1,1) ✗ → 3/4.
        let mut rel = VectorRelation::new(vec![2, 2]);
        let u = rel.push_uncertain(vec![d(&[0.5, 0.5, 0.0]), d(&[0.5, 0.5, 0.0])]);
        let p = prob_dominated(&rel, u, &[vec![1, 1]]);
        assert!((p - 0.75).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn prob_dominated_respects_strictness() {
        // u certain at (1,1) exactly: (1,1) does not dominate itself.
        let mut rel = VectorRelation::new(vec![2, 2]);
        let u = rel.push(vec![DimState::Certain(1), DimState::Certain(1)]);
        assert_eq!(prob_dominated(&rel, u, &[vec![1, 1]]), 0.0);
        // (2,1) dominates (1,1) via dim 0.
        assert_eq!(prob_dominated(&rel, u, &[vec![2, 1]]), 1.0);
        // (1,2) dominates via dim 1.
        assert_eq!(prob_dominated(&rel, u, &[vec![1, 2]]), 1.0);
    }

    #[test]
    fn prob_dominated_union_of_cones() {
        // Points (2,0) and (0,2); u uniform on {0,1,2}².
        // Dominated: by (2,0): (0,0),(1,0) ; by (0,2): (0,0),(0,1).
        // Union = {(0,0),(1,0),(0,1)} → 3/9.
        let mut rel = VectorRelation::new(vec![2, 2]);
        let u = rel.push_uncertain(vec![
            d(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
            d(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
        ]);
        let p = prob_dominated(&rel, u, &[vec![2, 0], vec![0, 2]]);
        assert!((p - 3.0 / 9.0).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn prob_dominated_3d_grid_path() {
        // Point (1,1,1); u uniform on {0,1}³: dominated = all but (1,1,1)
        // → 7/8.
        let mut rel = VectorRelation::new(vec![1, 1, 1]);
        let u = rel.push_uncertain(vec![d(&[0.5, 0.5]), d(&[0.5, 0.5]), d(&[0.5, 0.5])]);
        let p = prob_dominated(&rel, u, &[vec![1, 1, 1]]);
        assert!((p - 7.0 / 8.0).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn empty_point_set_dominates_nothing() {
        let mut rel = VectorRelation::new(vec![2, 2]);
        let u = rel.push_uncertain(vec![d(&[0.5, 0.5, 0.0]), d(&[1.0, 0.0, 0.0])]);
        assert_eq!(prob_dominated(&rel, u, &[]), 0.0);
    }

    /// A small mixed relation used by the state/PWS agreement tests.
    fn mixed_relation() -> VectorRelation {
        let mut rel = VectorRelation::new(vec![2, 2]);
        rel.push_certain(&[2, 1]); // strong certain point
        rel.push_certain(&[0, 2]); // incomparable certain point
        rel.push_uncertain(vec![d(&[0.6, 0.3, 0.1]), d(&[0.5, 0.5, 0.0])]);
        rel.push_uncertain(vec![d(&[0.2, 0.8, 0.0]), d(&[0.9, 0.1, 0.0])]);
        rel
    }

    #[test]
    fn skyline_state_matches_possible_world_enumeration() {
        let rel = mixed_relation();
        let state = skyline_state(&rel);
        let brute = pws_skyline_probability(&rel, &state.skyline);
        // The factorized confidence counts worlds where *every* uncertain
        // item is dominated by R̂; such worlds have skyline exactly R̂.
        // Brute force also counts worlds where the skyline happens to be
        // R̂ in other ways — impossible here, so the two must agree.
        assert!(
            (state.confidence - brute).abs() < 1e-9,
            "fast {} vs brute {}",
            state.confidence,
            brute
        );
    }

    #[test]
    fn factorized_confidence_is_a_lower_bound_in_general() {
        // With NO certain items the candidate skyline is empty, which can
        // never be a real skyline (some item always survives): both the
        // factorized confidence and the brute-force probability are 0.
        let mut rel = VectorRelation::new(vec![1, 1]);
        rel.push_uncertain(vec![d(&[0.5, 0.5]), d(&[0.5, 0.5])]);
        let state = skyline_state(&rel);
        assert!(state.skyline.is_empty());
        assert_eq!(state.confidence, 0.0);
        assert_eq!(pws_skyline_probability(&rel, &[]), 0.0);
    }

    /// Asserts a maintainer's state equals a from-scratch recompute over
    /// the same item set, factor for factor.
    fn assert_state_matches(m: &SkylineMaintainer, rel: &VectorRelation) {
        let inc = m.state();
        let full = skyline_state(rel);
        assert_eq!(inc.skyline, full.skyline, "skyline diverged");
        assert_eq!(inc.factors.len(), full.factors.len());
        for ((ia, fa), (ib, fb)) in inc.factors.iter().zip(&full.factors) {
            assert_eq!(ia, ib, "factor id order diverged");
            assert!((fa - fb).abs() < 1e-12, "factor {ia}: {fa} vs {fb}");
        }
        assert!(
            (inc.confidence - full.confidence).abs() < 1e-12,
            "confidence {} vs {}",
            inc.confidence,
            full.confidence
        );
    }

    #[test]
    fn maintainer_matches_full_recompute_after_cleaning() {
        let (mut rel, oracle) = noisy_setup(25, 42);
        let mut m = SkylineMaintainer::from_relation(&rel);
        assert_state_matches(&m, &rel);
        for id in [3, 17, 0, 9, 21] {
            let v = oracle.truth[id].clone();
            rel.clean(id, &v);
            m.clean(id, &v);
            assert_state_matches(&m, &rel);
        }
    }

    #[test]
    fn maintainer_removal_readmits_dominated_points() {
        // (2,2) dominates (1,1); removing it must bring (1,1) back.
        let mut m = SkylineMaintainer::new(vec![3, 3]);
        m.insert(0, vec![DimState::Certain(2), DimState::Certain(2)]);
        m.insert(1, vec![DimState::Certain(1), DimState::Certain(1)]);
        m.insert(
            2,
            vec![
                DimState::Uncertain(d(&[0.5, 0.25, 0.25, 0.0])),
                DimState::Uncertain(d(&[0.5, 0.25, 0.25, 0.0])),
            ],
        );
        assert_eq!(m.state().skyline, vec![0]);
        m.remove(0);
        assert_eq!(m.state().skyline, vec![1]);
        assert_eq!(m.stats.skyline_rebuilds, 1);
        // Factor must now be computed against {(1,1)}, not the old point.
        let mut rel = VectorRelation::new(vec![3, 3]);
        rel.push_certain(&[1, 1]);
        rel.push_uncertain(vec![d(&[0.5, 0.25, 0.25, 0.0]), d(&[0.5, 0.25, 0.25, 0.0])]);
        let expect = skyline_state(&rel);
        let got = m.state();
        assert!((got.factors[0].1 - expect.factors[0].1).abs() < 1e-12);
    }

    #[test]
    fn maintainer_skips_factors_outside_staircase_change() {
        // Skyline {(5,5)}; an uncertain item supported on x ∈ {7, 8} can
        // never be affected by a new point at x = 2, so its factor must
        // not be recomputed.
        let mut m = SkylineMaintainer::new(vec![8, 8]);
        m.insert(0, vec![DimState::Certain(5), DimState::Certain(5)]);
        let mut far = vec![0.0; 9];
        far[7] = 0.5;
        far[8] = 0.5;
        m.insert(
            1,
            vec![
                DimState::Uncertain(d(&far)),
                DimState::Uncertain(d(&[0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])),
            ],
        );
        let before = m.stats.factor_recomputes;
        // (2, 6) is incomparable with (5, 5): it joins the skyline with
        // x_cut = 2 < 7 = the far item's minimum x.
        m.insert(2, vec![DimState::Certain(2), DimState::Certain(6)]);
        assert_eq!(m.state().skyline, vec![0, 2]);
        assert_eq!(
            m.stats.factor_recomputes, before,
            "far item's factor must be skipped"
        );
        // And the skipped value is still the correct one.
        let mut rel = VectorRelation::new(vec![8, 8]);
        rel.push_certain(&[5, 5]);
        rel.push_uncertain(vec![
            d(&far),
            d(&[0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        ]);
        rel.push_certain(&[2, 6]);
        assert_state_matches(&m, &rel);
    }

    #[test]
    fn maintainer_dominated_insert_touches_nothing() {
        let mut m = SkylineMaintainer::new(vec![4, 4]);
        m.insert(0, vec![DimState::Certain(3), DimState::Certain(3)]);
        m.insert(
            1,
            vec![
                DimState::Uncertain(d(&[0.2, 0.2, 0.2, 0.2, 0.2])),
                DimState::Uncertain(d(&[0.2, 0.2, 0.2, 0.2, 0.2])),
            ],
        );
        let before = m.stats.factor_recomputes;
        m.insert(2, vec![DimState::Certain(1), DimState::Certain(1)]);
        assert_eq!(m.stats.factor_recomputes, before);
        assert_eq!(m.state().skyline, vec![0]);
        // Removing the dominated non-member is also free.
        m.remove(2);
        assert_eq!(m.stats.factor_recomputes, before);
        assert_eq!(m.stats.skyline_rebuilds, 0);
    }

    struct TableOracle {
        truth: Vec<Vec<u32>>,
        calls: usize,
        frames: usize,
    }

    impl SkylineOracle for TableOracle {
        fn clean_batch(&mut self, items: &[ItemId]) -> Vec<Vec<u32>> {
            self.calls += 1;
            self.frames += items.len();
            items.iter().map(|&i| self.truth[i].clone()).collect()
        }
    }

    /// Builds a relation whose uncertain distributions are centred on the
    /// ground truth, plus the matching oracle.
    fn noisy_setup(n: usize, seed: u64) -> (VectorRelation, TableOracle) {
        use everest_video::util::{frame_rng, gaussian};
        let max_b = 8usize;
        let mut rel = VectorRelation::new(vec![max_b, max_b]);
        let mut truth = Vec::with_capacity(n);
        for i in 0..n {
            let mut rng = frame_rng(seed, i);
            let mut dims = Vec::with_capacity(2);
            let mut v = Vec::with_capacity(2);
            for jdim in 0..2 {
                let t = ((i * (jdim + 3) + 7 * jdim + i / 3) % (max_b + 1)) as u32;
                v.push(t);
                // triangular-ish noise around t
                let mut masses = vec![0.0; max_b + 1];
                for (b, m) in masses.iter_mut().enumerate() {
                    let dist = (b as f64 - t as f64).abs() + 0.3 * gaussian(&mut rng).abs();
                    *m = (-dist).exp();
                }
                dims.push(DimState::Uncertain(DiscreteDist::from_masses(&masses)));
            }
            truth.push(v);
            rel.push(dims);
        }
        (
            rel,
            TableOracle {
                truth,
                calls: 0,
                frames: 0,
            },
        )
    }

    #[test]
    fn cleaner_reaches_threshold_and_answer_is_true_skyline() {
        let (mut rel, mut oracle) = noisy_setup(40, 99);
        let truth = oracle.truth.clone();
        let out = run_skyline_cleaner(
            &mut rel,
            &mut oracle,
            &SkylineConfig {
                thres: 0.95,
                batch_size: 4,
                max_cleanings: None,
            },
        );
        assert!(out.converged);
        assert!(out.confidence >= 0.95);
        // certain-result condition
        for &id in &out.skyline {
            assert!(rel.is_certain(id), "answer item {id} must be certain");
            assert_eq!(rel.certain_vector(id).unwrap(), truth[id], "oracle scores");
        }
        // the answer must be exactly the skyline of the true vectors that
        // were confirmed — and since confidence ≥ 0.95 over *this* relation
        // the true skyline of ALL items should normally be caught; verify
        // no unconfirmed item dominates any answer item under truth.
        let all: Vec<(ItemId, Vec<u32>)> = truth.iter().cloned().enumerate().collect();
        let mut true_sky = skyline_of(&all);
        true_sky.sort_unstable();
        let mut got = out.skyline.clone();
        got.sort_unstable();
        assert_eq!(
            got, true_sky,
            "cleaned skyline should match ground truth here"
        );
        assert!(out.cleaned < 40, "should not have cleaned everything");
    }

    #[test]
    fn cleaner_with_certain_seeds_cleans_less() {
        let (mut rel_cold, mut oracle_cold) = noisy_setup(30, 7);
        let cold = run_skyline_cleaner(&mut rel_cold, &mut oracle_cold, &Default::default());

        // Same data, but pre-confirm the true skyline members (as if they
        // were labelled during Phase-1 sampling).
        let (mut rel_warm, mut oracle_warm) = noisy_setup(30, 7);
        let all: Vec<(ItemId, Vec<u32>)> = oracle_warm.truth.iter().cloned().enumerate().collect();
        for id in skyline_of(&all) {
            let v = oracle_warm.truth[id].clone();
            rel_warm.clean(id, &v);
        }
        let warm = run_skyline_cleaner(&mut rel_warm, &mut oracle_warm, &Default::default());
        assert!(warm.converged && cold.converged);
        assert!(
            warm.cleaned <= cold.cleaned,
            "pre-confirmed skyline must not clean more (warm {} vs cold {})",
            warm.cleaned,
            cold.cleaned
        );
    }

    #[test]
    fn max_cleanings_cap_reports_non_convergence() {
        let (mut rel, mut oracle) = noisy_setup(40, 5);
        let out = run_skyline_cleaner(
            &mut rel,
            &mut oracle,
            &SkylineConfig {
                thres: 0.99,
                batch_size: 1,
                max_cleanings: Some(2),
            },
        );
        assert!(!out.converged);
        assert_eq!(out.cleaned, 2);
        assert!(out.confidence < 0.99);
    }

    #[test]
    fn fully_certain_relation_has_confidence_one() {
        let mut rel = VectorRelation::new(vec![3, 3]);
        rel.push_certain(&[3, 0]);
        rel.push_certain(&[0, 3]);
        rel.push_certain(&[2, 2]);
        rel.push_certain(&[1, 1]); // dominated by (2,2)
        struct Never;
        impl SkylineOracle for Never {
            fn clean_batch(&mut self, _: &[ItemId]) -> Vec<Vec<u32>> {
                panic!("nothing to clean")
            }
        }
        let out = run_skyline_cleaner(&mut rel, &mut Never, &Default::default());
        assert_eq!(out.confidence, 1.0);
        assert_eq!(out.cleaned, 0);
        let mut sky = out.skyline;
        sky.sort_unstable();
        assert_eq!(sky, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "cleaned twice")]
    fn double_clean_rejected() {
        let mut rel = VectorRelation::new(vec![2, 2]);
        rel.push_uncertain(vec![d(&[0.5, 0.5, 0.0]), d(&[0.5, 0.5, 0.0])]);
        rel.clean(0, &[1, 1]);
        rel.clean(0, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "2 or 3 dimensions")]
    fn one_dimension_is_not_a_skyline() {
        let _ = VectorRelation::new(vec![4]);
    }

    #[test]
    fn zip_relations_preserves_states() {
        use crate::xtuple::UncertainRelation;
        let mut a = UncertainRelation::new(1.0, 2);
        a.push_uncertain(d(&[0.5, 0.5, 0.0]));
        a.push_certain(2);
        let mut b = UncertainRelation::new(1.0, 3);
        b.push_certain(1);
        b.push_uncertain(d(&[0.25, 0.25, 0.25, 0.25]));
        let rel = zip_relations(&[&a, &b]);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.dims(), 2);
        assert_eq!(rel.max_bucket(0), 2);
        assert_eq!(rel.max_bucket(1), 3);
        // item 0: (uncertain, certain 1); item 1: (certain 2, uncertain)
        assert!(!rel.is_certain(0) && !rel.is_certain(1));
        assert_eq!(rel.dim(0, 1).cdf(0), 0.0);
        assert_eq!(rel.dim(0, 1).cdf(1), 1.0);
        assert_eq!(rel.dim(1, 0).pmf(2), 1.0);
        // cleaning completes the vector
        let mut rel2 = rel.clone();
        rel2.clean(0, &[1, 1]);
        assert!(rel2.is_certain(0));
        assert_eq!(rel2.certain_vector(0), Some(vec![1, 1]));
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn zip_relations_rejects_misaligned_lengths() {
        use crate::xtuple::UncertainRelation;
        let mut a = UncertainRelation::new(1.0, 2);
        a.push_certain(0);
        a.push_certain(1);
        let mut b = UncertainRelation::new(1.0, 2);
        b.push_certain(0);
        let _ = zip_relations(&[&a, &b]);
    }
}
