//! Probabilistic skyline over uncertain video data — the future-work
//! direction the paper names in §5 ("Finding the skyline \[6\] from such
//! uncertain video data"), built in Everest's oracle-in-the-loop style.
//!
//! ## Setting
//!
//! Each frame carries a *vector* of `d` scores (e.g. `(cars, persons)`),
//! each given as an independent per-dimension x-tuple distribution (the
//! difference-detector argument of §3.2 justifies independence across
//! frames; a separate CMDN per scoring function justifies independence
//! across dimensions). Frame `a` **dominates** `b` (`a ≻ b`) iff
//! `a_j ≥ b_j` on every dimension and `a_j > b_j` on at least one. The
//! **skyline** is the set of non-dominated frames.
//!
//! ## Oracle-in-the-loop skyline cleaning
//!
//! Mirroring §3.3, the answer `R̂` is the skyline of the *certain* subset
//! (certain-result condition), and its confidence is the probability that
//! `R̂` equals the true skyline. Under item independence that probability
//! factorizes exactly like Eq. 2:
//!
//! ```text
//! p̂ = Π_{u ∈ Dᵘ} Pr(S_u ∈ Dominated(R̂))
//! ```
//!
//! because `R̂` is wrong iff some uncertain item escapes domination by
//! `R̂`: an escaped item either joins the skyline or evicts a member
//! (and a dominated item can do neither — domination is transitive, so
//! `u ≺ r ∈ R̂` and `u ≻ r' ∈ R̂` would give `r ≻ r'`, contradicting both
//! being skyline members). `Dominated(R̂)` is a deterministic region —
//! `R̂`'s scores are oracle-confirmed — so each factor is a plain
//! probability mass, computed in `O(m)` per item for `d = 2` via the
//! staircase of `R̂` (and by grid enumeration for `d = 3`).
//!
//! The cleaning loop repeatedly confirms the uncertain item with the
//! **smallest** factor — the analogue of §3.3.2's ψ ordering: for a
//! product of probabilities, the smallest factor is both the largest drag
//! on `p̂` and the item most likely to change the skyline.

use crate::dist::DiscreteDist;
use crate::xtuple::ItemId;

/// One dimension of one item: a distribution or an exact bucket.
#[derive(Debug, Clone, PartialEq)]
pub enum DimState {
    Uncertain(DiscreteDist),
    Certain(u32),
}

impl DimState {
    fn pmf(&self, bucket: usize) -> f64 {
        match self {
            DimState::Uncertain(d) => d.pmf(bucket),
            DimState::Certain(b) => {
                if *b as usize == bucket {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn cdf(&self, bucket: i64) -> f64 {
        if bucket < 0 {
            return 0.0;
        }
        match self {
            DimState::Uncertain(d) => d.cdf(bucket as usize),
            DimState::Certain(b) => {
                if (*b as i64) <= bucket {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn support(&self) -> (usize, usize) {
        match self {
            DimState::Uncertain(d) => (d.support_min(), d.support_max()),
            DimState::Certain(b) => (*b as usize, *b as usize),
        }
    }
}

/// A multi-dimensional uncertain relation: `items[i][j]` is item `i`'s
/// score state on dimension `j`. All dimensions share one bucket grid per
/// dimension (`max_bucket[j]`).
#[derive(Debug, Clone)]
pub struct VectorRelation {
    max_bucket: Vec<usize>,
    items: Vec<Vec<DimState>>,
    num_certain: usize,
}

impl VectorRelation {
    pub fn new(max_bucket: Vec<usize>) -> Self {
        assert!(
            (2..=3).contains(&max_bucket.len()),
            "skylines need 2 or 3 dimensions, got {}",
            max_bucket.len()
        );
        VectorRelation {
            max_bucket,
            items: Vec::new(),
            num_certain: 0,
        }
    }

    pub fn dims(&self) -> usize {
        self.max_bucket.len()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn num_certain(&self) -> usize {
        self.num_certain
    }

    pub fn max_bucket(&self, dim: usize) -> usize {
        self.max_bucket[dim]
    }

    /// Adds an item with per-dimension states (certain dimensions allowed,
    /// but the item counts as certain only when *all* dimensions are).
    pub fn push(&mut self, dims: Vec<DimState>) -> ItemId {
        assert_eq!(dims.len(), self.dims(), "dimension count mismatch");
        for (j, d) in dims.iter().enumerate() {
            let max = match d {
                DimState::Uncertain(dist) => dist.max_bucket(),
                DimState::Certain(b) => *b as usize,
            };
            assert!(
                max <= self.max_bucket[j],
                "dim {j}: bucket {max} beyond grid {}",
                self.max_bucket[j]
            );
            if let DimState::Uncertain(dist) = d {
                assert_eq!(
                    dist.max_bucket(),
                    self.max_bucket[j],
                    "dim {j}: distribution grid mismatch"
                );
            }
        }
        if dims.iter().all(|d| matches!(d, DimState::Certain(_))) {
            self.num_certain += 1;
        }
        self.items.push(dims);
        self.items.len() - 1
    }

    /// Convenience: push a fully-certain vector.
    pub fn push_certain(&mut self, v: &[u32]) -> ItemId {
        self.push(v.iter().map(|&b| DimState::Certain(b)).collect())
    }

    /// Convenience: push a fully-uncertain vector.
    pub fn push_uncertain(&mut self, dists: Vec<DiscreteDist>) -> ItemId {
        self.push(dists.into_iter().map(DimState::Uncertain).collect())
    }

    pub fn is_certain(&self, id: ItemId) -> bool {
        self.items[id]
            .iter()
            .all(|d| matches!(d, DimState::Certain(_)))
    }

    /// The exact vector of a certain item.
    pub fn certain_vector(&self, id: ItemId) -> Option<Vec<u32>> {
        self.items[id]
            .iter()
            .map(|d| match d {
                DimState::Certain(b) => Some(*b),
                DimState::Uncertain(_) => None,
            })
            .collect()
    }

    /// Marks an item certain with oracle-confirmed buckets.
    pub fn clean(&mut self, id: ItemId, v: &[u32]) {
        assert_eq!(v.len(), self.dims(), "dimension count mismatch");
        assert!(!self.is_certain(id), "item {id} cleaned twice");
        for (j, &b) in v.iter().enumerate() {
            assert!(
                b as usize <= self.max_bucket[j],
                "dim {j}: bucket {b} beyond grid"
            );
        }
        self.items[id] = v.iter().map(|&b| DimState::Certain(b)).collect();
        self.num_certain += 1;
    }

    pub fn certain_ids(&self) -> Vec<ItemId> {
        (0..self.len()).filter(|&i| self.is_certain(i)).collect()
    }

    pub fn uncertain_ids(&self) -> Vec<ItemId> {
        (0..self.len()).filter(|&i| !self.is_certain(i)).collect()
    }

    /// `Pr(S_{id,j} = bucket)` — per-dimension probability mass.
    pub fn dim_pmf(&self, id: ItemId, j: usize, bucket: usize) -> f64 {
        self.items[id][j].pmf(bucket)
    }

    /// `Pr(S_{id,j} ≤ bucket)` — per-dimension CDF (`bucket = -1` gives 0).
    pub fn dim_cdf(&self, id: ItemId, j: usize, bucket: i64) -> f64 {
        self.items[id][j].cdf(bucket)
    }

    fn dim(&self, id: ItemId, j: usize) -> &DimState {
        &self.items[id][j]
    }
}

/// Zips per-dimension [`crate::xtuple::UncertainRelation`]s (one Phase-1
/// run per scoring function over the *same* video) into a
/// [`VectorRelation`].
///
/// Items must align 1:1 — both Phase-1 runs see the same retained frames
/// because the difference detector is score-independent. An item is
/// vector-certain only when every dimension was labelled during sampling.
pub fn zip_relations(dims: &[&crate::xtuple::UncertainRelation]) -> VectorRelation {
    assert!(
        (2..=3).contains(&dims.len()),
        "skylines need 2 or 3 dimensions"
    );
    let n = dims[0].len();
    for (j, r) in dims.iter().enumerate() {
        assert_eq!(
            r.len(),
            n,
            "dimension {j} has {} items, expected {n}",
            r.len()
        );
    }
    let mut rel = VectorRelation::new(dims.iter().map(|r| r.max_bucket()).collect());
    for i in 0..n {
        let states: Vec<DimState> = dims
            .iter()
            .map(|r| match r.certain_bucket(i) {
                Some(b) => DimState::Certain(b),
                None => DimState::Uncertain(r.dist(i).expect("uncertain item").clone()),
            })
            .collect();
        rel.push(states);
    }
    rel
}

/// `a ≻ b`: componentwise ≥ with at least one strict >.
pub fn dominates(a: &[u32], b: &[u32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strict = true;
        }
    }
    strict
}

/// Skyline of a set of certain vectors: ids of the non-dominated ones,
/// in input order.
///
/// Sort-filter skyline: candidates are visited in descending
/// coordinate-sum order. Dominance implies a strictly larger sum, so any
/// dominator of `v` is visited before `v`, and (by transitivity) some
/// *skyline* member dominating `v` is already accepted when `v` arrives —
/// each candidate therefore compares only against the accepted skyline,
/// with an early exit on the first dominator. Typical cost is
/// `O(n log n + n·|skyline|)` versus the all-pairs `O(n²)` of
/// [`skyline_of_pairwise`], which survives as the property-test oracle
/// and the benchmark baseline (`skyline/skyline_of_pairwise_2000`).
pub fn skyline_of(vectors: &[(ItemId, Vec<u32>)]) -> Vec<ItemId> {
    // Precomputed sums (recomputing the key inside the sort comparator
    // costs more than the filter itself); equal-sum ties break by input
    // index, so the visit order — and with it the result — is fully
    // deterministic.
    let mut order: Vec<(u64, u32)> = vectors
        .iter()
        .enumerate()
        .map(|(i, (_, v))| (v.iter().map(|&x| x as u64).sum::<u64>(), i as u32))
        .collect();
    order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut sky: Vec<u32> = Vec::new();
    for &(_, i) in &order {
        if !sky
            .iter()
            .any(|&s| dominates(&vectors[s as usize].1, &vectors[i as usize].1))
        {
            sky.push(i);
        }
    }
    sky.sort_unstable();
    sky.into_iter().map(|i| vectors[i as usize].0).collect()
}

/// The original all-pairs skyline (`O(s²)`): the oracle [`skyline_of`] is
/// property-tested against.
pub fn skyline_of_pairwise(vectors: &[(ItemId, Vec<u32>)]) -> Vec<ItemId> {
    vectors
        .iter()
        .filter(|(_, v)| !vectors.iter().any(|(_, w)| dominates(w, v)))
        .map(|(id, _)| *id)
        .collect()
}

/// `Pr(S_u ∈ Dominated(points))` for an uncertain item `u` whose
/// dimensions are independent, against a *certain* point set.
///
/// For `d = 2` this walks `u`'s x-support once against the staircase of
/// `points` (`O(m + s)` after an `O(s)` staircase build per call). For
/// `d = 3` it enumerates `u`'s support grid (`O(m³ · s)` worst case, fine
/// at video-score bucket counts).
pub fn prob_dominated(rel: &VectorRelation, u: ItemId, points: &[Vec<u32>]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    match rel.dims() {
        2 => prob_dominated_2d(rel, u, points),
        3 => prob_dominated_grid(rel, u, points),
        d => unreachable!("VectorRelation::new rejects d={d}"),
    }
}

fn prob_dominated_2d(rel: &VectorRelation, u: ItemId, points: &[Vec<u32>]) -> f64 {
    let x_state = rel.dim(u, 0);
    let y_state = rel.dim(u, 1);
    let (x_lo, x_hi) = x_state.support();

    // For each x, the largest y that is still dominated:
    //   ybound(x) = max( max{p.y   : p.x > x},     (strict on dim 0)
    //                    max{p.y − 1 : p.x == x} ) (strict on dim 1)
    // Walk x over u's support; maintaining maxima over points sorted by x
    // descending would be O(s log s + m); a direct scan is O(m·s) but both
    // m and s are small — keep the direct form, it is obviously correct.
    let mut total = 0.0;
    for x in x_lo..=x_hi {
        let px = x_state.pmf(x);
        if px == 0.0 {
            continue;
        }
        let mut ybound: i64 = -1;
        for p in points {
            let (p0, p1) = (p[0] as usize, p[1] as i64);
            if p0 > x {
                ybound = ybound.max(p1);
            } else if p0 == x {
                ybound = ybound.max(p1 - 1);
            }
        }
        total += px * y_state.cdf(ybound);
    }
    total
}

fn prob_dominated_grid(rel: &VectorRelation, u: ItemId, points: &[Vec<u32>]) -> f64 {
    let supports: Vec<(usize, usize)> = (0..rel.dims()).map(|j| rel.dim(u, j).support()).collect();
    let mut total = 0.0;
    let mut v = vec![0u32; rel.dims()];
    enumerate_support(rel, u, &supports, 0, 1.0, &mut v, &mut |v, mass| {
        if points.iter().any(|p| dominates(p, v)) {
            total += mass;
        }
    });
    total
}

fn enumerate_support(
    rel: &VectorRelation,
    u: ItemId,
    supports: &[(usize, usize)],
    j: usize,
    mass: f64,
    v: &mut Vec<u32>,
    f: &mut impl FnMut(&[u32], f64),
) {
    if mass == 0.0 {
        return;
    }
    if j == supports.len() {
        f(v, mass);
        return;
    }
    let (lo, hi) = supports[j];
    for b in lo..=hi {
        let p = rel.dim(u, j).pmf(b);
        if p > 0.0 {
            v[j] = b as u32;
            enumerate_support(rel, u, supports, j + 1, mass * p, v, f);
        }
    }
}

/// The state of a skyline query against a relation: the certain skyline,
/// per-uncertain-item domination factors, and the confidence product.
#[derive(Debug, Clone)]
pub struct SkylineState {
    /// Skyline of the certain subset (the candidate answer `R̂`).
    pub skyline: Vec<ItemId>,
    /// `Pr(S_u ∈ Dominated(R̂))` per uncertain item, paired with its id.
    pub factors: Vec<(ItemId, f64)>,
    /// `p̂ = Π factors`.
    pub confidence: f64,
}

/// Computes the full [`SkylineState`] of a relation.
pub fn skyline_state(rel: &VectorRelation) -> SkylineState {
    let certain: Vec<(ItemId, Vec<u32>)> = rel
        .certain_ids()
        .into_iter()
        .map(|id| (id, rel.certain_vector(id).expect("certain")))
        .collect();
    let skyline = skyline_of(&certain);
    let points: Vec<Vec<u32>> = skyline
        .iter()
        .map(|&id| rel.certain_vector(id).expect("certain"))
        .collect();
    let mut confidence = 1.0;
    let factors: Vec<(ItemId, f64)> = rel
        .uncertain_ids()
        .into_iter()
        .map(|u| {
            let p = prob_dominated(rel, u, &points);
            confidence *= p;
            (u, p)
        })
        .collect();
    SkylineState {
        skyline,
        factors,
        confidence,
    }
}

/// The oracle that confirms exact score vectors (one deep model per
/// dimension, each charged per frame by the caller).
pub trait SkylineOracle {
    /// Exact bucket vectors for a batch of items.
    fn clean_batch(&mut self, items: &[ItemId]) -> Vec<Vec<u32>>;
}

/// Configuration of the skyline cleaning loop.
#[derive(Debug, Clone)]
pub struct SkylineConfig {
    /// Confidence threshold `thres`.
    pub thres: f64,
    /// Oracle batch size (§3.5's batch inference).
    pub batch_size: usize,
    /// Diagnostics-only cap on cleanings.
    pub max_cleanings: Option<usize>,
}

impl Default for SkylineConfig {
    fn default() -> Self {
        SkylineConfig {
            thres: 0.9,
            batch_size: 8,
            max_cleanings: None,
        }
    }
}

/// Result of a skyline query.
#[derive(Debug, Clone)]
pub struct SkylineOutcome {
    /// The answer: certain, non-dominated items (ids), unordered.
    pub skyline: Vec<ItemId>,
    /// `Pr(R̂ = Sky)` at termination.
    pub confidence: f64,
    pub converged: bool,
    pub iterations: usize,
    pub cleaned: usize,
}

/// Runs the oracle-in-the-loop skyline query until
/// `Pr(R̂ = Sky) ≥ thres` (§3.3 adapted to domination).
///
/// Each iteration confirms the `batch_size` uncertain items with the
/// smallest domination factors. Like Phase 2 for Top-K, the loop always
/// terminates: every cleaning strictly shrinks `Dᵘ`, and with `Dᵘ = ∅`
/// the confidence is exactly 1.
pub fn run_skyline_cleaner(
    rel: &mut VectorRelation,
    oracle: &mut dyn SkylineOracle,
    cfg: &SkylineConfig,
) -> SkylineOutcome {
    assert!((0.0..1.0).contains(&cfg.thres), "thres must be in [0, 1)");
    assert!(cfg.batch_size >= 1);
    let mut iterations = 0;
    let mut cleaned = 0;
    loop {
        let state = skyline_state(rel);
        if state.confidence >= cfg.thres {
            return SkylineOutcome {
                skyline: state.skyline,
                confidence: state.confidence,
                converged: true,
                iterations,
                cleaned,
            };
        }
        if let Some(cap) = cfg.max_cleanings {
            if cleaned >= cap {
                return SkylineOutcome {
                    skyline: state.skyline,
                    confidence: state.confidence,
                    converged: false,
                    iterations,
                    cleaned,
                };
            }
        }
        // Clean the items with the smallest domination factors.
        let mut by_factor = state.factors;
        by_factor.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let batch: Vec<ItemId> = by_factor
            .iter()
            .take(cfg.batch_size)
            .map(|&(id, _)| id)
            .collect();
        debug_assert!(!batch.is_empty(), "confidence < 1 requires uncertain items");
        let vectors = oracle.clean_batch(&batch);
        assert_eq!(
            vectors.len(),
            batch.len(),
            "oracle must answer the whole batch"
        );
        for (id, v) in batch.iter().zip(&vectors) {
            rel.clean(*id, v);
            cleaned += 1;
        }
        iterations += 1;
    }
}

/// Brute-force possible-world skyline probability — the test oracle for
/// [`skyline_state`]. Enumerates every combination of the uncertain items'
/// supports (exponential; tiny relations only).
///
/// Returns `Pr(skyline(world) == candidate)` where worlds fix certain
/// items at their exact vectors.
pub fn pws_skyline_probability(rel: &VectorRelation, candidate: &[ItemId]) -> f64 {
    let uncertain = rel.uncertain_ids();
    let certain: Vec<(ItemId, Vec<u32>)> = rel
        .certain_ids()
        .into_iter()
        .map(|id| (id, rel.certain_vector(id).expect("certain")))
        .collect();
    let mut total = 0.0;
    let mut sorted_candidate: Vec<ItemId> = candidate.to_vec();
    sorted_candidate.sort_unstable();

    // Recursive world enumeration over uncertain items.
    fn recurse(
        rel: &VectorRelation,
        uncertain: &[ItemId],
        fixed: &mut Vec<(ItemId, Vec<u32>)>,
        mass: f64,
        candidate: &[ItemId],
        total: &mut f64,
    ) {
        if mass == 0.0 {
            return;
        }
        match uncertain.split_first() {
            None => {
                let mut sky = skyline_of(fixed);
                sky.sort_unstable();
                if sky == candidate {
                    *total += mass;
                }
            }
            Some((&u, rest)) => {
                let supports: Vec<(usize, usize)> =
                    (0..rel.dims()).map(|j| rel.dim(u, j).support()).collect();
                let mut v = vec![0u32; rel.dims()];
                enumerate_support(rel, u, &supports, 0, 1.0, &mut v, &mut |v, m| {
                    fixed.push((u, v.to_vec()));
                    recurse(rel, rest, fixed, mass * m, candidate, total);
                    fixed.pop();
                });
            }
        }
    }

    let mut fixed = certain;
    recurse(
        rel,
        &uncertain,
        &mut fixed,
        1.0,
        &sorted_candidate,
        &mut total,
    );
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(masses: &[f64]) -> DiscreteDist {
        DiscreteDist::from_masses(masses)
    }

    #[test]
    fn dominates_needs_a_strict_dimension() {
        assert!(dominates(&[2, 3], &[1, 3]));
        assert!(dominates(&[2, 3], &[2, 2]));
        assert!(
            !dominates(&[2, 3], &[2, 3]),
            "equal vectors do not dominate"
        );
        assert!(!dominates(&[2, 3], &[3, 2]), "incomparable");
        assert!(!dominates(&[1, 1], &[2, 0]), "incomparable the other way");
    }

    #[test]
    fn skyline_of_certain_vectors() {
        let vs = vec![
            (0, vec![5, 1]),
            (1, vec![3, 3]),
            (2, vec![1, 5]),
            (3, vec![2, 2]), // dominated by (3,3)
            (4, vec![5, 1]), // ties with item 0: neither dominates
        ];
        let mut sky = skyline_of(&vs);
        sky.sort_unstable();
        assert_eq!(sky, vec![0, 1, 2, 4]);
        assert_eq!(skyline_of(&vs), skyline_of_pairwise(&vs));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Sort-filter skyline ≡ all-pairs oracle on random vector sets
        /// (2-D and 3-D, dense ties included).
        #[test]
        fn sorted_skyline_equals_pairwise(
            dims in 2usize..4,
            n in 0usize..60,
            seed in 0u64..10_000,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let vectors: Vec<(ItemId, Vec<u32>)> = (0..n)
                .map(|i| (i, (0..dims).map(|_| rng.gen_range(0..6u32)).collect()))
                .collect();
            proptest::prop_assert_eq!(skyline_of(&vectors), skyline_of_pairwise(&vectors));
        }
    }

    #[test]
    fn prob_dominated_2d_hand_computed() {
        // u = (X, Y), X uniform {0,1}, Y uniform {0,1}; point set {(1,1)}.
        // Dominated(·): (0,0) ✓ (0,1) ✓ (1,0) ✓ (1,1) ✗ → 3/4.
        let mut rel = VectorRelation::new(vec![2, 2]);
        let u = rel.push_uncertain(vec![d(&[0.5, 0.5, 0.0]), d(&[0.5, 0.5, 0.0])]);
        let p = prob_dominated(&rel, u, &[vec![1, 1]]);
        assert!((p - 0.75).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn prob_dominated_respects_strictness() {
        // u certain at (1,1) exactly: (1,1) does not dominate itself.
        let mut rel = VectorRelation::new(vec![2, 2]);
        let u = rel.push(vec![DimState::Certain(1), DimState::Certain(1)]);
        assert_eq!(prob_dominated(&rel, u, &[vec![1, 1]]), 0.0);
        // (2,1) dominates (1,1) via dim 0.
        assert_eq!(prob_dominated(&rel, u, &[vec![2, 1]]), 1.0);
        // (1,2) dominates via dim 1.
        assert_eq!(prob_dominated(&rel, u, &[vec![1, 2]]), 1.0);
    }

    #[test]
    fn prob_dominated_union_of_cones() {
        // Points (2,0) and (0,2); u uniform on {0,1,2}².
        // Dominated: by (2,0): (0,0),(1,0) ; by (0,2): (0,0),(0,1).
        // Union = {(0,0),(1,0),(0,1)} → 3/9.
        let mut rel = VectorRelation::new(vec![2, 2]);
        let u = rel.push_uncertain(vec![
            d(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
            d(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
        ]);
        let p = prob_dominated(&rel, u, &[vec![2, 0], vec![0, 2]]);
        assert!((p - 3.0 / 9.0).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn prob_dominated_3d_grid_path() {
        // Point (1,1,1); u uniform on {0,1}³: dominated = all but (1,1,1)
        // → 7/8.
        let mut rel = VectorRelation::new(vec![1, 1, 1]);
        let u = rel.push_uncertain(vec![d(&[0.5, 0.5]), d(&[0.5, 0.5]), d(&[0.5, 0.5])]);
        let p = prob_dominated(&rel, u, &[vec![1, 1, 1]]);
        assert!((p - 7.0 / 8.0).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn empty_point_set_dominates_nothing() {
        let mut rel = VectorRelation::new(vec![2, 2]);
        let u = rel.push_uncertain(vec![d(&[0.5, 0.5, 0.0]), d(&[1.0, 0.0, 0.0])]);
        assert_eq!(prob_dominated(&rel, u, &[]), 0.0);
    }

    /// A small mixed relation used by the state/PWS agreement tests.
    fn mixed_relation() -> VectorRelation {
        let mut rel = VectorRelation::new(vec![2, 2]);
        rel.push_certain(&[2, 1]); // strong certain point
        rel.push_certain(&[0, 2]); // incomparable certain point
        rel.push_uncertain(vec![d(&[0.6, 0.3, 0.1]), d(&[0.5, 0.5, 0.0])]);
        rel.push_uncertain(vec![d(&[0.2, 0.8, 0.0]), d(&[0.9, 0.1, 0.0])]);
        rel
    }

    #[test]
    fn skyline_state_matches_possible_world_enumeration() {
        let rel = mixed_relation();
        let state = skyline_state(&rel);
        let brute = pws_skyline_probability(&rel, &state.skyline);
        // The factorized confidence counts worlds where *every* uncertain
        // item is dominated by R̂; such worlds have skyline exactly R̂.
        // Brute force also counts worlds where the skyline happens to be
        // R̂ in other ways — impossible here, so the two must agree.
        assert!(
            (state.confidence - brute).abs() < 1e-9,
            "fast {} vs brute {}",
            state.confidence,
            brute
        );
    }

    #[test]
    fn factorized_confidence_is_a_lower_bound_in_general() {
        // With NO certain items the candidate skyline is empty, which can
        // never be a real skyline (some item always survives): both the
        // factorized confidence and the brute-force probability are 0.
        let mut rel = VectorRelation::new(vec![1, 1]);
        rel.push_uncertain(vec![d(&[0.5, 0.5]), d(&[0.5, 0.5])]);
        let state = skyline_state(&rel);
        assert!(state.skyline.is_empty());
        assert_eq!(state.confidence, 0.0);
        assert_eq!(pws_skyline_probability(&rel, &[]), 0.0);
    }

    struct TableOracle {
        truth: Vec<Vec<u32>>,
        calls: usize,
        frames: usize,
    }

    impl SkylineOracle for TableOracle {
        fn clean_batch(&mut self, items: &[ItemId]) -> Vec<Vec<u32>> {
            self.calls += 1;
            self.frames += items.len();
            items.iter().map(|&i| self.truth[i].clone()).collect()
        }
    }

    /// Builds a relation whose uncertain distributions are centred on the
    /// ground truth, plus the matching oracle.
    fn noisy_setup(n: usize, seed: u64) -> (VectorRelation, TableOracle) {
        use everest_video::util::{frame_rng, gaussian};
        let max_b = 8usize;
        let mut rel = VectorRelation::new(vec![max_b, max_b]);
        let mut truth = Vec::with_capacity(n);
        for i in 0..n {
            let mut rng = frame_rng(seed, i);
            let mut dims = Vec::with_capacity(2);
            let mut v = Vec::with_capacity(2);
            for jdim in 0..2 {
                let t = ((i * (jdim + 3) + 7 * jdim + i / 3) % (max_b + 1)) as u32;
                v.push(t);
                // triangular-ish noise around t
                let mut masses = vec![0.0; max_b + 1];
                for (b, m) in masses.iter_mut().enumerate() {
                    let dist = (b as f64 - t as f64).abs() + 0.3 * gaussian(&mut rng).abs();
                    *m = (-dist).exp();
                }
                dims.push(DimState::Uncertain(DiscreteDist::from_masses(&masses)));
            }
            truth.push(v);
            rel.push(dims);
        }
        (
            rel,
            TableOracle {
                truth,
                calls: 0,
                frames: 0,
            },
        )
    }

    #[test]
    fn cleaner_reaches_threshold_and_answer_is_true_skyline() {
        let (mut rel, mut oracle) = noisy_setup(40, 99);
        let truth = oracle.truth.clone();
        let out = run_skyline_cleaner(
            &mut rel,
            &mut oracle,
            &SkylineConfig {
                thres: 0.95,
                batch_size: 4,
                max_cleanings: None,
            },
        );
        assert!(out.converged);
        assert!(out.confidence >= 0.95);
        // certain-result condition
        for &id in &out.skyline {
            assert!(rel.is_certain(id), "answer item {id} must be certain");
            assert_eq!(rel.certain_vector(id).unwrap(), truth[id], "oracle scores");
        }
        // the answer must be exactly the skyline of the true vectors that
        // were confirmed — and since confidence ≥ 0.95 over *this* relation
        // the true skyline of ALL items should normally be caught; verify
        // no unconfirmed item dominates any answer item under truth.
        let all: Vec<(ItemId, Vec<u32>)> = truth.iter().cloned().enumerate().collect();
        let mut true_sky = skyline_of(&all);
        true_sky.sort_unstable();
        let mut got = out.skyline.clone();
        got.sort_unstable();
        assert_eq!(
            got, true_sky,
            "cleaned skyline should match ground truth here"
        );
        assert!(out.cleaned < 40, "should not have cleaned everything");
    }

    #[test]
    fn cleaner_with_certain_seeds_cleans_less() {
        let (mut rel_cold, mut oracle_cold) = noisy_setup(30, 7);
        let cold = run_skyline_cleaner(&mut rel_cold, &mut oracle_cold, &Default::default());

        // Same data, but pre-confirm the true skyline members (as if they
        // were labelled during Phase-1 sampling).
        let (mut rel_warm, mut oracle_warm) = noisy_setup(30, 7);
        let all: Vec<(ItemId, Vec<u32>)> = oracle_warm.truth.iter().cloned().enumerate().collect();
        for id in skyline_of(&all) {
            let v = oracle_warm.truth[id].clone();
            rel_warm.clean(id, &v);
        }
        let warm = run_skyline_cleaner(&mut rel_warm, &mut oracle_warm, &Default::default());
        assert!(warm.converged && cold.converged);
        assert!(
            warm.cleaned <= cold.cleaned,
            "pre-confirmed skyline must not clean more (warm {} vs cold {})",
            warm.cleaned,
            cold.cleaned
        );
    }

    #[test]
    fn max_cleanings_cap_reports_non_convergence() {
        let (mut rel, mut oracle) = noisy_setup(40, 5);
        let out = run_skyline_cleaner(
            &mut rel,
            &mut oracle,
            &SkylineConfig {
                thres: 0.99,
                batch_size: 1,
                max_cleanings: Some(2),
            },
        );
        assert!(!out.converged);
        assert_eq!(out.cleaned, 2);
        assert!(out.confidence < 0.99);
    }

    #[test]
    fn fully_certain_relation_has_confidence_one() {
        let mut rel = VectorRelation::new(vec![3, 3]);
        rel.push_certain(&[3, 0]);
        rel.push_certain(&[0, 3]);
        rel.push_certain(&[2, 2]);
        rel.push_certain(&[1, 1]); // dominated by (2,2)
        struct Never;
        impl SkylineOracle for Never {
            fn clean_batch(&mut self, _: &[ItemId]) -> Vec<Vec<u32>> {
                panic!("nothing to clean")
            }
        }
        let out = run_skyline_cleaner(&mut rel, &mut Never, &Default::default());
        assert_eq!(out.confidence, 1.0);
        assert_eq!(out.cleaned, 0);
        let mut sky = out.skyline;
        sky.sort_unstable();
        assert_eq!(sky, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "cleaned twice")]
    fn double_clean_rejected() {
        let mut rel = VectorRelation::new(vec![2, 2]);
        rel.push_uncertain(vec![d(&[0.5, 0.5, 0.0]), d(&[0.5, 0.5, 0.0])]);
        rel.clean(0, &[1, 1]);
        rel.clean(0, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "2 or 3 dimensions")]
    fn one_dimension_is_not_a_skyline() {
        let _ = VectorRelation::new(vec![4]);
    }

    #[test]
    fn zip_relations_preserves_states() {
        use crate::xtuple::UncertainRelation;
        let mut a = UncertainRelation::new(1.0, 2);
        a.push_uncertain(d(&[0.5, 0.5, 0.0]));
        a.push_certain(2);
        let mut b = UncertainRelation::new(1.0, 3);
        b.push_certain(1);
        b.push_uncertain(d(&[0.25, 0.25, 0.25, 0.25]));
        let rel = zip_relations(&[&a, &b]);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.dims(), 2);
        assert_eq!(rel.max_bucket(0), 2);
        assert_eq!(rel.max_bucket(1), 3);
        // item 0: (uncertain, certain 1); item 1: (certain 2, uncertain)
        assert!(!rel.is_certain(0) && !rel.is_certain(1));
        assert_eq!(rel.dim(0, 1).cdf(0), 0.0);
        assert_eq!(rel.dim(0, 1).cdf(1), 1.0);
        assert_eq!(rel.dim(1, 0).pmf(2), 1.0);
        // cleaning completes the vector
        let mut rel2 = rel.clone();
        rel2.clean(0, &[1, 1]);
        assert!(rel2.is_certain(0));
        assert_eq!(rel2.certain_vector(0), Some(vec![1, 1]));
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn zip_relations_rejects_misaligned_lengths() {
        use crate::xtuple::UncertainRelation;
        let mut a = UncertainRelation::new(1.0, 2);
        a.push_certain(0);
        a.push_certain(1);
        let mut b = UncertainRelation::new(1.0, 2);
        b.push_certain(0);
        let _ = zip_relations(&[&a, &b]);
    }
}
