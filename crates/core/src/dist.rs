//! Discrete score distributions: the probabilistic payload of an x-tuple.
//!
//! After Phase 1 quantizes a frame's Gaussian-mixture score distribution
//! (§3.2), each frame carries a probability mass function over a shared
//! bucket grid `value = bucket × step`. All Phase-2 maths (Eq. 2–8) runs on
//! bucket indices; `step` only matters when converting back to score units
//! for reporting.

use serde::{Deserialize, Serialize};

/// A discrete distribution over buckets `0 ..= max_bucket`.
///
/// Stores the PMF and the precomputed CDF; the CDF is what Eq. 2/3 consume
/// (`F_f(t) = Pr(S_f ≤ t)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteDist {
    pmf: Vec<f64>,
    cdf: Vec<f64>,
}

impl DiscreteDist {
    /// Builds a distribution from raw masses, normalising them.
    ///
    /// Panics if the masses are empty, negative, or sum to zero.
    pub fn from_masses(masses: &[f64]) -> Self {
        assert!(!masses.is_empty(), "distribution needs at least one bucket");
        assert!(
            masses.iter().all(|&m| m.is_finite() && m >= 0.0),
            "masses must be finite and non-negative"
        );
        let total: f64 = masses.iter().sum();
        assert!(total > 0.0, "distribution needs positive total mass");
        let pmf: Vec<f64> = masses.iter().map(|m| m / total).collect();
        let mut cdf = Vec::with_capacity(pmf.len());
        let mut acc = 0.0;
        for &p in &pmf {
            acc += p;
            cdf.push(acc.min(1.0));
        }
        // force exactness at the top to avoid 1-1e-16 artifacts
        *cdf.last_mut().expect("non-empty") = 1.0;
        DiscreteDist { pmf, cdf }
    }

    /// A point mass at `bucket` on a grid of `max_bucket + 1` buckets.
    pub fn certain(bucket: usize, max_bucket: usize) -> Self {
        assert!(
            bucket <= max_bucket,
            "bucket {bucket} beyond grid {max_bucket}"
        );
        let mut masses = vec![0.0; max_bucket + 1];
        masses[bucket] = 1.0;
        DiscreteDist::from_masses(&masses)
    }

    /// Number of buckets (`max_bucket + 1`).
    pub fn len(&self) -> usize {
        self.pmf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pmf.is_empty()
    }

    /// Largest bucket index.
    pub fn max_bucket(&self) -> usize {
        self.pmf.len() - 1
    }

    /// `Pr(S = bucket)`.
    pub fn pmf(&self, bucket: usize) -> f64 {
        self.pmf.get(bucket).copied().unwrap_or(0.0)
    }

    /// `F(t) = Pr(S ≤ t)`; saturates to 1 beyond the grid.
    pub fn cdf(&self, bucket: usize) -> f64 {
        if bucket >= self.cdf.len() {
            1.0
        } else {
            self.cdf[bucket]
        }
    }

    /// Full PMF slice.
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Mean bucket value (in bucket units).
    pub fn mean_bucket(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(b, &p)| b as f64 * p)
            .sum()
    }

    /// Smallest bucket with positive mass.
    pub fn support_min(&self) -> usize {
        self.pmf
            .iter()
            .position(|&p| p > 0.0)
            .expect("normalised dist has mass")
    }

    /// Largest bucket with positive mass.
    pub fn support_max(&self) -> usize {
        self.pmf
            .iter()
            .rposition(|&p| p > 0.0)
            .expect("normalised dist has mass")
    }

    /// Samples a bucket given a uniform `u ∈ [0, 1)` (inverse CDF).
    pub fn sample_with(&self, u: f64) -> usize {
        debug_assert!((0.0..=1.0).contains(&u));
        self.cdf.partition_point(|&c| c < u).min(self.max_bucket())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_masses_normalises() {
        let d = DiscreteDist::from_masses(&[1.0, 3.0]);
        assert!((d.pmf(0) - 0.25).abs() < 1e-12);
        assert!((d.pmf(1) - 0.75).abs() < 1e-12);
        assert_eq!(d.cdf(1), 1.0);
    }

    #[test]
    fn cdf_is_monotone_and_saturates() {
        let d = DiscreteDist::from_masses(&[0.2, 0.3, 0.5]);
        assert!(d.cdf(0) <= d.cdf(1) && d.cdf(1) <= d.cdf(2));
        assert_eq!(d.cdf(2), 1.0);
        assert_eq!(d.cdf(100), 1.0);
    }

    #[test]
    fn certain_is_point_mass() {
        let d = DiscreteDist::certain(2, 4);
        assert_eq!(d.pmf(2), 1.0);
        assert_eq!(d.cdf(1), 0.0);
        assert_eq!(d.cdf(2), 1.0);
        assert_eq!(d.support_min(), 2);
        assert_eq!(d.support_max(), 2);
        assert_eq!(d.len(), 5);
    }

    #[test]
    #[should_panic(expected = "beyond grid")]
    fn certain_bucket_out_of_grid_panics() {
        let _ = DiscreteDist::certain(5, 4);
    }

    #[test]
    #[should_panic(expected = "positive total mass")]
    fn zero_mass_panics() {
        let _ = DiscreteDist::from_masses(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mass_panics() {
        let _ = DiscreteDist::from_masses(&[0.5, -0.1]);
    }

    #[test]
    fn mean_bucket_weighted() {
        let d = DiscreteDist::from_masses(&[0.5, 0.0, 0.5]);
        assert!((d.mean_bucket() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn support_bounds() {
        let d = DiscreteDist::from_masses(&[0.0, 0.4, 0.6, 0.0]);
        assert_eq!(d.support_min(), 1);
        assert_eq!(d.support_max(), 2);
    }

    #[test]
    fn sampling_follows_cdf() {
        let d = DiscreteDist::from_masses(&[0.25, 0.25, 0.5]);
        assert_eq!(d.sample_with(0.0), 0);
        assert_eq!(d.sample_with(0.2), 0);
        assert_eq!(d.sample_with(0.3), 1);
        assert_eq!(d.sample_with(0.6), 2);
        assert_eq!(d.sample_with(0.999), 2);
    }
}
