//! # everest-core — uncertain Top-K query processing with an
//! oracle-in-the-loop (the Everest paper's contribution)
//!
//! This crate implements the algorithms and pipeline of *"Top-K Deep Video
//! Analytics: A Probabilistic Approach"* (SIGMOD 2021):
//!
//! * [`dist`] / [`xtuple`] — discrete score distributions and the x-tuple
//!   uncertain relation (§2);
//! * [`pws`] — brute-force possible-world semantics (Eq. 1), the test
//!   oracle for the fast path;
//! * [`semantics`] / [`semantics_dp`] — the §2 alternative uncertain Top-K
//!   semantics (U-TopK, U-KRanks, PT-k, expected ranks): enumeration
//!   oracles and their polynomial-time dynamic programs (see
//!   `docs/SEMANTICS.md`);
//! * [`topkprob`] — `Topk-prob` (Eq. 2/3) with an incrementally-maintained
//!   joint CDF in log space;
//! * [`select`] — `Select-candidate` (Eq. 4–8) with upper-bound early
//!   stopping and the lazy ψ re-sort schedule;
//! * [`budget`] — query budgets, simulated-seconds deadlines, cooperative
//!   cancellation, and the [`budget::Termination`] status of degraded
//!   anytime answers;
//! * [`cleaner`] — the Phase-2 driver: certain-result condition, batched
//!   oracle cleaning, convergence guarantee;
//! * [`window`] — Top-K over tumbling windows (Eq. 9 + sampled
//!   confirmation, §3.4);
//! * [`stream`] — continuous Top-K over live streams: sliding/tumbling
//!   windows advanced in O(delta), boundary-focused cleaning, and the
//!   batch-replay reference the equivalence harness compares against;
//! * [`phase1`] — CMDN sampling/training/model-selection and the initial
//!   uncertain relation `D0` (§3.2);
//! * [`pipeline`] — the end-to-end engine with simulated-cost accounting
//!   ([`sim`], Table 8 style breakdowns);
//! * [`baselines`] — scan-and-test, HOG/TinyYOLO scans, CMDN-only, and the
//!   calibrated Select-and-TopK baseline (§4);
//! * [`metrics`] — precision / rank distance / score error (§4);
//! * [`prefetch`] — ψ-ordered frame prefetching (§3.5).
//!
//! ## Quick start
//!
//! ```
//! use everest_core::prelude::*;
//! use everest_models::{counting_oracle, InstrumentedOracle};
//! use everest_nn::train::TrainConfig;
//! use everest_nn::HyperGrid;
//! use everest_video::arrival::{ArrivalConfig, Timeline};
//! use everest_video::scene::{SceneConfig, SyntheticVideo};
//!
//! // A tiny synthetic traffic video with known ground truth.
//! let timeline = Timeline::generate(
//!     &ArrivalConfig { n_frames: 600, ..ArrivalConfig::default() }, 7);
//! let video = SyntheticVideo::new(SceneConfig::default(), timeline, 7, 30.0);
//! let oracle = InstrumentedOracle::new(counting_oracle(&video));
//!
//! // Phase 1 (kept tiny for the doctest), then a Top-5 query at thres 0.9.
//! let phase1 = Phase1Config {
//!     sample_frac: 0.2,
//!     sample_cap: 80,
//!     sample_min: 32,
//!     grid: HyperGrid::single(2, 8),
//!     train: TrainConfig { epochs: 2, ..TrainConfig::default() },
//!     conv_channels: vec![4],
//!     threads: 2,
//!     ..Phase1Config::default()
//! };
//! let prepared = Everest::prepare(&video, &oracle, &phase1);
//! let report = prepared.query_topk(&oracle, 5, 0.9, &CleanerConfig::default());
//! assert_eq!(report.items.len(), 5);
//! assert!(report.confidence >= 0.9);
//! ```

#![deny(unsafe_code)]

pub mod baselines;
pub mod budget;
pub mod cleaner;
pub mod dist;
pub mod ingest;
pub mod metrics;
pub mod phase1;
pub mod pipeline;
pub mod prefetch;
pub mod pws;
pub mod select;
pub mod semantics;
pub mod semantics_dp;
pub mod sim;
pub mod skyline;
pub mod stream;
pub mod topkprob;
pub mod window;
pub mod xtuple;

/// The types most programs need.
pub mod prelude {
    pub use crate::baselines::{scan_and_test, topk_indices, BaselineResult};
    pub use crate::budget::{CancelToken, QueryBudget, Termination};
    pub use crate::cleaner::{CleanerConfig, CleaningOracle};
    pub use crate::dist::DiscreteDist;
    pub use crate::metrics::{evaluate_topk, GroundTruth, ResultQuality};
    pub use crate::phase1::Phase1Config;
    pub use crate::pipeline::{Everest, PreparedVideo, QueryReport, ResultItem};
    pub use crate::sim::SimClock;
    pub use crate::stream::{StreamAnswer, StreamConfig, StreamTopK};
    pub use crate::xtuple::{ItemId, UncertainRelation};
}
