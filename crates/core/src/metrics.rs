//! Result-quality metrics (§4 "Evaluation Metrics"): precision, rank
//! distance, and score error.
//!
//! Ground truth is the exact score of every frame. Because counting scores
//! tie heavily (many frames share the maximum count), the true Top-K set is
//! not unique; all three metrics are therefore **tie-aware**:
//!
//! * **precision** — fraction of returned items whose exact score is ≥ the
//!   K-th highest exact score (any such item belongs to *some* exact Top-K
//!   set; recall = precision since |R̂| = |R| = K, see the paper's
//!   footnote 6);
//! * **rank distance** — normalized Spearman footrule between returned
//!   positions and tie-group true-rank *intervals* (distance 0 inside the
//!   interval; intervals clamped to 2K), normalized by K² for a
//!   conservative [0, 1]-ish bound;
//! * **score error** — mean |i-th returned score − i-th true score| after
//!   sorting both descending.

/// Exact-score ground truth against which answers are judged.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Exact scores, indexable by item id.
    scores: Vec<f64>,
    /// Scores sorted descending.
    sorted: Vec<f64>,
}

impl GroundTruth {
    pub fn new(scores: Vec<f64>) -> Self {
        assert!(!scores.is_empty(), "ground truth needs at least one item");
        let mut sorted = scores.clone();
        sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite scores"));
        GroundTruth { scores, sorted }
    }

    pub fn len(&self) -> usize {
        self.scores.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    pub fn score(&self, id: usize) -> f64 {
        self.scores[id]
    }

    /// The K-th highest exact score (1-based K).
    pub fn kth_score(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.sorted.len());
        self.sorted[k - 1]
    }

    /// Competition rank ("1224") of a score: 1 + #items strictly greater.
    pub fn competition_rank(&self, score: f64) -> usize {
        self.sorted.partition_point(|&s| s > score) + 1
    }

    /// The true-rank interval `[first, last]` occupied by a score's tie
    /// group (both 1-based, inclusive). Scores absent from the truth get
    /// the empty-interval convention `first = last = rank`.
    pub fn rank_range(&self, score: f64) -> (usize, usize) {
        let first = self.sorted.partition_point(|&s| s > score) + 1;
        let last = self.sorted.partition_point(|&s| s >= score);
        (first, last.max(first))
    }
}

/// Quality of one Top-K answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultQuality {
    pub precision: f64,
    pub rank_distance: f64,
    pub score_error: f64,
}

/// Evaluates an answer (item ids, assumed ordered best-first) of size K.
pub fn evaluate_topk(truth: &GroundTruth, answer: &[usize], k: usize) -> ResultQuality {
    assert!(k >= 1, "K must be positive");
    assert_eq!(answer.len(), k, "answer must contain exactly K items");
    assert!(k <= truth.len(), "K exceeds item count");

    let threshold = truth.kth_score(k);
    let hits = answer
        .iter()
        .filter(|&&id| truth.score(id) >= threshold)
        .count();
    let precision = hits as f64 / k as f64;

    // Normalized footrule with tie ranges: an item whose score ties others
    // occupies the true-rank *interval* [first, last] of its tie group; its
    // distance is 0 when its returned position falls inside the interval,
    // else the distance to the nearest end (intervals clamped to 2K so one
    // disastrous item cannot dominate).
    let footrule: f64 = answer
        .iter()
        .enumerate()
        .map(|(pos, &id)| {
            let (first, last) = truth.rank_range(truth.score(id));
            let (first, last) = (first.min(2 * k), last.min(2 * k));
            let p = pos + 1;
            if p < first {
                (first - p) as f64
            } else if p > last {
                (p - last) as f64
            } else {
                0.0
            }
        })
        .sum();
    let rank_distance = footrule / (k * k) as f64;

    // Score error: rank-aligned absolute differences.
    let mut got: Vec<f64> = answer.iter().map(|&id| truth.score(id)).collect();
    got.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
    let score_error: f64 = got
        .iter()
        .enumerate()
        .map(|(i, &s)| (s - truth.kth_score(i + 1)).abs())
        .sum::<f64>()
        / k as f64;

    ResultQuality {
        precision,
        rank_distance,
        score_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        // ids:      0    1    2    3    4    5
        GroundTruth::new(vec![9.0, 7.0, 7.0, 5.0, 3.0, 1.0])
    }

    #[test]
    fn perfect_answer_is_perfect() {
        let t = truth();
        let q = evaluate_topk(&t, &[0, 1, 2], 3);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.rank_distance, 0.0);
        assert_eq!(q.score_error, 0.0);
    }

    #[test]
    fn tie_aware_precision_accepts_either_tied_item() {
        let t = truth();
        // Top-2 could be {0,1} or {0,2}: both have precision 1.
        assert_eq!(evaluate_topk(&t, &[0, 1], 2).precision, 1.0);
        assert_eq!(evaluate_topk(&t, &[0, 2], 2).precision, 1.0);
    }

    #[test]
    fn wrong_item_lowers_precision() {
        let t = truth();
        let q = evaluate_topk(&t, &[0, 5], 2);
        assert_eq!(q.precision, 0.5);
        assert!(q.score_error > 0.0);
    }

    #[test]
    fn kth_score_and_rank() {
        let t = truth();
        assert_eq!(t.kth_score(1), 9.0);
        assert_eq!(t.kth_score(3), 7.0);
        assert_eq!(t.competition_rank(9.0), 1);
        assert_eq!(t.competition_rank(7.0), 2); // two items tie at rank 2
        assert_eq!(t.competition_rank(5.0), 4);
        assert_eq!(t.competition_rank(0.5), 7);
    }

    #[test]
    fn rank_range_covers_tie_groups() {
        let t = truth();
        assert_eq!(t.rank_range(9.0), (1, 1));
        assert_eq!(t.rank_range(7.0), (2, 3)); // the tie pair
        assert_eq!(t.rank_range(5.0), (4, 4));
        // score not present: empty group collapses to its insertion rank
        assert_eq!(t.rank_range(6.0), (4, 4));
    }

    #[test]
    fn rank_distance_detects_shuffled_order() {
        let t = truth();
        let ordered = evaluate_topk(&t, &[0, 1, 3], 3);
        let shuffled = evaluate_topk(&t, &[3, 1, 0], 3);
        assert!(shuffled.rank_distance > ordered.rank_distance);
        assert_eq!(ordered.precision, shuffled.precision);
    }

    #[test]
    fn score_error_is_rank_aligned() {
        let t = truth();
        // answer scores {9, 5}: true top-2 = {9, 7} → error = (0 + 2)/2 = 1
        let q = evaluate_topk(&t, &[0, 3], 2);
        assert!((q.score_error - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_bounded() {
        let t = truth();
        let q = evaluate_topk(&t, &[5, 4, 3], 3); // worst plausible answer
        assert!((0.0..=1.0).contains(&q.precision));
        assert!((0.0..=2.0).contains(&q.rank_distance));
        assert!(q.score_error >= 0.0);
    }

    #[test]
    #[should_panic(expected = "exactly K items")]
    fn size_mismatch_panics() {
        let t = truth();
        let _ = evaluate_topk(&t, &[0], 2);
    }
}
