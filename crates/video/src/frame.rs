//! Grayscale video frames and pixel-level operations.
//!
//! The paper's pipeline touches pixels in exactly two places: the MSE
//! difference detector (§3.5) and the CMDN input (§3.2, frames resized to a
//! small square and normalized to `[0, 1]`). A single-channel `f32` frame in
//! `[0, 1]` covers both.

use serde::{Deserialize, Serialize};

/// A grayscale frame with pixel intensities in `[0, 1]`, stored row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

impl Frame {
    /// Creates a black frame of the given dimensions.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        Frame {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Creates a frame filled with a constant intensity.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        Frame {
            width,
            height,
            pixels: vec![value; width * height],
        }
    }

    /// Builds a frame from an existing pixel buffer (row-major, len = w*h).
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<f32>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        Frame {
            width,
            height,
            pixels,
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of pixels (`width * height`).
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Read-only view of the pixel buffer, row-major.
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Mutable view of the pixel buffer, row-major.
    pub fn pixels_mut(&mut self) -> &mut [f32] {
        &mut self.pixels
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x] = v;
    }

    /// Adds `v` to a pixel, clamping the result into `[0, 1]`.
    #[inline]
    pub fn add_clamped(&mut self, x: usize, y: usize, v: f32) {
        let p = &mut self.pixels[y * self.width + x];
        *p = (*p + v).clamp(0.0, 1.0);
    }

    /// Mean pixel intensity.
    pub fn mean(&self) -> f32 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().sum::<f32>() / self.pixels.len() as f32
    }

    /// Mean squared error between two frames of identical dimensions.
    ///
    /// This is the similarity measure used by the difference detector
    /// (§3.5, following NoScope).
    pub fn mse(&self, other: &Frame) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "MSE requires frames of identical dimensions"
        );
        let n = self.pixels.len() as f32;
        let sum: f32 = self
            .pixels
            .iter()
            .zip(other.pixels.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum();
        sum / n
    }

    /// Clamps every pixel into `[0, 1]`.
    pub fn clamp_unit(&mut self) {
        for p in &mut self.pixels {
            *p = p.clamp(0.0, 1.0);
        }
    }

    /// Nearest-neighbour resize, used to shrink frames to the CMDN input
    /// resolution (the paper resizes to 128×128; we default to 32×32 at our
    /// scaled resolution).
    pub fn resize(&self, new_w: usize, new_h: usize) -> Frame {
        assert!(new_w > 0 && new_h > 0);
        let mut out = Frame::new(new_w, new_h);
        for y in 0..new_h {
            let sy = y * self.height / new_h;
            for x in 0..new_w {
                let sx = x * self.width / new_w;
                out.set(x, y, self.get(sx, sy));
            }
        }
        out
    }

    /// Mean intensity over a rectangular region, clipped to bounds.
    /// Useful for simple region statistics in tests and classic baselines.
    pub fn region_mean(&self, x0: usize, y0: usize, w: usize, h: usize) -> f32 {
        let x1 = (x0 + w).min(self.width);
        let y1 = (y0 + h).min(self.height);
        if x0 >= x1 || y0 >= y1 {
            return 0.0;
        }
        let mut sum = 0.0;
        for y in y0..y1 {
            for x in x0..x1 {
                sum += self.get(x, y);
            }
        }
        sum / ((x1 - x0) * (y1 - y0)) as f32
    }
}

/// Axis-aligned bounding box in pixel coordinates.
///
/// The paper's video relation (Table 2) stores object "polygons"; detections
/// in practice are bounding boxes, which is what our detector substrate and
/// IoU tracker use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    pub x: f32,
    pub y: f32,
    pub w: f32,
    pub h: f32,
}

impl BBox {
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        BBox { x, y, w, h }
    }

    pub fn area(&self) -> f32 {
        (self.w.max(0.0)) * (self.h.max(0.0))
    }

    /// Intersection-over-union with another box; `0.0` when disjoint.
    pub fn iou(&self, other: &BBox) -> f32 {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = (self.x + self.w).min(other.x + other.w);
        let y1 = (self.y + self.h).min(other.y + other.h);
        if x1 <= x0 || y1 <= y0 {
            return 0.0;
        }
        let inter = (x1 - x0) * (y1 - y0);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Center point of the box.
    pub fn center(&self) -> (f32, f32) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_frame_is_black() {
        let f = Frame::new(4, 3);
        assert_eq!(f.width(), 4);
        assert_eq!(f.height(), 3);
        assert_eq!(f.len(), 12);
        assert!(f.pixels().iter().all(|&p| p == 0.0));
        assert_eq!(f.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        let _ = Frame::new(0, 3);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut f = Frame::new(5, 5);
        f.set(2, 3, 0.5);
        assert_eq!(f.get(2, 3), 0.5);
        assert_eq!(f.get(3, 2), 0.0);
    }

    #[test]
    fn add_clamped_saturates() {
        let mut f = Frame::new(2, 2);
        f.add_clamped(0, 0, 0.7);
        f.add_clamped(0, 0, 0.7);
        assert_eq!(f.get(0, 0), 1.0);
        f.add_clamped(0, 0, -3.0);
        assert_eq!(f.get(0, 0), 0.0);
    }

    #[test]
    fn mse_zero_for_identical() {
        let mut f = Frame::new(8, 8);
        f.set(1, 1, 0.3);
        assert_eq!(f.mse(&f.clone()), 0.0);
    }

    #[test]
    fn mse_matches_hand_computation() {
        let a = Frame::from_pixels(2, 1, vec![0.0, 1.0]);
        let b = Frame::from_pixels(2, 1, vec![0.5, 0.5]);
        // ((0.5)^2 + (0.5)^2) / 2 = 0.25
        assert!((a.mse(&b) - 0.25).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn mse_dimension_mismatch_panics() {
        let a = Frame::new(2, 2);
        let b = Frame::new(3, 2);
        let _ = a.mse(&b);
    }

    #[test]
    fn resize_preserves_constant_frames() {
        let f = Frame::filled(16, 16, 0.25);
        let r = f.resize(4, 4);
        assert_eq!(r.width(), 4);
        assert!(r.pixels().iter().all(|&p| (p - 0.25).abs() < 1e-7));
    }

    #[test]
    fn resize_upscale() {
        let mut f = Frame::new(2, 2);
        f.set(0, 0, 1.0);
        let r = f.resize(4, 4);
        // top-left quadrant should replicate source (0,0)
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.get(1, 1), 1.0);
        assert_eq!(r.get(3, 3), 0.0);
    }

    #[test]
    fn region_mean_clips_to_bounds() {
        let f = Frame::filled(4, 4, 0.5);
        assert!((f.region_mean(2, 2, 10, 10) - 0.5).abs() < 1e-7);
        assert_eq!(f.region_mean(4, 4, 2, 2), 0.0);
    }

    #[test]
    fn bbox_iou_identical_is_one() {
        let b = BBox::new(1.0, 2.0, 3.0, 4.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bbox_iou_disjoint_is_zero() {
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BBox::new(5.0, 5.0, 1.0, 1.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn bbox_iou_half_overlap() {
        let a = BBox::new(0.0, 0.0, 2.0, 1.0);
        let b = BBox::new(1.0, 0.0, 2.0, 1.0);
        // intersection 1, union 3
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn bbox_degenerate_zero_area() {
        let a = BBox::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(a.area(), 0.0);
        assert_eq!(a.iou(&a), 0.0);
    }
}
