//! # everest-video — synthetic video substrate
//!
//! The Everest paper evaluates on hours-long real videos (Table 7) decoded
//! with Decord. This crate is the from-scratch substitute: a **procedural,
//! deterministic scene renderer** whose ground-truth object annotations are
//! known per frame, plus the supporting machinery the paper's pipeline
//! needs from the video layer:
//!
//! * [`frame::Frame`] — grayscale frames with pixel-level ops (MSE, noise);
//! * [`scene`] — the renderer: objects as soft blobs over textured
//!   backgrounds, with camera pan/shake for moving-camera footage;
//! * [`arrival`] — object arrival processes (diurnal intensity, bursts,
//!   lifetimes) that create the heavy-tailed count profiles that make Top-K
//!   queries non-trivial;
//! * [`datasets`] — the seven-video catalog of the paper's Table 7, scaled
//!   ~1/400 in frame count so experiments run on a CPU in minutes;
//! * [`visualroad`] — a mini-city traffic simulator with a controllable car
//!   population (the Visual Road substitute used by Figure 8);
//! * [`dashcam`] — the lead-vehicle distance process behind the
//!   depth-estimation / tailgating UDF of Figure 9;
//! * [`store`] — the [`store::VideoStore`] abstraction plus a GOP-aware
//!   decode-cost model (sequential vs random access);
//! * [`diff`] — the clip-parallel MSE difference detector of §3.5.
//!
//! Everything is deterministic given a seed: `frame(i)` is a pure function
//! of `(video_seed, i)`, so no frames ever need to be stored.

#![deny(unsafe_code)]

pub mod arrival;
pub mod dashcam;
pub mod datasets;
pub mod diff;
pub mod frame;
pub mod scene;
pub mod sentiment;
pub mod store;
pub mod util;
pub mod visualroad;

pub use datasets::{DatasetSpec, SceneStyle};
pub use diff::{DiffConfig, DifferenceDetector, Segments};
pub use frame::Frame;
pub use scene::{GroundTruthObject, ObjectClass, SyntheticVideo};
pub use store::{DecodeCostModel, VideoStore};
