//! Vlog substitute for the thumbnail-generation use case (§1, use case 2):
//! a video whose frames carry a latent **happiness score**, estimated by a
//! simulated "visual sentimentalizer" (Sentribute-style, the paper's \[63\]).
//!
//! The latent mood follows a mean-reverting walk punctuated by *highlight
//! events* (the rare very-happy moments a Top-K thumbnail query must find);
//! the renderer converts mood into visual cues a CMDN can learn —
//! global brightness and the size of a smiling-face blob.

use crate::frame::{BBox, Frame};
use crate::scene::draw_soft_rect;
use crate::store::VideoStore;
use crate::util::{frame_rng, gaussian, splitmix64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the mood process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SentimentConfig {
    pub n_frames: usize,
    pub width: usize,
    pub height: usize,
    pub fps: f64,
    /// Baseline mood the walk reverts to (score units, 0–10 scale).
    pub baseline: f64,
    /// Mean-reversion rate per frame.
    pub reversion: f64,
    /// Per-frame mood diffusion.
    pub diffusion: f64,
    /// Expected highlight events per 10 000 frames.
    pub event_rate_per_10k: f64,
    /// Mood targeted during a highlight.
    pub event_mood: (f64, f64),
    /// Mean highlight duration, frames.
    pub event_mean_len: f64,
    /// Per-pixel sensor noise.
    pub noise_std: f32,
}

impl Default for SentimentConfig {
    fn default() -> Self {
        SentimentConfig {
            n_frames: 9_000,
            width: 32,
            height: 32,
            fps: 30.0,
            baseline: 3.0,
            reversion: 0.04,
            diffusion: 0.15,
            event_rate_per_10k: 20.0,
            event_mood: (7.0, 9.5),
            event_mean_len: 75.0,
            noise_std: 0.01,
        }
    }
}

/// A synthetic vlog with a known happiness score per frame.
#[derive(Debug, Clone)]
pub struct SentimentVideo {
    cfg: SentimentConfig,
    seed: u64,
    mood: Vec<f64>,
}

impl SentimentVideo {
    pub fn new(cfg: SentimentConfig, seed: u64) -> Self {
        assert!(cfg.n_frames > 0);
        let mood = simulate_mood(&cfg, seed);
        SentimentVideo { cfg, seed, mood }
    }

    pub fn config(&self) -> &SentimentConfig {
        &self.cfg
    }

    /// Ground-truth happiness score of frame `t` (0–10 scale) — what the
    /// simulated sentimentalizer oracle reads.
    pub fn happiness(&self, t: usize) -> f64 {
        self.mood[t]
    }
}

fn simulate_mood(cfg: &SentimentConfig, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0x5e47_1e57));
    let mut mood = cfg.baseline;
    let mut target = cfg.baseline;
    let mut event_left = 0usize;
    let event_prob = cfg.event_rate_per_10k / 10_000.0;
    let mut out = Vec::with_capacity(cfg.n_frames);
    for _ in 0..cfg.n_frames {
        if event_left > 0 {
            event_left -= 1;
            if event_left == 0 {
                target = cfg.baseline;
            }
        } else if rng.gen::<f64>() < event_prob {
            target = rng.gen_range(cfg.event_mood.0..cfg.event_mood.1);
            event_left =
                (crate::arrival::exponential(&mut rng, cfg.event_mean_len) as usize).max(15);
        }
        mood += cfg.reversion * (target - mood) + cfg.diffusion * gaussian(&mut rng);
        mood = mood.clamp(0.0, 10.0);
        out.push(mood);
    }
    out
}

impl VideoStore for SentimentVideo {
    fn num_frames(&self) -> usize {
        self.cfg.n_frames
    }

    fn width(&self) -> usize {
        self.cfg.width
    }

    fn height(&self) -> usize {
        self.cfg.height
    }

    fn fps(&self) -> f64 {
        self.cfg.fps
    }

    fn frame(&self, t: usize) -> Frame {
        assert!(t < self.cfg.n_frames);
        let (w, h) = (self.cfg.width, self.cfg.height);
        let mood = (self.mood[t] / 10.0) as f32; // 0..1
                                                 // Happy scenes are brighter overall…
        let mut frame = Frame::filled(w, h, 0.2 + 0.25 * mood);
        // …and feature a larger centred "face" blob.
        let size = (0.2 + 0.5 * mood) * w.min(h) as f32;
        let bbox = BBox::new(
            w as f32 / 2.0 - size / 2.0,
            h as f32 / 2.0 - size / 2.0,
            size,
            size,
        );
        draw_soft_rect(&mut frame, &bbox, 0.25 + 0.3 * mood);
        if self.cfg.noise_std > 0.0 {
            let mut rng = frame_rng(self.seed, t);
            for p in frame.pixels_mut() {
                *p = (*p + self.cfg.noise_std * gaussian(&mut rng) as f32).clamp(0.0, 1.0);
            }
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SentimentVideo {
        SentimentVideo::new(
            SentimentConfig {
                n_frames: 4_000,
                ..Default::default()
            },
            8,
        )
    }

    #[test]
    fn mood_stays_in_range() {
        let v = tiny();
        for t in 0..v.num_frames() {
            assert!((0.0..=10.0).contains(&v.happiness(t)));
        }
    }

    #[test]
    fn highlight_events_occur() {
        let v = tiny();
        let max = (0..v.num_frames())
            .map(|t| v.happiness(t))
            .fold(0.0, f64::max);
        assert!(max > 6.0, "no highlight generated (max mood {max})");
    }

    #[test]
    fn happier_frames_are_brighter() {
        let v = tiny();
        let happiest = (0..v.num_frames())
            .max_by(|&a, &b| v.happiness(a).partial_cmp(&v.happiness(b)).unwrap())
            .unwrap();
        let saddest = (0..v.num_frames())
            .min_by(|&a, &b| v.happiness(a).partial_cmp(&v.happiness(b)).unwrap())
            .unwrap();
        assert!(
            v.frame(happiest).mean() > v.frame(saddest).mean() + 0.05,
            "mood must be visible to the CMDN"
        );
    }

    #[test]
    fn frames_are_deterministic() {
        let v = tiny();
        assert_eq!(v.frame(123), v.frame(123));
    }
}
