//! The procedural scene renderer behind the fixed- and moving-camera
//! datasets of Table 7.
//!
//! Frames are a pure function of `(video seed, frame index)`: a textured
//! background (optionally panned/shaken for moving-camera footage), soft
//! object blobs positioned by the [`crate::arrival::Timeline`],
//! and per-frame sensor noise. Pixels therefore have exactly the properties
//! the pipeline depends on: temporal correlation for the difference
//! detector, and a learnable pixels→count relationship for the CMDN.

use crate::arrival::{ScriptedObject, Timeline};
use crate::frame::{BBox, Frame};
use crate::store::VideoStore;
use crate::util::{frame_rng, gaussian};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Object classes used across the datasets, mirroring Table 7's
/// object-of-interest column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    Car,
    Person,
    Boat,
    Bus,
    Truck,
}

impl ObjectClass {
    /// Aspect-ratio multiplier (width, height) applied to scripted sizes so
    /// classes render with distinct silhouettes.
    fn aspect(self) -> (f32, f32) {
        match self {
            ObjectClass::Car => (1.4, 0.8),
            ObjectClass::Person => (0.5, 1.5),
            ObjectClass::Boat => (1.8, 0.6),
            ObjectClass::Bus => (2.2, 1.0),
            ObjectClass::Truck => (1.9, 1.1),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ObjectClass::Car => "car",
            ObjectClass::Person => "person",
            ObjectClass::Boat => "boat",
            ObjectClass::Bus => "bus",
            ObjectClass::Truck => "truck",
        }
    }
}

/// A ground-truth annotation: what the "accurate oracle detector" sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthObject {
    /// Stable object identity across frames (tracker ground truth).
    pub id: u64,
    pub class: ObjectClass,
    /// Bounding box in pixel coordinates (may extend beyond frame borders
    /// while an object enters/exits).
    pub bbox: BBox,
}

/// Camera motion parameters. Zero amplitude = fixed camera.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CameraMotion {
    /// Pan amplitude as a fraction of frame width.
    pub pan_amplitude: f32,
    /// Pan period in frames.
    pub pan_period: f32,
    /// Per-frame jitter (fraction of width).
    pub shake_std: f32,
}

impl CameraMotion {
    pub const STATIC: CameraMotion = CameraMotion {
        pan_amplitude: 0.0,
        pan_period: 1.0,
        shake_std: 0.0,
    };

    pub fn moving(pan_amplitude: f32, pan_period: f32, shake_std: f32) -> Self {
        CameraMotion {
            pan_amplitude,
            pan_period,
            shake_std,
        }
    }

    fn offset_px(&self, t: usize, width: usize, rng: &mut StdRng) -> f32 {
        if self.pan_amplitude == 0.0 && self.shake_std == 0.0 {
            return 0.0;
        }
        let pan = self.pan_amplitude * (std::f32::consts::TAU * t as f32 / self.pan_period).sin();
        let shake = self.shake_std * gaussian(rng) as f32;
        (pan + shake) * width as f32
    }
}

/// Rendering configuration for one synthetic video.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneConfig {
    pub width: usize,
    pub height: usize,
    pub object_class: ObjectClass,
    /// Standard deviation of the per-pixel sensor noise.
    pub noise_std: f32,
    /// Contrast of the background texture in `[0, 1]`.
    pub background_contrast: f32,
    pub camera: CameraMotion,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            width: 32,
            height: 32,
            object_class: ObjectClass::Car,
            noise_std: 0.02,
            background_contrast: 0.15,
            camera: CameraMotion::STATIC,
        }
    }
}

/// A deterministic synthetic video: timeline + renderer.
#[derive(Debug, Clone)]
pub struct SyntheticVideo {
    cfg: SceneConfig,
    seed: u64,
    fps: f64,
    timeline: Timeline,
    /// Background texture, twice the frame width so panning can sample a
    /// window at any offset (wrapping).
    texture: Frame,
}

impl SyntheticVideo {
    pub fn new(cfg: SceneConfig, timeline: Timeline, seed: u64, fps: f64) -> Self {
        let texture = render_texture(&cfg, seed);
        SyntheticVideo {
            cfg,
            seed,
            fps,
            timeline,
            texture,
        }
    }

    pub fn config(&self) -> &SceneConfig {
        &self.cfg
    }

    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Ground-truth object count in frame `t` — what the oracle detector
    /// will report.
    pub fn count_at(&self, t: usize) -> u32 {
        self.timeline.count(t)
    }

    /// Ground-truth annotated objects visible in frame `t`.
    pub fn objects_at(&self, t: usize) -> Vec<GroundTruthObject> {
        self.timeline
            .active_at(t)
            .into_iter()
            .map(|o| GroundTruthObject {
                id: o.id,
                class: self.cfg.object_class,
                bbox: self.bbox_of(o, t),
            })
            .collect()
    }

    /// Pixel-space bounding box of a scripted object at frame `t`.
    fn bbox_of(&self, o: &ScriptedObject, t: usize) -> BBox {
        let (aw, ah) = self.cfg.object_class.aspect();
        let w = o.size.0 * aw * self.cfg.width as f32;
        let h = o.size.1 * ah * self.cfg.height as f32;
        let cx = o.x_at(t) * self.cfg.width as f32;
        let cy = o.lane * self.cfg.height as f32;
        BBox::new(cx - w / 2.0, cy - h / 2.0, w, h)
    }
}

impl VideoStore for SyntheticVideo {
    fn num_frames(&self) -> usize {
        self.timeline.n_frames()
    }

    fn width(&self) -> usize {
        self.cfg.width
    }

    fn height(&self) -> usize {
        self.cfg.height
    }

    fn fps(&self) -> f64 {
        self.fps
    }

    fn frame(&self, t: usize) -> Frame {
        assert!(t < self.num_frames(), "frame index {t} out of range");
        let w = self.cfg.width;
        let h = self.cfg.height;
        let mut rng = frame_rng(self.seed, t);
        let offset = self.cfg.camera.offset_px(t, w, &mut rng);

        // 1. Background window from the wide texture, wrapping on x.
        let tex_w = self.texture.width();
        let mut frame = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let sx = (x as f32 + offset).rem_euclid(tex_w as f32).floor() as usize % tex_w;
                frame.set(x, y, self.texture.get(sx, y));
            }
        }

        // 2. Objects as soft-edged rectangles.
        for o in self.timeline.active_at(t) {
            let bbox = self.bbox_of(o, t);
            draw_soft_rect(&mut frame, &bbox, o.intensity);
        }

        // 3. Per-frame sensor noise.
        if self.cfg.noise_std > 0.0 {
            for p in frame.pixels_mut() {
                *p = (*p + self.cfg.noise_std * gaussian(&mut rng) as f32).clamp(0.0, 1.0);
            }
        }
        frame
    }
}

/// Smooth value-noise texture: a coarse random grid bilinearly interpolated,
/// plus a horizontal luminance gradient (sky→road look).
fn render_texture(cfg: &SceneConfig, seed: u64) -> Frame {
    let tex_w = cfg.width * 2;
    let tex_h = cfg.height;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef_cafe_f00d);
    let cells_x = 8.max(tex_w / 8);
    let cells_y = 8.max(tex_h / 8);
    let grid: Vec<f32> = (0..(cells_x + 1) * (cells_y + 1))
        .map(|_| rng.gen::<f32>())
        .collect();
    let mut tex = Frame::new(tex_w, tex_h);
    for y in 0..tex_h {
        let gy = y as f32 / tex_h as f32 * cells_y as f32;
        let cy = (gy.floor() as usize).min(cells_y - 1);
        let fy = gy - cy as f32;
        for x in 0..tex_w {
            let gx = x as f32 / tex_w as f32 * cells_x as f32;
            let cx = (gx.floor() as usize).min(cells_x - 1);
            let fx = gx - cx as f32;
            let i = |a: usize, b: usize| grid[b * (cells_x + 1) + a];
            let v = i(cx, cy) * (1.0 - fx) * (1.0 - fy)
                + i(cx + 1, cy) * fx * (1.0 - fy)
                + i(cx, cy + 1) * (1.0 - fx) * fy
                + i(cx + 1, cy + 1) * fx * fy;
            let gradient = 0.35 - 0.15 * (y as f32 / tex_h as f32);
            tex.set(
                x,
                y,
                (gradient + cfg.background_contrast * (v - 0.5)).clamp(0.0, 1.0),
            );
        }
    }
    tex
}

/// Draws a rectangle with a feathered edge, adding `intensity` at the core
/// and fading linearly over ~1.5 px at the border.
pub(crate) fn draw_soft_rect(frame: &mut Frame, bbox: &BBox, intensity: f32) {
    let feather = 1.5f32;
    let x0 = bbox.x.floor().max(0.0) as usize;
    let y0 = bbox.y.floor().max(0.0) as usize;
    let x1 = ((bbox.x + bbox.w).ceil() as isize).clamp(0, frame.width() as isize) as usize;
    let y1 = ((bbox.y + bbox.h).ceil() as isize).clamp(0, frame.height() as isize) as usize;
    for y in y0..y1 {
        let dy = ((y as f32 + 0.5) - bbox.y).min(bbox.y + bbox.h - (y as f32 + 0.5));
        for x in x0..x1 {
            let dx = ((x as f32 + 0.5) - bbox.x).min(bbox.x + bbox.w - (x as f32 + 0.5));
            let edge = dx.min(dy);
            if edge <= 0.0 {
                continue;
            }
            let weight = (edge / feather).min(1.0);
            frame.add_clamped(x, y, intensity * weight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalConfig;

    fn tiny_video(seed: u64) -> SyntheticVideo {
        let cfg = SceneConfig::default();
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 600,
                ..ArrivalConfig::default()
            },
            seed,
        );
        SyntheticVideo::new(cfg, tl, seed, 30.0)
    }

    #[test]
    fn frames_are_deterministic() {
        let v = tiny_video(17);
        let a = v.frame(123);
        let b = v.frame(123);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_frames_differ() {
        let v = tiny_video(17);
        assert!(v.frame(0).mse(&v.frame(300)) > 0.0);
    }

    #[test]
    fn pixels_stay_in_unit_range() {
        let v = tiny_video(3);
        for t in [0, 100, 599] {
            let f = v.frame(t);
            assert!(f.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn objects_brighten_the_frame() {
        // A frame with many objects should be brighter than an empty one.
        let v = tiny_video(23);
        let counts = v.timeline().counts();
        let empty = (0..counts.len()).find(|&t| counts[t] == 0);
        let busy = (0..counts.len()).max_by_key(|&t| counts[t]).unwrap();
        if let Some(empty) = empty {
            assert!(
                v.frame(busy).mean() > v.frame(empty).mean(),
                "busy frame should be brighter"
            );
        }
        assert!(v.count_at(busy) > 0);
    }

    #[test]
    fn ground_truth_objects_match_counts() {
        let v = tiny_video(5);
        for t in (0..v.num_frames()).step_by(53) {
            assert_eq!(v.objects_at(t).len() as u32, v.count_at(t));
        }
    }

    #[test]
    fn ground_truth_bbox_tracks_motion() {
        let v = tiny_video(5);
        // Find an object alive for a while and confirm its bbox moves.
        'outer: for t in 0..v.num_frames() - 10 {
            for a in v.objects_at(t) {
                if let Some(b) = v.objects_at(t + 5).into_iter().find(|o| o.id == a.id) {
                    assert_ne!(a.bbox.center().0, b.bbox.center().0, "object should move");
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn consecutive_frames_are_similar_distant_frames_less_so() {
        let v = tiny_video(29);
        let near = v.frame(200).mse(&v.frame(201));
        let far = v.frame(200).mse(&v.frame(500));
        assert!(
            near < far,
            "temporal locality violated: near={near} far={far}"
        );
    }

    #[test]
    fn moving_camera_increases_frame_difference() {
        let tl = Timeline::generate(
            &ArrivalConfig {
                n_frames: 300,
                ..ArrivalConfig::default()
            },
            77,
        );
        let fixed = SyntheticVideo::new(SceneConfig::default(), tl.clone(), 77, 30.0);
        let moving = SyntheticVideo::new(
            SceneConfig {
                camera: CameraMotion::moving(0.2, 40.0, 0.01),
                ..SceneConfig::default()
            },
            tl,
            77,
            30.0,
        );
        let mse_fixed: f32 = (0..20)
            .map(|t| fixed.frame(t).mse(&fixed.frame(t + 1)))
            .sum();
        let mse_moving: f32 = (0..20)
            .map(|t| moving.frame(t).mse(&moving.frame(t + 1)))
            .sum();
        assert!(
            mse_moving > mse_fixed,
            "camera motion should raise inter-frame MSE ({mse_moving} vs {mse_fixed})"
        );
    }

    #[test]
    fn draw_soft_rect_clips_at_borders() {
        let mut f = Frame::new(8, 8);
        // Mostly off-screen box must not panic and must brighten edge pixels.
        draw_soft_rect(&mut f, &BBox::new(-3.0, -3.0, 6.0, 6.0), 0.8);
        assert!(f.get(0, 0) > 0.0);
        assert_eq!(f.get(7, 7), 0.0);
    }
}
