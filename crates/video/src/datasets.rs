//! The dataset catalog of the paper's Table 7, reproduced as synthetic
//! videos.
//!
//! Each entry mirrors a row of Table 7: the object-of-interest, nominal
//! resolution/fps/length of the real footage, and a **scaled** frame count
//! (documented per dataset) so the full evaluation runs on a laptop CPU.
//! Scene style and arrival-process parameters are chosen per dataset to
//! echo the qualitative character of the original videos (busy junction,
//! pedestrian street, slow canal traffic, moving cameras, …) — the property
//! the paper attributes speedup variation to ("video quality as well as the
//! distributions of the object-of-interests", §4.1).

use crate::arrival::{ArrivalConfig, Timeline};
use crate::scene::{CameraMotion, ObjectClass, SceneConfig, SyntheticVideo};
use serde::{Deserialize, Serialize};

/// Whether a dataset's camera is fixed or moving (Table 7's two YouTube
/// additions are moving-camera footage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SceneStyle {
    FixedCamera,
    MovingCamera,
}

/// One row of the (scaled) Table 7 catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name as in the paper.
    pub name: &'static str,
    pub object_class: ObjectClass,
    /// Resolution of the *original* footage (for the printed table).
    pub paper_resolution: (u32, u32),
    pub fps: f64,
    /// Frame count of the original footage, in thousands.
    pub paper_frames_k: u32,
    /// Original length in hours.
    pub paper_hours: f64,
    /// Scale divisor applied to the paper's frame count.
    pub scale: u32,
    /// Rendered frame count (= paper_frames_k * 1000 / scale).
    pub n_frames: usize,
    pub style: SceneStyle,
    /// Arrival process parameters for the object timeline.
    pub arrival: ArrivalConfig,
    /// Rendered (internal) resolution — also the CMDN input size.
    pub render_size: (usize, usize),
}

impl DatasetSpec {
    /// Builds the deterministic synthetic video for this dataset.
    pub fn build(&self, seed: u64) -> SyntheticVideo {
        let timeline = Timeline::generate(&self.arrival, seed);
        // Moving-camera motion is kept gentle: at 32×32 a large pan swamps
        // the pixels→count signal entirely, whereas the paper's 128×128
        // CMDN (trained on 30 k samples) still learns through it. The
        // qualitative property — higher inter-frame MSE, less dedup — is
        // preserved.
        let camera = match self.style {
            SceneStyle::FixedCamera => CameraMotion::STATIC,
            SceneStyle::MovingCamera => CameraMotion::moving(0.05, 240.0, 0.0015),
        };
        let cfg = SceneConfig {
            width: self.render_size.0,
            height: self.render_size.1,
            object_class: self.object_class,
            noise_std: 0.01,
            background_contrast: 0.15,
            camera,
        };
        SyntheticVideo::new(cfg, timeline, seed, self.fps)
    }

    /// Dataset length implied by the scaled frame count, in hours.
    pub fn scaled_hours(&self) -> f64 {
        self.n_frames as f64 / self.fps / 3600.0
    }
}

fn arrival(n_frames: usize, base: f64, amp: f64, lifetime: f64, bursts: f64) -> ArrivalConfig {
    ArrivalConfig {
        n_frames,
        base_intensity: base,
        diurnal_amplitude: amp,
        diurnal_periods: 2.0,
        burst_rate_per_10k: bursts,
        burst_boost: 2.5,
        burst_len: (60, 240),
        mean_lifetime: lifetime,
        min_lifetime: 12,
    }
}

/// The five object-counting datasets (first block of Table 7), scaled 1/400.
pub fn counting_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "Archie",
            object_class: ObjectClass::Car,
            paper_resolution: (1920, 1080),
            fps: 30.0,
            paper_frames_k: 2_130,
            paper_hours: 19.7,
            scale: 400,
            n_frames: 5_325,
            style: SceneStyle::FixedCamera,
            arrival: arrival(5_325, 3.0, 0.5, 80.0, 5.0),
            render_size: (32, 32),
        },
        DatasetSpec {
            name: "Daxi-old-street",
            object_class: ObjectClass::Person,
            paper_resolution: (1920, 1080),
            fps: 30.0,
            paper_frames_k: 8_640,
            paper_hours: 80.0,
            scale: 400,
            n_frames: 21_600,
            style: SceneStyle::MovingCamera,
            arrival: arrival(21_600, 4.0, 0.6, 130.0, 4.0),
            render_size: (32, 32),
        },
        DatasetSpec {
            name: "Grand-Canal",
            object_class: ObjectClass::Boat,
            paper_resolution: (1920, 1080),
            fps: 60.0,
            paper_frames_k: 25_100,
            paper_hours: 116.2,
            scale: 400,
            n_frames: 62_750,
            style: SceneStyle::FixedCamera,
            arrival: arrival(62_750, 1.5, 0.5, 220.0, 3.0),
            render_size: (32, 32),
        },
        DatasetSpec {
            name: "Irish-Center",
            object_class: ObjectClass::Car,
            paper_resolution: (1920, 1080),
            fps: 30.0,
            paper_frames_k: 32_401,
            paper_hours: 300.0,
            scale: 400,
            n_frames: 81_002,
            style: SceneStyle::MovingCamera,
            arrival: arrival(81_002, 2.5, 0.6, 90.0, 4.0),
            render_size: (32, 32),
        },
        DatasetSpec {
            name: "Taipei-bus",
            object_class: ObjectClass::Car,
            paper_resolution: (1920, 1080),
            fps: 30.0,
            paper_frames_k: 32_488,
            paper_hours: 300.8,
            scale: 400,
            n_frames: 81_220,
            style: SceneStyle::FixedCamera,
            arrival: arrival(81_220, 4.5, 0.6, 70.0, 6.0),
            render_size: (32, 32),
        },
    ]
}

/// A reduced catalog (smaller frame counts) for fast experiment smoke runs.
pub fn counting_datasets_small() -> Vec<DatasetSpec> {
    counting_datasets()
        .into_iter()
        .map(|mut d| {
            let shrink = 8;
            d.scale *= shrink;
            d.n_frames /= shrink as usize;
            d.arrival.n_frames = d.n_frames;
            d
        })
        .collect()
}

/// Looks a dataset up by (case-insensitive) name.
pub fn dataset_by_name(name: &str) -> Option<DatasetSpec> {
    counting_datasets()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VideoStore;

    #[test]
    fn catalog_matches_table7_shape() {
        let cat = counting_datasets();
        assert_eq!(cat.len(), 5);
        let names: Vec<_> = cat.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            [
                "Archie",
                "Daxi-old-street",
                "Grand-Canal",
                "Irish-Center",
                "Taipei-bus"
            ]
        );
        // Scaled counts = paper counts / scale.
        for d in &cat {
            assert_eq!(
                d.n_frames,
                (d.paper_frames_k as usize * 1000) / d.scale as usize
            );
            assert_eq!(d.arrival.n_frames, d.n_frames);
        }
    }

    #[test]
    fn moving_camera_datasets_are_the_youtube_ones() {
        for d in counting_datasets() {
            let expect_moving = d.name == "Daxi-old-street" || d.name == "Irish-Center";
            assert_eq!(
                d.style == SceneStyle::MovingCamera,
                expect_moving,
                "{}",
                d.name
            );
        }
    }

    #[test]
    fn build_produces_consistent_video() {
        let spec = dataset_by_name("archie").expect("archie exists");
        let v = spec.build(1);
        assert_eq!(v.num_frames(), spec.n_frames);
        assert_eq!(v.width(), spec.render_size.0);
        assert!(v.timeline().max_count() > 0);
    }

    #[test]
    fn small_catalog_shrinks() {
        let full = counting_datasets();
        let small = counting_datasets_small();
        for (f, s) in full.iter().zip(&small) {
            assert_eq!(f.name, s.name);
            assert!(s.n_frames < f.n_frames);
            assert_eq!(s.arrival.n_frames, s.n_frames);
        }
    }

    #[test]
    fn unknown_dataset_is_none() {
        assert!(dataset_by_name("no-such-video").is_none());
    }

    #[test]
    fn scaled_hours_are_positive() {
        for d in counting_datasets() {
            assert!(d.scaled_hours() > 0.0);
            assert!(d.scaled_hours() < d.paper_hours);
        }
    }
}
