//! Object arrival processes: the hidden ground truth behind every synthetic
//! video.
//!
//! Top-K queries are only interesting when the per-frame score (object
//! count) has structure: quiet stretches, rush-hour plateaus and rare bursts
//! that produce a meaningful "Top-K of the day". Real traffic footage gets
//! this from human activity; we reproduce it with a non-homogeneous arrival
//! process:
//!
//! * a **diurnal intensity** `λ(t)` (sinusoid over the video length),
//! * **bursts** (short intervals where `λ` is multiplied up, modelling a
//!   parade / convoy / regatta),
//! * per-object **lifetimes** (objects cross the scene and leave), which give
//!   counts their short-range temporal correlation — the property the
//!   difference detector (§3.5) exploits.
//!
//! The timeline is generated once per video from a seed and is exact: the
//! simulated "oracle detector" reads it back, which is how the paper treats
//! YOLOv3 output as ground truth (§2, Table 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scripted object instance: born at `birth`, alive for `lifetime`
/// frames, crossing the scene along a lane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScriptedObject {
    /// Stable identity (also used as ground truth for the tracker).
    pub id: u64,
    /// First frame in which the object is visible.
    pub birth: usize,
    /// Number of frames the object stays visible.
    pub lifetime: usize,
    /// Vertical lane position as a fraction of frame height (0..1).
    pub lane: f32,
    /// Moving left→right (`true`) or right→left.
    pub rightward: bool,
    /// Object width/height as fractions of frame width/height.
    pub size: (f32, f32),
    /// Rendered brightness delta.
    pub intensity: f32,
}

impl ScriptedObject {
    /// Frame after the last frame in which this object is visible.
    pub fn death(&self) -> usize {
        self.birth + self.lifetime
    }

    /// Whether the object is visible in frame `t`.
    pub fn alive_at(&self, t: usize) -> bool {
        t >= self.birth && t < self.death()
    }

    /// Horizontal center position (fraction of width) at frame `t`.
    ///
    /// Objects enter just outside one edge and exit just outside the other
    /// over exactly `lifetime` frames, so "alive" coincides with "on screen".
    pub fn x_at(&self, t: usize) -> f32 {
        debug_assert!(self.alive_at(t));
        let progress = if self.lifetime <= 1 {
            0.5
        } else {
            (t - self.birth) as f32 / (self.lifetime - 1) as f32
        };
        // travel from -size/2 to 1 + size/2 so entry/exit are off-screen
        let half = self.size.0 / 2.0;
        if self.rightward {
            -half + progress * (1.0 + 2.0 * half)
        } else {
            1.0 + half - progress * (1.0 + 2.0 * half)
        }
    }
}

/// Configuration of the arrival process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Total frames in the video.
    pub n_frames: usize,
    /// Mean number of concurrently visible objects at baseline.
    pub base_intensity: f64,
    /// Relative swing of the diurnal sinusoid in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Number of full diurnal periods across the video.
    pub diurnal_periods: f64,
    /// Expected number of bursts per 10 000 frames.
    pub burst_rate_per_10k: f64,
    /// Intensity multiplier during a burst.
    pub burst_boost: f64,
    /// Burst length range in frames (inclusive).
    pub burst_len: (usize, usize),
    /// Mean object lifetime in frames.
    pub mean_lifetime: f64,
    /// Minimum lifetime in frames (avoids 1-frame flickers).
    pub min_lifetime: usize,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            n_frames: 10_000,
            base_intensity: 2.0,
            diurnal_amplitude: 0.6,
            diurnal_periods: 2.0,
            burst_rate_per_10k: 4.0,
            burst_boost: 3.0,
            burst_len: (60, 240),
            mean_lifetime: 90.0,
            min_lifetime: 12,
        }
    }
}

/// The fully materialised object timeline for one video.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    objects: Vec<ScriptedObject>,
    /// Number of visible objects per frame (prefix-summed birth/death events).
    counts: Vec<u32>,
    /// Upper bound on any object's lifetime, for windowed active-object scans.
    max_lifetime: usize,
    /// `objects` indices sorted by `birth` (objects is already birth-sorted,
    /// kept explicit for clarity).
    n_frames: usize,
}

impl Timeline {
    /// Generates a timeline from the arrival process.
    pub fn generate(cfg: &ArrivalConfig, seed: u64) -> Timeline {
        assert!(cfg.n_frames > 0, "timeline needs at least one frame");
        assert!(cfg.mean_lifetime >= 1.0, "mean lifetime must be >= 1 frame");
        assert!(
            cfg.diurnal_amplitude >= 0.0 && cfg.diurnal_amplitude < 1.0,
            "diurnal amplitude must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);

        // Script burst windows first.
        let expected_bursts = cfg.burst_rate_per_10k * cfg.n_frames as f64 / 10_000.0;
        let n_bursts = poisson(&mut rng, expected_bursts);
        let mut bursts: Vec<(usize, usize)> = (0..n_bursts)
            .map(|_| {
                let start = rng.gen_range(0..cfg.n_frames);
                let len = rng.gen_range(cfg.burst_len.0..=cfg.burst_len.1.max(cfg.burst_len.0));
                (start, (start + len).min(cfg.n_frames))
            })
            .collect();
        bursts.sort_unstable();

        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let in_burst = |t: usize| bursts.iter().any(|&(s, e)| t >= s && t < e);

        // Birth rate per frame so that the *expected concurrent count* tracks
        // λ(t): concurrency ≈ birth_rate × mean_lifetime (Little's law).
        let mut objects = Vec::new();
        let mut next_id = 0u64;
        let mut max_lifetime = cfg.min_lifetime;
        for t in 0..cfg.n_frames {
            let diurnal = 1.0
                + cfg.diurnal_amplitude
                    * (std::f64::consts::TAU * cfg.diurnal_periods * t as f64
                        / cfg.n_frames as f64
                        + phase)
                        .sin();
            let boost = if in_burst(t) { cfg.burst_boost } else { 1.0 };
            let lambda = cfg.base_intensity * diurnal * boost;
            let birth_rate = lambda / cfg.mean_lifetime;
            let births = poisson(&mut rng, birth_rate);
            for _ in 0..births {
                let lifetime = (exponential(&mut rng, cfg.mean_lifetime).round() as usize)
                    .max(cfg.min_lifetime);
                max_lifetime = max_lifetime.max(lifetime);
                objects.push(ScriptedObject {
                    id: next_id,
                    birth: t,
                    lifetime,
                    lane: rng.gen_range(0.15..0.85),
                    rightward: rng.gen_bool(0.5),
                    size: (rng.gen_range(0.08..0.16), rng.gen_range(0.08..0.16)),
                    intensity: rng.gen_range(0.35..0.75),
                });
                next_id += 1;
            }
        }

        // Counts via +1/-1 events and a prefix sum.
        let mut delta = vec![0i64; cfg.n_frames + 1];
        for o in &objects {
            delta[o.birth] += 1;
            delta[o.death().min(cfg.n_frames)] -= 1;
        }
        let mut counts = Vec::with_capacity(cfg.n_frames);
        let mut acc = 0i64;
        for d in delta.iter().take(cfg.n_frames) {
            acc += d;
            debug_assert!(acc >= 0);
            counts.push(acc as u32);
        }

        Timeline {
            objects,
            counts,
            max_lifetime,
            n_frames: cfg.n_frames,
        }
    }

    /// Builds a timeline directly from a per-frame count sequence, placing
    /// synthetic objects to match. Used by tests that need exact counts.
    pub fn from_counts(counts: &[u32], seed: u64) -> Timeline {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);
        let n = counts.len();
        let mut objects: Vec<ScriptedObject> = Vec::new();
        let mut active: Vec<usize> = Vec::new(); // indices into `objects`
        let mut next_id = 0u64;
        for (t, &c) in counts.iter().enumerate() {
            // Retire objects whose scripted death has arrived.
            active.retain(|&i| objects[i].death() > t);
            while active.len() > c as usize {
                // Force-retire the oldest object by shortening its lifetime.
                let i = active.remove(0);
                objects[i].lifetime = t - objects[i].birth;
            }
            while active.len() < c as usize {
                let lifetime = rng.gen_range(30usize..120).min(n - t).max(1);
                objects.push(ScriptedObject {
                    id: next_id,
                    birth: t,
                    lifetime,
                    lane: rng.gen_range(0.15..0.85),
                    rightward: rng.gen_bool(0.5),
                    size: (rng.gen_range(0.08..0.16), rng.gen_range(0.08..0.16)),
                    intensity: rng.gen_range(0.35..0.75),
                });
                active.push(objects.len() - 1);
                next_id += 1;
            }
        }
        let max_lifetime = objects.iter().map(|o| o.lifetime).max().unwrap_or(1);
        Timeline {
            objects,
            counts: counts.to_vec(),
            max_lifetime,
            n_frames: n,
        }
    }

    pub fn n_frames(&self) -> usize {
        self.n_frames
    }

    /// Ground-truth object count in frame `t`.
    pub fn count(&self, t: usize) -> u32 {
        self.counts[t]
    }

    /// All per-frame counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Largest count over the whole video (support bound for distributions).
    pub fn max_count(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Total number of scripted objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Objects visible in frame `t`.
    ///
    /// `objects` is sorted by birth, so only the window
    /// `(t - max_lifetime, t]` needs scanning.
    pub fn active_at(&self, t: usize) -> Vec<&ScriptedObject> {
        let lo = t.saturating_sub(self.max_lifetime);
        let start = self.objects.partition_point(|o| o.birth < lo);
        let end = self.objects.partition_point(|o| o.birth <= t);
        self.objects[start..end]
            .iter()
            .filter(|o| o.alive_at(t))
            .collect()
    }
}

/// Knuth's Poisson sampler — fine for the small rates used here (< ~50).
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            // Pathological lambda; avoid an unbounded loop.
            return k;
        }
    }
}

/// Inverse-CDF exponential sampler with the given mean.
pub fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ArrivalConfig {
        ArrivalConfig {
            n_frames: 2_000,
            ..ArrivalConfig::default()
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = Timeline::generate(&small_cfg(), 7);
        let b = Timeline::generate(&small_cfg(), 7);
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.num_objects(), b.num_objects());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Timeline::generate(&small_cfg(), 7);
        let b = Timeline::generate(&small_cfg(), 8);
        assert_ne!(a.counts(), b.counts());
    }

    #[test]
    fn counts_match_active_objects() {
        let tl = Timeline::generate(&small_cfg(), 42);
        for t in (0..tl.n_frames()).step_by(97) {
            assert_eq!(
                tl.count(t) as usize,
                tl.active_at(t).len(),
                "count/active mismatch at frame {t}"
            );
        }
    }

    #[test]
    fn mean_concurrency_tracks_base_intensity() {
        let cfg = ArrivalConfig {
            n_frames: 20_000,
            base_intensity: 3.0,
            diurnal_amplitude: 0.0,
            burst_rate_per_10k: 0.0,
            ..ArrivalConfig::default()
        };
        let tl = Timeline::generate(&cfg, 1);
        let mean: f64 = tl.counts().iter().map(|&c| c as f64).sum::<f64>() / tl.n_frames() as f64;
        // Little's law: expected concurrency == base intensity (edge effects
        // deflate it slightly; allow a generous band).
        assert!(
            (2.0..=4.0).contains(&mean),
            "mean concurrency {mean} out of band"
        );
    }

    #[test]
    fn bursts_raise_peak_counts() {
        let quiet = ArrivalConfig {
            n_frames: 20_000,
            burst_rate_per_10k: 0.0,
            diurnal_amplitude: 0.0,
            ..ArrivalConfig::default()
        };
        let bursty = ArrivalConfig {
            burst_rate_per_10k: 8.0,
            burst_boost: 5.0,
            ..quiet.clone()
        };
        let a = Timeline::generate(&quiet, 3);
        let b = Timeline::generate(&bursty, 3);
        assert!(
            b.max_count() > a.max_count(),
            "bursty max {} should exceed quiet max {}",
            b.max_count(),
            a.max_count()
        );
    }

    #[test]
    fn object_positions_cross_screen() {
        let o = ScriptedObject {
            id: 0,
            birth: 10,
            lifetime: 100,
            lane: 0.5,
            rightward: true,
            size: (0.1, 0.1),
            intensity: 0.5,
        };
        let start = o.x_at(10);
        let end = o.x_at(109);
        assert!(start < 0.0, "object should start off-screen, got {start}");
        assert!(end > 1.0, "object should end off-screen, got {end}");
        let mid = o.x_at(60);
        assert!((0.3..0.7).contains(&mid));
    }

    #[test]
    fn leftward_object_reverses() {
        let o = ScriptedObject {
            id: 0,
            birth: 0,
            lifetime: 50,
            lane: 0.5,
            rightward: false,
            size: (0.1, 0.1),
            intensity: 0.5,
        };
        assert!(o.x_at(0) > 1.0);
        assert!(o.x_at(49) < 0.0);
    }

    #[test]
    fn from_counts_reproduces_counts_exactly() {
        let counts: Vec<u32> = vec![0, 1, 2, 3, 3, 2, 1, 0, 5, 5, 0, 1];
        let tl = Timeline::from_counts(&counts, 9);
        for (t, &c) in counts.iter().enumerate() {
            assert_eq!(tl.count(t), c, "frame {t}");
            assert_eq!(tl.active_at(t).len(), c as usize, "active at {t}");
        }
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut rng, 4.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "poisson mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 50.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 2.5, "exponential mean {mean}");
    }
}
