//! Small deterministic-randomness helpers shared by the synthetic substrates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer — cheap, high-quality mixing of `(seed, index)` pairs
/// so every frame gets an independent, reproducible RNG stream.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A reproducible per-frame RNG derived from a video seed and frame index.
pub fn frame_rng(seed: u64, frame_idx: usize) -> StdRng {
    StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(frame_idx as u64)))
}

/// Standard normal sample via Box–Muller (rand 0.8 without `rand_distr`
/// has no Gaussian sampler).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // consecutive inputs should differ in many bits
        let d = (splitmix64(100) ^ splitmix64(101)).count_ones();
        assert!(d > 10, "poor mixing: only {d} differing bits");
    }

    #[test]
    fn frame_rng_streams_are_independent() {
        let a: u64 = frame_rng(5, 0).gen();
        let b: u64 = frame_rng(5, 1).gen();
        let a2: u64 = frame_rng(5, 0).gen();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "gaussian var {var}");
    }
}
