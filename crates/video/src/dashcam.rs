//! Dashcam substitute for the depth-estimation / tailgating experiment
//! (Figure 9, "Fleet Management" use case).
//!
//! The paper scores dashcam frames by the distance between the recording
//! truck and its front vehicle, estimated by a monocular depth network; the
//! Top-K smallest distances are the "most dangerous tailgating moments".
//!
//! Our substitute simulates the lead-vehicle distance as a mean-reverting
//! random walk punctuated by **close-approach events** (the rare dangerous
//! moments a Top-K query must find), renders the lead vehicle with apparent
//! size ∝ 1/distance (the monocular depth cue a CMDN can learn from
//! pixels), and exposes the exact distance to the simulated depth-estimator
//! oracle. The *tailgating degree* score is continuous, which exercises the
//! user-supplied quantization-step path of §3.2.

use crate::frame::{BBox, Frame};
use crate::scene::{draw_soft_rect, GroundTruthObject, ObjectClass};
use crate::store::VideoStore;
use crate::util::{frame_rng, gaussian, splitmix64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the dashcam distance process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DashcamConfig {
    pub n_frames: usize,
    pub width: usize,
    pub height: usize,
    pub fps: f64,
    /// Cruising distance the process reverts to, in meters.
    pub cruise_distance: f64,
    /// Mean-reversion rate per frame.
    pub reversion: f64,
    /// Per-frame diffusion of the distance walk, meters.
    pub diffusion: f64,
    /// Expected close-approach events per 10 000 frames.
    pub event_rate_per_10k: f64,
    /// Distance range targeted during a close-approach event, meters.
    pub event_distance: (f64, f64),
    /// Mean event duration, frames.
    pub event_mean_len: f64,
    /// Hard clamp on distance, meters.
    pub min_distance: f64,
    pub max_distance: f64,
    /// Per-pixel sensor noise.
    pub noise_std: f32,
}

impl Default for DashcamConfig {
    fn default() -> Self {
        DashcamConfig {
            n_frames: 8_100, // Dashcam-California: 324k frames scaled 1/40
            width: 32,
            height: 32,
            fps: 30.0,
            cruise_distance: 30.0,
            reversion: 0.03,
            diffusion: 0.8,
            event_rate_per_10k: 18.0,
            event_distance: (2.0, 8.0),
            event_mean_len: 90.0,
            min_distance: 1.5,
            max_distance: 60.0,
            noise_std: 0.01,
        }
    }
}

/// The two dashcam rows of Table 7, scaled 1/40.
pub fn dashcam_datasets() -> Vec<(&'static str, DashcamConfig, u64)> {
    vec![
        (
            "Dashcam-California",
            DashcamConfig {
                n_frames: 8_100,
                ..Default::default()
            },
            101,
        ),
        (
            "Dashcam-Greenport",
            DashcamConfig {
                n_frames: 8_750, // 350k / 40
                cruise_distance: 26.0,
                event_rate_per_10k: 14.0,
                ..Default::default()
            },
            202,
        ),
    ]
}

/// A synthetic dashcam video with a known lead-vehicle distance per frame.
#[derive(Debug, Clone)]
pub struct DashcamVideo {
    cfg: DashcamConfig,
    seed: u64,
    /// Ground-truth lead-vehicle distance per frame, meters.
    distance: Vec<f64>,
}

impl DashcamVideo {
    pub fn new(cfg: DashcamConfig, seed: u64) -> Self {
        assert!(cfg.n_frames > 0);
        assert!(cfg.min_distance > 0.0 && cfg.min_distance < cfg.max_distance);
        let distance = simulate_distance(&cfg, seed);
        DashcamVideo {
            cfg,
            seed,
            distance,
        }
    }

    pub fn config(&self) -> &DashcamConfig {
        &self.cfg
    }

    /// Ground-truth lead-vehicle distance in frame `t` (meters) — what the
    /// simulated depth-estimator oracle reads.
    pub fn lead_distance(&self, t: usize) -> f64 {
        self.distance[t]
    }

    /// The tailgating degree used as the ranking score: larger = closer =
    /// more dangerous. Bounded to `[0, 50/min_distance]`.
    pub fn tailgating_score(&self, t: usize) -> f64 {
        tailgating_degree(self.distance[t])
    }

    /// The ground-truth lead vehicle annotation (always exactly one).
    pub fn objects_at(&self, t: usize) -> Vec<GroundTruthObject> {
        vec![GroundTruthObject {
            id: 0,
            class: ObjectClass::Car,
            bbox: self.lead_bbox(t),
        }]
    }

    fn lead_bbox(&self, t: usize) -> BBox {
        let d = self.distance[t];
        let w = self.cfg.width as f32;
        let h = self.cfg.height as f32;
        // Apparent size scales inversely with distance: full-width at the
        // minimum distance, a few pixels when far.
        let apparent = (self.cfg.min_distance / d) as f32;
        let bw = (w * 0.85 * apparent).max(2.0);
        let bh = bw * 0.7;
        let cx = w / 2.0;
        // Farther objects sit higher in the frame (closer to the horizon).
        let horizon = 0.35 * h;
        let cy = horizon + (h * 0.5) * apparent;
        BBox::new(cx - bw / 2.0, cy - bh / 2.0, bw, bh)
    }
}

/// Tailgating degree scoring function: `50 / distance`, clamped below at
/// distance 1 m. Matches the shape of "rank by inverse front-vehicle
/// distance" from the paper's fleet-management use case.
pub fn tailgating_degree(distance_m: f64) -> f64 {
    50.0 / distance_m.max(1.0)
}

fn simulate_distance(cfg: &DashcamConfig, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0xDA5_C0DE));
    let mut d = cfg.cruise_distance;
    let mut target = cfg.cruise_distance;
    let mut event_left = 0usize;
    let event_prob = cfg.event_rate_per_10k / 10_000.0;
    let mut out = Vec::with_capacity(cfg.n_frames);
    for _ in 0..cfg.n_frames {
        if event_left > 0 {
            event_left -= 1;
            if event_left == 0 {
                target = cfg.cruise_distance;
            }
        } else if rng.gen::<f64>() < event_prob {
            target = rng.gen_range(cfg.event_distance.0..cfg.event_distance.1);
            event_left =
                (crate::arrival::exponential(&mut rng, cfg.event_mean_len) as usize).max(20);
        }
        d += cfg.reversion * (target - d) + cfg.diffusion * gaussian(&mut rng);
        d = d.clamp(cfg.min_distance, cfg.max_distance);
        out.push(d);
    }
    out
}

impl VideoStore for DashcamVideo {
    fn num_frames(&self) -> usize {
        self.cfg.n_frames
    }

    fn width(&self) -> usize {
        self.cfg.width
    }

    fn height(&self) -> usize {
        self.cfg.height
    }

    fn fps(&self) -> f64 {
        self.cfg.fps
    }

    fn frame(&self, t: usize) -> Frame {
        assert!(t < self.cfg.n_frames);
        let w = self.cfg.width;
        let h = self.cfg.height;
        let mut frame = Frame::new(w, h);
        // Sky above the horizon, road below, converging shading.
        let horizon = (0.35 * h as f32) as usize;
        for y in 0..h {
            let v = if y < horizon {
                0.45
            } else {
                0.3 - 0.1 * ((y - horizon) as f32 / (h - horizon).max(1) as f32)
            };
            for x in 0..w {
                frame.set(x, y, v);
            }
        }
        draw_soft_rect(&mut frame, &self.lead_bbox(t), 0.45);
        if self.cfg.noise_std > 0.0 {
            let mut rng = frame_rng(self.seed, t);
            for p in frame.pixels_mut() {
                *p = (*p + self.cfg.noise_std * gaussian(&mut rng) as f32).clamp(0.0, 1.0);
            }
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DashcamVideo {
        DashcamVideo::new(
            DashcamConfig {
                n_frames: 3_000,
                ..Default::default()
            },
            5,
        )
    }

    #[test]
    fn distances_stay_in_bounds() {
        let v = tiny();
        for t in 0..v.num_frames() {
            let d = v.lead_distance(t);
            assert!(
                (v.config().min_distance..=v.config().max_distance).contains(&d),
                "distance {d} out of bounds at {t}"
            );
        }
    }

    #[test]
    fn close_approach_events_occur() {
        let v = DashcamVideo::new(
            DashcamConfig {
                n_frames: 8_000,
                ..Default::default()
            },
            5,
        );
        let min = (0..v.num_frames())
            .map(|t| v.lead_distance(t))
            .fold(f64::INFINITY, f64::min);
        assert!(min < 10.0, "no close-approach event generated (min {min})");
    }

    #[test]
    fn tailgating_degree_monotone_decreasing_in_distance() {
        assert!(tailgating_degree(2.0) > tailgating_degree(10.0));
        assert!(tailgating_degree(10.0) > tailgating_degree(40.0));
        // clamped below 1 m
        assert_eq!(tailgating_degree(0.5), tailgating_degree(1.0));
    }

    #[test]
    fn closer_vehicle_is_rendered_larger() {
        let v = tiny();
        let (mut near_t, mut far_t) = (0, 0);
        for t in 0..v.num_frames() {
            if v.lead_distance(t) < v.lead_distance(near_t) {
                near_t = t;
            }
            if v.lead_distance(t) > v.lead_distance(far_t) {
                far_t = t;
            }
        }
        let near_box = v.objects_at(near_t)[0].bbox;
        let far_box = v.objects_at(far_t)[0].bbox;
        assert!(
            near_box.area() > far_box.area() * 1.5,
            "apparent size should grow when close: near {} vs far {}",
            near_box.area(),
            far_box.area()
        );
    }

    #[test]
    fn frames_deterministic() {
        let v = tiny();
        assert_eq!(v.frame(100), v.frame(100));
    }

    #[test]
    fn catalog_has_two_dashcams() {
        let cams = dashcam_datasets();
        assert_eq!(cams.len(), 2);
        assert_eq!(cams[0].0, "Dashcam-California");
        assert_eq!(cams[0].1.n_frames, 8_100);
        assert_eq!(cams[1].1.n_frames, 8_750);
    }
}
