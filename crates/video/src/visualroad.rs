//! Visual Road substitute: a mini-city traffic simulator with a
//! controllable car population (Figure 8's independent variable).
//!
//! The paper generates five 10-hour synthetic videos with the Visual Road
//! benchmark, identical except for the total number of cars in the city
//! (50–250), observed by one fixed camera. We reproduce the setup directly:
//! `total_cars` cars circulate on a ring road of `road_length` "meters"; the
//! camera sees the stretch `[0, view_length)`. The number of visible cars —
//! the per-frame ground-truth count — scales with the population while
//! everything else stays fixed, which is exactly the controlled variable of
//! the experiment.

use crate::frame::{BBox, Frame};
use crate::scene::{draw_soft_rect, GroundTruthObject, ObjectClass};
use crate::store::VideoStore;
use crate::util::{frame_rng, gaussian, splitmix64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the mini-city.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VisualRoadConfig {
    /// Total number of cars in the city (the Fig. 8 sweep variable).
    pub total_cars: usize,
    pub n_frames: usize,
    pub width: usize,
    pub height: usize,
    /// Ring-road length in abstract meters.
    pub road_length: f64,
    /// Length of the camera-visible stretch, in the same units.
    pub view_length: f64,
    /// Per-pixel sensor noise.
    pub noise_std: f32,
    pub fps: f64,
}

impl Default for VisualRoadConfig {
    fn default() -> Self {
        VisualRoadConfig {
            total_cars: 100,
            n_frames: 18_000, // paper: 10 h @ 30 fps = 1.08 M frames, scaled 1/60
            width: 32,
            height: 32,
            road_length: 2_500.0,
            view_length: 100.0,
            noise_std: 0.01,
            fps: 30.0,
        }
    }
}

/// One car in the mini-city: constant speed around the ring.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Car {
    id: u64,
    /// Initial position on the ring, meters.
    pos0: f64,
    /// Speed, meters per frame (may differ per car).
    speed: f64,
    /// Lane as a fraction of frame height.
    lane: f32,
    /// Footprint in meters (projected to pixels via view_length).
    size_m: f64,
    intensity: f32,
}

impl Car {
    fn position(&self, t: usize, road_length: f64) -> f64 {
        (self.pos0 + self.speed * t as f64).rem_euclid(road_length)
    }
}

/// A Visual-Road-style synthetic video.
#[derive(Debug, Clone)]
pub struct VisualRoadVideo {
    cfg: VisualRoadConfig,
    seed: u64,
    cars: Vec<Car>,
    background: Frame,
}

impl VisualRoadVideo {
    pub fn new(cfg: VisualRoadConfig, seed: u64) -> Self {
        assert!(cfg.view_length > 0.0 && cfg.view_length < cfg.road_length);
        assert!(cfg.n_frames > 0);
        let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0x5ee_dcaf));
        let cars = (0..cfg.total_cars)
            .map(|i| Car {
                id: i as u64,
                pos0: rng.gen_range(0.0..cfg.road_length),
                speed: rng.gen_range(0.35..1.1),
                lane: rng.gen_range(0.25..0.8),
                size_m: rng.gen_range(4.0..7.0),
                intensity: rng.gen_range(0.4..0.75),
            })
            .collect();
        let background = road_background(&cfg, seed);
        VisualRoadVideo {
            cfg,
            seed,
            cars,
            background,
        }
    }

    pub fn config(&self) -> &VisualRoadConfig {
        &self.cfg
    }

    /// Cars visible in frame `t` with their pixel bounding boxes.
    pub fn objects_at(&self, t: usize) -> Vec<GroundTruthObject> {
        let w = self.cfg.width as f64;
        let h = self.cfg.height as f32;
        self.cars
            .iter()
            .filter_map(|c| {
                let p = c.position(t, self.cfg.road_length);
                if p >= self.cfg.view_length {
                    return None;
                }
                let px_per_m = w / self.cfg.view_length;
                let bw = (c.size_m * px_per_m) as f32;
                let bh = bw * 0.55;
                let cx = (p * px_per_m) as f32;
                let cy = c.lane * h;
                Some(GroundTruthObject {
                    id: c.id,
                    class: ObjectClass::Car,
                    bbox: BBox::new(cx - bw / 2.0, cy - bh / 2.0, bw, bh),
                })
            })
            .collect()
    }

    /// Ground-truth visible-car count in frame `t`.
    pub fn count_at(&self, t: usize) -> u32 {
        self.cars
            .iter()
            .filter(|c| c.position(t, self.cfg.road_length) < self.cfg.view_length)
            .count() as u32
    }

    /// All per-frame counts (materialised; used to size distributions).
    pub fn counts(&self) -> Vec<u32> {
        (0..self.cfg.n_frames).map(|t| self.count_at(t)).collect()
    }
}

impl VideoStore for VisualRoadVideo {
    fn num_frames(&self) -> usize {
        self.cfg.n_frames
    }

    fn width(&self) -> usize {
        self.cfg.width
    }

    fn height(&self) -> usize {
        self.cfg.height
    }

    fn fps(&self) -> f64 {
        self.cfg.fps
    }

    fn frame(&self, t: usize) -> Frame {
        assert!(t < self.cfg.n_frames, "frame index out of range");
        let mut frame = self.background.clone();
        for o in self.objects_at(t) {
            // intensity derived from car id for determinism
            let intensity = 0.4 + 0.35 * ((o.id as f32 * 0.618).fract());
            draw_soft_rect(&mut frame, &o.bbox, intensity);
        }
        if self.cfg.noise_std > 0.0 {
            let mut rng = frame_rng(self.seed, t);
            for p in frame.pixels_mut() {
                *p = (*p + self.cfg.noise_std * gaussian(&mut rng) as f32).clamp(0.0, 1.0);
            }
        }
        frame
    }
}

/// A simple road background: dark asphalt band with lane markings.
fn road_background(cfg: &VisualRoadConfig, seed: u64) -> Frame {
    const ROAD_SEED: u64 = 0xB0AD_CA5E;
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ ROAD_SEED));
    let mut f = Frame::new(cfg.width, cfg.height);
    for y in 0..cfg.height {
        let fy = y as f32 / cfg.height as f32;
        let base = if (0.2..0.85).contains(&fy) {
            0.22
        } else {
            0.32
        };
        for x in 0..cfg.width {
            let texture: f32 = rng.gen_range(-0.02..0.02);
            f.set(x, y, (base + texture).clamp(0.0, 1.0));
        }
    }
    // center lane dashes
    let mid = cfg.height / 2;
    for x in (0..cfg.width).step_by(4) {
        f.set(x, mid, 0.5);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(total_cars: usize) -> VisualRoadVideo {
        VisualRoadVideo::new(
            VisualRoadConfig {
                total_cars,
                n_frames: 500,
                ..VisualRoadConfig::default()
            },
            9,
        )
    }

    #[test]
    fn population_scales_mean_count() {
        let sparse = tiny(50);
        let dense = tiny(250);
        let mean = |v: &VisualRoadVideo| {
            v.counts().iter().map(|&c| c as f64).sum::<f64>() / v.num_frames() as f64
        };
        let (ms, md) = (mean(&sparse), mean(&dense));
        assert!(
            md > ms * 3.0,
            "density should scale with population: {ms} vs {md}"
        );
    }

    #[test]
    fn expected_visible_fraction() {
        let v = tiny(100);
        let mean = v.counts().iter().map(|&c| c as f64).sum::<f64>() / v.num_frames() as f64;
        // E[visible] = total × view/road = 100 × 100/2500 = 4.
        assert!(
            (2.0..6.0).contains(&mean),
            "mean visible {mean} out of band"
        );
    }

    #[test]
    fn objects_match_counts() {
        let v = tiny(80);
        for t in (0..v.num_frames()).step_by(37) {
            assert_eq!(v.objects_at(t).len() as u32, v.count_at(t));
        }
    }

    #[test]
    fn frames_deterministic_and_in_range() {
        let v = tiny(60);
        assert_eq!(v.frame(42), v.frame(42));
        assert!(v
            .frame(42)
            .pixels()
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn cars_wrap_around_the_ring() {
        let cfg = VisualRoadConfig {
            total_cars: 1,
            n_frames: 100_000,
            ..VisualRoadConfig::default()
        };
        let v = VisualRoadVideo::new(cfg, 3);
        // A single car must be visible at some frames and invisible at others.
        let counts: Vec<u32> = (0..20_000).step_by(50).map(|t| v.count_at(t)).collect();
        assert!(counts.contains(&1));
        assert!(counts.contains(&0));
    }
}
