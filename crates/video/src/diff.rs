//! The clip-parallel difference detector of §3.5.
//!
//! Following NoScope, two frames are "similar" when their pixel MSE falls
//! below a threshold. To parallelise the sequential scan, the video is split
//! into clips of `c` frames; every frame in a clip is compared against the
//! clip's middle frame and discarded when similar (the middle frame is the
//! segment's *retained representative*). Discarding similar frames both
//! removes uninformative work for the CMDN and justifies modelling frames as
//! independent x-tuples (§2, "Uncertain Databases").
//!
//! The retained/representative mapping is exactly what the window machinery
//! (§3.4, Eq. 9) consumes: a window is divided into segments of frames that
//! share a representative.

use crate::store::VideoStore;
use serde::{Deserialize, Serialize};

/// Difference-detector parameters.
///
/// The paper uses MSE threshold `1e-4` and clip size 30 for all (1080p)
/// datasets. Our scaled frames carry relatively more per-pixel sensor noise,
/// so the default threshold sits above the noise floor (`2σ²`) instead; the
/// value is a config knob exactly as in the paper.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiffConfig {
    /// Frames with MSE below this (vs their clip representative) are dropped.
    pub mse_threshold: f32,
    /// Clip length `c` in frames.
    pub clip_size: usize,
    /// Worker threads for the clip-parallel scan.
    pub num_threads: usize,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            mse_threshold: 4e-4,
            clip_size: 30,
            num_threads: default_threads(),
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// Output of the difference detector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segments {
    /// Retained frame indices, strictly ascending.
    retained: Vec<usize>,
    /// For every frame `t`, the index *into `retained`* of its
    /// representative (itself when retained).
    rep_of: Vec<u32>,
}

impl Segments {
    /// Builds the identity segmentation (every frame retained) — the
    /// behaviour with `mse_threshold = 0`.
    pub fn identity(n_frames: usize) -> Segments {
        Segments {
            retained: (0..n_frames).collect(),
            rep_of: (0..n_frames as u32).collect(),
        }
    }

    /// Constructs from raw parts, validating the invariants.
    pub fn from_parts(retained: Vec<usize>, rep_of: Vec<u32>) -> Segments {
        assert!(
            retained.windows(2).all(|w| w[0] < w[1]),
            "retained must be ascending"
        );
        assert!(
            rep_of.iter().all(|&r| (r as usize) < retained.len()),
            "rep_of out of range"
        );
        for (pos, &f) in retained.iter().enumerate() {
            assert_eq!(
                rep_of[f] as usize, pos,
                "retained frame must represent itself"
            );
        }
        Segments { retained, rep_of }
    }

    pub fn n_frames(&self) -> usize {
        self.rep_of.len()
    }

    /// Retained (unique) frame indices.
    pub fn retained(&self) -> &[usize] {
        &self.retained
    }

    pub fn num_retained(&self) -> usize {
        self.retained.len()
    }

    /// The representative frame index for frame `t`.
    pub fn representative(&self, t: usize) -> usize {
        self.retained[self.rep_of[t] as usize]
    }

    /// Position of frame `t`'s representative within [`Segments::retained`]
    /// (e.g. for indexing per-retained-frame side tables like CMDN outputs).
    pub fn representative_position(&self, t: usize) -> usize {
        self.rep_of[t] as usize
    }

    /// Whether frame `t` was retained.
    pub fn is_retained(&self, t: usize) -> bool {
        self.representative(t) == t
    }

    /// Fraction of frames discarded.
    pub fn discard_ratio(&self) -> f64 {
        if self.rep_of.is_empty() {
            return 0.0;
        }
        1.0 - self.retained.len() as f64 / self.rep_of.len() as f64
    }

    /// Segments within the half-open frame range `[start, end)`: for each
    /// representative appearing there, `(representative frame, #frames)`.
    /// This is the `(r_t, |s_t|)` decomposition of §3.4.
    pub fn window_segments(&self, start: usize, end: usize) -> Vec<(usize, usize)> {
        assert!(start <= end && end <= self.n_frames());
        let mut out: Vec<(usize, usize)> = Vec::new();
        for t in start..end {
            let rep = self.representative(t);
            match out.iter_mut().find(|(r, _)| *r == rep) {
                Some((_, c)) => *c += 1,
                None => out.push((rep, 1)),
            }
        }
        out
    }
}

/// The clip-parallel MSE difference detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct DifferenceDetector {
    cfg: DiffConfig,
}

impl DifferenceDetector {
    pub fn new(cfg: DiffConfig) -> Self {
        assert!(cfg.clip_size >= 1, "clip size must be >= 1");
        assert!(cfg.num_threads >= 1, "need at least one worker");
        DifferenceDetector { cfg }
    }

    pub fn config(&self) -> &DiffConfig {
        &self.cfg
    }

    /// Runs the detector over the whole video.
    pub fn run(&self, video: &dyn VideoStore) -> Segments {
        let n = video.num_frames();
        if n == 0 {
            return Segments {
                retained: vec![],
                rep_of: vec![],
            };
        }
        let c = self.cfg.clip_size;
        let n_clips = n.div_ceil(c);
        // Each worker handles a contiguous range of clips and reports, per
        // clip, which member frames were retained (beyond the middle).
        let threads = self.cfg.num_threads.min(n_clips).max(1);
        let clips_per_worker = n_clips.div_ceil(threads);

        let mut clip_results: Vec<Vec<(usize, Vec<bool>)>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..threads {
                let lo = w * clips_per_worker;
                let hi = ((w + 1) * clips_per_worker).min(n_clips);
                if lo >= hi {
                    break;
                }
                handles.push(scope.spawn(move || {
                    let mut local = Vec::with_capacity(hi - lo);
                    for clip in lo..hi {
                        let start = clip * c;
                        let end = ((clip + 1) * c).min(n);
                        local.push((start, self.process_clip(video, start, end)));
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("diff worker panicked"))
                .collect()
        });

        // Merge, preserving frame order.
        clip_results.sort_by_key(|chunk| chunk.first().map(|&(s, _)| s).unwrap_or(0));
        let mut retained = Vec::new();
        let mut rep_of = vec![0u32; n];
        for chunk in clip_results {
            for (start, keeps) in chunk {
                // First retained pass: collect retained indices of this clip.
                let mid = start + keeps.iter().position(|&k| k).expect("middle always kept");
                for (off, &keep) in keeps.iter().enumerate() {
                    let t = start + off;
                    if keep {
                        rep_of[t] = retained.len() as u32;
                        retained.push(t);
                    }
                }
                // Second pass: discarded frames point at the clip middle.
                let mid_pos = rep_of[mid];
                for (off, &keep) in keeps.iter().enumerate() {
                    if !keep {
                        rep_of[start + off] = mid_pos;
                    }
                }
            }
        }
        Segments { retained, rep_of }
    }

    /// Returns, for each frame of the clip `[start, end)`, whether it is
    /// retained. The middle frame is always retained.
    fn process_clip(&self, video: &dyn VideoStore, start: usize, end: usize) -> Vec<bool> {
        let len = end - start;
        let mid = start + len / 2;
        let mid_frame = video.frame(mid);
        (start..end)
            .map(|t| {
                if t == mid {
                    true
                } else {
                    video.frame(t).mse(&mid_frame) >= self.cfg.mse_threshold
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::store::InMemoryVideo;

    fn constant_video(n: usize) -> InMemoryVideo {
        InMemoryVideo::new(vec![Frame::filled(8, 8, 0.5); n], 30.0)
    }

    fn alternating_video(n: usize) -> InMemoryVideo {
        let frames = (0..n)
            .map(|t| Frame::filled(8, 8, if t % 2 == 0 { 0.1 } else { 0.9 }))
            .collect();
        InMemoryVideo::new(frames, 30.0)
    }

    fn detector(th: f32, clip: usize) -> DifferenceDetector {
        DifferenceDetector::new(DiffConfig {
            mse_threshold: th,
            clip_size: clip,
            num_threads: 3,
        })
    }

    #[test]
    fn constant_video_keeps_one_frame_per_clip() {
        let v = constant_video(90);
        let segs = detector(1e-4, 30).run(&v);
        assert_eq!(segs.num_retained(), 3); // one middle per clip
        assert_eq!(segs.n_frames(), 90);
        assert!(segs.discard_ratio() > 0.9);
        for t in 0..90 {
            let rep = segs.representative(t);
            assert_eq!(rep, (t / 30) * 30 + 15);
        }
    }

    #[test]
    fn alternating_video_keeps_everything() {
        let v = alternating_video(60);
        let segs = detector(1e-4, 30).run(&v);
        // Half the frames equal the middle frame's value, half differ hugely:
        // the equal ones collapse onto the middle, the others are retained.
        assert!(segs.num_retained() >= 30);
        for t in 0..60 {
            if segs.is_retained(t) {
                assert_eq!(segs.representative(t), t);
            }
        }
    }

    #[test]
    fn zero_threshold_retains_all() {
        let v = constant_video(45);
        let segs = detector(0.0, 30).run(&v);
        assert_eq!(segs.num_retained(), 45);
        assert_eq!(segs, Segments::identity(45));
    }

    #[test]
    fn partial_final_clip_is_handled() {
        let v = constant_video(37); // 30 + 7
        let segs = detector(1e-4, 30).run(&v);
        assert_eq!(segs.num_retained(), 2);
        assert_eq!(segs.representative(36), 30 + 3); // middle of 7-frame clip
    }

    #[test]
    fn single_frame_video() {
        let v = constant_video(1);
        let segs = detector(1e-4, 30).run(&v);
        assert_eq!(segs.num_retained(), 1);
        assert!(segs.is_retained(0));
    }

    #[test]
    fn parallel_matches_serial() {
        let v = alternating_video(123);
        let serial = DifferenceDetector::new(DiffConfig {
            mse_threshold: 1e-4,
            clip_size: 10,
            num_threads: 1,
        })
        .run(&v);
        let parallel = DifferenceDetector::new(DiffConfig {
            mse_threshold: 1e-4,
            clip_size: 10,
            num_threads: 7,
        })
        .run(&v);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn window_segments_cover_window() {
        let v = constant_video(90);
        let segs = detector(1e-4, 30).run(&v);
        let ws = segs.window_segments(10, 50);
        let total: usize = ws.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 40);
        // spans clips 0 and 1 → two representatives
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].0, 15);
        assert_eq!(ws[1].0, 45);
    }

    #[test]
    fn empty_video() {
        let segs = Segments::identity(0);
        assert_eq!(segs.n_frames(), 0);
        assert_eq!(segs.discard_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "represent itself")]
    fn from_parts_validates_self_representation() {
        // frame 1 is retained but claims representative 0
        let _ = Segments::from_parts(vec![0, 1], vec![0, 0]);
    }
}
