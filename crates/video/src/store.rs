//! Video storage abstraction and the decode-cost model.
//!
//! The paper decodes video with Decord and notes (§3.5 "Prefetching") that
//! non-sequential frame access stalls the GPU unless frames are prefetched.
//! The cost asymmetry comes from inter-frame compression: random access must
//! decode forward from the previous keyframe. [`DecodeCostModel`] captures
//! exactly that, so the prefetching optimisation has something real to
//! optimise against in simulated time.

use crate::frame::Frame;
use serde::{Deserialize, Serialize};

/// Read-only frame access. Implementations must be cheap to share across
/// threads (the difference detector and CMDN inference are parallel).
pub trait VideoStore: Send + Sync {
    /// Total number of frames.
    fn num_frames(&self) -> usize;

    /// Decodes/renders frame `idx`. Panics if out of range.
    fn frame(&self, idx: usize) -> Frame;

    fn width(&self) -> usize;

    fn height(&self) -> usize;

    /// Nominal frames per second (Table 7 column).
    fn fps(&self) -> f64 {
        30.0
    }
}

/// A fully materialised in-memory video, mainly for tests and tiny examples.
#[derive(Debug, Clone)]
pub struct InMemoryVideo {
    frames: Vec<Frame>,
    fps: f64,
}

impl InMemoryVideo {
    pub fn new(frames: Vec<Frame>, fps: f64) -> Self {
        assert!(
            !frames.is_empty(),
            "in-memory video needs at least one frame"
        );
        let (w, h) = (frames[0].width(), frames[0].height());
        assert!(
            frames.iter().all(|f| f.width() == w && f.height() == h),
            "all frames must share dimensions"
        );
        InMemoryVideo { frames, fps }
    }
}

impl VideoStore for InMemoryVideo {
    fn num_frames(&self) -> usize {
        self.frames.len()
    }

    fn frame(&self, idx: usize) -> Frame {
        self.frames[idx].clone()
    }

    fn width(&self) -> usize {
        self.frames[0].width()
    }

    fn height(&self) -> usize {
        self.frames[0].height()
    }

    fn fps(&self) -> f64 {
        self.fps
    }
}

/// GOP-aware decode cost model (simulated seconds).
///
/// * Sequential access (`idx == prev + 1`) costs `seq_cost`.
/// * Random access decodes forward from the nearest preceding keyframe:
///   `seq_cost × (1 + idx mod gop)` — the farther into a group-of-pictures,
///   the more expensive the jump.
/// * Re-reading the current frame is free.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DecodeCostModel {
    /// Cost of decoding one frame sequentially, in simulated seconds.
    pub seq_cost: f64,
    /// Keyframe interval (group-of-pictures length), in frames.
    pub gop: usize,
}

impl Default for DecodeCostModel {
    fn default() -> Self {
        // 0.4 ms/frame sequential decode, keyframe every 48 frames.
        DecodeCostModel {
            seq_cost: 0.4e-3,
            gop: 48,
        }
    }
}

impl DecodeCostModel {
    pub fn new(seq_cost: f64, gop: usize) -> Self {
        assert!(seq_cost >= 0.0 && gop >= 1);
        DecodeCostModel { seq_cost, gop }
    }

    /// Simulated cost (seconds) of accessing `idx` when the decoder last
    /// delivered `prev` (`None` = cold start).
    pub fn access_cost(&self, idx: usize, prev: Option<usize>) -> f64 {
        match prev {
            Some(p) if p == idx => 0.0,
            Some(p) if idx == p + 1 => self.seq_cost,
            _ => self.seq_cost * (1.0 + (idx % self.gop) as f64),
        }
    }

    /// Cost of a fully sequential scan over `n` frames.
    pub fn sequential_scan_cost(&self, n: usize) -> f64 {
        self.seq_cost * n as f64
    }

    /// Cost of accessing the given (arbitrary-order) index sequence,
    /// tracking decoder state along the way.
    pub fn trace_cost(&self, indices: &[usize]) -> f64 {
        let mut prev = None;
        let mut total = 0.0;
        for &i in indices {
            total += self.access_cost(i, prev);
            prev = Some(i);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_roundtrip() {
        let v = InMemoryVideo::new(vec![Frame::filled(4, 4, 0.5); 3], 30.0);
        assert_eq!(v.num_frames(), 3);
        assert_eq!(v.frame(1).mean(), 0.5);
        assert_eq!((v.width(), v.height()), (4, 4));
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn in_memory_rejects_mixed_dimensions() {
        let _ = InMemoryVideo::new(vec![Frame::new(4, 4), Frame::new(5, 4)], 30.0);
    }

    #[test]
    fn sequential_access_is_cheapest() {
        let m = DecodeCostModel::new(1.0, 10);
        assert_eq!(m.access_cost(5, Some(4)), 1.0);
        assert_eq!(m.access_cost(5, Some(5)), 0.0);
        // jump to mid-GOP frame costs proportionally more
        assert_eq!(m.access_cost(15, Some(3)), 6.0); // 15 % 10 = 5 → 6×
        assert_eq!(m.access_cost(20, Some(3)), 1.0); // keyframe
    }

    #[test]
    fn scan_cost_is_linear() {
        let m = DecodeCostModel::new(0.5, 10);
        assert_eq!(m.sequential_scan_cost(100), 50.0);
    }

    #[test]
    fn trace_cost_matches_manual_sum() {
        let m = DecodeCostModel::new(1.0, 4);
        // cold start at 2 → 1*(1+2)=3; then 3 sequential → 1; then jump to 9 → 1+1=2
        assert_eq!(m.trace_cost(&[2, 3, 9]), 3.0 + 1.0 + 2.0);
    }

    #[test]
    fn random_scan_costs_more_than_sequential() {
        let m = DecodeCostModel::default();
        let seq: Vec<usize> = (0..1000).collect();
        let mut rev: Vec<usize> = seq.clone();
        rev.reverse();
        assert!(m.trace_cost(&rev) > m.trace_cost(&seq));
    }
}
