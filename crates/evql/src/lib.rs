//! # everest-evql — a declarative Top-K video query language
//!
//! The Everest paper closes by pointing at "integrating it with an
//! expressive video query language or libraries like FrameQL" (§5). EVQL is
//! that integration: a small SQL-flavoured language whose only first-class
//! operation is the paper's contribution — **Top-K over video with a
//! probabilistic guarantee** — plus the baselines of §4 as alternative
//! engines, so the paper's comparisons can be re-run from one REPL line.
//!
//! ```text
//! SELECT TOP 50 FRAMES FROM Taipei-bus WITH CONFIDENCE 0.9
//! SELECT TOP 10 WINDOWS OF 150 FRAMES FROM Grand-Canal SCORE count(boat)
//! SELECT TOP 5 WINDOWS OF 60 FRAMES SLIDE 15 FROM Archie
//! SELECT TOP 50 FRAMES FROM Dashcam-California SCORE tailgating() WITH STEP 0.5
//! SELECT TOP 5 FRAMES FROM Archie EVERY 100 FRAMES EMIT   -- continuous Top-K
//! SELECT TOP 20 FRAMES FROM Archie USING noscope          -- §4 baseline
//! SELECT SKYLINE OF count(car), coverage() FROM Archie    -- §5 future work
//! EXPLAIN SELECT TOP 5 FRAMES FROM Vlog SCORE sentiment()
//! SHOW DATASETS; SET scale = 4
//! ```
//!
//! ## Pipeline
//!
//! `text → [lexer] → tokens → [parser] → AST → [analyze] → QueryPlan →
//! [exec] → rows`
//!
//! * [`lexer`] / [`token`] — spanned tokens, hyphenated identifiers,
//!   `--` comments;
//! * [`parser`] / [`ast`] — recursive descent, strict diagnostics;
//! * [`analyze`] — name resolution against the [`catalog`], parameter
//!   validation, "did-you-mean" hints;
//! * [`plan`] — validated plans and `EXPLAIN` rendering;
//! * [`exec`] — the [`exec::Session`]: executes plans on the Everest
//!   engine (or a §4 baseline), caching Phase-1 artifacts per
//!   `(dataset, score, scale, seed, step)` the way Focus-style systems
//!   ingest offline;
//! * [`error`] — spanned errors with caret rendering.
//!
//! ## Quick start
//!
//! ```no_run
//! use everest_evql::{Output, Session};
//!
//! let mut session = Session::new();
//! match session.execute("SELECT TOP 5 FRAMES FROM Archie").unwrap() {
//!     Output::Rows(answer) => {
//!         println!("{}", answer.render());
//!         assert!(answer.stats.confidence.unwrap() >= 0.9);
//!     }
//!     Output::Message(m) => println!("{m}"),
//!     other => println!("{other:?}"),
//! }
//! ```

#![deny(unsafe_code)]

pub mod analyze;
pub mod ast;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod shared;
pub mod token;
pub mod wire;

pub use analyze::{analyze as analyze_select, analyze_skyline, SessionSettings};
pub use error::EvqlError;
pub use exec::{
    AnswerRow, ExecStats, Output, QueryOutput, Session, SkylineOutput, SkylineRow, StreamOutput,
    StreamSession,
};
pub use parser::parse;
pub use plan::{Engine, PlanTarget, QueryPlan, SkylinePlan};
pub use shared::{CacheStats, SharedCache};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_api_parse_analyze_chain() {
        let stmt = match parse("SELECT TOP 3 FRAMES FROM Archie").unwrap() {
            ast::Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let plan = analyze_select(&stmt, &SessionSettings::default()).unwrap();
        assert_eq!(plan.k, 3);
        assert_eq!(plan.engine, Engine::Everest);
    }

    #[test]
    fn errors_render_with_carets_at_api_level() {
        let src = "SELECT TOP 3 FRAMES FROM Atlantis";
        let stmt = match parse(src).unwrap() {
            ast::Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let err = analyze_select(&stmt, &SessionSettings::default()).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains('^'), "{rendered}");
    }
}
