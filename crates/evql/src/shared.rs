//! A thread-shareable prepared-video cache: the serve-daemon seed.
//!
//! [`exec::Session`](crate::exec::Session) historically owned its
//! Phase-1 cache outright, which made it impossible for a pool of worker
//! threads (one EVQL session per client connection) to share the
//! expensive `(dataset, score, scale, seed, step)` preparations. This
//! module extracts that state into [`SharedCache`]: an
//! `Arc<Mutex<…>>`-backed LRU map with **single-flight** builds — when N
//! sessions race on the same missing key, exactly one thread runs Phase 1
//! and the rest block on a condvar until the entry is ready. That is what
//! a production pooler's prepared-statement cache does, and it has a
//! welcome side effect: cache hit/miss counters are *deterministic* under
//! concurrency (misses = distinct keys built, independent of thread
//! interleaving), which the serve determinism harness relies on.
//!
//! Eviction is LRU over monotone ticks, exactly as the private cache
//! was; in-flight builds are never evicted. Every [`SharedCache`] clone
//! shares the same state, so `everest-serve` hands one cache to all
//! worker sessions while a standalone [`Session`](crate::exec::Session)
//! still gets a private one by default.

use crate::exec::PreparedEntry;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

/// Cache key: one Phase-1 preparation per combination.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Dataset name, lower-cased.
    pub source: String,
    /// Score display form (`count(car)`, `tailgating()`, …).
    pub score: String,
    /// Catalog scale divisor.
    pub scale: usize,
    /// Dataset build seed.
    pub seed: u64,
    /// Quantization step, bit-cast (steps are exact user literals).
    pub step_bits: u64,
}

impl CacheKey {
    /// Human-readable form for `SHOW CACHES`.
    pub fn display(&self) -> String {
        format!(
            "{} / {} / scale {} / seed {} / step {}",
            self.source,
            self.score,
            self.scale,
            self.seed,
            f64::from_bits(self.step_bits)
        )
    }
}

/// One slot: ready entry with LRU tick, or a build in flight.
enum Slot {
    Ready {
        entry: Arc<PreparedEntry>,
        last_used: u64,
    },
    /// Some thread is running Phase 1 for this key; waiters block on the
    /// cache condvar until it flips to `Ready` (or is removed on panic).
    Building,
}

/// Counter snapshot for `SHOW CACHES` / metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a ready entry (including single-flight
    /// waiters, which reused another thread's build).
    pub hits: u64,
    /// Lookups that ran Phase 1 themselves.
    pub misses: u64,
    /// Ready entries dropped by LRU pressure.
    pub evictions: u64,
    /// `clear()` calls (the serve daemon's `RELOAD`).
    pub reloads: u64,
}

struct State {
    slots: BTreeMap<CacheKey, Slot>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl State {
    fn ready_len(&self) -> usize {
        self.slots
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count()
    }

    /// Drops the least-recently-used *ready* entry (builds in flight are
    /// untouchable — a waiter is about to receive them).
    fn evict_lru(&mut self) {
        if let Some(key) = self
            .slots
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Ready { last_used, .. } => Some((*last_used, k.clone())),
                Slot::Building => None,
            })
            .min()
            .map(|(_, k)| k)
        {
            self.slots.remove(&key);
            self.stats.evictions += 1;
        }
    }
}

/// Default cap on cached Phase-1 preparations (mirrors the historical
/// per-session default — see [`crate::exec::DEFAULT_CACHE_CAPACITY`]).
const DEFAULT_CAPACITY: usize = 8;

/// An `Arc`-shareable, LRU-bounded, single-flight Phase-1 cache.
///
/// Cloning is cheap and shares state; see the module docs.
#[derive(Clone)]
pub struct SharedCache {
    inner: Arc<Inner>,
}

struct Inner {
    state: Mutex<State>,
    built: Condvar,
}

impl Default for SharedCache {
    fn default() -> Self {
        SharedCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl std::fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("SharedCache")
            .field("entries", &st.ready_len())
            .field("capacity", &st.capacity)
            .field("stats", &st.stats)
            .finish()
    }
}

impl SharedCache {
    /// A fresh cache capped at `capacity` ready entries (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        SharedCache {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    slots: BTreeMap::new(),
                    capacity,
                    tick: 0,
                    stats: CacheStats::default(),
                }),
                built: Condvar::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        match self.inner.state.lock() {
            Ok(g) => g,
            // A builder panicking between lock scopes leaves no broken
            // invariant (the Building slot is cleaned up by its guard),
            // so recover rather than propagate the poison.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns the entry for `key`, building it with `build` on a miss.
    /// The bool is `true` on a cache hit (including waiting out another
    /// thread's in-flight build of the same key).
    ///
    /// `build` runs **outside** the cache lock, so concurrent sessions
    /// keep hitting other keys while a multi-second Phase 1 runs. If it
    /// panics, the in-flight marker is removed and waiters retry (one of
    /// them becomes the next builder).
    pub fn get_or_build<F>(&self, key: &CacheKey, build: F) -> (Arc<PreparedEntry>, bool)
    where
        F: FnOnce() -> PreparedEntry,
    {
        let mut st = self.lock();
        loop {
            let next_tick = st.tick + 1;
            match st.slots.get_mut(key) {
                Some(Slot::Ready { entry, last_used }) => {
                    *last_used = next_tick;
                    let out = Arc::clone(entry);
                    st.tick = next_tick;
                    st.stats.hits += 1;
                    return (out, true);
                }
                Some(Slot::Building) => {
                    st = match self.inner.built.wait(st) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                None => break,
            }
        }
        // Miss: this thread builds. Evict before building so peak memory
        // never holds capacity + 1 ready preparations.
        st.stats.misses += 1;
        while st.ready_len() >= st.capacity {
            st.evict_lru();
        }
        st.slots.insert(key.clone(), Slot::Building);
        drop(st);

        // Remove the in-flight marker and wake waiters even if `build`
        // panics, so they retry instead of deadlocking.
        struct Cleanup<'a> {
            cache: &'a SharedCache,
            key: &'a CacheKey,
            done: bool,
        }
        impl Drop for Cleanup<'_> {
            fn drop(&mut self) {
                if !self.done {
                    let mut st = self.cache.lock();
                    st.slots.remove(self.key);
                    drop(st);
                    self.cache.inner.built.notify_all();
                }
            }
        }
        let mut guard = Cleanup {
            cache: self,
            key,
            done: false,
        };
        let entry = Arc::new(build());
        guard.done = true;

        let mut st = self.lock();
        st.tick += 1;
        let tick = st.tick;
        // Re-check capacity under the lock: other single-flight builds of
        // *different* keys may have landed while this one ran, and each
        // only evicted against the ready population it saw pre-build.
        while st.ready_len() >= st.capacity {
            st.evict_lru();
        }
        st.slots.insert(
            key.clone(),
            Slot::Ready {
                entry: Arc::clone(&entry),
                last_used: tick,
            },
        );
        drop(st);
        self.inner.built.notify_all();
        (entry, false)
    }

    /// Number of ready (built) entries.
    pub fn len(&self) -> usize {
        self.lock().ready_len()
    }

    /// True when no entry is ready.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current cap on ready entries.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Re-caps the cache (≥ 1), evicting LRU entries immediately if the
    /// new cap is smaller.
    pub fn set_capacity(&self, capacity: usize) {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        let mut st = self.lock();
        st.capacity = capacity;
        while st.ready_len() > st.capacity {
            st.evict_lru();
        }
    }

    /// Drops every ready entry and counts a reload. Builds in flight are
    /// left to finish (their waiters still get an answer; the entry then
    /// populates the now-empty cache).
    pub fn clear(&self) {
        let mut st = self.lock();
        st.slots.retain(|_, s| matches!(s, Slot::Building));
        st.stats.reloads += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Ready keys in deterministic (BTreeMap) order, with their LRU tick.
    pub fn keys(&self) -> Vec<(CacheKey, u64)> {
        self.lock()
            .slots
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Ready { last_used, .. } => Some((k.clone(), *last_used)),
                Slot::Building => None,
            })
            .collect()
    }

    /// Builds currently in flight (for `SHOW CACHES`).
    pub fn building(&self) -> usize {
        self.lock()
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Building))
            .count()
    }

    /// `SHOW CACHES` rendering: capacity, entries, counters.
    pub fn render(&self) -> String {
        let st = self.lock();
        let mut out = format!(
            "prepared-video cache: {} / {} entries ({} building)\n\
             hits={}  misses={}  evictions={}  reloads={}\n",
            st.ready_len(),
            st.capacity,
            st.slots
                .values()
                .filter(|s| matches!(s, Slot::Building))
                .count(),
            st.stats.hits,
            st.stats.misses,
            st.stats.evictions,
            st.stats.reloads,
        );
        for (k, s) in &st.slots {
            if let Slot::Ready { last_used, .. } = s {
                out.push_str(&format!("  [lru {last_used:>4}] {}\n", k.display()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal PreparedEntry stand-in is impossible (fields are real
    /// engine artifacts), so contention tests build the cheapest real
    /// preparation: the smallest catalog source at extreme scale.
    fn tiny_entry(seed: u64) -> PreparedEntry {
        let src = crate::catalog::source_by_name("Archie").unwrap();
        let built = src.build(src.default_score, 100_000, seed);
        // A real Phase-1 run would dominate the test; the cache only
        // stores the struct, so a degenerate prepared video suffices.
        let cfg = everest_core::phase1::Phase1Config {
            sample_frac: 0.05,
            sample_cap: 60,
            sample_min: 20,
            grid: everest_nn::HyperGrid::single(2, 4),
            train: everest_nn::train::TrainConfig {
                epochs: 1,
                ..everest_nn::train::TrainConfig::default()
            },
            conv_channels: vec![2],
            seed,
            threads: 1,
            ..everest_core::phase1::Phase1Config::default()
        };
        let prepared =
            everest_core::pipeline::Everest::prepare(built.video.as_ref(), &built.oracle, &cfg);
        PreparedEntry {
            prepared,
            oracle: built.oracle,
        }
    }

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            source: "archie".into(),
            score: "count(car)".into(),
            scale: 100_000,
            seed,
            step_bits: 1.0f64.to_bits(),
        }
    }

    #[test]
    fn single_flight_dedups_concurrent_builds() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = SharedCache::with_capacity(4);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = cache.clone();
                let builds = &builds;
                scope.spawn(move || {
                    let (_, _hit) = cache.get_or_build(&key(1), || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        tiny_entry(1)
                    });
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one build");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7, "waiters count as hits");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_under_contention_never_exceeds_capacity() {
        let capacity = 3;
        let cache = SharedCache::with_capacity(capacity);
        std::thread::scope(|scope| {
            for t in 0..6u64 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for i in 0..4u64 {
                        let seed = (t + i) % 7;
                        let (entry, _) = cache.get_or_build(&key(seed), || tiny_entry(seed));
                        // entries handed out stay usable even if evicted
                        // underneath (Arc keeps them alive)
                        assert!(!entry.prepared.phase1.relation.is_empty());
                        assert!(
                            cache.len() <= capacity,
                            "capacity must bound the cache under contention"
                        );
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 24, "every lookup is counted");
        assert!(
            stats.misses >= 7 - capacity as u64,
            "distinct keys exceed cap"
        );
        assert!(cache.len() <= capacity);
    }

    #[test]
    fn builder_panic_wakes_waiters_who_then_rebuild() {
        let cache = SharedCache::with_capacity(2);
        let k = key(2);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build(&k, || panic!("phase 1 exploded"));
        }));
        assert!(panicked.is_err());
        // The in-flight marker must be gone: a later lookup rebuilds
        // rather than deadlocking on a Building slot no one owns.
        let (_, hit) = cache.get_or_build(&k, || tiny_entry(2));
        assert!(!hit, "post-panic lookup is a miss that rebuilds");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_counts_a_reload_and_drops_ready_entries() {
        let cache = SharedCache::with_capacity(4);
        cache.get_or_build(&key(1), || tiny_entry(1));
        cache.get_or_build(&key(2), || tiny_entry(2));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().reloads, 1);
        let (_, hit) = cache.get_or_build(&key(1), || tiny_entry(1));
        assert!(!hit, "cleared entries rebuild");
    }

    #[test]
    fn render_lists_keys_deterministically() {
        let cache = SharedCache::with_capacity(4);
        cache.get_or_build(&key(3), || tiny_entry(3));
        cache.get_or_build(&key(1), || tiny_entry(1));
        let text = cache.render();
        assert!(text.contains("2 / 4 entries"), "{text}");
        let pos1 = text.find("seed 1").unwrap();
        let pos3 = text.find("seed 3").unwrap();
        assert!(pos1 < pos3, "BTreeMap order, not insertion order: {text}");
    }
}
