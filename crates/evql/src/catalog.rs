//! The EVQL catalog: every queryable data source and scoring function.
//!
//! EVQL binds names to the reproduction's synthetic substrates:
//!
//! * the five **counting datasets** of Table 7 (`Archie`, `Daxi-old-street`,
//!   `Grand-Canal`, `Irish-Center`, `Taipei-bus`) scored by `count(<class>)`;
//! * the **Visual Road** mini-city sweep (`VisualRoad-50` … `VisualRoad-250`,
//!   Fig. 8) scored by `count(car)`;
//! * the two **dashcam** videos (Fig. 9) scored by `tailgating()`;
//! * a synthetic **vlog** (`Vlog`, the thumbnail use case of §1) scored by
//!   `sentiment()`.
//!
//! A [`SourceEntry`] can be *built* into a [`BuiltSource`] — a concrete
//! video store plus its exact-score oracle — optionally shrunk by a scale
//! divisor so interactive queries return in seconds.

use everest_models::sentiment::sentiment_oracle;
use everest_models::{counting_oracle, depth_oracle, ExactScoreOracle};
use everest_video::dashcam::{dashcam_datasets, DashcamConfig, DashcamVideo};
use everest_video::datasets::counting_datasets;
use everest_video::scene::ObjectClass;
use everest_video::sentiment::{SentimentConfig, SentimentVideo};
use everest_video::visualroad::{VisualRoadConfig, VisualRoadVideo};
use everest_video::{DatasetSpec, VideoStore};

// Re-exported for CLI display and tests.
pub use everest_models::sentiment::{HAPPINESS_QUANTIZATION_STEP, SENTIMENT_COST_PER_FRAME};

/// A scoring function, resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreFn {
    /// `count(<class>)`: number of objects of the class per frame.
    Count(ObjectClass),
    /// `coverage()`: total object bounding-box area, % of the frame
    /// (the second dimension of the skyline workload).
    Coverage,
    /// `tailgating()`: depth-estimator tailgating degree (Fig. 9).
    Tailgating,
    /// `sentiment()`: visual-sentimentalizer happiness (§1 use case 2).
    Sentiment,
}

impl ScoreFn {
    /// Canonical EVQL spelling.
    pub fn display(&self) -> String {
        match self {
            ScoreFn::Count(c) => format!("count({})", class_name(*c)),
            ScoreFn::Coverage => "coverage()".into(),
            ScoreFn::Tailgating => "tailgating()".into(),
            ScoreFn::Sentiment => "sentiment()".into(),
        }
    }

    /// The natural quantization step of this score (§3.2: counting scores
    /// quantize to integers; continuous scores need a user/UDF step).
    pub fn default_step(&self) -> f64 {
        match self {
            ScoreFn::Count(_) => 1.0,
            ScoreFn::Coverage => everest_models::counting::COVERAGE_QUANTIZATION_STEP,
            ScoreFn::Tailgating => everest_models::depth::TAILGATING_QUANTIZATION_STEP,
            ScoreFn::Sentiment => HAPPINESS_QUANTIZATION_STEP,
        }
    }
}

/// Maps an [`ObjectClass`] to its EVQL name.
pub fn class_name(c: ObjectClass) -> &'static str {
    match c {
        ObjectClass::Car => "car",
        ObjectClass::Person => "person",
        ObjectClass::Boat => "boat",
        ObjectClass::Bus => "bus",
        ObjectClass::Truck => "truck",
    }
}

/// Parses an EVQL class name.
pub fn class_by_name(name: &str) -> Option<ObjectClass> {
    match name.to_ascii_lowercase().as_str() {
        "car" => Some(ObjectClass::Car),
        "person" => Some(ObjectClass::Person),
        "boat" => Some(ObjectClass::Boat),
        "bus" => Some(ObjectClass::Bus),
        "truck" => Some(ObjectClass::Truck),
        _ => None,
    }
}

/// All EVQL class names (for diagnostics).
pub fn all_class_names() -> [&'static str; 5] {
    ["car", "person", "boat", "bus", "truck"]
}

/// How a source is materialised.
#[derive(Debug, Clone)]
pub enum SourceKind {
    /// A Table 7 counting dataset.
    Counting(DatasetSpec),
    /// A Visual Road mini-city with this many cars (Fig. 8).
    VisualRoad(usize),
    /// A dashcam video (Fig. 9).
    Dashcam(DashcamConfig, u64),
    /// The synthetic vlog.
    Vlog(SentimentConfig, u64),
}

/// One catalog row.
#[derive(Debug, Clone)]
pub struct SourceEntry {
    pub name: String,
    pub kind: SourceKind,
    /// The score this source is queried with when no `SCORE` clause is
    /// given.
    pub default_score: ScoreFn,
    /// Frame count at scale divisor 1.
    pub n_frames_full: usize,
    pub fps: f64,
    pub description: String,
}

/// A materialised source: video + exact-score oracle.
pub struct BuiltSource {
    pub video: Box<dyn VideoStore>,
    pub oracle: ExactScoreOracle,
    pub fps: f64,
}

impl SourceEntry {
    /// Frame count after applying a scale divisor (floored at a size that
    /// still trains a CMDN).
    pub fn scaled_frames(&self, divisor: usize) -> usize {
        (self.n_frames_full / divisor.max(1))
            .max(2_000)
            .min(self.n_frames_full)
    }

    /// Builds the video and its oracle for the requested score.
    ///
    /// The caller must have validated compatibility (see
    /// [`compatible_score`]); this panics on a mismatch.
    pub fn build(&self, score: ScoreFn, divisor: usize, seed: u64) -> BuiltSource {
        let n = self.scaled_frames(divisor);
        match (&self.kind, score) {
            (SourceKind::Counting(spec), ScoreFn::Count(class)) => {
                assert_eq!(class, spec.object_class, "validated upstream");
                let mut spec = spec.clone();
                spec.n_frames = n;
                spec.arrival.n_frames = n;
                let video = spec.build(seed);
                let oracle = counting_oracle(&video);
                BuiltSource {
                    video: Box::new(video),
                    oracle,
                    fps: self.fps,
                }
            }
            (SourceKind::Counting(spec), ScoreFn::Coverage) => {
                let mut spec = spec.clone();
                spec.n_frames = n;
                spec.arrival.n_frames = n;
                let video = spec.build(seed);
                let oracle = everest_models::coverage_oracle(&video);
                BuiltSource {
                    video: Box::new(video),
                    oracle,
                    fps: self.fps,
                }
            }
            (SourceKind::VisualRoad(cars), ScoreFn::Count(ObjectClass::Car)) => {
                let cfg = VisualRoadConfig {
                    total_cars: *cars,
                    n_frames: n,
                    ..Default::default()
                };
                let video = VisualRoadVideo::new(cfg, seed);
                let oracle = everest_models::counting::counting_oracle_visualroad(&video);
                BuiltSource {
                    video: Box::new(video),
                    oracle,
                    fps: self.fps,
                }
            }
            (SourceKind::Dashcam(cfg, default_seed), ScoreFn::Tailgating) => {
                let cfg = DashcamConfig {
                    n_frames: n,
                    ..cfg.clone()
                };
                let video = DashcamVideo::new(cfg, if seed == 0 { *default_seed } else { seed });
                let oracle = depth_oracle(&video);
                BuiltSource {
                    video: Box::new(video),
                    oracle,
                    fps: self.fps,
                }
            }
            (SourceKind::Vlog(cfg, default_seed), ScoreFn::Sentiment) => {
                let cfg = SentimentConfig {
                    n_frames: n,
                    ..cfg.clone()
                };
                let video = SentimentVideo::new(cfg, if seed == 0 { *default_seed } else { seed });
                let oracle = sentiment_oracle(&video);
                BuiltSource {
                    video: Box::new(video),
                    oracle,
                    fps: self.fps,
                }
            }
            (kind, score) => panic!(
                "source kind {kind:?} cannot serve score {score:?} (analysis must reject this)"
            ),
        }
    }
}

/// Whether `score` can run on this source; `Err` carries a human
/// explanation used verbatim in diagnostics.
pub fn compatible_score(entry: &SourceEntry, score: ScoreFn) -> Result<(), String> {
    match (&entry.kind, score) {
        (SourceKind::Counting(spec), ScoreFn::Count(class)) => {
            if class == spec.object_class {
                Ok(())
            } else {
                Err(format!(
                    "dataset `{}` is annotated for `{}`; use SCORE count({}) or omit SCORE",
                    entry.name,
                    class_name(spec.object_class),
                    class_name(spec.object_class),
                ))
            }
        }
        (SourceKind::Counting(_), ScoreFn::Coverage) => Ok(()),
        (SourceKind::VisualRoad(_), ScoreFn::Count(ObjectClass::Car)) => Ok(()),
        (SourceKind::VisualRoad(_), ScoreFn::Count(c)) => Err(format!(
            "Visual Road videos only contain cars; `count({})` would always be 0",
            class_name(c)
        )),
        (SourceKind::Dashcam(..), ScoreFn::Tailgating) => Ok(()),
        (SourceKind::Vlog(..), ScoreFn::Sentiment) => Ok(()),
        (_, s) => Err(format!(
            "score {} cannot run on dataset `{}` (its default score is {})",
            s.display(),
            entry.name,
            entry.default_score.display()
        )),
    }
}

/// The full EVQL catalog.
pub fn catalog() -> Vec<SourceEntry> {
    let mut out = Vec::new();
    for spec in counting_datasets() {
        out.push(SourceEntry {
            name: spec.name.to_string(),
            default_score: ScoreFn::Count(spec.object_class),
            n_frames_full: spec.n_frames,
            fps: spec.fps,
            description: format!(
                "Table 7 {} footage, object-of-interest `{}`",
                match spec.style {
                    everest_video::SceneStyle::FixedCamera => "fixed-camera",
                    everest_video::SceneStyle::MovingCamera => "moving-camera",
                },
                class_name(spec.object_class)
            ),
            kind: SourceKind::Counting(spec),
        });
    }
    for cars in [50usize, 100, 150, 200, 250] {
        let cfg = VisualRoadConfig::default();
        out.push(SourceEntry {
            name: format!("VisualRoad-{cars}"),
            kind: SourceKind::VisualRoad(cars),
            default_score: ScoreFn::Count(ObjectClass::Car),
            n_frames_full: cfg.n_frames,
            fps: cfg.fps,
            description: format!("Visual Road mini-city with {cars} cars (Fig. 8)"),
        });
    }
    for (name, cfg, seed) in dashcam_datasets() {
        out.push(SourceEntry {
            name: name.to_string(),
            n_frames_full: cfg.n_frames,
            fps: cfg.fps,
            description: "Table 7 dashcam footage for the tailgating UDF (Fig. 9)".into(),
            default_score: ScoreFn::Tailgating,
            kind: SourceKind::Dashcam(cfg, seed),
        });
    }
    let vlog = SentimentConfig::default();
    out.push(SourceEntry {
        name: "Vlog".into(),
        n_frames_full: vlog.n_frames,
        fps: vlog.fps,
        description: "synthetic vlog for the thumbnail-generation use case (§1)".into(),
        default_score: ScoreFn::Sentiment,
        kind: SourceKind::Vlog(vlog, 404),
    });
    out
}

/// Case-insensitive catalog lookup.
pub fn source_by_name(name: &str) -> Option<SourceEntry> {
    catalog()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
}

/// All source names (for `SHOW DATASETS` and suggestions).
pub fn source_names() -> Vec<String> {
    catalog().into_iter().map(|e| e.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_paper_sources() {
        let names = source_names();
        for expect in [
            "Archie",
            "Daxi-old-street",
            "Grand-Canal",
            "Irish-Center",
            "Taipei-bus",
            "VisualRoad-50",
            "VisualRoad-250",
            "Dashcam-California",
            "Dashcam-Greenport",
            "Vlog",
        ] {
            assert!(names.iter().any(|n| n == expect), "missing {expect}");
        }
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(source_by_name("grand-canal").is_some());
        assert!(source_by_name("GRAND-CANAL").is_some());
        assert!(source_by_name("no-such").is_none());
    }

    #[test]
    fn class_names_round_trip() {
        for name in all_class_names() {
            let c = class_by_name(name).unwrap();
            assert_eq!(class_name(c), name);
        }
        assert_eq!(class_by_name("CAR"), Some(ObjectClass::Car));
        assert_eq!(class_by_name("dragon"), None);
    }

    #[test]
    fn score_compatibility_rules() {
        let canal = source_by_name("Grand-Canal").unwrap();
        assert!(compatible_score(&canal, ScoreFn::Count(ObjectClass::Boat)).is_ok());
        assert!(compatible_score(&canal, ScoreFn::Count(ObjectClass::Car)).is_err());
        assert!(compatible_score(&canal, ScoreFn::Tailgating).is_err());

        let vr = source_by_name("VisualRoad-100").unwrap();
        assert!(compatible_score(&vr, ScoreFn::Count(ObjectClass::Car)).is_ok());
        assert!(compatible_score(&vr, ScoreFn::Count(ObjectClass::Boat)).is_err());

        let dash = source_by_name("Dashcam-California").unwrap();
        assert!(compatible_score(&dash, ScoreFn::Tailgating).is_ok());
        assert!(compatible_score(&dash, ScoreFn::Sentiment).is_err());

        let vlog = source_by_name("Vlog").unwrap();
        assert!(compatible_score(&vlog, ScoreFn::Sentiment).is_ok());
    }

    #[test]
    fn scaled_frames_floor_and_cap() {
        let canal = source_by_name("Grand-Canal").unwrap();
        assert_eq!(canal.scaled_frames(1), canal.n_frames_full);
        assert!(canal.scaled_frames(8) >= 2_000);
        assert!(canal.scaled_frames(8) < canal.n_frames_full);
        // divisor larger than the video floors at 2000 but never exceeds full
        let small_floor = canal.scaled_frames(usize::MAX);
        assert_eq!(small_floor, 2_000.min(canal.n_frames_full));
    }

    #[test]
    fn build_counting_source() {
        let archie = source_by_name("Archie").unwrap();
        let built = archie.build(ScoreFn::Count(ObjectClass::Car), 16, 7);
        let n = archie.scaled_frames(16);
        assert_eq!(built.video.num_frames(), n);
        assert_eq!(everest_models::Oracle::num_frames(&built.oracle), n);
    }

    #[test]
    fn build_dashcam_and_vlog_sources() {
        let dash = source_by_name("Dashcam-Greenport").unwrap();
        let built = dash.build(ScoreFn::Tailgating, 4, 0);
        assert_eq!(built.video.num_frames(), dash.scaled_frames(4));

        let vlog = source_by_name("Vlog").unwrap();
        let built = vlog.build(ScoreFn::Sentiment, 4, 0);
        assert_eq!(built.video.num_frames(), vlog.scaled_frames(4));
    }

    #[test]
    fn build_visualroad_source() {
        let vr = source_by_name("VisualRoad-50").unwrap();
        let built = vr.build(ScoreFn::Count(ObjectClass::Car), 8, 3);
        assert_eq!(built.video.num_frames(), vr.scaled_frames(8));
    }

    #[test]
    #[should_panic(expected = "analysis must reject")]
    fn incompatible_build_panics() {
        let vlog = source_by_name("Vlog").unwrap();
        let _ = vlog.build(ScoreFn::Tailgating, 8, 1);
    }

    #[test]
    fn default_steps_match_udf_constants() {
        assert_eq!(ScoreFn::Count(ObjectClass::Car).default_step(), 1.0);
        assert_eq!(
            ScoreFn::Tailgating.default_step(),
            everest_models::depth::TAILGATING_QUANTIZATION_STEP
        );
        assert_eq!(
            ScoreFn::Sentiment.default_step(),
            HAPPINESS_QUANTIZATION_STEP
        );
    }

    #[test]
    fn cost_constants_are_positive() {
        const { assert!(SENTIMENT_COST_PER_FRAME > 0.0) }
    }
}
