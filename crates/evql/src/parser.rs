//! Recursive-descent parser for EVQL.
//!
//! The parser consumes the token stream from [`crate::lexer`] and produces
//! the [`crate::ast`] types. It is deliberately strict: every fork in the
//! grammar reports what it expected and what it found, with a span, so the
//! CLI can render a caret diagnostic.

use crate::ast::{Literal, LiteralValue, OptionClause, ScoreCall, SelectStmt, Statement, Target};
use crate::error::{ErrorKind, EvqlError};
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};

/// Parses exactly one statement (a trailing `;` is allowed).
pub fn parse(src: &str) -> Result<Statement, EvqlError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
    };
    let stmt = p.statement()?;
    p.eat_semi();
    if let Some(t) = p.peek() {
        return Err(EvqlError::new(ErrorKind::TrailingInput, t.span));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    // ---- token plumbing ----

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn end_span(&self) -> Span {
        Span::point(self.src_len)
    }

    fn err_expected(&self, wanted: &str) -> EvqlError {
        match self.peek() {
            Some(t) => EvqlError::new(
                ErrorKind::Expected {
                    wanted: wanted.into(),
                    got: t.kind.describe(),
                },
                t.span,
            ),
            None => EvqlError::new(
                ErrorKind::UnexpectedEnd {
                    wanted: wanted.into(),
                },
                self.end_span(),
            ),
        }
    }

    /// Consumes the next token if it is the keyword `kw`.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Span, EvqlError> {
        match self.peek() {
            Some(t) if t.is_kw(kw) => {
                let span = t.span;
                self.pos += 1;
                Ok(span)
            }
            _ => Err(self.err_expected(&format!("`{kw}`"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), EvqlError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(s),
                span,
            }) => {
                let out = (s.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.err_expected(what)),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<(u64, Span), EvqlError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Int(v),
                span,
            }) => {
                let out = (*v, *span);
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.err_expected(what)),
        }
    }

    fn eat_semi(&mut self) {
        while self.peek().is_some_and(|t| t.kind == TokenKind::Semi) {
            self.pos += 1;
        }
    }

    // ---- grammar ----

    fn statement(&mut self) -> Result<Statement, EvqlError> {
        match self.peek() {
            Some(t) if t.is_kw("SELECT") => {
                // Lookahead: `SELECT SKYLINE …` vs `SELECT TOP …`.
                if self
                    .tokens
                    .get(self.pos + 1)
                    .is_some_and(|t| t.is_kw("SKYLINE"))
                {
                    return Ok(Statement::Skyline(self.skyline()?));
                }
                Ok(Statement::Select(self.select()?))
            }
            Some(t) if t.is_kw("EXPLAIN") => {
                self.pos += 1;
                if self
                    .tokens
                    .get(self.pos + 1)
                    .is_some_and(|t| t.is_kw("SKYLINE"))
                {
                    return Ok(Statement::ExplainSkyline(self.skyline()?));
                }
                Ok(Statement::Explain(self.select()?))
            }
            Some(t) if t.is_kw("SHOW") => {
                self.pos += 1;
                let (what, span) =
                    self.expect_ident("`DATASETS`, `SCORES`, `ENGINES` or `SETTINGS`")?;
                Ok(Statement::Show { what, span })
            }
            Some(t) if t.is_kw("SET") => {
                let set_start = t.span;
                self.pos += 1;
                let (name, _) = self.expect_ident("a setting name")?;
                // `SET name = value` and `SET name value` both accepted.
                if self.peek().is_some_and(|t| t.kind == TokenKind::Eq) {
                    self.pos += 1;
                }
                let value = self.literal("a setting value")?;
                let span = set_start.merge(value.span);
                Ok(Statement::Set { name, value, span })
            }
            _ => Err(self.err_expected("`SELECT`, `EXPLAIN`, `SHOW` or `SET`")),
        }
    }

    fn select(&mut self) -> Result<SelectStmt, EvqlError> {
        self.expect_kw("SELECT")?;
        self.expect_kw("TOP")?;
        let (k, k_span) = self.expect_int("K (a positive integer)")?;
        let target = self.target()?;
        self.expect_kw("FROM")?;
        let (source, source_span) = self.source()?;

        let mut score = None;
        let mut engine = None;
        let mut every = None;
        let mut within = None;
        let mut options = Vec::new();
        loop {
            if self.eat_kw("SCORE") {
                if score.is_some() {
                    return Err(self.duplicate_clause("SCORE"));
                }
                score = Some(self.score_call()?);
            } else if self.eat_kw("USING") {
                if engine.is_some() {
                    return Err(self.duplicate_clause("USING"));
                }
                engine = Some(self.expect_ident("an engine name")?);
            } else if self.eat_kw("EVERY") {
                if every.is_some() {
                    return Err(self.duplicate_clause("EVERY"));
                }
                let (n, span) = self.expect_int("the emit stride in frames")?;
                self.expect_kw("FRAMES")?;
                self.expect_kw("EMIT")?;
                every = Some((n, span));
            } else if self.eat_kw("WITHIN") {
                if within.is_some() {
                    return Err(self.duplicate_clause("WITHIN"));
                }
                let (n, span) = self.expect_int("the oracle-call budget")?;
                self.expect_kw("ORACLE")?;
                self.expect_kw("CALLS")?;
                within = Some((n, span));
            } else if self.eat_kw("WITH") {
                options.push(self.option_clause()?);
                while self.peek().is_some_and(|t| t.kind == TokenKind::Comma) {
                    self.pos += 1;
                    options.push(self.option_clause()?);
                }
            } else {
                break;
            }
        }
        Ok(SelectStmt {
            k,
            k_span,
            target,
            source,
            source_span,
            score,
            engine,
            every,
            within,
            options,
        })
    }

    fn skyline(&mut self) -> Result<crate::ast::SkylineStmt, EvqlError> {
        self.expect_kw("SELECT")?;
        let skyline_span = self.expect_kw("SKYLINE")?;
        let mut scores = Vec::new();
        if self.eat_kw("OF") {
            scores.push(self.score_call()?);
            while self.peek().is_some_and(|t| t.kind == TokenKind::Comma) {
                self.pos += 1;
                scores.push(self.score_call()?);
            }
        }
        self.expect_kw("FROM")?;
        let (source, source_span) = self.source()?;
        let mut options = Vec::new();
        while self.eat_kw("WITH") {
            options.push(self.option_clause()?);
            while self.peek().is_some_and(|t| t.kind == TokenKind::Comma) {
                self.pos += 1;
                options.push(self.option_clause()?);
            }
        }
        Ok(crate::ast::SkylineStmt {
            scores,
            skyline_span,
            source,
            source_span,
            options,
        })
    }

    fn duplicate_clause(&self, clause: &str) -> EvqlError {
        let span = self
            .tokens
            .get(self.pos.saturating_sub(1))
            .map_or(self.end_span(), |t| t.span);
        EvqlError::new(
            ErrorKind::Expected {
                wanted: format!("at most one `{clause}` clause"),
                got: format!("a second `{clause}`"),
            },
            span,
        )
    }

    fn target(&mut self) -> Result<Target, EvqlError> {
        if self.eat_kw("FRAMES") {
            return Ok(Target::Frames);
        }
        if self.eat_kw("WINDOWS") {
            self.expect_kw("OF")?;
            let (len, len_span) = self.expect_int("the window length in frames")?;
            self.expect_kw("FRAMES")?;
            let slide = if self.eat_kw("SLIDE") {
                Some(self.expect_int("the slide step in frames")?)
            } else {
                None
            };
            return Ok(Target::Windows {
                len,
                len_span,
                slide,
            });
        }
        Err(self.err_expected("`FRAMES` or `WINDOWS OF <n> FRAMES`"))
    }

    fn source(&mut self) -> Result<(String, Span), EvqlError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(s),
                span,
            }) => {
                let out = (s.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            Some(Token {
                kind: TokenKind::Str(s),
                span,
            }) => {
                let out = (s.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.err_expected("a dataset name")),
        }
    }

    fn score_call(&mut self) -> Result<ScoreCall, EvqlError> {
        let (name, name_span) = self.expect_ident("a scoring function name")?;
        match self.peek() {
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                self.pos += 1;
            }
            _ => return Err(self.err_expected("`(` after the scoring function name")),
        }
        let mut args = Vec::new();
        if !self.peek().is_some_and(|t| t.kind == TokenKind::RParen) {
            args.push(self.literal("a scoring-function argument")?);
            while self.peek().is_some_and(|t| t.kind == TokenKind::Comma) {
                self.pos += 1;
                args.push(self.literal("a scoring-function argument")?);
            }
        }
        let rparen = match self.next() {
            Some(Token {
                kind: TokenKind::RParen,
                span,
            }) => span,
            Some(t) => {
                return Err(EvqlError::new(
                    ErrorKind::Expected {
                        wanted: "`)`".into(),
                        got: t.kind.describe(),
                    },
                    t.span,
                ))
            }
            None => {
                return Err(EvqlError::new(
                    ErrorKind::UnexpectedEnd {
                        wanted: "`)`".into(),
                    },
                    self.end_span(),
                ))
            }
        };
        Ok(ScoreCall {
            name,
            name_span,
            args,
            span: name_span.merge(rparen),
        })
    }

    fn option_clause(&mut self) -> Result<OptionClause, EvqlError> {
        let (name, name_span) = self.expect_ident("an option name (e.g. `CONFIDENCE`)")?;
        // `WITH CONFIDENCE 0.9` and `WITH CONFIDENCE = 0.9` both accepted.
        if self.peek().is_some_and(|t| t.kind == TokenKind::Eq) {
            self.pos += 1;
        }
        let value = self.literal(&format!("a value for option `{name}`"))?;
        Ok(OptionClause {
            name,
            name_span,
            value,
        })
    }

    fn literal(&mut self, what: &str) -> Result<Literal, EvqlError> {
        match self.peek().cloned() {
            Some(Token {
                kind: TokenKind::Int(v),
                span,
            }) => {
                self.pos += 1;
                Ok(Literal {
                    value: LiteralValue::Int(v),
                    span,
                })
            }
            Some(Token {
                kind: TokenKind::Float(v),
                span,
            }) => {
                self.pos += 1;
                Ok(Literal {
                    value: LiteralValue::Float(v),
                    span,
                })
            }
            Some(Token {
                kind: TokenKind::Ident(s),
                span,
            })
            | Some(Token {
                kind: TokenKind::Str(s),
                span,
            }) => {
                self.pos += 1;
                Ok(Literal {
                    value: LiteralValue::Word(s),
                    span,
                })
            }
            _ => Err(self.err_expected(what)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(src: &str) -> SelectStmt {
        match parse(src).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn minimal_frame_query() {
        let s = select("SELECT TOP 50 FRAMES FROM Archie");
        assert_eq!(s.k, 50);
        assert_eq!(s.target, Target::Frames);
        assert_eq!(s.source, "Archie");
        assert!(s.score.is_none() && s.engine.is_none() && s.options.is_empty());
    }

    #[test]
    fn full_frame_query_with_everything() {
        let s = select(
            "SELECT TOP 10 FRAMES FROM Grand-Canal \
             SCORE count(boat) USING everest \
             WITH CONFIDENCE 0.95, SEED 7, BATCH 4;",
        );
        assert_eq!(s.k, 10);
        let score = s.score.as_ref().unwrap();
        assert_eq!(score.name, "count");
        assert_eq!(score.args.len(), 1);
        assert_eq!(score.args[0].as_word(), Some("boat"));
        assert_eq!(s.engine.as_ref().unwrap().0, "everest");
        assert_eq!(s.options.len(), 3);
        assert_eq!(s.option("confidence").unwrap().value.as_f64(), Some(0.95));
        assert_eq!(s.option("seed").unwrap().value.as_u64(), Some(7));
        assert_eq!(s.option("batch").unwrap().value.as_u64(), Some(4));
    }

    #[test]
    fn tumbling_window_query() {
        let s = select("SELECT TOP 5 WINDOWS OF 30 FRAMES FROM Taipei-bus WITH SAMPLE 0.1");
        match s.target {
            Target::Windows { len, slide, .. } => {
                assert_eq!(len, 30);
                assert!(slide.is_none());
            }
            t => panic!("wrong target {t:?}"),
        }
    }

    #[test]
    fn sliding_window_query() {
        let s = select("SELECT TOP 5 WINDOWS OF 60 FRAMES SLIDE 15 FROM Archie");
        match s.target {
            Target::Windows { len, slide, .. } => {
                assert_eq!(len, 60);
                assert_eq!(slide.unwrap().0, 15);
            }
            t => panic!("wrong target {t:?}"),
        }
    }

    #[test]
    fn quoted_source_and_zero_arg_score() {
        let s = select("SELECT TOP 3 FRAMES FROM 'Dashcam-California' SCORE tailgating()");
        assert_eq!(s.source, "Dashcam-California");
        assert!(s.score.unwrap().args.is_empty());
    }

    #[test]
    fn explain_show_set() {
        assert!(matches!(
            parse("EXPLAIN SELECT TOP 1 FRAMES FROM x").unwrap(),
            Statement::Explain(_)
        ));
        match parse("SHOW DATASETS").unwrap() {
            Statement::Show { what, .. } => assert_eq!(what, "DATASETS"),
            other => panic!("{other:?}"),
        }
        match parse("SET scale = 8").unwrap() {
            Statement::Set { name, value, .. } => {
                assert_eq!(name, "scale");
                assert_eq!(value.as_u64(), Some(8));
            }
            other => panic!("{other:?}"),
        }
        // SET without `=` also parses
        assert!(matches!(
            parse("SET scale 8").unwrap(),
            Statement::Set { .. }
        ));
    }

    #[test]
    fn options_accept_equals_sign() {
        let s = select("SELECT TOP 2 FRAMES FROM x WITH CONFIDENCE = 0.9");
        assert_eq!(s.option("confidence").unwrap().value.as_f64(), Some(0.9));
    }

    #[test]
    fn multiple_with_clauses_accumulate() {
        let s = select("SELECT TOP 2 FRAMES FROM x WITH SEED 1 WITH BATCH 2");
        assert_eq!(s.options.len(), 2);
    }

    #[test]
    fn clause_order_is_flexible() {
        let s = select("SELECT TOP 2 FRAMES FROM x USING scan SCORE count(car)");
        assert!(s.engine.is_some() && s.score.is_some());
    }

    // ---- error paths ----

    fn err(src: &str) -> EvqlError {
        parse(src).unwrap_err()
    }

    #[test]
    fn missing_top_k() {
        let e = err("SELECT FRAMES FROM x");
        assert!(e.message().contains("`TOP`"), "{}", e.message());
    }

    #[test]
    fn k_must_be_integer() {
        let e = err("SELECT TOP 0.5 FRAMES FROM x");
        assert!(e.message().contains("K"), "{}", e.message());
    }

    #[test]
    fn windows_require_of_and_frames() {
        let e = err("SELECT TOP 5 WINDOWS 30 FROM x");
        assert!(e.message().contains("`OF`"), "{}", e.message());
        let e = err("SELECT TOP 5 WINDOWS OF 30 FROM x");
        assert!(e.message().contains("`FRAMES`"), "{}", e.message());
    }

    #[test]
    fn truncated_query_reports_end() {
        let e = err("SELECT TOP 5");
        assert!(matches!(e.kind, ErrorKind::UnexpectedEnd { .. }), "{e:?}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = err("SELECT TOP 5 FRAMES FROM x bogus trailing");
        // `bogus` is consumed as... actually after FROM x the parser loop
        // breaks at `bogus`, so it is trailing input.
        assert_eq!(e.kind, ErrorKind::TrailingInput);
    }

    #[test]
    fn duplicate_score_clause_rejected() {
        let e = err("SELECT TOP 5 FRAMES FROM x SCORE count(car) SCORE count(bus)");
        assert!(e.message().contains("at most one"), "{}", e.message());
    }

    #[test]
    fn score_requires_parentheses() {
        let e = err("SELECT TOP 5 FRAMES FROM x SCORE count");
        assert!(e.message().contains("`(`"), "{}", e.message());
        let e = err("SELECT TOP 5 FRAMES FROM x SCORE count(car");
        assert!(e.message().contains("`)`"), "{}", e.message());
    }

    #[test]
    fn empty_input_is_an_error() {
        let e = err("");
        assert!(matches!(e.kind, ErrorKind::UnexpectedEnd { .. }), "{e:?}");
    }

    #[test]
    fn semicolons_are_optional_and_repeatable() {
        assert!(parse("SELECT TOP 1 FRAMES FROM x;;").is_ok());
        assert!(parse("SHOW DATASETS;").is_ok());
    }

    // ---- EVERY … EMIT (continuous queries) ----

    #[test]
    fn every_clause_parses_with_value_and_span() {
        let src = "SELECT TOP 5 FRAMES FROM Archie EVERY 30 FRAMES EMIT";
        let s = select(src);
        let (n, span) = s.every.unwrap();
        assert_eq!(n, 30);
        // the span points at the stride literal itself
        assert_eq!(&src[span.start..span.end], "30");
    }

    #[test]
    fn every_clause_order_is_flexible_and_composes() {
        let s = select(
            "SELECT TOP 5 FRAMES FROM Archie EVERY 10 FRAMES EMIT \
             USING everest WITH SEED 1",
        );
        assert_eq!(s.every.unwrap().0, 10);
        assert!(s.engine.is_some());
        assert_eq!(s.options.len(), 1);
        let s = select("SELECT TOP 5 FRAMES FROM Archie WITH SEED 1 EVERY 10 FRAMES EMIT");
        assert_eq!(s.every.unwrap().0, 10);
    }

    #[test]
    fn every_zero_stride_parses_for_analyze_to_reject() {
        // stride validation is semantic (needs the video length), so the
        // parser accepts 0 and carries the span for analyze's diagnostic
        let src = "SELECT TOP 5 FRAMES FROM Archie EVERY 0 FRAMES EMIT";
        let (n, span) = select(src).every.unwrap();
        assert_eq!(n, 0);
        assert_eq!(&src[span.start..span.end], "0");
    }

    #[test]
    fn every_missing_emit_rejected_with_span() {
        let src = "SELECT TOP 5 FRAMES FROM Archie EVERY 30 FRAMES";
        let e = err(src);
        assert!(e.message().contains("`EMIT`"), "{}", e.message());
        assert!(matches!(e.kind, ErrorKind::UnexpectedEnd { .. }), "{e:?}");
        // with trailing input the span lands on the offending token
        let src = "SELECT TOP 5 FRAMES FROM Archie EVERY 30 FRAMES WITH SEED 1";
        let e = err(src);
        assert!(e.message().contains("`EMIT`"), "{}", e.message());
        assert_eq!(&src[e.span.start..e.span.end], "WITH");
    }

    #[test]
    fn every_missing_frames_rejected() {
        let e = err("SELECT TOP 5 FRAMES FROM Archie EVERY 30 EMIT");
        assert!(e.message().contains("`FRAMES`"), "{}", e.message());
    }

    #[test]
    fn every_stride_must_be_an_integer() {
        let src = "SELECT TOP 5 FRAMES FROM Archie EVERY fast FRAMES EMIT";
        let e = err(src);
        assert!(e.message().contains("emit stride"), "{}", e.message());
        assert_eq!(&src[e.span.start..e.span.end], "fast");
    }

    #[test]
    fn every_in_bad_position_rejected_with_span() {
        // before the target: the target grammar owns this position
        let src = "SELECT TOP 5 EVERY 10 FRAMES EMIT FROM Archie";
        let e = err(src);
        assert!(
            e.message().contains("`FRAMES` or `WINDOWS OF"),
            "{}",
            e.message()
        );
        assert_eq!(&src[e.span.start..e.span.end], "EVERY");
        // before FROM: the source grammar owns this position
        let e = err("SELECT TOP 5 FRAMES EVERY 10 FRAMES EMIT FROM Archie");
        assert!(e.message().contains("`FROM`"), "{}", e.message());
    }

    #[test]
    fn duplicate_every_clause_rejected() {
        let e = err("SELECT TOP 5 FRAMES FROM x EVERY 10 FRAMES EMIT EVERY 20 FRAMES EMIT");
        assert!(
            e.message().contains("at most one `EVERY`"),
            "{}",
            e.message()
        );
    }

    // ---- WITHIN … ORACLE CALLS (anytime budgets) ----

    #[test]
    fn within_clause_parses_with_value_and_span() {
        let src = "SELECT TOP 5 FRAMES FROM Archie WITHIN 200 ORACLE CALLS";
        let s = select(src);
        let (n, span) = s.within.unwrap();
        assert_eq!(n, 200);
        assert_eq!(&src[span.start..span.end], "200");
    }

    #[test]
    fn within_composes_with_other_clauses() {
        let s = select(
            "SELECT TOP 5 FRAMES FROM Archie WITHIN 50 ORACLE CALLS \
             USING everest WITH SEED 1, DEADLINE 2.5",
        );
        assert_eq!(s.within.unwrap().0, 50);
        assert!(s.engine.is_some());
        assert_eq!(s.options.len(), 2);
        // order is flexible: WITH before WITHIN also parses
        let s = select("SELECT TOP 5 FRAMES FROM Archie WITH SEED 1 WITHIN 9 ORACLE CALLS");
        assert_eq!(s.within.unwrap().0, 9);
    }

    #[test]
    fn within_requires_oracle_calls_keywords() {
        let e = err("SELECT TOP 5 FRAMES FROM Archie WITHIN 50 CALLS");
        assert!(e.message().contains("`ORACLE`"), "{}", e.message());
        let e = err("SELECT TOP 5 FRAMES FROM Archie WITHIN 50 ORACLE");
        assert!(e.message().contains("`CALLS`"), "{}", e.message());
    }

    #[test]
    fn within_budget_must_be_an_integer() {
        let src = "SELECT TOP 5 FRAMES FROM Archie WITHIN fast ORACLE CALLS";
        let e = err(src);
        assert!(
            e.message().contains("oracle-call budget"),
            "{}",
            e.message()
        );
        assert_eq!(&src[e.span.start..e.span.end], "fast");
    }

    #[test]
    fn duplicate_within_clause_rejected() {
        let e = err("SELECT TOP 5 FRAMES FROM x WITHIN 5 ORACLE CALLS WITHIN 6 ORACLE CALLS");
        assert!(
            e.message().contains("at most one `WITHIN`"),
            "{}",
            e.message()
        );
    }

    #[test]
    fn select_display_round_trips() {
        for src in [
            "SELECT TOP 5 FRAMES FROM Archie",
            "SELECT TOP 5 FRAMES FROM Archie EVERY 30 FRAMES EMIT",
            "SELECT TOP 10 WINDOWS OF 60 FRAMES SLIDE 15 FROM Grand-Canal \
             SCORE count(boat) USING everest WITH CONFIDENCE 0.95, SEED 7",
            "SELECT TOP 3 FRAMES FROM Archie EVERY 25 FRAMES EMIT \
             WITH WINDOW 100, BUDGET 8",
            "SELECT TOP 4 FRAMES FROM Archie WITHIN 100 ORACLE CALLS \
             WITH DEADLINE 1.5, FLAKY 7",
        ] {
            let first = select(src);
            let rendered = first.display();
            let second = select(&rendered);
            assert_eq!(
                rendered,
                second.display(),
                "display must be a fixpoint for {src:?}"
            );
            assert_eq!(
                (first.k, first.every.map(|e| e.0)),
                (second.k, second.every.map(|e| e.0))
            );
            assert_eq!(first.source, second.source);
        }
    }

    // ---- skyline ----

    fn skyline(src: &str) -> crate::ast::SkylineStmt {
        match parse(src).unwrap() {
            Statement::Skyline(s) => s,
            other => panic!("expected SKYLINE, got {other:?}"),
        }
    }

    #[test]
    fn skyline_with_default_dimensions() {
        let s = skyline("SELECT SKYLINE FROM Archie");
        assert!(s.scores.is_empty());
        assert_eq!(s.source, "Archie");
        assert!(s.options.is_empty());
    }

    #[test]
    fn skyline_with_explicit_dimensions_and_options() {
        let s = skyline(
            "SELECT SKYLINE OF count(car), coverage() FROM Archie \
             WITH CONFIDENCE 0.95, SEED 3",
        );
        assert_eq!(s.scores.len(), 2);
        assert_eq!(s.scores[0].name, "count");
        assert_eq!(s.scores[1].name, "coverage");
        assert_eq!(s.option("confidence").unwrap().value.as_f64(), Some(0.95));
        assert_eq!(s.option("seed").unwrap().value.as_u64(), Some(3));
    }

    #[test]
    fn explain_skyline_parses() {
        match parse("EXPLAIN SELECT SKYLINE FROM Archie").unwrap() {
            Statement::ExplainSkyline(s) => assert_eq!(s.source, "Archie"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn skyline_requires_from() {
        let e = err("SELECT SKYLINE OF count(car)");
        assert!(e.message().contains("`FROM`"), "{}", e.message());
    }

    #[test]
    fn skyline_of_requires_at_least_one_call() {
        let e = err("SELECT SKYLINE OF FROM Archie");
        // `FROM` is consumed as the score name; `(` is then demanded.
        assert!(e.message().contains("`(`"), "{}", e.message());
    }
}
