//! Hand-written lexer for EVQL.
//!
//! Produces a flat [`Token`] vector; all position information is byte-based
//! [`Span`]s into the original source, so errors at any later stage can be
//! rendered with carets. Identifiers may contain `-` after the first
//! character (EVQL has no subtraction) which lets the paper's dataset names
//! (`Grand-Canal`, `Daxi-old-street`) be written bare.

use crate::error::{ErrorKind, EvqlError};
use crate::token::{Span, Token, TokenKind};

/// Lexes a full query string.
pub fn lex(src: &str) -> Result<Vec<Token>, EvqlError> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>, EvqlError> {
        let mut out = Vec::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'-' if self.peek_at(self.pos + 1) == Some(b'-') => self.skip_line_comment(),
                b'(' => out.push(self.punct(TokenKind::LParen)),
                b')' => out.push(self.punct(TokenKind::RParen)),
                b',' => out.push(self.punct(TokenKind::Comma)),
                b'=' => out.push(self.punct(TokenKind::Eq)),
                b';' => out.push(self.punct(TokenKind::Semi)),
                b'\'' | b'"' => out.push(self.string(b)?),
                b'0'..=b'9' => out.push(self.number()?),
                b'.' if matches!(self.peek_at(self.pos + 1), Some(b'0'..=b'9')) => {
                    out.push(self.number()?)
                }
                _ if is_ident_start(b) => out.push(self.ident()),
                _ => {
                    let ch = self.src[self.pos..].chars().next().unwrap_or('?');
                    return Err(EvqlError::new(
                        ErrorKind::UnexpectedChar(ch),
                        Span::new(self.pos, self.pos + ch.len_utf8()),
                    ));
                }
            }
        }
        Ok(out)
    }

    fn peek_at(&self, i: usize) -> Option<u8> {
        self.bytes.get(i).copied()
    }

    fn skip_line_comment(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            if b == b'\n' {
                break;
            }
        }
    }

    fn punct(&mut self, kind: TokenKind) -> Token {
        let span = Span::new(self.pos, self.pos + 1);
        self.pos += 1;
        Token { kind, span }
    }

    fn string(&mut self, quote: u8) -> Result<Token, EvqlError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let content_start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == quote {
                let s = self.src[content_start..self.pos].to_string();
                self.pos += 1; // closing quote
                return Ok(Token {
                    kind: TokenKind::Str(s),
                    span: Span::new(start, self.pos),
                });
            }
            self.pos += 1;
        }
        Err(EvqlError::new(
            ErrorKind::UnterminatedString,
            Span::new(start, self.pos),
        ))
    }

    fn number(&mut self) -> Result<Token, EvqlError> {
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' if !saw_dot && !saw_exp => {
                    saw_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.pos += 1;
                    if matches!(self.peek_at(self.pos), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        let clean: String = text.chars().filter(|&c| c != '_').collect();
        let span = Span::new(start, self.pos);
        let kind = if saw_dot || saw_exp {
            clean
                .parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| EvqlError::new(ErrorKind::BadNumber(text.into()), span))?
        } else {
            clean
                .parse::<u64>()
                .map(TokenKind::Int)
                .map_err(|_| EvqlError::new(ErrorKind::BadNumber(text.into()), span))?
        };
        Ok(Token { kind, span })
    }

    fn ident(&mut self) -> Token {
        let start = self.pos;
        self.pos += 1;
        while let Some(&b) = self.bytes.get(self.pos) {
            // A hyphen continues the identifier only when followed by an
            // identifier character: `top-k` lexes as one word, but a
            // trailing `-` does not get swallowed.
            let cont = is_ident_continue(b)
                || (b == b'-' && self.peek_at(self.pos + 1).is_some_and(is_ident_continue));
            if !cont {
                break;
            }
            self.pos += 1;
        }
        Token {
            kind: TokenKind::Ident(self.src[start..self.pos].to_string()),
            span: Span::new(start, self.pos),
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_full_query() {
        let ks = kinds("SELECT TOP 50 FRAMES FROM Archie WITH CONFIDENCE 0.9");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("TOP".into()),
                TokenKind::Int(50),
                TokenKind::Ident("FRAMES".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("Archie".into()),
                TokenKind::Ident("WITH".into()),
                TokenKind::Ident("CONFIDENCE".into()),
                TokenKind::Float(0.9),
            ]
        );
    }

    #[test]
    fn hyphenated_dataset_names_are_single_idents() {
        assert_eq!(
            kinds("Grand-Canal"),
            vec![TokenKind::Ident("Grand-Canal".into())]
        );
        assert_eq!(
            kinds("Daxi-old-street"),
            vec![TokenKind::Ident("Daxi-old-street".into())]
        );
    }

    #[test]
    fn trailing_hyphen_is_not_swallowed() {
        // `foo-` = ident `foo` then an error on the dangling hyphen (no
        // token starts with `-`).
        let err = lex("foo- bar").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnexpectedChar('-'));
    }

    #[test]
    fn comments_run_to_end_of_line() {
        let ks = kinds("SELECT -- top k\nTOP 5");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("TOP".into()),
                TokenKind::Int(5),
            ]
        );
    }

    #[test]
    fn numbers_ints_floats_exponents_underscores() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42)]);
        assert_eq!(kinds("0.75"), vec![TokenKind::Float(0.75)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Float(0.5)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
        assert_eq!(kinds("2.5E-2"), vec![TokenKind::Float(0.025)]);
        assert_eq!(kinds("81_220"), vec![TokenKind::Int(81_220)]);
    }

    #[test]
    fn strings_both_quote_styles() {
        assert_eq!(
            kinds("'Grand-Canal'"),
            vec![TokenKind::Str("Grand-Canal".into())]
        );
        assert_eq!(kinds("\"x y\""), vec![TokenKind::Str("x y".into())]);
    }

    #[test]
    fn unterminated_string_errors_with_span() {
        let err = lex("FROM 'oops").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnterminatedString);
        assert_eq!(err.span.start, 5);
    }

    #[test]
    fn unexpected_character_reports_position() {
        let err = lex("SELECT @").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnexpectedChar('@'));
        assert_eq!(err.span.start, 7);
    }

    #[test]
    fn punctuation_and_spans() {
        let toks = lex("count(car), k=5;").unwrap();
        let ks: Vec<_> = toks.iter().map(|t| t.kind.clone()).collect();
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("count".into()),
                TokenKind::LParen,
                TokenKind::Ident("car".into()),
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Ident("k".into()),
                TokenKind::Eq,
                TokenKind::Int(5),
                TokenKind::Semi,
            ]
        );
        // spans reconstruct the source
        assert_eq!(
            &"count(car), k=5;"[toks[0].span.start..toks[0].span.end],
            "count"
        );
        assert_eq!(
            &"count(car), k=5;"[toks[7].span.start..toks[7].span.end],
            "5"
        );
    }

    #[test]
    fn empty_and_whitespace_only_inputs() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("  \n\t ").unwrap().is_empty());
        assert!(lex("-- only a comment").unwrap().is_empty());
    }

    #[test]
    fn huge_int_is_a_bad_number() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::BadNumber(_)));
    }
}
